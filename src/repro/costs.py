"""CPU cost model charged to the virtual clock.

The paper's numbers come from C++ on t2.micro instances with
ECDSA/prime256v1 and SGX enclaves.  We do not try to reproduce absolute
magnitudes - only the relative weights that drive the evaluation's shape:
signature verification dominates and scales with quorum size, serializing
a 115 KB block to N peers loads the leader's NIC/CPU, and every enclave
transition adds a small constant.

All values are in milliseconds of simulated CPU time.  ``CostModel.zero()``
disables cost accounting entirely, which is what logic-level tests use.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Per-operation CPU costs in ms (t2.micro-calibrated defaults)."""

    sign_ms: float = 0.10  # one ECDSA-class signature
    verify_ms: float = 0.25  # one ECDSA-class verification
    tee_call_ms: float = 0.03  # enclave transition (ECALL/OCALL pair)
    hash_per_byte_ms: float = 3.0e-6  # SHA-256 streaming rate
    serialize_per_byte_ms: float = 8.0e-6  # egress serialization (~1 Gbit/s)
    base_process_ms: float = 0.01  # fixed per-message handling cost

    def verify_many_ms(self, count: int) -> float:
        """Cost of verifying ``count`` independent signatures."""
        return count * self.verify_ms

    def tee_op_ms(self, signs: int = 1, verifies: int = 0) -> float:
        """Cost of one TEE invocation doing some signing/verifying inside."""
        return self.tee_call_ms + signs * self.sign_ms + verifies * self.verify_ms

    def send_ms(self, total_bytes: int) -> float:
        """Sender-side cost of pushing ``total_bytes`` out of the NIC."""
        return total_bytes * self.serialize_per_byte_ms

    def receive_ms(self, total_bytes: int) -> float:
        """Receiver-side cost: fixed handling plus hashing the payload."""
        return self.base_process_ms + total_bytes * self.hash_per_byte_ms

    @staticmethod
    def zero() -> "CostModel":
        """A cost model that charges nothing (pure logic simulations)."""
        return CostModel(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)


#: Default calibrated model used by all paper-reproduction benchmarks.
DEFAULT_COSTS = CostModel()
