"""Stale-certificate leaders: proposing extensions of old blocks.

Section 4.1's core observation: in HotStuff "a Byzantine leader could
produce an old certificate, and the backups would not have a way to
verify whether the leader correctly picked the latest prepared block" -
safety survives only thanks to the locking phase.  In Damysus the
accumulator removes the choice: a leader that wants to understate must
feed the accumulator f+1 genuine new-view commitments, and any such set
intersects the f+1 checkers that stored an executed block, so the
certified "highest prepared" can never fall below an executed block.
"""

from __future__ import annotations

from repro.errors import TEERefusal
from repro.core.block import create_leaf
from repro.core.certificate import genesis_qc
from repro.core.messages import ProposalMsg
from repro.protocols.damysus import DamysusReplica
from repro.protocols.hotstuff import HotStuffReplica
from repro.protocols.replica import QuorumCollector


class StaleHotStuffLeader(HotStuffReplica):
    """Always proposes an extension of the genesis block.

    Backups' SafeNode predicate rejects the proposal as soon as they hold
    any lock, so the leader's views time out - safety is preserved by
    locking, at a liveness cost.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.stale_proposals = 0

    def _propose(self, view: int, new_views) -> None:
        self._proposed.add(view)
        self.stale_proposals += 1
        bottom = genesis_qc(self.store.genesis.hash)
        block = create_leaf(
            bottom.block_hash, view, self.mempool.take_block(self.now),
            created_at=self.now,
        )
        self.store.add(block)
        self.broadcast_charged(ProposalMsg(view, block, bottom), include_self=True)


class StaleDamysusLeader(DamysusReplica):
    """Collects extra new-view commitments and accumulates the *lowest* f+1.

    This is the strongest understating attack the accumulator allows: the
    leader may choose which f+1 commitments to feed it, but it cannot
    forge their contents.  Quorum intersection then guarantees the chosen
    set still contains a checker that stored every executed block, so the
    proposal always extends the latest executed block - the attack can
    only waste bandwidth, never fork the ledger.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # Wait for every replica's new-view before proposing, to maximize
        # the choice of which commitments to discard.
        self._new_views = QuorumCollector(self.num_replicas)
        self.understated_views = 0
        self.discarded_commitments = 0

    def _propose(self, view: int, phis) -> None:
        lowest = sorted(phis, key=lambda phi: (phi.v_just or 0))[: self.quorum]
        if len(lowest) < self.quorum:
            return
        self.discarded_commitments += len(phis) - len(lowest)
        if max((p.v_just or 0) for p in lowest) < max((p.v_just or 0) for p in phis):
            self.understated_views += 1
        try:
            super()._propose(view, lowest)
        except TEERefusal:  # noqa: S110 - the faulty leader shrugs off its own checker refusing
            pass
