"""Targeted-partition attacker: isolate the next ``f`` leaders.

A network-level adversary that knows the (public, round-robin) leader
schedule can do much better than random loss: it cuts exactly the
replicas about to lead off from everyone else, forcing a timeout and a
view-change per victim view.  The attack has two colluding halves:

* a :class:`~repro.core.faults.FaultPlan` (built by
  :func:`leader_isolation_plan`) that severs the victims' links for a
  window - this is the part a real attacker would run from the network,
  and it works unchanged on the simulator and on the socket runtime's
  ``FaultDecider``;
* a Byzantine *replica* that colludes by additionally suppressing its
  own traffic to the victims during the window, so the victims cannot
  even count on the attacker's (otherwise honest-looking) messages.

Round-robin leadership bounds the damage: each victim costs one timeout
and the schedule moves on, so commits resume as soon as the window
heals - which the campaign's LivenessOracle asserts.
"""

from __future__ import annotations

from repro.core.faults import FaultPlan
from repro.protocols.damysus import DamysusReplica
from repro.protocols.hotstuff import HotStuffReplica
from repro.protocols.pacemaker import round_robin_leader

#: Attack window (virtual ms): long enough to cover the victims' views,
#: finite so liveness-after-heal is assertable.
ATTACK_START_MS = 600.0
ATTACK_END_MS = 2_600.0
#: First view whose leader is targeted (view 1 is usually mid-flight by
#: the time the window opens).
FIRST_TARGET_VIEW = 2


def victim_pids(num_replicas: int, f: int) -> tuple[int, ...]:
    """The leaders of the next ``f`` views past :data:`FIRST_TARGET_VIEW`."""
    victims: list[int] = []
    view = FIRST_TARGET_VIEW
    while len(victims) < f:
        pid = round_robin_leader(view, num_replicas)
        if pid not in victims:
            victims.append(pid)
        view += 1
    return tuple(victims)


def leader_isolation_plan(num_replicas: int, f: int) -> FaultPlan:
    """The network half of the attack: sever the victims for the window."""
    victims = set(victim_pids(num_replicas, f))
    others = set(range(num_replicas)) - victims
    plan = FaultPlan()
    if victims and others:
        plan.partition(
            victims, others, at_ms=ATTACK_START_MS, heal_ms=ATTACK_END_MS
        )
    return plan


class _PartitionColluderMixin:
    """Suppress all outbound traffic to the scheduled victims in-window."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._victims = frozenset(victim_pids(self.num_replicas, self.config.f))
        self.suppressed_messages = 0

    def _attacking(self) -> bool:
        return ATTACK_START_MS <= self.now < ATTACK_END_MS

    def send(self, dest: int, payload, size_bytes=None) -> None:
        if dest in self._victims and dest != self.pid and self._attacking():
            self.suppressed_messages += 1
            return
        super().send(dest, payload, size_bytes)

    def broadcast(self, dests, payload, size_bytes=None, include_self=False) -> None:
        if self._attacking():
            kept = tuple(d for d in dests if d not in self._victims or d == self.pid)
            self.suppressed_messages += len(dests) - len(kept)
            dests = kept
        super().broadcast(dests, payload, size_bytes, include_self)


class TargetedPartitionDamysusReplica(_PartitionColluderMixin, DamysusReplica):
    """Damysus replica colluding with a leader-isolation partition."""


class TargetedPartitionHotStuffReplica(_PartitionColluderMixin, HotStuffReplica):
    """HotStuff replica colluding with a leader-isolation partition."""
