"""Crash-recover amnesia: restart presenting pre-seal TEE state.

The classic rollback attack on TEE-backed BFT (the reason TrInc-style
designs need monotonic counters): crash a replica, then restart it from
an *older* sealed snapshot, so its Checker forgets certificates it
already issued and can be driven to equivocate.  The platform's seal
service models SGX's monotonic counter: every seal bumps a counter the
host cannot rewind, so presenting a stale - however authentic -
snapshot raises :class:`~repro.errors.TEERefusal` and the replica
cannot rejoin with amnesia.

This adversary automates the attempt: it stashes its very first sealed
snapshot at startup, and on every recovery it first presents that
pre-crash state.  The refusal is counted (``rollback_refusals``); the
host then gives up and restores the genuine latest seal, so the replica
rejoins with full memory - the attack buys nothing but downtime.
"""

from __future__ import annotations

from repro.errors import TEERefusal
from repro.protocols.damysus import DamysusReplica
from repro.protocols.replica import _OWN_SNAPSHOT
from repro.tee.sealed import SealedState


class AmnesiaDamysusReplica(DamysusReplica):
    """Presents rolled-back sealed state on every recovery."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._stale_seal: SealedState | None = None
        self.rollback_attempts = 0
        self.rollback_refusals = 0

    def start(self) -> None:
        # Seal the pristine checker before doing anything: this is the
        # "pre-seal state" the host will later try to restart from.
        self._stale_seal = self.seal_tee_state()
        super().start()

    def recover(self, sealed=_OWN_SNAPSHOT) -> None:
        if sealed is _OWN_SNAPSHOT and self._stale_seal is not None:
            self.rollback_attempts += 1
            try:
                super().recover(sealed=self._stale_seal)
            except TEERefusal:
                self.rollback_refusals += 1
            else:
                # The seal service accepted a rollback: the defense this
                # adversary exists to probe is broken.  Surface it hard.
                raise AssertionError(
                    "amnesia adversary: stale sealed state was accepted"
                )
            # Rollback refused; fall through to an honest restart from
            # the genuine latest snapshot taken at crash time.
        super().recover(sealed=sealed)
