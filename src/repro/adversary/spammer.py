"""Min-fee mempool spammer: drown the ingest pipeline in junk.

A Byzantine replica does not need to touch consensus to hurt the
system: it can spray bottom-of-the-fee-market transactions at every
peer and try to fill their bounded mempools, evict honest work, and
latch the backpressure watermark.  The ingest pipeline's defenses are
exactly what this probes - per-sender token buckets rate-limit the
spammer's pid, the priority pool evicts lowest-fee-newest-first (the
spam itself), an incoming min-fee transaction bounces as ``POOL_FULL``
once the pool is spam-saturated, and fee-ordered draining keeps honest
paying traffic at the front of every proposal.

The spam is mostly fee-0 with a periodic fee-1 "tickler" so a saturated
pool also exercises the eviction path (a strictly-cheapest arrival is
bounced instead of admitted, so an all-zero flood would never evict).
"""

from __future__ import annotations

import itertools

from repro.core.mempool import Transaction
from repro.core.messages import ClientRequest
from repro.protocols.damysus import DamysusReplica
from repro.protocols.hotstuff import HotStuffReplica

#: Synthetic client id space for spam (far above real client ids).
SPAM_CLIENT_BASE = 1_000_000


class _MempoolSpammerMixin:
    """Flood peers with minimum-fee transactions on a steady timer."""

    #: Transactions sprayed per peer per tick.
    spam_burst = 25
    #: Virtual ms between ticks.
    spam_interval_ms = 20.0
    #: Every k-th spam transaction carries fee 1 instead of 0, churning
    #: the eviction path of an already-saturated pool.
    tickle_every = 4

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.spam_sent = 0
        self._spam_ids = itertools.count()

    def start(self) -> None:
        super().start()
        self._spam_tick()

    def _spam_tick(self) -> None:
        if self.crashed:
            return
        for _ in range(self.spam_burst):
            tx_id = next(self._spam_ids)
            tx = Transaction(
                client_id=SPAM_CLIENT_BASE + self.pid,
                tx_id=tx_id,
                payload_bytes=0,
                submitted_at=self.now,
                fee=1 if tx_id % self.tickle_every == self.tickle_every - 1 else 0,
            )
            request = ClientRequest(tx.client_id, tx)
            for pid in self.replica_pids:
                if pid != self.pid:
                    self.send(pid, request)
                    self.spam_sent += 1
        self.set_timer(self.spam_interval_ms, self._spam_tick)


class MempoolSpammerDamysusReplica(_MempoolSpammerMixin, DamysusReplica):
    """Damysus replica flooding peers with min-fee transactions."""


class MempoolSpammerHotStuffReplica(_MempoolSpammerMixin, HotStuffReplica):
    """HotStuff replica flooding peers with min-fee transactions."""
