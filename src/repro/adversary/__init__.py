"""Byzantine behaviours for safety and liveness testing.

Adversarial replicas subclass the honest protocol classes and deviate on
the *untrusted* side only: they may call their trusted components in any
order with any arguments, delay or withhold messages, and equivocate
where no TEE stops them - but they can never forge TEE certificates or
read TEE-private state, which is exactly the paper's hybrid fault model.

* :mod:`~repro.adversary.behaviors` - crash-style and silent-leader faults.
* :mod:`~repro.adversary.equivocation` - leaders proposing conflicting
  blocks (succeeds in sowing confusion in HotStuff, hard-refused by the
  Damysus checker).
* :mod:`~repro.adversary.stale_leader` - leaders extending stale blocks
  (masked by locking in HotStuff, impossible past the accumulator in
  Damysus).
* :mod:`~repro.adversary.flooding` - far-future message floods against
  the bounded buffers.
* :mod:`~repro.adversary.slow_drip` - leaders proposing just under the
  view timeout to bleed throughput without view-changes.
* :mod:`~repro.adversary.withholding` - a coalition of f replicas that
  silently withholds its phase votes.
* :mod:`~repro.adversary.targeted_partition` - a FaultPlan-colluding
  attacker isolating the next f leaders.
* :mod:`~repro.adversary.sync_server` - forged checkpoints and block
  suffixes served to catching-up peers.
* :mod:`~repro.adversary.amnesia` - crash-recovery presenting pre-seal
  TEE state, expecting :class:`~repro.errors.TEERefusal`.
* :mod:`~repro.adversary.spammer` - min-fee transaction floods against
  the bounded priority mempool.
* :mod:`~repro.adversary.registry` - every attack addressable by name
  (``repro campaign``, ``repro net-chaos --adversary``).
"""

from repro.adversary.amnesia import AmnesiaDamysusReplica
from repro.adversary.behaviors import SilentLeaderHotStuff, SilentLeaderDamysus
from repro.adversary.equivocation import (
    EquivocatingDamysusLeader,
    EquivocatingHotStuffLeader,
)
from repro.adversary.flooding import FloodingDamysusReplica
from repro.adversary.registry import (
    ADVERSARIES,
    AdversarySpec,
    adversary_names,
    get_adversary,
)
from repro.adversary.slow_drip import SlowDripDamysusLeader, SlowDripHotStuffLeader
from repro.adversary.spammer import (
    MempoolSpammerDamysusReplica,
    MempoolSpammerHotStuffReplica,
)
from repro.adversary.stale_leader import StaleDamysusLeader, StaleHotStuffLeader
from repro.adversary.sync_server import (
    ByzantineSyncServerDamysus,
    ByzantineSyncServerHotStuff,
)
from repro.adversary.targeted_partition import (
    TargetedPartitionDamysusReplica,
    TargetedPartitionHotStuffReplica,
    leader_isolation_plan,
    victim_pids,
)
from repro.adversary.withholding import (
    VoteWithholdingDamysusReplica,
    VoteWithholdingHotStuffReplica,
)

__all__ = [
    "SilentLeaderHotStuff",
    "SilentLeaderDamysus",
    "EquivocatingHotStuffLeader",
    "EquivocatingDamysusLeader",
    "StaleHotStuffLeader",
    "StaleDamysusLeader",
    "FloodingDamysusReplica",
    "SlowDripDamysusLeader",
    "SlowDripHotStuffLeader",
    "VoteWithholdingDamysusReplica",
    "VoteWithholdingHotStuffReplica",
    "TargetedPartitionDamysusReplica",
    "TargetedPartitionHotStuffReplica",
    "leader_isolation_plan",
    "victim_pids",
    "ByzantineSyncServerDamysus",
    "ByzantineSyncServerHotStuff",
    "AmnesiaDamysusReplica",
    "MempoolSpammerDamysusReplica",
    "MempoolSpammerHotStuffReplica",
    "ADVERSARIES",
    "AdversarySpec",
    "adversary_names",
    "get_adversary",
]
