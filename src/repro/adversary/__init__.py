"""Byzantine behaviours for safety and liveness testing.

Adversarial replicas subclass the honest protocol classes and deviate on
the *untrusted* side only: they may call their trusted components in any
order with any arguments, delay or withhold messages, and equivocate
where no TEE stops them - but they can never forge TEE certificates or
read TEE-private state, which is exactly the paper's hybrid fault model.

* :mod:`~repro.adversary.behaviors` - crash-style and silent-leader faults.
* :mod:`~repro.adversary.equivocation` - leaders proposing conflicting
  blocks (succeeds in sowing confusion in HotStuff, hard-refused by the
  Damysus checker).
* :mod:`~repro.adversary.stale_leader` - leaders extending stale blocks
  (masked by locking in HotStuff, impossible past the accumulator in
  Damysus).
"""

from repro.adversary.behaviors import SilentLeaderHotStuff, SilentLeaderDamysus
from repro.adversary.equivocation import (
    EquivocatingDamysusLeader,
    EquivocatingHotStuffLeader,
)
from repro.adversary.flooding import FloodingDamysusReplica
from repro.adversary.stale_leader import StaleDamysusLeader, StaleHotStuffLeader

__all__ = [
    "SilentLeaderHotStuff",
    "SilentLeaderDamysus",
    "EquivocatingHotStuffLeader",
    "EquivocatingDamysusLeader",
    "StaleHotStuffLeader",
    "StaleDamysusLeader",
    "FloodingDamysusReplica",
]
