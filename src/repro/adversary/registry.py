"""The adversary registry: every attack, addressable by name.

One :class:`AdversarySpec` per attack binds together everything the
harnesses need to run it on either runtime:

* the Byzantine replica class per supported protocol (adversaries are
  sans-I/O Machines, so the same class runs on the simulator via
  ``ConsensusSystem(replica_overrides=...)`` and on asyncio TCP via
  ``repro serve --adversary`` / ``run_local_cluster``);
* which pids to seat it at for a given cluster size (a coalition takes
  ``f`` seats, most attacks take one);
* an optional *colluding fault plan* - network/crash faults the attack
  coordinates with (leader isolation, the crash that triggers an
  amnesia restart, the outage that forces a victim into catch-up);
* a counter extractor, so harnesses can assert the attack actually
  fired (``attack_events > 0``) rather than silently testing nothing.

``repro campaign`` sweeps this registry; ``repro net-chaos
--adversary`` and ``repro serve --adversary`` look names up here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.adversary.amnesia import AmnesiaDamysusReplica
from repro.adversary.behaviors import SilentLeaderDamysus, SilentLeaderHotStuff
from repro.adversary.equivocation import (
    EquivocatingDamysusLeader,
    EquivocatingHotStuffLeader,
)
from repro.adversary.flooding import FloodingDamysusReplica
from repro.adversary.slow_drip import SlowDripDamysusLeader, SlowDripHotStuffLeader
from repro.adversary.spammer import (
    MempoolSpammerDamysusReplica,
    MempoolSpammerHotStuffReplica,
)
from repro.adversary.stale_leader import StaleDamysusLeader, StaleHotStuffLeader
from repro.adversary.sync_server import (
    ByzantineSyncServerDamysus,
    ByzantineSyncServerHotStuff,
)
from repro.adversary.targeted_partition import (
    TargetedPartitionDamysusReplica,
    TargetedPartitionHotStuffReplica,
    leader_isolation_plan,
    victim_pids,
)
from repro.adversary.withholding import (
    VoteWithholdingDamysusReplica,
    VoteWithholdingHotStuffReplica,
)
from repro.core.faults import FaultPlan
from repro.errors import ConfigError


def _single_seat(num_replicas: int, f: int) -> tuple[int, ...]:
    """One Byzantine seat at pid 1: the leader of view 1, so leader-side
    attacks fire in the very first rotation."""
    return (1,)


def _coalition_seats(num_replicas: int, f: int) -> tuple[int, ...]:
    """``f`` colluding seats (the fault bound the protocols tolerate)."""
    return tuple(range(1, 1 + f))


def _colluder_seat(num_replicas: int, f: int) -> tuple[int, ...]:
    """A seat that is *not* among the partition victims it colludes against."""
    victims = set(victim_pids(num_replicas, f))
    for pid in range(num_replicas):
        if pid not in victims:
            return (pid,)
    return (0,)


def _amnesia_plan(num_replicas: int, f: int) -> FaultPlan:
    """Crash the amnesia replica mid-run; recovery presents stale state."""
    return FaultPlan().crash(1, at_ms=800.0, recover_at_ms=1_600.0)


def _sync_victim_plan(num_replicas: int, f: int) -> FaultPlan:
    """Knock an honest replica out long enough to need state transfer.

    The victim (the last pid; the forger sits at pid 1) misses a window
    of views and comes back behind, so its catch-up client starts
    requesting history - some requests land on the Byzantine server.
    """
    return FaultPlan().crash(num_replicas - 1, at_ms=400.0, recover_at_ms=2_400.0)


def _counter(*names: str) -> Callable[[Any], int]:
    """Sum the named attack counters off the adversary instance."""

    def events(replica: Any) -> int:
        return sum(int(getattr(replica, name, 0)) for name in names)

    return events


@dataclass(frozen=True)
class AdversarySpec:
    """Everything needed to run one named attack on any harness."""

    name: str
    description: str
    #: Byzantine replica class per supported protocol name.
    classes: Mapping[str, type]
    #: Which pids to seat the adversary at for (num_replicas, f).
    seats: Callable[[int, int], tuple[int, ...]] = _single_seat
    #: Network/crash faults the attack coordinates with (or ``None``).
    colluding_plan: Callable[[int, int], FaultPlan] | None = None
    #: Extract the attack-event count from an adversary instance.
    events: Callable[[Any], int] = field(default=_counter())

    def supports(self, protocol: str) -> bool:
        return protocol in self.classes

    def replica_class(self, protocol: str) -> type:
        try:
            return self.classes[protocol]
        except KeyError:
            raise ConfigError(
                f"adversary {self.name!r} does not support protocol {protocol!r} "
                f"(supported: {', '.join(sorted(self.classes))})"
            ) from None


ADVERSARIES: dict[str, AdversarySpec] = {
    spec.name: spec
    for spec in (
        AdversarySpec(
            name="silent",
            description="leader never proposes; every one of its views times out",
            classes={
                "damysus": SilentLeaderDamysus,
                "hotstuff": SilentLeaderHotStuff,
            },
            events=_counter("withheld_proposals"),
        ),
        AdversarySpec(
            name="equivocate",
            description="leader sends conflicting proposals to two halves",
            classes={
                "damysus": EquivocatingDamysusLeader,
                "hotstuff": EquivocatingHotStuffLeader,
            },
            events=_counter("equivocations", "failed_equivocations"),
        ),
        AdversarySpec(
            name="stale",
            description="leader certifies/extends a stale prepared block",
            classes={
                "damysus": StaleDamysusLeader,
                "hotstuff": StaleHotStuffLeader,
            },
            events=_counter(
                "understated_views", "discarded_commitments", "stale_proposals"
            ),
        ),
        AdversarySpec(
            name="flood",
            description="sprays far-future junk to exhaust message buffers",
            classes={"damysus": FloodingDamysusReplica},
            events=_counter("flood_count"),
        ),
        AdversarySpec(
            name="slow-drip",
            description="leader proposes just under the view timeout to "
            "bleed throughput without triggering view-changes",
            classes={
                "damysus": SlowDripDamysusLeader,
                "hotstuff": SlowDripHotStuffLeader,
            },
            events=_counter("dripped_views"),
        ),
        AdversarySpec(
            name="withhold",
            description="coalition of f replicas withholds its phase votes",
            classes={
                "damysus": VoteWithholdingDamysusReplica,
                "hotstuff": VoteWithholdingHotStuffReplica,
            },
            seats=_coalition_seats,
            events=_counter("votes_withheld"),
        ),
        AdversarySpec(
            name="partition",
            description="colludes with a fault plan isolating the next f leaders",
            classes={
                "damysus": TargetedPartitionDamysusReplica,
                "hotstuff": TargetedPartitionHotStuffReplica,
            },
            seats=_colluder_seat,
            colluding_plan=leader_isolation_plan,
            events=_counter("suppressed_messages"),
        ),
        AdversarySpec(
            name="sync-forge",
            description="serves forged checkpoints/suffixes to catching-up peers",
            classes={
                "damysus": ByzantineSyncServerDamysus,
                "hotstuff": ByzantineSyncServerHotStuff,
            },
            colluding_plan=_sync_victim_plan,
            events=_counter("forged_checkpoints_sent", "forged_suffixes_sent"),
        ),
        AdversarySpec(
            name="amnesia",
            description="restarts presenting pre-seal TEE state (rollback)",
            classes={"damysus": AmnesiaDamysusReplica},
            colluding_plan=_amnesia_plan,
            events=_counter("rollback_attempts"),
        ),
        AdversarySpec(
            name="spam",
            description="floods peers with min-fee transactions to drive "
            "mempool eviction and backpressure",
            classes={
                "damysus": MempoolSpammerDamysusReplica,
                "hotstuff": MempoolSpammerHotStuffReplica,
            },
            events=_counter("spam_sent"),
        ),
    )
}


def adversary_names() -> list[str]:
    """All registered attack names, sorted for stable CLI/report output."""
    return sorted(ADVERSARIES)


def get_adversary(name: str) -> AdversarySpec:
    """Look up an attack by name; :class:`ConfigError` on unknown names."""
    try:
        return ADVERSARIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown adversary {name!r} (known: {', '.join(adversary_names())})"
        ) from None
