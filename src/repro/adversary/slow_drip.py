"""Slow-drip leaders: propose just under the view timeout.

A Byzantine leader that never proposes loses its view to a timeout and
the backoff punishes it.  A *slow-drip* leader is subtler: it holds
every proposal back until just before the backups' pacemakers fire, so
each of its views still commits - no view-change, no backoff, no
fault signature in the message flow - but throughput bleeds to a
fraction of the honest rate.  No trusted component can stop this (the
proposal is perfectly well-formed); the defense is the pacemaker's
``max_timeout_ms`` cap plus the campaign's DegradationOracle, which
makes the bleed measurable instead of silent.
"""

from __future__ import annotations

from repro.protocols.damysus import DamysusReplica
from repro.protocols.hotstuff import HotStuffReplica


class _SlowDripMixin:
    """Defer ``_propose`` until a fraction of the current view timeout.

    The delay is computed from this replica's *own* pacemaker state -
    base timeout and backoff are protocol configuration shared by every
    replica, so the attacker can sit just under the honest deadline
    without any out-of-band knowledge.
    """

    #: Fraction of the current view timeout to sit on each proposal.
    #: 0.6 leaves the three phase round-trips enough slack to finish
    #: before the backups' timers fire, so no view-change is triggered.
    drip_fraction = 0.6

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.dripped_views = 0
        self._drip_pending: set[int] = set()

    def _propose(self, view: int, new_views) -> None:
        if view in self._drip_pending:
            return
        self._drip_pending.add(view)
        self.dripped_views += 1
        delay_ms = self.pacemaker.current_timeout_ms * self.drip_fraction
        stash = list(new_views)
        self.set_timer(delay_ms, lambda: self._drip_fire(view, stash))

    def _drip_fire(self, view: int, new_views) -> None:
        self._drip_pending.discard(view)
        if self.crashed or self.view > view:
            return  # the view moved on (or we died) while sitting on it
        super()._propose(view, new_views)

    def reset_protocol_state(self) -> None:
        super().reset_protocol_state()
        self._drip_pending.clear()


class SlowDripDamysusLeader(_SlowDripMixin, DamysusReplica):
    """Damysus leader bleeding throughput just under the timeout."""


class SlowDripHotStuffLeader(_SlowDripMixin, HotStuffReplica):
    """HotStuff leader bleeding throughput just under the timeout."""
