"""Equivocating leaders: conflicting proposals within one view.

In HotStuff the network tolerates this (conflicting blocks can each
gather at most one quorum because quorums intersect), so the attack can
waste a view but never break safety.  In Damysus the checker makes the
attack *unexpressible*: ``createUniqueSign`` stamps each certificate with
a monotonic step, so a second ``TEEprepare`` in the same view yields a
commitment for the wrong phase, which no backup accepts - and the leader
has burned its own steps for the view.
"""

from __future__ import annotations

from repro.errors import TEERefusal
from repro.core.block import create_leaf
from repro.core.commitment import c_match
from repro.core.messages import BlockProposal, CommitmentMsg, ProposalMsg
from repro.core.phases import Phase
from repro.protocols.damysus import KIND_PREP_VOTE, DamysusReplica
from repro.protocols.hotstuff import HotStuffReplica


class EquivocatingHotStuffLeader(HotStuffReplica):
    """Sends conflicting proposals to two halves of the replica set."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.equivocations = 0

    def _propose(self, view: int, new_views) -> None:
        high_qc = max((m.justify for m in new_views), key=lambda qc: qc.view)
        if not high_qc.verify(self.scheme, self.quorum):
            return
        self._proposed.add(view)
        self.equivocations += 1
        block_a = create_leaf(
            high_qc.block_hash, view, self.mempool.take_block(self.now),
            created_at=self.now,
        )
        block_b = create_leaf(
            high_qc.block_hash, view, self.mempool.take_block(self.now),
            created_at=self.now,
        )
        self.store.add(block_a)
        self.store.add(block_b)
        half = len(self.replica_pids) // 2
        for pid in self.replica_pids[:half]:
            self.send(pid, ProposalMsg(view, block_a, high_qc))
        for pid in self.replica_pids[half:]:
            self.send(pid, ProposalMsg(view, block_b, high_qc))


class EquivocatingDamysusLeader(DamysusReplica):
    """Attempts two TEE-prepared proposals in one view.

    The first ``TEEprepare`` succeeds; the second consumes the checker's
    pre-commit step and returns a commitment stamped ``pcom_p``, so the
    conflicting proposal carries a signature no backup can validate as a
    prepare commitment.  ``failed_equivocations`` counts the attempts that
    produced an unusable certificate.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.failed_equivocations = 0

    def _propose(self, view: int, phis) -> None:
        if not c_match(phis, self.quorum, None, view, Phase.NEW_VIEW):
            return
        try:
            acc = self.acc_service.accumulate(phis)
        except TEERefusal:
            return
        self._proposed.add(view)
        block_a = create_leaf(
            acc.prep_hash, view, self.mempool.take_block(self.now),
            created_at=self.now,
        )
        block_b = create_leaf(
            acc.prep_hash, view, self.mempool.take_block(self.now),
            created_at=self.now,
        )
        self.store.add(block_a)
        self.store.add(block_b)
        try:
            phi_a = self.checker.tee_prepare(block_a.hash, acc)
        except TEERefusal:
            return
        # Second prepare in the same view: the checker has moved past the
        # prepare step, so this certificate is stamped with the wrong phase.
        try:
            phi_b = self.checker.tee_prepare(block_b.hash, acc)
        except TEERefusal:
            phi_b = None
        if phi_b is None or phi_b.phase != Phase.PREPARE:
            self.failed_equivocations += 1
        half = len(self.replica_pids) // 2
        for pid in self.replica_pids[:half]:
            self.send(pid, BlockProposal(view, block_a, acc, phi_a.sigs[0]))
        if phi_b is not None:
            for pid in self.replica_pids[half:]:
                self.send(pid, BlockProposal(view, block_b, acc, phi_b.sigs[0]))
        self.send(self.pid, CommitmentMsg(phi_a, KIND_PREP_VOTE))
