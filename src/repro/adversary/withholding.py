"""Vote-withholding coalition: participate, but never help certify.

A withholder behaves correctly in every observable way except one: the
votes it owes the current leader (prepare and pre-commit in Damysus,
all phase votes in HotStuff) are silently dropped on the way out.  It
still sends new-view messages - so leaders count it when sizing their
quorums - and it still proposes honestly when it leads, which makes the
attack invisible to any per-message validity check.

With up to ``f`` colluding withholders the remaining honest replicas
still form a quorum (f+1 of 2f+1 in Damysus, 2f+1 of 3f+1 in HotStuff),
so the attack costs latency, not liveness; one withholder more and the
system stalls, which is exactly the paper's fault bound.
"""

from __future__ import annotations

from repro.core.messages import CommitmentMsg, VoteMsg
from repro.protocols.damysus import KIND_PCOM_VOTE, KIND_PREP_VOTE, DamysusReplica
from repro.protocols.hotstuff import HotStuffReplica


class VoteWithholdingDamysusReplica(DamysusReplica):
    """Withholds its prepare and pre-commit votes from other leaders."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.votes_withheld = 0

    def send_charged(self, dest: int, payload) -> None:
        if (
            dest != self.pid
            and isinstance(payload, CommitmentMsg)
            and payload.kind in (KIND_PREP_VOTE, KIND_PCOM_VOTE)
        ):
            self.votes_withheld += 1
            return
        super().send_charged(dest, payload)


class VoteWithholdingHotStuffReplica(HotStuffReplica):
    """Withholds its phase votes from other leaders."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.votes_withheld = 0

    def send_charged(self, dest: int, payload) -> None:
        if dest != self.pid and isinstance(payload, VoteMsg):
            self.votes_withheld += 1
            return
        super().send_charged(dest, payload)
