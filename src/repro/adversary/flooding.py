"""Resource-exhaustion adversary: flooding future-view traffic.

A Byzantine node cannot forge certificates, but it can try to exhaust
honest replicas' memory by spraying messages for far-future views, which
honest nodes buffer until the view arrives.  The replica base bounds its
buffer (``MAX_BUFFERED_MESSAGES``), so the flood costs the attacker
bandwidth and buys nothing - which the flooding tests verify.
"""

from __future__ import annotations

from repro.core.commitment import Commitment
from repro.core.messages import CommitmentMsg
from repro.core.phases import Phase
from repro.protocols.damysus import KIND_NEW_VIEW, DamysusReplica


class FloodingDamysusReplica(DamysusReplica):
    """Participates normally but floods far-future junk at startup."""

    #: How many junk messages to spray per peer.
    flood_count = 2_000

    def start(self) -> None:
        junk_sig = self.scheme.sign(self.pid, b"junk")  # not a TEE signature
        for offset in range(self.flood_count):
            phi = Commitment(
                h_prep=None,
                v_prep=1_000 + offset,  # far future view
                h_just=b"\x00" * 32,
                v_just=0,
                phase=Phase.NEW_VIEW,
                sigs=(junk_sig,),
            )
            for pid in self.replica_pids:
                if pid != self.pid:
                    self.send(pid, CommitmentMsg(phi, KIND_NEW_VIEW))
        super().start()
