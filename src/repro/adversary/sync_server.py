"""Byzantine sync server: forged checkpoints and suffixes for rejoiners.

The catch-up protocol is a juicy target: a replica that was down asks a
peer for history it cannot check against its own chain, so a Byzantine
server gets to answer with whatever it likes.  This adversary answers
every :class:`~repro.protocols.sync.SyncRequest` with

* a *forged checkpoint* - either its own latest certified checkpoint
  with the state root and height tampered (so the Checker signature no
  longer covers the payload), or a fully fabricated one signed with the
  host's untrusted key when it holds no checkpoint yet; and
* a *forged block suffix* claiming to extend the requester's tip,
  carrying a fabricated block and a junk tip commitment.

Both layers of the receiver's verification refuse it: the checkpoint
fails ``verify_checkpoint`` (Checker signature + embedded decide QC),
and the suffix fails parent-hash chaining / decide-QC verification, so
the rejoiner drops the reply, rotates to another peer, and catches up
from an honest one.  The attack costs the victim one retry timeout per
hit - never safety.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.block import create_leaf
from repro.core.commitment import Commitment
from repro.core.phases import Phase
from repro.crypto.hashing import hash_fields
from repro.protocols.damysus import DamysusReplica
from repro.protocols.hotstuff import HotStuffReplica
from repro.protocols.sync import SyncBlocks, SyncCheckpoint, SyncRequest
from repro.tee.checkpoint import Checkpoint

#: A plausible-looking but wrong state root / parent hash.
_FORGED_ROOT = hash_fields(("forged-state-root",))


class _ByzantineSyncServerMixin:
    """Serve forged state-transfer replies instead of honest ones."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.sync_requests_seen = 0
        self.forged_checkpoints_sent = 0
        self.forged_suffixes_sent = 0

    def forge_checkpoint(self) -> Checkpoint:
        """A checkpoint whose certification does not cover its claims."""
        base = self.latest_checkpoint
        if base is not None:
            # Authentic Checker signature, tampered payload: the height
            # is inflated and the state root replaced, so verification
            # of the signature over the *claimed* payload must fail.
            return replace(
                base, height=base.height + 7, state_root=_FORGED_ROOT
            )
        # No checkpoint of our own yet: fabricate one end-to-end.  The
        # host key is not a TEE key, so the Checker-signature check
        # fails before the junk QC is even looked at.
        junk_sig = self.scheme.sign(self.pid, b"forged-checkpoint")
        junk_qc = Commitment(
            h_prep=_FORGED_ROOT,
            v_prep=9,
            h_just=_FORGED_ROOT,
            v_just=8,
            phase=Phase.PRECOMMIT,
            sigs=(junk_sig,),
        )
        return Checkpoint(
            replica=self.pid,
            counter=1,
            height=7,
            view=9,
            block_hash=_FORGED_ROOT,
            state_root=_FORGED_ROOT,
            qc=junk_qc,
            signature=junk_sig,
        )

    def forge_suffix(self, have_height: int) -> SyncBlocks:
        """A suffix of fabricated blocks 'extending' the requester's tip."""
        junk_block = create_leaf(_FORGED_ROOT, 10_000, ())
        junk_sig = self.scheme.sign(self.pid, b"forged-suffix")
        junk_qc = Commitment(
            h_prep=junk_block.hash,
            v_prep=10_000,
            h_just=_FORGED_ROOT,
            v_just=9_999,
            phase=Phase.PRECOMMIT,
            sigs=(junk_sig,),
        )
        return SyncBlocks(have_height, (junk_block,), done=True, tip_qc=junk_qc)

    def _handle_sync_request(self, sender: int, msg: SyncRequest) -> None:
        if sender == self.pid:
            return
        self.sync_requests_seen += 1
        self.forged_checkpoints_sent += 1
        self.send(sender, SyncCheckpoint(self.forge_checkpoint()))
        self.forged_suffixes_sent += 1
        self.send(sender, self.forge_suffix(msg.have_height))


class ByzantineSyncServerDamysus(_ByzantineSyncServerMixin, DamysusReplica):
    """Damysus replica serving forged state transfers."""


class ByzantineSyncServerHotStuff(_ByzantineSyncServerMixin, HotStuffReplica):
    """HotStuff replica serving forged state transfers."""
