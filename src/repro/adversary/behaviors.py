"""Omission-style Byzantine behaviours.

A silent leader participates normally as a backup but never proposes when
it is its turn to lead, forcing every one of its views to time out.  This
exercises the pacemaker / view-change path without any equivocation.
"""

from __future__ import annotations

from repro.protocols.damysus import DamysusReplica
from repro.protocols.hotstuff import HotStuffReplica


class SilentLeaderHotStuff(HotStuffReplica):
    """A HotStuff replica that stays mute whenever it is the leader."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.withheld_proposals = 0

    def _propose(self, view, new_views) -> None:
        self.withheld_proposals += 1
        return  # never propose; the view will time out


class SilentLeaderDamysus(DamysusReplica):
    """A Damysus replica that stays mute whenever it is the leader."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.withheld_proposals = 0

    def _propose(self, view, phis) -> None:
        self.withheld_proposals += 1
        return  # never propose; the view will time out
