"""Driving state machines from the replicated log.

State machine replication is a pure function of the executed block
sequence: commands are injected as transactions, consensus orders them,
and each replica's machine replays its ledger.  Because machines are
deterministic, replicas that executed the same blocks reach bit-identical
state digests - the application-level restatement of consensus safety,
which :meth:`ReplicatedApp.verify_convergence` checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.app.kvstore import KVCommand, KVResult, KVStateMachine
from repro.core.mempool import Transaction
from repro.errors import ProtocolError
from repro.protocols.replica import BaseReplica
from repro.runtime.sim import ConsensusSystem


class StateMachine(Protocol):
    """Anything that applies commands deterministically."""

    def apply(self, command: KVCommand) -> KVResult: ...

    def digest(self) -> bytes: ...


@dataclass
class ReplicatedApp:
    """A command log injected into a consensus system."""

    system: ConsensusSystem
    commands: dict[int, KVCommand] = field(default_factory=dict)
    machine_factory: Callable[[], StateMachine] = KVStateMachine

    def submit(self, command: KVCommand, replica: int = 0) -> None:
        """Queue a command at one replica's mempool (it proposes it when
        that replica leads a view)."""
        tx_id = command.encode()
        self.commands[tx_id] = command
        self.system.replicas[replica].mempool.add(
            Transaction(
                client_id=-2,  # app-injected marker
                tx_id=tx_id,
                payload_bytes=command.payload_size(),
                submitted_at=self.system.sim.now,
            )
        )

    def submit_everywhere(self, command: KVCommand) -> None:
        """Queue a command at every replica (clients broadcast requests)."""
        tx_id = command.encode()
        self.commands[tx_id] = command
        for replica in self.system.replicas:
            replica.mempool.add(
                Transaction(
                    client_id=-2,
                    tx_id=tx_id,
                    payload_bytes=command.payload_size(),
                    submitted_at=self.system.sim.now,
                )
            )

    # -- replay --------------------------------------------------------------------

    def replay(self, replica: BaseReplica) -> tuple[StateMachine, list[KVResult]]:
        """Apply the replica's executed command log to a fresh machine."""
        machine = self.machine_factory()
        results: list[KVResult] = []
        seen: set[int] = set()
        for block in replica.ledger.executed:
            for tx in block.transactions:
                command = self.commands.get(tx.tx_id)
                if command is None:
                    continue  # synthetic filler transaction
                if tx.tx_id in seen:
                    continue  # deduplicate commands proposed by 2 replicas
                seen.add(tx.tx_id)
                results.append(machine.apply(command))
        return machine, results

    def verify_convergence(self) -> bytes:
        """All replicas with equally long logs must reach the same digest.

        Returns the digest of the longest log's machine.  Raises
        :class:`ProtocolError` on divergence (which consensus safety
        makes impossible).

        A replica that installed a certified checkpoint cannot replay
        the commands below its horizon; its state is instead vouched for
        by the certified state root, which must equal the fold a
        full-log replica computes at the same height.
        """
        digests: dict[int, list[bytes]] = {}
        best: tuple[int, bytes] | None = None
        full_log = [r for r in self.system.replicas if r.ledger.base_height == 0]
        for replica in full_log:
            machine, results = self.replay(replica)
            applied = len(results)
            digests.setdefault(applied, []).append(machine.digest())
            if best is None or applied > best[0]:
                best = (applied, machine.digest())
        for applied, values in digests.items():
            if len(set(values)) != 1:
                raise ProtocolError(
                    f"state divergence at {applied} applied commands"
                )
        reference = full_log or [
            max(self.system.replicas, key=lambda r: r.ledger.height())
        ]
        for replica in self.system.replicas:
            if replica.ledger.base_height == 0:
                continue
            height = replica.ledger.height()
            expected = next(
                (
                    root
                    for other in reference
                    if other is not replica
                    and (root := other.ledger.state_root_at(height)) is not None
                ),
                None,
            )
            if expected is not None and expected != replica.ledger.state_root:
                raise ProtocolError(
                    f"checkpointed replica {replica.pid} state root diverges "
                    f"at height {height}"
                )
        if best is None:
            # Every replica compacted its log below the checkpoint
            # horizon: the certified roots (cross-checked above) are the
            # only digest left to return.
            return reference[0].ledger.state_root
        return best[1]


def attach_state_machines(system: ConsensusSystem) -> ReplicatedApp:
    """Create a :class:`ReplicatedApp` bound to ``system``."""
    return ReplicatedApp(system=system)
