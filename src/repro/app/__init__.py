"""Application layer: state machine replication over the consensus core.

The paper treats transaction content as opaque ("mostly application
specific", Section 5).  This package supplies the application a
downstream user actually wants: deterministic state machines driven by
the executed block sequence, with a replicated key-value store as the
reference implementation and a divergence checker that extends the
safety oracle to application state.
"""

from repro.app.kvstore import KVCommand, KVResult, KVStateMachine
from repro.app.replicated import ReplicatedApp, StateMachine, attach_state_machines

__all__ = [
    "StateMachine",
    "KVCommand",
    "KVResult",
    "KVStateMachine",
    "ReplicatedApp",
    "attach_state_machines",
]
