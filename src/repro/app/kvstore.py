"""A deterministic key-value state machine.

Commands are encoded into transaction identities deterministically so the
simulator's abstract transactions can carry real operations: every
replica that executes the same block sequence applies the same commands
in the same order and reaches an identical store digest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import Hash, hash_fields
from repro.errors import ProtocolError

#: Supported operations.
OP_PUT = "put"
OP_GET = "get"
OP_DELETE = "del"
OP_INCREMENT = "incr"

_OPS = (OP_PUT, OP_GET, OP_DELETE, OP_INCREMENT)


@dataclass(frozen=True)
class KVCommand:
    """One operation against the replicated store.

    ``seq`` disambiguates repeated identical operations (a client
    request number): two increments of the same key are distinct commands
    and must both execute.
    """

    op: str
    key: str
    value: str | None = None
    seq: int = 0

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ProtocolError(f"unknown op {self.op!r}")
        if self.op == OP_PUT and self.value is None:
            raise ProtocolError("put requires a value")

    def encode(self) -> int:
        """Stable 63-bit id used as the carrying transaction's tx_id."""
        digest = hash_fields(("kv", self.op, self.key, self.value, self.seq))
        return int.from_bytes(digest[:8], "big") >> 1

    def payload_size(self) -> int:
        size = len(self.op) + len(self.key)
        if self.value is not None:
            size += len(self.value)
        return size


@dataclass(frozen=True)
class KVResult:
    """Outcome of applying one command."""

    command: KVCommand
    ok: bool
    value: str | None = None


class KVStateMachine:
    """The deterministic store each replica drives from executed blocks."""

    def __init__(self) -> None:
        self._data: dict[str, str] = {}
        self.applied = 0

    def apply(self, command: KVCommand) -> KVResult:
        """Apply one command; fully deterministic."""
        self.applied += 1
        if command.op == OP_PUT:
            self._data[command.key] = command.value or ""
            return KVResult(command, ok=True, value=command.value)
        if command.op == OP_GET:
            value = self._data.get(command.key)
            return KVResult(command, ok=value is not None, value=value)
        if command.op == OP_DELETE:
            existed = command.key in self._data
            self._data.pop(command.key, None)
            return KVResult(command, ok=existed)
        if command.op == OP_INCREMENT:
            current = int(self._data.get(command.key, "0"))
            self._data[command.key] = str(current + 1)
            return KVResult(command, ok=True, value=self._data[command.key])
        raise ProtocolError(f"unknown op {command.op!r}")  # pragma: no cover

    def get(self, key: str) -> str | None:
        return self._data.get(key)

    def __len__(self) -> int:
        return len(self._data)

    def digest(self) -> Hash:
        """Order-independent digest of the full store contents."""
        items = tuple(sorted(self._data.items()))
        return hash_fields(("kv-state", items, self.applied))
