"""Hot-path memoization switchboard.

Several pure-function hot paths (signature verification, vote payloads,
block wire sizes, codec encodings) memoize their results keyed by message
*content*.  Because every cached value is a pure function of immutable
inputs, the caches are invisible to simulation results: a run produces
bit-identical output with caches on or off.  What they change is wall
time, which is exactly what ``repro perf`` measures - it flips the
switch here to quantify the improvement.

The module is deliberately dependency-free (it sits below ``repro.core``
and ``repro.crypto`` in the import graph) and holds no cache storage
itself: cache owners register a clearer so ``clear_caches()`` can reset
global memo tables between measurements or between grid cells.
"""

from __future__ import annotations

from typing import Callable

_caches_enabled: bool = True
_clearers: list[Callable[[], None]] = []
_verify_jobs: int = 1


def caches_enabled() -> bool:
    """Whether content-keyed memoization is active (default: on)."""
    return _caches_enabled


def set_caches_enabled(enabled: bool) -> None:
    """Globally enable or disable hot-path memoization.

    Disabling also clears every registered cache so stale entries cannot
    be served if the switch is flipped back on mid-measurement.
    """
    global _caches_enabled
    _caches_enabled = enabled
    clear_caches()


def register_cache_clearer(clearer: Callable[[], None]) -> None:
    """Register a callable that empties one memo table."""
    _clearers.append(clearer)


def clear_caches() -> None:
    """Empty every registered memo table."""
    for clearer in _clearers:
        clearer()


def verify_jobs() -> int:
    """Process count for sharded signature verification (default: 1).

    ``1`` keeps every verification inline on the calling thread; ``0``
    means "one worker per available core"; ``n > 1`` pins the worker
    count.  The asyncio runtime consults this when no explicit
    ``verify_jobs`` argument is given, so ``repro perf`` and the CLI can
    flip multi-core verification on without threading a parameter
    through every call site.  Like the memo switch, the setting cannot
    change results - sharded verification is bit-identical to inline.
    """
    return _verify_jobs


def set_verify_jobs(jobs: int) -> None:
    """Set the default verification worker count (see :func:`verify_jobs`)."""
    if jobs < 0:
        raise ValueError(f"verify jobs must be >= 0, got {jobs}")
    global _verify_jobs
    _verify_jobs = jobs
