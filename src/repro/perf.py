"""Hot-path memoization switchboard.

Several pure-function hot paths (signature verification, vote payloads,
block wire sizes, codec encodings) memoize their results keyed by message
*content*.  Because every cached value is a pure function of immutable
inputs, the caches are invisible to simulation results: a run produces
bit-identical output with caches on or off.  What they change is wall
time, which is exactly what ``repro perf`` measures - it flips the
switch here to quantify the improvement.

The module is deliberately dependency-free (it sits below ``repro.core``
and ``repro.crypto`` in the import graph) and holds no cache storage
itself: cache owners register a clearer so ``clear_caches()`` can reset
global memo tables between measurements or between grid cells.
"""

from __future__ import annotations

from typing import Callable

_caches_enabled: bool = True
_clearers: list[Callable[[], None]] = []


def caches_enabled() -> bool:
    """Whether content-keyed memoization is active (default: on)."""
    return _caches_enabled


def set_caches_enabled(enabled: bool) -> None:
    """Globally enable or disable hot-path memoization.

    Disabling also clears every registered cache so stale entries cannot
    be served if the switch is flipped back on mid-measurement.
    """
    global _caches_enabled
    _caches_enabled = enabled
    clear_caches()


def register_cache_clearer(clearer: Callable[[], None]) -> None:
    """Register a callable that empties one memo table."""
    _clearers.append(clearer)


def clear_caches() -> None:
    """Empty every registered memo table."""
    for clearer in _clearers:
        clearer()
