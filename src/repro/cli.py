"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run`` - simulate one protocol deployment and print its metrics;
* ``compare`` - run several protocols on the same deployment side by side;
* ``experiment`` - regenerate one of the paper's tables/figures;
* ``bench`` - run an experiment grid, optionally sharded across processes;
* ``profile`` - cProfile one scenario cell and print the hot functions;
* ``perf`` - write or check the perf baseline (``BENCH_baseline.json``);
* ``chaos`` - fault-injection run: lossy links, a partition, crash/recovery;
* ``campaign`` - seeded attack-campaign sweep: {protocol x adversary x
  fault plan x topology}, each cell scored by safety/liveness/degradation
  oracles into a deterministic JSON verdict table;
* ``counterexample`` - print the Section 4 trusted-counter demonstration;
* ``serve`` - run one replica on real asyncio TCP sockets (fixed ports);
* ``net-bench`` - run a localhost TCP cluster and report committed tx/s;
* ``net-chaos`` - multi-process chaos: SIGKILL + restart-from-sealed-state
  and a live partition/heal, asserting commits resume within a bound;
* ``lint`` - run the AST invariant linter (TEE boundaries, determinism);
* ``analyze`` - whole-program dataflow analysis (TEE taint tracking,
  transitive effect purity, asyncio await-race detection);
* ``protocols`` - list the implemented protocols and their properties.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.chaos import run_standard_chaos
from repro.analysis.lint import (
    BASELINE_DEFAULT,
    all_rule_ids,
    format_findings_json,
    format_findings_text,
    load_baseline,
    run_lint,
    write_baseline,
)
from repro.analysis.counterexample import run_checker_scenario, run_counter_scenario
from repro.analysis.dataflow import (
    all_analyze_rule_ids,
    run_analyze,
)
from repro.analysis.dataflow import BASELINE_DEFAULT as ANALYZE_BASELINE_DEFAULT
from repro.bench.experiments import fig6, fig7, fig8, fig9, table1_experiment
from repro.bench.reporting import format_table
from repro.config import SystemConfig
from repro.protocols.registry import PROTOCOL_ORDER, SPECS, get_spec
from repro.runtime.sim import ConsensusSystem
from repro.sim.regions import EU_REGIONS, WORLD_REGIONS

_REGIONS = {"eu": EU_REGIONS, "world": WORLD_REGIONS}

_EXPERIMENTS = {
    "table1": lambda: table1_experiment(f=2),
    "fig6a": lambda: fig6(payload_bytes=256),
    "fig6b": lambda: fig6(payload_bytes=0),
    "fig7a": lambda: fig7(payload_bytes=256),
    "fig7b": lambda: fig7(payload_bytes=0),
    "fig8": lambda: fig8(),
    "fig9": lambda: fig9(),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DAMYSUS (EuroSys 2022) reproduction - simulate hybrid "
        "streamlined BFT protocols.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="simulate one protocol deployment")
    run_p.add_argument("--protocol", default="damysus", choices=sorted(SPECS))
    run_p.add_argument("--f", type=int, default=1, help="fault threshold")
    run_p.add_argument("--views", type=int, default=10, help="blocks to commit")
    run_p.add_argument("--payload", type=int, default=256, help="tx payload bytes")
    run_p.add_argument("--block-size", type=int, default=400, help="txs per block")
    run_p.add_argument("--regions", default="eu", choices=sorted(_REGIONS))
    run_p.add_argument("--seed", type=int, default=1)
    run_p.add_argument("--crash", type=int, nargs="*", default=[], metavar="PID")
    run_p.add_argument("--real-crypto", action="store_true",
                       help="use the Schnorr scheme instead of fast HMAC")

    cmp_p = sub.add_parser("compare", help="run several protocols side by side")
    cmp_p.add_argument("--protocols", nargs="*", default=PROTOCOL_ORDER,
                       choices=sorted(SPECS), metavar="NAME")
    cmp_p.add_argument("--f", type=int, default=1)
    cmp_p.add_argument("--views", type=int, default=8)
    cmp_p.add_argument("--payload", type=int, default=256)
    cmp_p.add_argument("--regions", default="eu", choices=sorted(_REGIONS))
    cmp_p.add_argument("--seed", type=int, default=1)

    exp_p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    exp_p.add_argument("name", choices=sorted(_EXPERIMENTS))

    bench_p = sub.add_parser(
        "bench", help="run an experiment grid, optionally sharded across processes"
    )
    bench_p.add_argument(
        "name", choices=["fig6a", "fig6b", "fig7a", "fig7b", "fig8"],
        help="which grid to run",
    )
    bench_p.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the grid (0 = one per core, 1 = in-process)",
    )
    bench_p.add_argument("--thresholds", type=int, nargs="*", default=None,
                         metavar="F", help="fault thresholds (fig6/fig7 only)")
    bench_p.add_argument("--views", type=int, default=6, help="views per run")
    bench_p.add_argument("--reps", type=int, default=2, help="repetitions per cell")

    prof_p = sub.add_parser(
        "profile", help="cProfile one scenario cell and print the hot functions"
    )
    prof_p.add_argument("--protocol", default="damysus", choices=sorted(SPECS))
    prof_p.add_argument("--f", type=int, default=10, help="fault threshold")
    prof_p.add_argument("--views", type=int, default=8, help="blocks to commit")
    prof_p.add_argument("--payload", type=int, default=256, help="tx payload bytes")
    prof_p.add_argument("--regions", default="eu", choices=sorted(_REGIONS))
    prof_p.add_argument("--seed", type=int, default=1)
    prof_p.add_argument("--top", type=int, default=20,
                        help="functions to print, by cumulative time")
    prof_p.add_argument("--no-caches", action="store_true",
                        help="profile with the result-invisible caches disabled")

    perf_p = sub.add_parser(
        "perf", help="write or check the perf baseline (BENCH_baseline.json)"
    )
    perf_group = perf_p.add_mutually_exclusive_group(required=True)
    perf_group.add_argument("--check", action="store_true",
                            help="re-measure and compare against the baseline")
    perf_group.add_argument("--write-baseline", action="store_true",
                            help="measure and (over)write the baseline file")
    perf_p.add_argument("--baseline", default=None,
                        help="baseline path (default: BENCH_baseline.json)")
    perf_p.add_argument("--threshold", type=float, default=None,
                        help="slowdown factor treated as a regression (default 3.0)")
    perf_p.add_argument("--jobs", type=int, default=0,
                        help="workers for the grid measurement (0 = one per core)")
    perf_p.add_argument("--quick", action="store_true",
                        help="tiny workload for CI smoke (recorded in the baseline)")

    chaos_p = sub.add_parser(
        "chaos",
        help="fault-injection run: lossy links, a partition, crash/recovery",
    )
    chaos_p.add_argument("--protocol", default="damysus", choices=sorted(SPECS))
    chaos_p.add_argument("--f", type=int, default=1, help="fault threshold")
    chaos_p.add_argument("--seed", type=int, default=1)
    chaos_p.add_argument("--loss", type=float, default=0.2,
                         help="per-message drop probability while faults last")
    chaos_p.add_argument("--no-partition", action="store_true",
                         help="skip the mid-run network partition")
    chaos_p.add_argument("--no-crash", action="store_true",
                         help="skip the f crash/recover cycles")
    chaos_p.add_argument("--settle-views", type=int, default=3,
                         help="fresh committed views required after healing")
    chaos_p.add_argument("--checkpoint-interval", type=int, default=0,
                         help="certify a checkpoint every N committed blocks "
                         "(0 = off); lagging replicas rejoin by state transfer")
    chaos_p.add_argument("--max-timeout-ms", type=float, default=0.0,
                         help="pacemaker backoff ceiling (0 = 4x the base)")
    chaos_p.add_argument("--timeout-jitter", type=float, default=0.1,
                         help="+/- fraction of seeded pacemaker jitter")

    camp_p = sub.add_parser(
        "campaign",
        help="attack-campaign sweep: {protocol x adversary x plan x "
        "topology} scored by safety/liveness/degradation oracles",
    )
    camp_p.add_argument("--protocols", nargs="*", default=["damysus", "hotstuff"],
                        choices=sorted(SPECS), metavar="NAME")
    camp_p.add_argument("--adversaries", nargs="*", default=[], metavar="NAME",
                        help="attacks to run (default: the whole registry); "
                        "see `repro campaign --list`")
    camp_p.add_argument("--plans", nargs="*", default=["clean", "lossy"],
                        metavar="NAME", help="named base fault plans")
    camp_p.add_argument("--topologies", nargs="*", default=["eu", "world"],
                        choices=sorted(_REGIONS), metavar="NAME")
    camp_p.add_argument("--seed", type=int, default=1,
                        help="keys every cell; same seed = bit-identical report")
    camp_p.add_argument("--settle-views", type=int, default=4,
                        help="fresh committed views required after healing")
    camp_p.add_argument("--view-budget", type=int, default=30,
                        help="max view gap between heal and the first fresh "
                        "commit before the LivenessOracle flags a stall")
    camp_p.add_argument("--timeout-ms", type=float, default=250.0,
                        help="pacemaker base view timeout")
    camp_p.add_argument("--max-timeout-ms", type=float, default=0.0,
                        help="pacemaker backoff ceiling (0 = 4x the base)")
    camp_p.add_argument("--timeout-jitter", type=float, default=0.1,
                        help="+/- fraction of seeded pacemaker jitter")
    camp_p.add_argument("--smoke", action="store_true",
                        help="run the fixed small CI matrix instead")
    camp_p.add_argument("--json", action="store_true",
                        help="emit the full report as JSON")
    camp_p.add_argument("--digest-only", action="store_true",
                        help="print only the report digest (CI determinism gate)")
    camp_p.add_argument("--list", action="store_true", dest="list_adversaries",
                        help="list registered adversaries and exit")

    sub.add_parser("counterexample", help="Section 4: counters are not enough")

    serve_p = sub.add_parser(
        "serve", help="run one replica on real asyncio TCP sockets"
    )
    serve_p.add_argument("--protocol", default="damysus", choices=sorted(SPECS))
    serve_p.add_argument("--pid", type=int, required=True, help="this replica's pid")
    serve_p.add_argument("--n", type=int, default=4, help="cluster size")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--base-port", type=int, default=47000,
                         help="replica i listens on base-port + i")
    serve_p.add_argument("--seed", type=int, default=1,
                         help="must match across the cluster (keys HMAC secrets)")
    serve_p.add_argument("--payload", type=int, default=128, help="tx payload bytes")
    serve_p.add_argument("--block-size", type=int, default=32, help="txs per block")
    serve_p.add_argument("--timeout-ms", type=float, default=2_000.0,
                         help="pacemaker base view timeout")
    serve_p.add_argument("--max-timeout-ms", type=float, default=0.0,
                         help="pacemaker backoff ceiling (0 = 4x the base)")
    serve_p.add_argument("--timeout-jitter", type=float, default=0.0,
                         help="+/- fraction of seeded pacemaker jitter")
    serve_p.add_argument("--adversary", default=None, metavar="NAME",
                         help="run this replica as the named registered attack "
                         "(same sans-I/O Machine the simulator runs)")
    serve_p.add_argument("--duration", type=float, default=0.0,
                         help="seconds to run (0 = until interrupted)")
    serve_p.add_argument("--checkpoint-interval", type=int, default=0,
                         help="certify a checkpoint every N committed blocks "
                         "(0 = off); must match across the cluster")
    serve_p.add_argument("--seal-dir", default=None, metavar="DIR",
                         help="persist sealed checker state here; restart "
                         "restores it (rollback-refusing)")
    serve_p.add_argument("--health-file", default=None, metavar="PATH",
                         help="rewrite a JSON liveness snapshot here")
    serve_p.add_argument("--health-interval", type=float, default=0.5,
                         metavar="S", help="seconds between health snapshots")
    serve_p.add_argument("--fault-spec", default=None, metavar="PATH",
                         help="FaultPlan rules_spec JSON applied to outbound "
                         "frames; re-read when its mtime changes")
    serve_p.add_argument("--verify-jobs", type=int, default=None, metavar="N",
                         help="worker processes for inbound signature "
                         "verification (0 = one per core, 1 = inline)")

    net_p = sub.add_parser(
        "net-bench", help="run a localhost TCP cluster and report committed tx/s"
    )
    net_p.add_argument("--protocol", default="damysus", choices=sorted(SPECS))
    net_p.add_argument("--n", type=int, default=4, help="cluster size")
    net_p.add_argument("--seed", type=int, default=1)
    net_p.add_argument("--duration", type=float, default=5.0, help="seconds to run")
    net_p.add_argument("--target-blocks", type=int, default=0,
                       help="stop early once every replica committed this many")
    net_p.add_argument("--payload", type=int, default=128, help="tx payload bytes")
    net_p.add_argument("--block-size", type=int, default=32, help="txs per block")
    net_p.add_argument("--timeout-ms", type=float, default=2_000.0,
                       help="pacemaker base view timeout")
    net_p.add_argument("--max-timeout-ms", type=float, default=0.0,
                       help="pacemaker backoff ceiling (0 = 4x the base)")
    net_p.add_argument("--timeout-jitter", type=float, default=0.0,
                       help="+/- fraction of seeded pacemaker jitter")
    net_p.add_argument("--adversary", default=None, metavar="NAME",
                       help="seat the named registered attack at its default "
                       "pids; honest replicas must stay safe and live")
    net_p.add_argument("--verify-jobs", type=int, default=None, metavar="N",
                       help="worker processes for inbound signature "
                       "verification (0 = one per core, 1 = inline)")

    load_p = sub.add_parser(
        "load",
        help="open-loop Poisson load generator: drive a cluster at a "
        "configured arrival rate and report saturation throughput, "
        "p50/p99 latency, and drop/eviction rates",
    )
    load_p.add_argument("--protocol", default="damysus", choices=sorted(SPECS))
    load_p.add_argument("--runtime", default="sim", choices=("sim", "net"),
                        help="discrete-event simulator or localhost TCP")
    load_p.add_argument("--rate", type=float, required=True,
                        help="aggregate offered load, transactions per second")
    load_p.add_argument("--senders", type=int, default=4,
                        help="independent Poisson clients sharing the rate")
    load_p.add_argument("--duration", type=float, default=10.0,
                        help="seconds to run (virtual seconds under sim)")
    load_p.add_argument("--f", type=int, default=1, help="fault threshold (sim)")
    load_p.add_argument("--n", type=int, default=4, help="cluster size (net)")
    load_p.add_argument("--seed", type=int, default=1)
    load_p.add_argument("--payload", type=int, default=256, help="tx payload bytes")
    load_p.add_argument("--payload-mix", default="",
                        help="comma-separated payload sizes drawn uniformly "
                        "per tx (overrides --payload), e.g. 0,256,1024")
    load_p.add_argument("--max-fee", type=int, default=0,
                        help="clients draw fees uniformly in [0, MAX]")
    load_p.add_argument("--retry-limit", type=int, default=0,
                        help="client resubmissions after a full NACK")
    load_p.add_argument("--block-size", type=int, default=400, help="txs per block")
    load_p.add_argument("--max-block-bytes", type=int, default=0,
                        help="per-proposal byte cap (0 = unbounded)")
    load_p.add_argument("--pool-max-txs", type=int, default=100_000,
                        help="mempool resident-transaction cap")
    load_p.add_argument("--pool-max-bytes", type=int, default=0,
                        help="mempool resident-byte cap (0 = unbounded)")
    load_p.add_argument("--rate-limit", type=float, default=0.0,
                        help="admitted txs/ms per sender (0 = off)")
    load_p.add_argument("--rate-burst", type=float, default=32.0,
                        help="per-sender token-bucket burst")
    load_p.add_argument("--json", action="store_true", help="emit the report as JSON")

    nc_p = sub.add_parser(
        "net-chaos",
        help="multi-process chaos: SIGKILL+restart from sealed state, "
        "partition+heal, commits must resume",
    )
    nc_p.add_argument("--protocol", default="damysus", choices=sorted(SPECS))
    nc_p.add_argument("--n", type=int, default=4, help="cluster size (>= 4)")
    nc_p.add_argument("--seed", type=int, default=1,
                      help="keys both the cluster and the fault decisions")
    nc_p.add_argument("--loss", type=float, default=0.05,
                      help="background per-frame drop probability")
    nc_p.add_argument("--base-port", type=int, default=0,
                      help="first replica port (0 = pick free ports)")
    nc_p.add_argument("--commit-bound", type=float, default=60.0, metavar="S",
                      help="seconds within which commits must (re)appear")
    nc_p.add_argument("--partition-hold", type=float, default=6.0, metavar="S",
                      help="seconds to hold the 2/2 partition")
    nc_p.add_argument("--timeout-ms", type=float, default=1_000.0,
                      help="pacemaker base view timeout")
    nc_p.add_argument("--max-timeout-ms", type=float, default=0.0,
                      help="pacemaker backoff ceiling (0 = 4x the base)")
    nc_p.add_argument("--timeout-jitter", type=float, default=0.0,
                      help="+/- fraction of seeded pacemaker jitter")
    nc_p.add_argument("--adversary", default=None, metavar="NAME",
                      help="run one replica as the named registered attack "
                      "while the chaos phases run (victim stays honest)")
    nc_p.add_argument("--no-kill", action="store_true",
                      help="skip the SIGKILL + restart phases")
    nc_p.add_argument("--no-partition", action="store_true",
                      help="skip the partition + heal phases")
    nc_p.add_argument("--catchup", action="store_true",
                      help="append the state-transfer cycle: SIGKILL a replica, "
                      "commit past the checkpoint horizon, restart it, and "
                      "require rejoin via a certified checkpoint (not replay)")
    nc_p.add_argument("--checkpoint-interval", type=int, default=0,
                      help="certify a checkpoint every N committed blocks "
                      "(0 = off; --catchup defaults it to 25)")
    nc_p.add_argument("--catchup-commits", type=int, default=100,
                      help="blocks survivors must commit while the victim is "
                      "down during --catchup")
    nc_p.add_argument("--run-dir", default=None, metavar="DIR",
                      help="artifact directory (default: fresh temp dir)")
    nc_p.add_argument("--keep-artifacts", action="store_true",
                      help="keep logs/health/seal files even on success")

    lint_p = sub.add_parser(
        "lint",
        help="AST invariant linter: TEE boundaries, determinism, exhaustiveness",
    )
    lint_p.add_argument(
        "paths", nargs="*", default=["src"], metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    lint_p.add_argument(
        "--rule", action="append", dest="rules", metavar="ID",
        help="restrict to the given rule id(s), e.g. --rule TEE001",
    )
    lint_p.add_argument("--format", choices=["text", "json"], default="text")
    lint_p.add_argument(
        "--baseline", default=BASELINE_DEFAULT,
        help=f"baseline of waived findings (default: {BASELINE_DEFAULT})",
    )
    lint_p.add_argument(
        "--no-baseline", action="store_true",
        help="report findings even if the baseline waives them",
    )
    lint_p.add_argument(
        "--write-baseline", action="store_true",
        help="waive every current finding by rewriting the baseline",
    )
    lint_p.add_argument(
        "--list-rules", action="store_true", help="list rule ids and exit",
    )

    analyze_p = sub.add_parser(
        "analyze",
        help="whole-program dataflow analysis: TEE taint, effect purity, "
        "await races",
    )
    analyze_p.add_argument(
        "paths", nargs="*", default=["src"], metavar="PATH",
        help="files or directories to analyze (default: src)",
    )
    analyze_p.add_argument(
        "--rule", action="append", dest="rules", metavar="ID",
        help="restrict to the given rule id(s), e.g. --rule TAINT002",
    )
    analyze_p.add_argument("--format", choices=["text", "json"], default="text")
    analyze_p.add_argument(
        "--baseline", default=ANALYZE_BASELINE_DEFAULT,
        help=f"baseline of waived findings (default: {ANALYZE_BASELINE_DEFAULT})",
    )
    analyze_p.add_argument(
        "--no-baseline", action="store_true",
        help="report findings even if the baseline waives them",
    )
    analyze_p.add_argument(
        "--write-baseline", action="store_true",
        help="waive every current finding by rewriting the baseline",
    )
    analyze_p.add_argument(
        "--list-rules", action="store_true", help="list rule ids and exit",
    )

    sub.add_parser("protocols", help="list implemented protocols")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    config = SystemConfig(
        protocol=args.protocol,
        f=args.f,
        payload_bytes=args.payload,
        block_size=args.block_size,
        regions=_REGIONS[args.regions],
        seed=args.seed,
        use_real_crypto=args.real_crypto,
    )
    system = ConsensusSystem(config)
    if args.crash:
        system.crash_replicas(args.crash)
    result = system.run_until_views(args.views)
    print(f"protocol           {result.protocol}")
    print(f"replicas           {result.num_replicas} (f={result.f})")
    print(f"committed blocks   {result.committed_blocks}")
    print(f"virtual time       {result.duration_ms:.0f} ms")
    print(f"throughput         {result.throughput_kops:.2f} Kops/s")
    print(f"latency            {result.mean_latency_ms:.1f} ms")
    print(f"messages / bytes   {result.messages_sent} / {result.bytes_sent}")
    print(f"safety             {'OK' if result.safe else 'VIOLATED'}")
    return 0 if result.safe else 1


def _cmd_compare(args: argparse.Namespace) -> int:
    rows = []
    for protocol in args.protocols:
        config = SystemConfig(
            protocol=protocol,
            f=args.f,
            payload_bytes=args.payload,
            regions=_REGIONS[args.regions],
            seed=args.seed,
        )
        result = ConsensusSystem(config).run_until_views(args.views)
        rows.append(
            [
                protocol,
                result.num_replicas,
                result.throughput_kops,
                result.mean_latency_ms,
                result.messages_sent,
                "OK" if result.safe else "VIOLATED",
            ]
        )
    print(
        format_table(
            ["protocol", "N", "Kops/s", "latency ms", "msgs", "safety"],
            rows,
            title=f"f={args.f}, {args.payload}B payload, {args.regions} regions",
        )
    )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    report = _EXPERIMENTS[args.name]()
    print(report.render())
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.experiments import fig6, fig7, fig8

    if args.name == "fig8":
        report = fig8(views_per_run=args.views, repetitions=args.reps, jobs=args.jobs)
    else:
        fig = fig6 if args.name.startswith("fig6") else fig7
        payload = 256 if args.name.endswith("a") else 0
        report = fig(
            payload_bytes=payload,
            thresholds=args.thresholds,
            views_per_run=args.views,
            repetitions=args.reps,
            jobs=args.jobs,
        )
    print(report.render())
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import cProfile
    import io
    import pstats
    import time

    from repro import perf

    config = SystemConfig(
        protocol=args.protocol,
        f=args.f,
        payload_bytes=args.payload,
        regions=_REGIONS[args.regions],
        seed=args.seed,
    )
    perf.set_caches_enabled(not args.no_caches)
    try:
        system = ConsensusSystem(config)
        system.sim.attach_wall_clock(time.perf_counter)
        profiler = cProfile.Profile()
        profiler.enable()
        result = system.run_until_views(args.views)
        profiler.disable()
    finally:
        perf.set_caches_enabled(True)
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(args.top)
    print(stream.getvalue().rstrip())
    sim = system.sim
    print(f"caches             {'off' if args.no_caches else 'on'}")
    print(f"committed blocks   {result.committed_blocks}")
    print(f"events fired       {sim.events_processed}")
    print(f"wall seconds       {sim.wall_seconds:.3f}")
    print(f"events / wall s    {sim.events_per_wall_second:,.0f}")
    print(f"wall s / sim s     {sim.wall_seconds_per_sim_second:.3f}")
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    from repro.bench import perfbench

    baseline_path = args.baseline or perfbench.BASELINE_DEFAULT
    threshold = args.threshold if args.threshold is not None else perfbench.DEFAULT_THRESHOLD
    if args.write_baseline:
        bench = perfbench.collect_bench(jobs=args.jobs, quick=args.quick)
        perfbench.write_baseline(baseline_path, bench)
        grid = bench["grid"]
        print(
            f"wrote {baseline_path}: hotpath cache_speedup "
            f"{bench['hotpath']['cache_speedup']:.2f}x, grid total_speedup "
            f"{grid['total_speedup']:.2f}x (jobs={grid['jobs']})"
        )
        return 0
    try:
        baseline = perfbench.load_baseline(baseline_path)
    except FileNotFoundError:
        print(f"no baseline at {baseline_path}; run `repro perf --write-baseline`",
              file=sys.stderr)
        return 2
    # Re-measure the same workload the baseline recorded (quick or full);
    # a --quick flag on --check would compare apples to oranges.
    quick = bool(baseline["meta"].get("quick"))
    current = perfbench.collect_bench(jobs=args.jobs, quick=quick)
    ok, report, messages = perfbench.check_bench(baseline, current, threshold=threshold)
    print(report.summary(drift_threshold=threshold - 1.0))
    for message in messages:
        print(message)
    return 0 if ok else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    report = run_standard_chaos(
        args.protocol,
        f=args.f,
        seed=args.seed,
        loss=args.loss,
        crashes=not args.no_crash,
        partition=not args.no_partition,
        settle_views=args.settle_views,
        checkpoint_interval=args.checkpoint_interval,
        max_timeout_ms=args.max_timeout_ms,
        timeout_jitter=args.timeout_jitter,
    )
    print(report.describe())
    return 0 if report.ok else 1


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.adversary.registry import ADVERSARIES
    from repro.analysis.campaign import run_campaign, run_smoke_campaign

    if args.list_adversaries:
        for name in sorted(ADVERSARIES):
            spec = ADVERSARIES[name]
            protocols = "/".join(sorted(spec.classes))
            print(f"{name:12s} [{protocols}] {spec.description}")
        return 0
    if args.smoke:
        report = run_smoke_campaign(seed=args.seed)
    else:
        report = run_campaign(
            protocols=tuple(args.protocols),
            adversaries=tuple(args.adversaries),
            plans=tuple(args.plans),
            topologies=tuple(args.topologies),
            seed=args.seed,
            settle_views=args.settle_views,
            view_budget=args.view_budget,
            config_overrides=dict(
                timeout_ms=args.timeout_ms,
                max_timeout_ms=args.max_timeout_ms,
                timeout_jitter=args.timeout_jitter,
            ),
        )
    if args.digest_only:
        print(report.digest())
    elif args.json:
        print(report.to_json())
    else:
        print(report.describe())
    return 0 if report.ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule_id in all_rule_ids():
            print(rule_id)
        return 0
    baseline = None if args.no_baseline else load_baseline(args.baseline)
    try:
        findings = run_lint(args.paths, rules=args.rules, baseline=baseline)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if args.write_baseline:
        write_baseline(args.baseline, findings)
        print(f"baseline: waived {len(findings)} finding(s) in {args.baseline}")
        return 0
    if args.format == "json":
        print(format_findings_json(findings))
    else:
        print(format_findings_text(findings))
    return 1 if findings else 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule_id in all_analyze_rule_ids():
            print(rule_id)
        return 0
    baseline = None if args.no_baseline else load_baseline(args.baseline)
    try:
        findings = run_analyze(args.paths, rules=args.rules, baseline=baseline)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if args.write_baseline:
        write_baseline(args.baseline, findings)
        print(f"baseline: waived {len(findings)} finding(s) in {args.baseline}")
        return 0
    if args.format == "json":
        print(format_findings_json(findings))
    else:
        print(format_findings_text(findings, prog="repro analyze"))
    return 1 if findings else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.runtime.asyncio_net import serve_replica

    print(
        f"replica {args.pid}/{args.n} ({args.protocol}) listening on "
        f"{args.host}:{args.base_port + args.pid}",
        flush=True,
    )
    try:
        runtime = asyncio.run(
            serve_replica(
                args.protocol,
                args.pid,
                args.n,
                base_port=args.base_port,
                host=args.host,
                seed=args.seed,
                duration_s=args.duration,
                payload_bytes=args.payload,
                block_size=args.block_size,
                timeout_ms=args.timeout_ms,
                max_timeout_ms=args.max_timeout_ms,
                timeout_jitter=args.timeout_jitter,
                adversary=args.adversary,
                checkpoint_interval=args.checkpoint_interval,
                seal_dir=args.seal_dir,
                health_file=args.health_file,
                health_interval_s=args.health_interval,
                fault_spec=args.fault_spec,
                verify_jobs=args.verify_jobs,
            )
        )
    except KeyboardInterrupt:
        print("interrupted; shutting down")
        return 0
    print(
        f"committed {runtime.committed_blocks} blocks "
        f"({runtime.committed_txs} txs); sent {runtime.sent_messages} messages"
    )
    return 0


def _cmd_load(args: argparse.Namespace) -> int:
    import json as json_mod

    from repro.bench.load import load_config, run_load_net, run_load_sim
    from repro.bench.reporting import format_table

    mix = tuple(int(p) for p in args.payload_mix.split(",") if p.strip())
    config = load_config(
        args.protocol,
        rate_per_s=args.rate,
        senders=args.senders,
        f=args.f,
        seed=args.seed,
        payload_bytes=args.payload,
        payload_mix=mix,
        max_fee=args.max_fee,
        retry_limit=args.retry_limit,
        block_size=args.block_size,
        max_block_bytes=args.max_block_bytes,
        mempool_max_txs=args.pool_max_txs,
        mempool_max_bytes=args.pool_max_bytes,
        sender_rate_limit=args.rate_limit,
        sender_rate_burst=args.rate_burst,
    )
    if args.runtime == "sim":
        report = run_load_sim(config, args.duration * 1000.0, args.rate)
    else:
        import asyncio

        report = asyncio.run(
            run_load_net(config, args.duration, args.rate, n=args.n)
        )
    if args.json:
        print(json_mod.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(format_table(["metric", "value"], report.summary_rows(),
                           title="open-loop load report"))
        verdicts = ", ".join(
            f"{name}={count}" for name, count in sorted(report.admission.items())
        )
        print(f"replies by verdict: {verdicts}")
    return 0 if report.committed_blocks > 0 else 1


def _cmd_net_bench(args: argparse.Namespace) -> int:
    import asyncio

    from repro.runtime.asyncio_net import run_local_cluster

    report = asyncio.run(
        run_local_cluster(
            args.protocol,
            args.n,
            seed=args.seed,
            duration_s=args.duration,
            target_blocks=args.target_blocks,
            payload_bytes=args.payload,
            block_size=args.block_size,
            timeout_ms=args.timeout_ms,
            max_timeout_ms=args.max_timeout_ms,
            timeout_jitter=args.timeout_jitter,
            adversary=args.adversary,
            verify_jobs=args.verify_jobs,
        )
    )
    print(f"protocol           {report.protocol}")
    print(f"replicas           {report.num_replicas} (f={report.f}, "
          f"quorum={report.quorum})")
    print(f"elapsed            {report.elapsed_s:.2f} s")
    print(f"committed blocks   {report.committed_blocks} (slowest replica)")
    print(f"committed txs      {report.committed_txs}")
    print(f"throughput         {report.tx_per_s:,.0f} tx/s")
    print(f"messages / bytes   {report.messages_sent} / {report.bytes_sent}")
    if report.dropped_messages:
        print(f"dropped frames     {report.dropped_messages}")
    if report.prechecked_sigs:
        print(f"prechecked sigs    {report.prechecked_sigs} (off event loop)")
    return 0 if report.committed_blocks > 0 else 1


def _cmd_net_chaos(args: argparse.Namespace) -> int:
    from repro.runtime.resilience.netchaos import run_net_chaos

    report = run_net_chaos(
        args.protocol,
        args.n,
        seed=args.seed,
        loss=args.loss,
        base_port=args.base_port,
        commit_bound_s=args.commit_bound,
        partition_hold_s=args.partition_hold,
        timeout_ms=args.timeout_ms,
        max_timeout_ms=args.max_timeout_ms,
        timeout_jitter=args.timeout_jitter,
        adversary=args.adversary,
        kill=not args.no_kill,
        partition=not args.no_partition,
        catchup=args.catchup,
        checkpoint_interval=args.checkpoint_interval,
        catchup_commits=args.catchup_commits,
        run_dir=args.run_dir,
        keep_artifacts=args.keep_artifacts,
    )
    print(report.describe())
    return 0 if report.ok else 1


def _cmd_counterexample(_: argparse.Namespace) -> int:
    print("Plain trusted counters (Section 4.1):")
    print(run_counter_scenario().describe())
    print()
    print("Checker + Accumulator:")
    print(run_checker_scenario().describe())
    return 0


def _cmd_protocols(_: argparse.Namespace) -> int:
    rows = []
    for name in sorted(SPECS):
        spec = get_spec(name)
        rows.append(
            [
                name,
                spec.num_replicas.__doc__,  # "3f+1" or "2f+1"
                spec.core_phases,
                spec.comm_steps,
                "yes" if spec.chained else "no",
                ", ".join(spec.trusted_components) or "-",
                "paper" if name in PROTOCOL_ORDER else "extra",
            ]
        )
    print(
        format_table(
            ["protocol", "replicas", "phases", "steps", "chained", "TEEs", "origin"],
            rows,
        )
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "run": _cmd_run,
        "compare": _cmd_compare,
        "experiment": _cmd_experiment,
        "bench": _cmd_bench,
        "profile": _cmd_profile,
        "perf": _cmd_perf,
        "chaos": _cmd_chaos,
        "campaign": _cmd_campaign,
        "serve": _cmd_serve,
        "load": _cmd_load,
        "net-bench": _cmd_net_bench,
        "net-chaos": _cmd_net_chaos,
        "counterexample": _cmd_counterexample,
        "lint": _cmd_lint,
        "analyze": _cmd_analyze,
        "protocols": _cmd_protocols,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
