"""First-order analytic latency model, cross-checked against simulation.

Commit latency of the basic (non-chained) protocols decomposes into
message legs plus CPU:

    latency ~ legs x mean_one_way + leader_cpu + backup_cpu

where ``legs`` is the number of sequential message delays between a
proposal's creation and its execution (5 for the 2-phase protocols:
proposal, votes, certificate, votes, decide; 7 for the 3-phase ones),
and the CPU terms charge quorum-sized signature verification, vote
signing/TEE calls, and the leader's N-copy proposal serialization.

The model is deliberately first-order - no queueing, no jitter - yet
lands within a few tens of percent of the simulator and predicts the
protocols' latency *ordering* exactly, which is the cross-check the
tests pin down: if simulator and closed form ever diverge wildly, one of
them is wrong.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SystemConfig
from repro.core.mempool import TX_METADATA_BYTES
from repro.errors import ConfigError
from repro.protocols.registry import get_spec

#: Sequential message legs from proposal creation to execution.
_LEGS = {
    "hotstuff": 7,  # proposal, votes, qc, votes, qc, votes, decide
    "damysus-c": 7,
    "damysus-a": 5,  # proposal, votes, qc, votes, decide
    "damysus": 5,
    "fast-hotstuff": 5,
}

#: Vote rounds the leader aggregates per view (each costs quorum verifies).
_VOTE_ROUNDS = {
    "hotstuff": 3,
    "damysus-c": 3,
    "damysus-a": 2,
    "damysus": 2,
    "fast-hotstuff": 2,
}


@dataclass(frozen=True)
class LatencyPrediction:
    protocol: str
    f: int
    legs: int
    network_ms: float
    leader_cpu_ms: float
    backup_cpu_ms: float

    @property
    def total_ms(self) -> float:
        return self.network_ms + self.leader_cpu_ms + self.backup_cpu_ms


def mean_one_way_ms(config: SystemConfig, num_nodes: int) -> float:
    """Average one-way delay between distinct deployed nodes."""
    placement = config.regions.assign_round_robin(num_nodes)
    total, pairs = 0.0, 0
    for i in range(num_nodes):
        for j in range(num_nodes):
            if i == j:
                continue
            total += config.regions.latency(placement[i], placement[j])
            pairs += 1
    return total / pairs if pairs else 0.0


def predict_latency(config: SystemConfig) -> LatencyPrediction:
    """Closed-form commit latency for a basic protocol deployment."""
    protocol = config.protocol
    if protocol not in _LEGS:
        raise ConfigError(f"no latency formula for {protocol!r} (chained protocols pipeline)")
    spec = get_spec(protocol)
    n = spec.num_replicas(config.f)
    quorum = spec.quorum(config.f)
    costs = config.costs
    legs = _LEGS[protocol]
    vote_rounds = _VOTE_ROUNDS[protocol]

    block_bytes = config.block_size * (config.payload_bytes + TX_METADATA_BYTES)

    # A quorum forms when the median-ish voter responds; the mean one-way
    # delay is the natural first-order estimate for every leg.
    network = legs * mean_one_way_ms(config, n)

    # Leader: serialize N proposal copies, verify each vote of each round,
    # broadcast certificates (small next to the proposal).
    leader = n * costs.send_ms(block_bytes)
    leader += vote_rounds * quorum * costs.verify_ms
    uses_tee = bool(spec.trusted_components)
    if uses_tee:
        # accumList: quorum+1 enclave calls, each verify+sign.
        leader += (quorum + 1) * costs.tee_op_ms(signs=1, verifies=1)

    # Backup (on the critical path once per phase): verify the incoming
    # certificate, produce a vote.
    backup = vote_rounds * quorum * costs.verify_ms  # certificate checks
    if uses_tee:
        backup += vote_rounds * costs.tee_op_ms(signs=1, verifies=1)
    else:
        backup += vote_rounds * costs.sign_ms
    backup += costs.receive_ms(block_bytes)

    return LatencyPrediction(
        protocol=protocol,
        f=config.f,
        legs=legs,
        network_ms=network,
        leader_cpu_ms=leader,
        backup_cpu_ms=backup,
    )
