"""Attack campaigns: sweep the adversary zoo, score every cell with oracles.

``repro campaign`` runs a seeded matrix of {protocol x adversary x base
fault plan x region topology} cells on the simulator.  Each cell seats
the named adversary (via ``ConsensusSystem(replica_overrides=...)``),
installs the base plan merged with the adversary's colluding plan, rides
out the faults, and scores the run with three oracles:

* **SafetyOracle** (existing, strict) - no two correct replicas ever
  execute conflicting blocks, and every executed sequence is a monotone
  slice of the canonical chain;
* **LivenessOracle** - after every healing fault has ceased (the plan's
  ``healed_by_ms``; GST for partitions), commits resume within a bounded
  number of views;
* **DegradationOracle** - throughput under attack versus a same-seed,
  same-duration clean run of the identical configuration, labelled
  ``minimal`` / ``moderate`` / ``severe``.

Everything is a pure function of the campaign seed: the same seed yields
a bit-identical JSON report (no wall-clock fields anywhere), which CI
exploits by running the smoke matrix twice and comparing digests.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, dataclass, field

from repro.adversary.registry import ADVERSARIES, AdversarySpec, get_adversary
from repro.config import SystemConfig
from repro.core.faults import FaultPlan
from repro.costs import CostModel
from repro.errors import ConfigError, SafetyViolation, SimulationError
from repro.protocols.registry import get_spec
from repro.runtime.sim import ConsensusSystem
from repro.sim.regions import EU_REGIONS, WORLD_REGIONS, RegionMap

#: Simulation chunk size (virtual ms) between oracle checks.
_CHUNK_MS = 100.0

#: Region topologies a campaign can place replicas into.
TOPOLOGIES: dict[str, RegionMap] = {"eu": EU_REGIONS, "world": WORLD_REGIONS}

#: Degradation labels by attack/clean throughput ratio (inclusive lower
#: bounds, consulted in order).  A ratio above 0.75 is noise-level.
_DEGRADATION_BANDS: tuple[tuple[float, str], ...] = (
    (0.75, "minimal"),
    (0.40, "moderate"),
    (0.0, "severe"),
)


def degradation_label(ratio: float) -> str:
    """Map an attack/clean throughput ratio onto a severity band."""
    for floor, label in _DEGRADATION_BANDS:
        if ratio >= floor:
            return label
    return "severe"


def base_plans() -> dict[str, FaultPlan]:
    """The named network conditions a campaign can overlay attacks on.

    Plans are rebuilt per call because :class:`FaultPlan` is mutable and
    cells merge colluding rules into their copy.
    """
    return {
        "clean": FaultPlan(),
        "lossy": FaultPlan().lossy_links(0.1, end_ms=1_200.0),
    }


def merge_plans(base: FaultPlan, extra: FaultPlan | None) -> FaultPlan:
    """A fresh plan carrying both inputs' rules and crash events."""
    merged = FaultPlan()
    merged.rules.extend(base.rules)
    merged.crashes.extend(base.crashes)
    if extra is not None:
        merged.rules.extend(extra.rules)
        merged.crashes.extend(extra.crashes)
    return merged


@dataclass(frozen=True)
class CampaignCell:
    """One scored (protocol, adversary, plan, topology) combination."""

    protocol: str
    adversary: str
    plan: str
    topology: str
    seed: int
    # -- SafetyOracle ---------------------------------------------------
    safe: bool
    violation: str | None
    # -- LivenessOracle -------------------------------------------------
    live_after_heal: bool
    views_to_recover: int | None  # view gap heal -> first fresh commit
    healed_at_ms: float
    duration_ms: float  # virtual, deterministic
    # -- DegradationOracle ----------------------------------------------
    commits: int
    baseline_commits: int
    degradation_ratio: float
    degradation: str
    # -- attack bookkeeping ---------------------------------------------
    attack_events: int
    attacker_pids: tuple[int, ...]
    timeouts_fired: int

    @property
    def ok(self) -> bool:
        """Safety held and liveness recovered; degradation is informational."""
        return self.safe and self.live_after_heal

    @property
    def verdict(self) -> str:
        if not self.safe:
            return "UNSAFE"
        if not self.live_after_heal:
            return "STALLED"
        return "PASS"


@dataclass
class CampaignReport:
    """A full campaign: parameters, every scored cell, skipped combos."""

    seed: int
    settle_views: int
    view_budget: int
    protocols: tuple[str, ...]
    adversaries: tuple[str, ...]
    plans: tuple[str, ...]
    topologies: tuple[str, ...]
    cells: list[CampaignCell] = field(default_factory=list)
    #: (adversary, protocol) pairs skipped because the attack does not
    #: target that protocol (e.g. amnesia needs a TEE to roll back).
    skipped: list[tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(cell.ok for cell in self.cells)

    @property
    def unsafe_cells(self) -> list[CampaignCell]:
        return [cell for cell in self.cells if not cell.safe]

    @property
    def stalled_cells(self) -> list[CampaignCell]:
        return [cell for cell in self.cells if cell.safe and not cell.live_after_heal]

    def to_dict(self) -> dict:
        cells = []
        for cell in self.cells:
            entry = asdict(cell)
            entry["attacker_pids"] = list(cell.attacker_pids)
            entry["verdict"] = cell.verdict
            cells.append(entry)
        return {
            "seed": self.seed,
            "settle_views": self.settle_views,
            "view_budget": self.view_budget,
            "protocols": list(self.protocols),
            "adversaries": list(self.adversaries),
            "plans": list(self.plans),
            "topologies": list(self.topologies),
            "cells": cells,
            "skipped": [list(pair) for pair in self.skipped],
            "digest": self.digest(),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def digest(self) -> str:
        """SHA-256 over the canonical cell encoding; CI's determinism gate."""
        cells = [asdict(cell) | {"attacker_pids": list(cell.attacker_pids)}
                 for cell in self.cells]
        blob = json.dumps(cells, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    def describe(self) -> str:
        header = (
            f"{'protocol':10s} {'adversary':11s} {'plan':6s} {'topo':6s} "
            f"{'verdict':8s} {'degrade':9s} {'ratio':>6s} {'views':>5s} {'events':>7s}"
        )
        lines = [header, "-" * len(header)]
        for cell in self.cells:
            recover = "-" if cell.views_to_recover is None else str(cell.views_to_recover)
            lines.append(
                f"{cell.protocol:10s} {cell.adversary:11s} {cell.plan:6s} "
                f"{cell.topology:6s} {cell.verdict:8s} {cell.degradation:9s} "
                f"{cell.degradation_ratio:6.2f} {recover:>5s} {cell.attack_events:>7d}"
            )
        for adversary, protocol in self.skipped:
            lines.append(f"{protocol:10s} {adversary:11s} (skipped: unsupported)")
        lines.append(
            f"{len(self.cells)} cells: "
            f"{sum(1 for c in self.cells if c.ok)} pass, "
            f"{len(self.unsafe_cells)} unsafe, "
            f"{len(self.stalled_cells)} stalled; digest {self.digest()[:16]}"
        )
        return "\n".join(lines)


def _cell_config(
    protocol: str,
    topology: str,
    seed: int,
    overrides: dict,
) -> SystemConfig:
    try:
        regions = TOPOLOGIES[topology]
    except KeyError:
        raise ConfigError(
            f"unknown topology {topology!r} (known: {', '.join(sorted(TOPOLOGIES))})"
        ) from None
    params = dict(
        protocol=protocol,
        f=1,
        seed=seed,
        payload_bytes=0,
        block_size=5,
        timeout_ms=250.0,
        timeout_jitter=0.1,
        costs=CostModel.zero(),
        regions=regions,
        checkpoint_interval=5,
    )
    params.update(overrides)
    return SystemConfig(**params)


def _commits(system: ConsensusSystem) -> int:
    return len({rec.block_hash for rec in system.monitor.executions})


def run_cell(
    protocol: str,
    spec: AdversarySpec,
    plan_name: str,
    topology: str,
    *,
    seed: int,
    settle_views: int = 4,
    view_budget: int = 30,
    max_time_ms: float = 60_000.0,
    config_overrides: dict | None = None,
) -> CampaignCell:
    """Run one attack cell plus its same-seed clean baseline and score it."""
    config = _cell_config(protocol, topology, seed, dict(config_overrides or {}))
    num_replicas = get_spec(protocol).num_replicas(config.f)
    seats = spec.seats(num_replicas, config.f)
    colluding = (
        spec.colluding_plan(num_replicas, config.f)
        if spec.colluding_plan is not None
        else None
    )
    plan = merge_plans(base_plans()[plan_name], colluding)
    healed_at = plan.healed_by_ms()
    if math.isinf(healed_at):
        raise SimulationError(
            f"campaign plan {plan_name!r} never heals; liveness cannot be scored"
        )

    system = ConsensusSystem(
        config,
        strict_safety=True,
        replica_overrides={pid: spec.replica_class(protocol) for pid in seats},
    )
    system.apply_fault_plan(plan)
    violation: str | None = None
    views_at_heal: set[int] = set()
    system.start()
    try:
        # Phase 1: ride out the attack window and any colluding faults.
        while system.sim.now < healed_at:
            system.sim.run(until=min(healed_at, system.sim.now + _CHUNK_MS))
        views_at_heal = set(system.monitor.committed_views())
        # Phase 2 (LivenessOracle): fresh commits must arrive post-heal.
        while system.sim.now < max_time_ms:
            fresh = system.monitor.committed_views() - views_at_heal
            if len(fresh) >= settle_views:
                break
            if system.sim.pending == 0:
                break
            system.sim.run(until=system.sim.now + _CHUNK_MS)
    except SafetyViolation as exc:
        violation = str(exc)

    from repro.analysis.chaos import monotone_prefixes_ok

    safe = violation is None and system.oracle.safe and monotone_prefixes_ok(system)
    fresh_views = system.monitor.committed_views() - views_at_heal
    views_to_recover: int | None = None
    if fresh_views:
        frontier = max(views_at_heal) if views_at_heal else 0
        views_to_recover = min(fresh_views) - frontier
    live = (
        len(fresh_views) >= settle_views
        and views_to_recover is not None
        and views_to_recover <= view_budget
    )
    duration_ms = system.sim.now
    commits = _commits(system)

    # DegradationOracle: the identical deployment, same seed, no
    # adversary and no colluding faults, run for the same virtual time.
    baseline = ConsensusSystem(config, strict_safety=True)
    baseline.apply_fault_plan(merge_plans(base_plans()[plan_name], None))
    baseline.start()
    baseline.sim.run(until=duration_ms)
    baseline_commits = _commits(baseline)
    ratio = commits / baseline_commits if baseline_commits else 1.0

    return CampaignCell(
        protocol=protocol,
        adversary=spec.name,
        plan=plan_name,
        topology=topology,
        seed=seed,
        safe=safe,
        violation=violation,
        live_after_heal=live,
        views_to_recover=views_to_recover,
        healed_at_ms=healed_at,
        duration_ms=duration_ms,
        commits=commits,
        baseline_commits=baseline_commits,
        degradation_ratio=round(ratio, 4),
        degradation=degradation_label(ratio),
        attack_events=sum(spec.events(system.replicas[pid]) for pid in seats),
        attacker_pids=tuple(seats),
        timeouts_fired=sum(r.pacemaker.timeouts_fired for r in system.replicas),
    )


def run_campaign(
    *,
    protocols: tuple[str, ...] = ("damysus", "hotstuff"),
    adversaries: tuple[str, ...] = (),
    plans: tuple[str, ...] = ("clean", "lossy"),
    topologies: tuple[str, ...] = ("eu", "world"),
    seed: int = 1,
    settle_views: int = 4,
    view_budget: int = 30,
    max_time_ms: float = 60_000.0,
    config_overrides: dict | None = None,
) -> CampaignReport:
    """Sweep the matrix; cells run in sorted order so reports are stable.

    An empty ``adversaries`` tuple means the whole registry.  Unsupported
    (adversary, protocol) pairs are recorded as skipped, not errors, so
    protocol-specific attacks (amnesia, flood) ride along in full sweeps.
    """
    names = tuple(adversaries) or tuple(sorted(ADVERSARIES))
    known_plans = base_plans()
    for plan_name in plans:
        if plan_name not in known_plans:
            raise ConfigError(
                f"unknown plan {plan_name!r} (known: {', '.join(sorted(known_plans))})"
            )
    report = CampaignReport(
        seed=seed,
        settle_views=settle_views,
        view_budget=view_budget,
        protocols=tuple(protocols),
        adversaries=names,
        plans=tuple(plans),
        topologies=tuple(topologies),
    )
    for protocol in protocols:
        for name in names:
            spec = get_adversary(name)
            if not spec.supports(protocol):
                report.skipped.append((name, protocol))
                continue
            for plan_name in plans:
                for topology in topologies:
                    report.cells.append(
                        run_cell(
                            protocol,
                            spec,
                            plan_name,
                            topology,
                            seed=seed,
                            settle_views=settle_views,
                            view_budget=view_budget,
                            max_time_ms=max_time_ms,
                            config_overrides=config_overrides,
                        )
                    )
    return report


#: The CI smoke matrix: 2 protocols x 6 adversaries x 2 topologies on the
#: clean plan - small enough to run twice (for the digest check), wide
#: enough to cover leader-side, coalition, rollback and mempool attacks.
SMOKE_ADVERSARIES: tuple[str, ...] = (
    "silent",
    "equivocate",
    "slow-drip",
    "withhold",
    "amnesia",
    "spam",
)


def run_smoke_campaign(*, seed: int = 1) -> CampaignReport:
    """The fixed small matrix CI runs (twice) as a blocking gate."""
    return run_campaign(
        protocols=("damysus", "hotstuff"),
        adversaries=SMOKE_ADVERSARIES,
        plans=("clean",),
        topologies=("eu", "world"),
        seed=seed,
    )
