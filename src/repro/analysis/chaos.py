"""Chaos harness: run protocols under fault plans, assert safety and liveness.

The runner composes a :class:`~repro.sim.faults.FaultPlan` with any
registered protocol and checks the two properties that matter under
faults:

* **safety throughout** - the shared
  :class:`~repro.core.executor.SafetyOracle` runs in strict mode, so a
  conflicting commit raises the moment it happens, and at the end every
  correct replica's executed sequence must be a monotone prefix of the
  canonical chain;
* **liveness after healing** - once every healing fault has ceased
  (partitions healed, loss windows closed, crashed replicas recovered -
  the plan's ``healed_by_ms()``), the system must commit in
  ``settle_views`` fresh views within the time budget.

Everything is driven by the system's seeded RNG streams: the same
(config, plan) pair produces a bit-identical :class:`ChaosReport`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config import SystemConfig
from repro.costs import CostModel
from repro.errors import SafetyViolation, SimulationError
from repro.protocols.registry import get_spec
from repro.runtime.sim import ConsensusSystem
from repro.sim.faults import FaultPlan

#: Simulation chunk size (virtual ms) between invariant checks.
_CHUNK_MS = 100.0


@dataclass
class ChaosReport:
    """Outcome of one chaos run; equal reports mean identical runs."""

    protocol: str
    f: int
    seed: int
    safe: bool
    violation: str | None
    healed_at_ms: float
    duration_ms: float
    commits_at_heal: int
    commits_total: int
    views_committed_after_heal: int
    live_after_heal: bool
    messages_dropped: int
    messages_duplicated: int
    crash_cycles: int
    timeouts_fired: int
    checkpoint_installs: int = 0
    catchup_rounds: int = 0

    @property
    def ok(self) -> bool:
        """Safety held throughout and the system recovered its liveness."""
        return self.safe and self.live_after_heal

    def describe(self) -> str:
        lines = [
            f"protocol             {self.protocol} (f={self.f}, seed={self.seed})",
            f"faults healed at     {self.healed_at_ms:.0f} ms",
            f"virtual time         {self.duration_ms:.0f} ms",
            f"messages dropped     {self.messages_dropped}",
            f"messages duplicated  {self.messages_duplicated}",
            f"crash/recover cycles {self.crash_cycles}",
            f"timeouts fired       {self.timeouts_fired}",
            f"commits (heal/total) {self.commits_at_heal} / {self.commits_total}",
            f"views after heal     {self.views_committed_after_heal}",
            f"checkpoint installs  {self.checkpoint_installs}",
            f"catch-up rounds      {self.catchup_rounds}",
            f"safety               {'OK' if self.safe else 'VIOLATED: ' + str(self.violation)}",
            f"liveness after heal  {'OK' if self.live_after_heal else 'STALLED'}",
        ]
        return "\n".join(lines)


def monotone_prefixes_ok(system: ConsensusSystem) -> bool:
    """Every replica's executed sequence is a slice of the canonical chain.

    A replica that installed a certified checkpoint skipped the prefix
    below it; its recorded sequence must then match the canonical chain
    starting at its checkpoint offset (offset 0 without state transfer,
    which degenerates to the plain prefix check).
    """
    canonical = system.oracle.canonical_chain()
    for replica, seq in system.oracle.sequences.items():
        offset = system.oracle.offset_of(replica)
        if seq != canonical[offset : offset + len(seq)]:
            return False
    return True


def standard_chaos_plan(
    num_replicas: int,
    f: int,
    *,
    loss: float = 0.2,
    crashes: bool = True,
    partition: bool = True,
    crash_at_ms: float = 500.0,
    partition_at_ms: float = 1_000.0,
    partition_heal_ms: float = 2_500.0,
    recover_at_ms: float = 3_000.0,
    faults_end_ms: float = 4_000.0,
) -> FaultPlan:
    """The canonical chaos schedule used by the CLI and the test suite.

    Probabilistic loss on every link until ``faults_end_ms``, a symmetric
    partition cutting the first ``f`` replicas off mid-run, and ``f``
    crash/recover cycles on the trailing replicas (staggered by 100 ms so
    their seal/unseal cycles interleave).
    """
    plan = FaultPlan()
    if loss > 0.0:
        plan.lossy_links(loss, end_ms=faults_end_ms)
    if partition:
        plan.partition(
            range(f),
            range(f, num_replicas),
            at_ms=partition_at_ms,
            heal_ms=partition_heal_ms,
        )
    if crashes:
        for i in range(f):
            plan.crash(
                num_replicas - 1 - i,
                at_ms=crash_at_ms + 100.0 * i,
                recover_at_ms=recover_at_ms + 100.0 * i,
            )
    return plan


def run_chaos(
    protocol: str = "damysus",
    *,
    plan: FaultPlan,
    f: int = 1,
    seed: int = 1,
    settle_views: int = 3,
    max_time_ms: float = 600_000.0,
    config: SystemConfig | None = None,
    **config_overrides,
) -> ChaosReport:
    """Run ``protocol`` under ``plan`` and report safety/liveness.

    ``config`` overrides the built-in fast chaos configuration entirely;
    otherwise ``config_overrides`` tweak it (e.g. ``timeout_ms=...``).
    The plan must heal (finite ``healed_by_ms``) or liveness could never
    be asserted.
    """
    healed_at = plan.healed_by_ms()
    if math.isinf(healed_at):
        raise SimulationError(
            "chaos plan never heals; liveness after healing cannot be asserted"
        )
    if config is None:
        params = dict(
            protocol=protocol,
            f=f,
            seed=seed,
            payload_bytes=0,
            block_size=5,
            timeout_ms=300.0,
            timeout_jitter=0.1,
            costs=CostModel.zero(),
        )
        params.update(config_overrides)
        config = SystemConfig(**params)
    system = ConsensusSystem(config, strict_safety=True)
    system.apply_fault_plan(plan)
    violation: str | None = None
    commits_at_heal = 0
    views_at_heal: set[int] = set()
    system.start()
    try:
        # Phase 1: ride out the faults, safety checked on every commit.
        while system.sim.now < healed_at:
            system.sim.run(until=min(healed_at, system.sim.now + _CHUNK_MS))
        commits_at_heal = len({r.block_hash for r in system.monitor.executions})
        views_at_heal = set(system.monitor.committed_views())
        # Phase 2: after healing, the system must commit in fresh views.
        while system.sim.now < max_time_ms:
            fresh = system.monitor.committed_views() - views_at_heal
            if len(fresh) >= settle_views:
                break
            if system.sim.pending == 0:
                break
            system.sim.run(until=system.sim.now + _CHUNK_MS)
    except SafetyViolation as exc:
        violation = str(exc)
    fresh_views = system.monitor.committed_views() - views_at_heal
    safe = violation is None and system.oracle.safe and monotone_prefixes_ok(system)
    return ChaosReport(
        protocol=config.protocol,
        f=config.f,
        seed=config.seed,
        safe=safe,
        violation=violation,
        healed_at_ms=healed_at,
        duration_ms=system.sim.now,
        commits_at_heal=commits_at_heal,
        commits_total=len({r.block_hash for r in system.monitor.executions}),
        views_committed_after_heal=len(fresh_views),
        live_after_heal=len(fresh_views) >= settle_views,
        messages_dropped=system.monitor.messages_dropped,
        messages_duplicated=system.monitor.messages_duplicated,
        crash_cycles=sum(r.recovery_count for r in system.replicas),
        timeouts_fired=sum(r.pacemaker.timeouts_fired for r in system.replicas),
        checkpoint_installs=sum(
            1 for r in system.replicas if r.caught_up_via_checkpoint
        ),
        catchup_rounds=sum(r.catchup.completed for r in system.replicas),
    )


def run_standard_chaos(
    protocol: str = "damysus",
    *,
    f: int = 1,
    seed: int = 1,
    loss: float = 0.2,
    crashes: bool = True,
    partition: bool = True,
    settle_views: int = 3,
    **config_overrides,
) -> ChaosReport:
    """Convenience wrapper: the standard plan sized for ``protocol``/``f``."""
    num_replicas = get_spec(protocol).num_replicas(f)
    plan = standard_chaos_plan(
        num_replicas, f, loss=loss, crashes=crashes, partition=partition
    )
    return run_chaos(
        protocol,
        plan=plan,
        f=f,
        seed=seed,
        settle_views=settle_views,
        **config_overrides,
    )
