"""Table 1: comparative complexity of Damysus and the related work.

Each row carries the closed-form expressions the paper tabulates:
replica count, communication steps (view-change steps in parentheses),
normal-case message count (self-messages included), view-change message
count, optimistic execution, and the trusted component with its storage
complexity.  ``expected_messages`` is the formula the simulator's
measured per-view message counts are checked against in the Table 1
benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigError


@dataclass(frozen=True)
class Table1Row:
    """One protocol's row in Table 1."""

    name: str
    replicas: str  # e.g. "3f+1" or "f+1 act. & f pass."
    comm_steps: str  # e.g. "3 (+2)" - view-change steps in parentheses
    msgs_normal: Callable[[int], int]
    msgs_normal_expr: str
    msgs_view_change: Callable[[int], int] | None
    msgs_view_change_expr: str
    optimistic: bool
    trusted_component: str

    def format_counts(self, f: int) -> tuple[int, int | None]:
        vc = self.msgs_view_change(f) if self.msgs_view_change else None
        return self.msgs_normal(f), vc


#: HotStuff-M's message count depends on the expander-graph diffusion
#: parameter d; the paper leaves it symbolic.  We instantiate d = 2 (the
#: smallest non-trivial diffusion) when a number is needed.
HOTSTUFF_M_D = 2

TABLE1_ROWS: list[Table1Row] = [
    Table1Row(
        name="pbft",
        replicas="3f+1",
        comm_steps="3 (+2)",
        msgs_normal=lambda f: 18 * f * f + 15 * f + 3,
        msgs_normal_expr="18f^2+15f+3",
        msgs_view_change=lambda f: 9 * f * f + 6 * f + 1,
        msgs_view_change_expr="9f^2+6f+1",
        optimistic=False,
        trusted_component="-",
    ),
    Table1Row(
        name="fastbft",
        replicas="f+1 act. & f pass.",
        comm_steps="5 (+3)",
        msgs_normal=lambda f: 6 * f + 5,
        msgs_normal_expr="6f+5",
        msgs_view_change=lambda f: 8 * f * f + 8 * f + 2,
        msgs_view_change_expr="8f^2+8f+2",
        optimistic=True,
        trusted_component="Secret generation - Constant",
    ),
    Table1Row(
        name="minbft",
        replicas="2f+1",
        comm_steps="2 (+3)",
        msgs_normal=lambda f: 4 * f * f + 6 * f + 2,
        msgs_normal_expr="4f^2+6f+2",
        msgs_view_change=lambda f: 8 * f * f + 6 * f + 1,
        msgs_view_change_expr="8f^2+6f+1",
        optimistic=False,
        trusted_component="Trusted counter - Constant",
    ),
    Table1Row(
        name="cheapbft",
        replicas="f+1 act. & f pass.",
        comm_steps="3 (+3)",
        msgs_normal=lambda f: 2 * f * f + 4 * f + 2,
        msgs_normal_expr="2f^2+4f+2",
        msgs_view_change=lambda f: 8 * f * f + 6 * f + 1,
        msgs_view_change_expr="8f^2+6f+1",
        optimistic=True,
        trusted_component="Trusted counter - Constant",
    ),
    Table1Row(
        name="hotstuff",
        replicas="3f+1",
        comm_steps="8",
        msgs_normal=lambda f: 24 * f + 8,
        msgs_normal_expr="24f+8",
        msgs_view_change=None,
        msgs_view_change_expr="-",
        optimistic=False,
        trusted_component="-",
    ),
    Table1Row(
        name="hotstuff-m",
        replicas="2f+1",
        comm_steps="11",
        msgs_normal=lambda f, d=HOTSTUFF_M_D: (24 + 9 * d) * f + (8 + 3 * d),
        msgs_normal_expr="(24+9d)f+(8+3d)",
        msgs_view_change=None,
        msgs_view_change_expr="-",
        optimistic=False,
        trusted_component="Append-only logs - Linear with # msgs",
    ),
    Table1Row(
        name="damysus",
        replicas="2f+1",
        comm_steps="6",
        msgs_normal=lambda f: 12 * f + 6,
        msgs_normal_expr="12f+6",
        msgs_view_change=None,
        msgs_view_change_expr="-",
        optimistic=False,
        trusted_component="Checker & Accumulator - Constant",
    ),
    Table1Row(
        name="chained-damysus",
        replicas="2f+1",
        comm_steps="6",
        msgs_normal=lambda f: 12 * f + 6,
        msgs_normal_expr="12f+6",
        msgs_view_change=None,
        msgs_view_change_expr="-",
        optimistic=False,
        trusted_component="Checker & Accumulator - Constant",
    ),
]

_BY_NAME = {row.name: row for row in TABLE1_ROWS}


def table1(f: int) -> list[dict]:
    """Table 1 instantiated at a given fault threshold."""
    rows = []
    for row in TABLE1_ROWS:
        normal, view_change = row.format_counts(f)
        rows.append(
            {
                "protocol": row.name,
                "replicas": row.replicas,
                "comm_steps": row.comm_steps,
                "msgs_normal": normal,
                "msgs_normal_expr": row.msgs_normal_expr,
                "msgs_view_change": view_change,
                "optimistic": row.optimistic,
                "trusted_component": row.trusted_component,
            }
        )
    return rows


def expected_messages(protocol: str, f: int) -> int:
    """Normal-case messages per decided block, per Table 1."""
    # The simulator also implements Damysus-C and Damysus-A, which Table 1
    # does not list; derive their counts from steps x replicas.
    extra = {
        "damysus-c": lambda f: 8 * (2 * f + 1),  # 16f+8
        "damysus-a": lambda f: 6 * (3 * f + 1),  # 18f+6
        "chained-hotstuff": lambda f: 24 * f + 8,
    }
    if protocol in _BY_NAME:
        return _BY_NAME[protocol].msgs_normal(f)
    if protocol in extra:
        return extra[protocol](f)
    raise ConfigError(f"no Table 1 expression for {protocol!r}")
