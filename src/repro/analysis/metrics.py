"""Aggregation helpers over simulation results.

The paper reports averages over repetitions and improvement percentages
over the HotStuff baselines ("Damysus has an average throughput increase
of 87.5% and an average latency decrease of 45%", Section 8).  These
helpers compute exactly those quantities from :class:`RunResult` lists.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.sim import RunResult


def mean(values: list[float]) -> float:
    """Arithmetic mean; 0.0 for an empty list."""
    if not values:
        return 0.0
    return sum(values) / len(values)


@dataclass(frozen=True)
class Summary:
    """Averaged metrics of one (protocol, configuration) cell."""

    protocol: str
    f: int
    num_replicas: int
    throughput_kops: float
    latency_ms: float
    messages: float
    repetitions: int


def summarize_runs(runs: list[RunResult]) -> Summary:
    """Average repeated runs of the same configuration."""
    if not runs:
        raise ValueError("no runs to summarize")
    first = runs[0]
    return Summary(
        protocol=first.protocol,
        f=first.f,
        num_replicas=first.num_replicas,
        throughput_kops=mean([r.throughput_kops for r in runs]),
        latency_ms=mean([r.mean_latency_ms for r in runs]),
        messages=mean([float(r.messages_sent) for r in runs]),
        repetitions=len(runs),
    )


def improvement_percent(new: float, baseline: float) -> float:
    """Relative improvement of ``new`` over ``baseline`` in percent."""
    if baseline == 0:
        return 0.0
    return (new - baseline) / baseline * 100.0


def throughput_increase_percent(protocol_tput: float, baseline_tput: float) -> float:
    """Paper's "throughput increase of X%": positive = faster."""
    return improvement_percent(protocol_tput, baseline_tput)


def latency_decrease_percent(protocol_lat: float, baseline_lat: float) -> float:
    """Paper's "latency decrease of X%": positive = lower latency."""
    if baseline_lat == 0:
        return 0.0
    return (baseline_lat - protocol_lat) / baseline_lat * 100.0


def average_improvements(
    summaries: dict[int, Summary], baselines: dict[int, Summary]
) -> tuple[float, float]:
    """Average throughput-increase / latency-decrease over matching f values.

    This mirrors the paper's per-figure averages: one improvement value
    per fault threshold, then the arithmetic mean across thresholds.
    """
    tput: list[float] = []
    lat: list[float] = []
    for f, summary in summaries.items():
        base = baselines.get(f)
        if base is None:
            continue
        tput.append(throughput_increase_percent(summary.throughput_kops, base.throughput_kops))
        lat.append(latency_decrease_percent(summary.latency_ms, base.latency_ms))
    return mean(tput), mean(lat)
