"""Analytic models and scripted demonstrations.

* :mod:`~repro.analysis.complexity` - Table 1's closed-form replica,
  step and message counts for all eight protocols the paper compares.
* :mod:`~repro.analysis.metrics` - aggregation helpers over simulation
  results (means over seeds, improvement percentages for Fig 8).
* :mod:`~repro.analysis.counterexample` - the Section 4 demonstration
  that a plain trusted counter cannot make a 2f+1 streamlined protocol
  safe, and that the Damysus checker + accumulator close the hole.
* :mod:`~repro.analysis.chaos` - the chaos harness: protocols under
  fault plans (loss, partitions, crash/recovery), with safety asserted
  throughout and liveness asserted after the plan heals.
"""

from repro.analysis.chaos import (
    ChaosReport,
    run_chaos,
    run_standard_chaos,
    standard_chaos_plan,
)
from repro.analysis.complexity import TABLE1_ROWS, Table1Row, expected_messages, table1
from repro.analysis.counterexample import (
    run_checker_scenario,
    run_counter_scenario,
)
from repro.analysis.formulas import LatencyPrediction, predict_latency
from repro.analysis.metrics import (
    improvement_percent,
    latency_decrease_percent,
    mean,
    summarize_runs,
    throughput_increase_percent,
)
from repro.analysis.regression import RegressionReport, compare_files, compare_results
from repro.analysis.schedule_fuzz import FuzzOutcome, fuzz
from repro.analysis.traces import TraceCollector, ViewTrace

__all__ = [
    "ChaosReport",
    "run_chaos",
    "run_standard_chaos",
    "standard_chaos_plan",
    "Table1Row",
    "TABLE1_ROWS",
    "table1",
    "expected_messages",
    "run_counter_scenario",
    "run_checker_scenario",
    "mean",
    "summarize_runs",
    "improvement_percent",
    "throughput_increase_percent",
    "latency_decrease_percent",
    "predict_latency",
    "LatencyPrediction",
    "TraceCollector",
    "ViewTrace",
    "fuzz",
    "FuzzOutcome",
    "compare_results",
    "compare_files",
    "RegressionReport",
]
