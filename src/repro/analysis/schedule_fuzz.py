"""Randomized schedule exploration: safety across adversarial timings.

The paper proves safety for all message schedules; a simulator can't
enumerate them, but it can sample aggressively.  Each fuzz case runs a
protocol under a randomly drawn *hostile* schedule - pre-GST chaotic
delays, random crash sets of up to f replicas (including leaders), random
timeout settings - and asserts that the safety oracle stays clean and
that the run commits once the chaos ends.

This is the practical stand-in for the model checking the paper leaves
as future work (Section 6.5): hundreds of seeds explore orderings far
nastier than the benign benchmarks ever produce.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SystemConfig
from repro.costs import CostModel
from repro.protocols.registry import get_spec
from repro.runtime.sim import ConsensusSystem
from repro.sim.rng import RngStream


@dataclass(frozen=True)
class FuzzCase:
    """One sampled hostile schedule."""

    seed: int
    crashed: tuple[int, ...]
    gst_ms: float
    timeout_ms: float
    max_extra_ms: float


@dataclass
class FuzzOutcome:
    case: FuzzCase
    safe: bool
    committed: int
    violations: int


def draw_case(protocol: str, f: int, seed: int) -> FuzzCase:
    """Deterministically derive a hostile schedule from a seed."""
    rng = RngStream(seed, f"fuzz:{protocol}:{f}")
    spec = get_spec(protocol)
    n = spec.num_replicas(f)
    max_crashes = spec.max_faults(n)
    crash_count = rng.randint(0, max_crashes)
    pids = list(range(n))
    rng.shuffle(pids)
    return FuzzCase(
        seed=seed,
        crashed=tuple(sorted(pids[:crash_count])),
        gst_ms=rng.uniform(0.0, 400.0),
        timeout_ms=rng.uniform(120.0, 400.0),
        max_extra_ms=rng.uniform(50.0, 400.0),
    )


def run_case(protocol: str, f: int, case: FuzzCase, target_views: int = 3) -> FuzzOutcome:
    """Execute one fuzz case; safety violations are *recorded*, not raised."""
    config = SystemConfig(
        protocol=protocol,
        f=f,
        payload_bytes=0,
        block_size=5,
        seed=case.seed,
        timeout_ms=case.timeout_ms,
        costs=CostModel.zero(),
        gst_ms=case.gst_ms,
        delta_ms=80.0,
        pre_gst_extra_ms=case.max_extra_ms,
    )
    system = ConsensusSystem(config, strict_safety=False)
    system.crash_replicas(list(case.crashed))
    result = system.run_until_views(target_views, max_time_ms=120_000.0)
    return FuzzOutcome(
        case=case,
        safe=system.oracle.safe,
        committed=result.committed_blocks,
        violations=len(system.oracle.violations),
    )


def fuzz(protocol: str, f: int = 1, cases: int = 25, base_seed: int = 0) -> list[FuzzOutcome]:
    """Run ``cases`` sampled schedules; returns every outcome."""
    outcomes = []
    for i in range(cases):
        case = draw_case(protocol, f, base_seed + i)
        outcomes.append(run_case(protocol, f, case))
    return outcomes


def summarize(outcomes: list[FuzzOutcome]) -> str:
    unsafe = [o for o in outcomes if not o.safe]
    stalled = [o for o in outcomes if o.committed == 0 and not o.case.crashed]
    lines = [
        f"{len(outcomes)} schedules: {len(unsafe)} unsafe, "
        f"{len(stalled)} stalled fault-free runs"
    ]
    for outcome in unsafe:
        lines.append(f"  UNSAFE: {outcome.case}")
    return "\n".join(lines)
