"""Section 4's demonstration: a plain trusted counter is not enough.

The paper shows (Section 4.1) that equipping a 2f+1 HotStuff-like
protocol with TrInc/MinBFT-style trusted counters does *not* make it
safe: counters only guarantee per-value uniqueness, and because each
protocol message goes to a single recipient (the leader), a lagging node
cannot distinguish "the sender skipped values while talking to me" from
"the sender's earlier values went to other nodes" - so a Byzantine node
can help execute a block with one victim and then hide it from another.

``run_counter_scenario`` scripts exactly the paper's scenario with nodes
i (Byzantine), j and k: block ``b`` is executed by j in view 1, then i
leads view 2, uses only k's (stale) new-view, and drives k to execute a
conflicting ``b'`` - every certificate k verifies is genuine, yet safety
breaks.

``run_checker_scenario`` replays the same attack against the Damysus
trusted services and shows each avenue is closed: i's checker refuses to
lie about its latest prepared block, and the accumulator refuses to
certify any selection that understates it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.hashing import Hash, hash_fields
from repro.crypto.hmac_scheme import HmacScheme
from repro.crypto.keys import KeyDirectory
from repro.errors import TEERefusal
from repro.core.block import Block, create_leaf, genesis_block
from repro.core.executor import SafetyOracle
from repro.core.mempool import Transaction
from repro.tee.accumulator import AccumulatorService
from repro.tee.checker import Checker
from repro.tee.counter import CounterCertificate, TrustedCounter, verify_counter_certificate


@dataclass
class ScenarioResult:
    """Outcome of one scripted scenario."""

    safe: bool
    oracle: SafetyOracle
    log: list[str] = field(default_factory=list)
    refusals: int = 0

    def describe(self) -> str:
        lines = list(self.log)
        lines.append(f"=> safety {'PRESERVED' if self.safe else 'VIOLATED'}")
        return "\n".join(lines)


def _tx(i: int) -> Transaction:
    return Transaction(client_id=-1, tx_id=i, payload_bytes=0)


def _block(parent: Hash, view: int, tag: int) -> Block:
    return create_leaf(parent, view, (_tx(tag),))


class _CounterNode:
    """A correct node's view of the counter-augmented protocol.

    It verifies every received attestation and requires per-component
    values to increase *from its own perspective* - the strongest check a
    recipient can apply, since other nodes' traffic is invisible to it.
    """

    def __init__(self, name: str, pid: int, scheme, directory) -> None:
        self.name = name
        self.pid = pid
        self.scheme = scheme
        self.directory = directory
        self.counter = TrustedCounter(pid, scheme, directory)
        self.highest_seen: dict[int, int] = {}
        self.executed: list[Block] = []

    def attest(self, kind: str, view: int, block: Block) -> CounterCertificate:
        return self.counter.attest(hash_fields((kind, view, block.hash)))

    def accepts(self, kind: str, view: int, block: Block, cert: CounterCertificate) -> bool:
        if not verify_counter_certificate(self.scheme, self.directory, cert):
            return False
        if cert.message_digest != hash_fields((kind, view, block.hash)):
            return False
        last = self.highest_seen.get(cert.component_id, 0)
        if cert.value <= last:
            return False  # replay or equivocation on a value this node saw
        self.highest_seen[cert.component_id] = cert.value
        return True


def run_counter_scenario() -> ScenarioResult:
    """The unsafe run of Section 4.1 (nodes i, j, k; f = 1; quorum 2)."""
    scheme = HmacScheme(secret=b"counterexample")
    directory = KeyDirectory(scheme)
    for pid in range(3):
        directory.register_replica(pid)
    oracle = SafetyOracle(strict=False)
    log: list[str] = []

    node_i = _CounterNode("i", 0, scheme, directory)  # Byzantine
    node_j = _CounterNode("j", 1, scheme, directory)
    node_k = _CounterNode("k", 2, scheme, directory)

    genesis = genesis_block()

    # --- View 1, leader j: i and j execute b; k's messages are delayed. ---
    b = _block(genesis.hash, 1, tag=1)
    log.append("view 1 (leader j): i helps j run all phases on block b")
    for kind in ("new-view", "prepare", "pre-commit", "commit"):
        cert = node_i.attest(kind, 1, b)
        assert node_j.accepts(kind, 1, b, cert), "j must accept i's genuine messages"
    node_j.executed.append(b)
    oracle.record(node_j.pid, b.hash)
    log.append("j executes b (quorum {i, j}); k is lagging and saw nothing")

    # --- View 2, leader i: i uses only k's new-view and proposes b'. ---
    b_prime = _block(genesis.hash, 2, tag=2)
    log.append("view 2 (leader i): i extends the GENESIS block with b' (conflicts with b)")
    accepted_all = True
    for kind in ("prepare", "pre-commit", "commit", "decide"):
        cert = node_i.attest(kind, 2, b_prime)
        ok = node_k.accepts(kind, 2, b_prime, cert)
        accepted_all = accepted_all and ok
        log.append(
            f"  k verifies i's {kind} (counter value {cert.value}): "
            f"{'ACCEPTED' if ok else 'rejected'}"
        )
    if accepted_all:
        node_k.executed.append(b_prime)
        oracle.record(node_k.pid, b_prime.hash)
        log.append(
            "k executes b' - i's counter values 5..8 look fresh to k because "
            "values 1..4 were spent on messages addressed to j"
        )
    return ScenarioResult(safe=oracle.safe, oracle=oracle, log=log)


def run_checker_scenario() -> ScenarioResult:
    """The same attack against Damysus's Checker + Accumulator (f = 1)."""
    scheme = HmacScheme(secret=b"counterexample-checker")
    directory = KeyDirectory(scheme)
    for pid in range(3):
        directory.register_replica(pid)
    oracle = SafetyOracle(strict=False)
    log: list[str] = []
    refusals = 0

    genesis = genesis_block()
    quorum = 2  # f + 1
    checker_i = Checker(0, scheme, directory, genesis.hash, quorum)
    checker_j = Checker(1, scheme, directory, genesis.hash, quorum)
    checker_k = Checker(2, scheme, directory, genesis.hash, quorum)
    acc_i = AccumulatorService(0, scheme, directory, quorum)
    acc_j = AccumulatorService(1, scheme, directory, quorum)

    from repro.core.commitment import c_combine
    from repro.core.phases import Phase

    def nv_for(checker: Checker, view: int):
        """TEEsign until the commitment is stamped (view, nv_p).

        This is the replicas' new-view catch-up loop (Fig 2a lines
        41-47); it also burns the TEE's view-0 steps so consensus views
        start at 1, with genesis alone owning view 0.
        """
        while True:
            phi = checker.tee_sign()
            if phi.v_prep == view and phi.phase == Phase.NEW_VIEW:
                return phi

    # --- View 1, leader j: i and j prepare and execute b; k lags. ---
    nv_i = nv_for(checker_i, 1)
    nv_j = nv_for(checker_j, 1)
    acc1 = acc_j.accumulate([nv_j, nv_i])
    b = _block(acc1.prep_hash, 1, tag=1)
    prep_j = checker_j.tee_prepare(b.hash, acc1)
    prep_i = checker_i.tee_prepare(b.hash, acc1)
    combined = c_combine([prep_j, prep_i])
    checker_j.tee_store(combined)
    checker_i.tee_store(combined)  # i's checker now irrevocably knows b
    oracle.record(1, b.hash)
    log.append("view 1 (leader j): i and j prepare, store and execute block b")

    # k catches up its checker to view 2's new-view step without having
    # seen b; its honest report still names the genesis block.
    nv_k = nv_for(checker_k, 2)
    assert nv_k.h_just == genesis.hash

    # --- View 2, leader i (Byzantine): try to hide b from k. ---
    nv_i2 = nv_for(checker_i, 2)  # skips intermediate steps until (2, nv_p)
    log.append(
        "view 2 (leader i): i's own new-view commitment is forced to name b "
        f"(reports prepared view {nv_i2.v_just})"
    )
    assert nv_i2.h_just == b.hash, "the checker cannot lie about the prepared block"

    # Attack 1: accumulate starting from k's stale commitment, hiding b.
    try:
        acc = acc_i.tee_start(nv_k)
        acc_i.tee_accum(acc, nv_i2)
        log.append("  attack 1 unexpectedly succeeded")
    except TEERefusal:
        refusals += 1
        log.append(
            "  attack 1 (accumulate k's stale report over i's) -> TEE REFUSED: "
            "i's commitment names a higher prepared block"
        )

    # Attack 2: accumulate honestly - the certificate then names b, so any
    # valid proposal for view 2 must extend b, not conflict with it.
    acc2 = acc_i.accumulate([nv_i2, nv_k])
    assert acc2.prep_hash == b.hash
    log.append(
        "  attack 2 (honest accumulation) -> certificate pins the proposal to "
        "extend b; no conflicting block can be validly proposed"
    )

    # Attack 3: replay view 1's accumulator for a conflicting view-2 block.
    b_prime = _block(genesis.hash, 2, tag=2)
    try:
        checker_k.tee_prepare(b_prime.hash, acc1)
        log.append("  attack 3 unexpectedly succeeded")
    except TEERefusal:
        refusals += 1
        log.append(
            "  attack 3 (replay the view-1 accumulator) -> k's checker REFUSED: "
            "accumulator view does not match"
        )

    # k therefore never executes anything conflicting with b.
    return ScenarioResult(safe=oracle.safe, oracle=oracle, log=log, refusals=refusals)
