"""PURE001-002: transitive effect-purity of the sans-I/O layer.

Protocol machines must be deterministic, effect-returning state machines
(ROADMAP: the same machine runs under the simulator and the socket
runtime, and replay/equivalence checks depend on it).  The import-level
DET/ARCH lint rules fence *direct* use of wall clocks, RNGs and I/O in
restricted packages - but they cannot see a leak through a call chain:
an entry point calling a helper in an unrestricted module that reads
``time.time()`` passes every per-file rule.

These rules close that hole: walk the call graph from every ``Machine``
subclass entry point (``start``/``on_message``/``on_timer``/... plus
anything the class adds to ``ENTRY_POINTS``) and flag reachable calls
into nondeterminism (PURE001: time, random, secrets, uuid, datetime) or
I/O (PURE002: files, sockets, subprocess, asyncio, env).  The traversal
deliberately does **not** descend into runtime-host modules
(``repro.runtime.asyncio_net``, ``repro.runtime.resilience``,
``repro.sim``...): the machine/runtime seam is exactly where effects
legitimately become real I/O, and crossing it would flag the by-design
boundary instead of a leak.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.dataflow.base import (
    Finding,
    ProjectContext,
    ProjectRule,
    in_package,
    register,
)
from repro.analysis.dataflow.graph import (
    ClassInfo,
    FunctionInfo,
    ProgramGraph,
    graph_for,
    scoped_statements,
)
from repro.analysis.engine import dotted_name

#: Entry points every Machine exposes; classes extend via ENTRY_POINTS.
_DEFAULT_ENTRY_POINTS = {"start", "on_message", "on_timer", "crash", "recover"}

#: Packages/modules the walk never descends into: the hosts that
#: legitimately interpret effects as real I/O, plus tooling.
_HOST_PREFIXES = (
    "repro.sim",
    "repro.bench",
    "repro.analysis",
    "repro.cli",
    "repro.runtime.asyncio_net",
    "repro.runtime.resilience",
    "repro.runtime.sim",
)

#: Module roots whose every call is nondeterministic.
_NONDET_MODULES = {"random", "secrets", "uuid"}

#: Qualified (module-ish, attr) tails that read entropy or clocks.
_NONDET_TAILS = {
    ("time", "time"),
    ("time", "monotonic"),
    ("time", "perf_counter"),
    ("time", "time_ns"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter_ns"),
    ("time", "process_time"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
    ("os", "urandom"),
    ("os", "getrandom"),
}

#: Module roots whose every call is I/O.
_IO_MODULES = {
    "socket", "subprocess", "shutil", "asyncio", "selectors", "signal",
    "tempfile", "glob", "http", "urllib", "requests",
}

#: Bare builtins performing I/O.
_IO_BUILTINS = {"open", "print", "input", "breakpoint"}

#: ``os.*`` / ``sys.*`` attrs that touch the outside world.
_OS_IO_ATTRS = {
    "replace", "remove", "rename", "unlink", "mkdir", "makedirs", "rmdir",
    "open", "write", "read", "close", "kill", "system", "popen", "fsync",
    "listdir", "stat", "getenv", "putenv", "environ",
}

#: Path-like methods that hit the filesystem, on any receiver.
_PATH_IO_ATTRS = {
    "read_text", "write_text", "read_bytes", "write_bytes", "touch",
}


def _banned_call(call: ast.Call) -> tuple[str, str] | None:
    """(rule_id, description) when the call is an effect, else ``None``."""
    name = dotted_name(call.func)
    if name is None:
        if isinstance(call.func, ast.Attribute):
            if call.func.attr in _PATH_IO_ATTRS:
                return ("PURE002", f"{call.func.attr}()")
        return None
    if name == "random.Random" and (call.args or call.keywords):
        # Explicitly seeded generator: deterministic by construction
        # (RngStream's backing store).  Argless Random() seeds from the
        # OS and stays banned.
        return None
    parts = name.split(".")
    if parts[0] in _NONDET_MODULES:
        return ("PURE001", f"{name}()")
    if len(parts) >= 2 and (parts[-2], parts[-1]) in _NONDET_TAILS:
        return ("PURE001", f"{name}()")
    if parts[0] in _IO_MODULES:
        return ("PURE002", f"{name}()")
    if len(parts) == 1 and parts[0] in _IO_BUILTINS:
        return ("PURE002", f"{name}()")
    if parts[0] in ("os", "sys") and parts[-1] in _OS_IO_ATTRS:
        return ("PURE002", f"{name}()")
    if parts[-1] in _PATH_IO_ATTRS:
        return ("PURE002", f"{name}()")
    return None


def _is_host_module(module: str) -> bool:
    return any(in_package(module, prefix) for prefix in _HOST_PREFIXES)


class _PurityWalk:
    """BFS over the call graph from Machine entry points."""

    def __init__(self, project: ProjectContext) -> None:
        self.graph: ProgramGraph = graph_for(project)
        #: (rule_id, FunctionInfo, call node, chain string), deduped.
        self.findings: list[tuple[str, FunctionInfo, ast.Call, str]] = []
        self._seen_sites: set[tuple[str, str, int]] = set()
        self._visited: set[str] = set()
        for machine_cls in self._machine_classes():
            for entry in self._entries(machine_cls):
                self._walk(entry, f"{machine_cls.name}.{entry.name}")

    # -- entry discovery ---------------------------------------------------

    def _machine_classes(self) -> list[ClassInfo]:
        return [
            cls
            for cls in self.graph.classes.values()
            if not _is_host_module(cls.module)
            and any(a.name == "Machine" for a in self.graph.ancestors(cls))
        ]

    def _entry_names(self, cls: ClassInfo) -> set[str]:
        names = set(_DEFAULT_ENTRY_POINTS)
        for ancestor in self.graph.ancestors(cls):
            for item in ancestor.node.body:
                value: ast.expr | None = None
                if isinstance(item, ast.Assign) and any(
                    isinstance(t, ast.Name) and t.id == "ENTRY_POINTS"
                    for t in item.targets
                ):
                    value = item.value
                elif (
                    isinstance(item, ast.AnnAssign)
                    and isinstance(item.target, ast.Name)
                    and item.target.id == "ENTRY_POINTS"
                ):
                    value = item.value
                if value is not None:
                    for sub in ast.walk(value):
                        if isinstance(sub, ast.Constant) and isinstance(
                            sub.value, str
                        ):
                            names.add(sub.value)
        return names

    def _entries(self, cls: ClassInfo) -> list[FunctionInfo]:
        out: list[FunctionInfo] = []
        for name in sorted(self._entry_names(cls)):
            for ancestor in self.graph.ancestors(cls):
                if name in ancestor.methods:
                    out.append(ancestor.methods[name])
                    break
        return out

    # -- traversal ---------------------------------------------------------

    def _walk(self, entry: FunctionInfo, entry_label: str) -> None:
        queue: list[tuple[FunctionInfo, str]] = [(entry, entry_label)]
        while queue:
            fn, chain = queue.pop(0)
            if fn.qualname in self._visited:
                continue
            self._visited.add(fn.qualname)
            for node in scoped_statements(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                banned = _banned_call(node)
                if banned is not None:
                    rule_id, what = banned
                    key = (rule_id, fn.ctx.rel, node.lineno)
                    if key not in self._seen_sites:
                        self._seen_sites.add(key)
                        self.findings.append((
                            rule_id,
                            fn,
                            node,
                            f"{what} reachable from machine entry point "
                            f"{chain}",
                        ))
                    continue
                for callee in self.graph.resolve_call(node, fn):
                    if _is_host_module(callee.module):
                        continue
                    if callee.qualname not in self._visited:
                        queue.append((callee, f"{chain} -> {callee.label()}"))


_WALK_ATTR = "_repro_purity_walk"


def _walk_for(project: ProjectContext) -> _PurityWalk:
    walk = getattr(project, _WALK_ATTR, None)
    if walk is None:
        walk = _PurityWalk(project)
        setattr(project, _WALK_ATTR, walk)
    return walk


class _PureRule(ProjectRule):
    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for rule_id, fn, node, message in _walk_for(project).findings:
            if rule_id == self.rule_id:
                yield fn.ctx.finding(self, node, message)


@register
class ReachableNondeterminismRule(_PureRule):
    """PURE001: nondeterminism reachable from a Machine entry point."""

    rule_id = "PURE001"
    title = "nondeterminism reachable from a protocol machine"
    hint = (
        "machines must stay deterministic: take time from machine.clock "
        "and randomness from a seeded RngStream, or move the call behind "
        "the runtime boundary"
    )


@register
class ReachableIoRule(_PureRule):
    """PURE002: I/O reachable from a Machine entry point."""

    rule_id = "PURE002"
    title = "I/O reachable from a protocol machine"
    hint = (
        "machines communicate only through returned effects; perform "
        "file/socket work in the runtime host that interprets them"
    )
