"""Registry and entry point for ``repro analyze``.

Mirrors :mod:`repro.analysis.lint.engine`: the generic machinery lives
in :mod:`repro.analysis.engine`, this module owns the analyze-specific
registry and defaults.  Rule modules import their vocabulary from here.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.analysis.engine import (  # noqa: F401  (re-exported rule vocabulary)
    FileContext,
    Finding,
    ProjectContext,
    ProjectRule,
    Rule,
    RuleRegistry,
    dotted_name,
    format_findings_json,
    format_findings_text,
    in_package,
    load_baseline,
    module_name,
    run_rules,
    write_baseline,
)

#: Default baseline location, resolved against the current directory.
BASELINE_DEFAULT = ".repro-analyze-baseline.json"

_REGISTRY = RuleRegistry("repro analyze")
REGISTRY = _REGISTRY.rules

register = _REGISTRY.register


def all_analyze_rule_ids() -> list[str]:
    return _REGISTRY.ids()


def run_analyze(
    paths: Sequence[Path | str],
    *,
    rules: Sequence[str] | None = None,
    baseline: set[str] | None = None,
) -> list[Finding]:
    """Run the dataflow analyses over ``paths``; return surviving findings."""
    return run_rules(paths, _REGISTRY, rules=rules, baseline=baseline)
