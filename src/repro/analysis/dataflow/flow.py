"""Intra-function taint propagation for the TAINT rule family.

The model is deliberately small and flow-insensitive: per function, a
fixpoint over local names.  A name is *tainted* when its value may carry
host-influenced data (a source parameter or anything derived from one
through assignments, dataclass construction, attribute access or
arbitrary calls).  A name is *sanitized* - and stays clean through the
fixpoint - when the function provably verified it:

* it was passed to (or was the receiver of) a registered verifier call
  (``verify_checkpoint``, ``_verify_commitment``, ...), or
* it was pinned by an **equality** comparison inside a guard that
  raises.  Only ``==``/``!=`` count: an ordering comparison constrains a
  value without authenticating it - ``height <= self._ckpt_height`` is
  exactly the check the PR-6 ``tee_checkpoint`` bug hid behind.

Sanitization closes over simple name aliases in both directions:
``tip = block_hash`` followed by a check of ``tip`` clears
``block_hash`` too (the checked value *is* the parameter), and a copy
of a checked name is itself checked.

Neutral builtins (``len``, ``int``, ``isinstance``...) produce untainted
values: ``self._height + len(headers)`` derives a count from tainted
input, not the input itself.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.dataflow.graph import FunctionInfo, scoped_statements

#: Calls whose result carries no taint from their arguments.  Kept
#: deliberately tiny: only pure *shape* queries qualify.  Conversions
#: (``int``, ``str``) and selections (``max``, ``sorted``) preserve host
#: influence - ``int(msg.height)`` is still the host's height.
NEUTRAL_CALLS = {
    "len", "isinstance", "issubclass", "type", "hasattr", "callable", "id",
}

#: The registered verifier catalog: a call to any of these sanitizes its
#: arguments and receiver.  Kept in one place so the docs, the TAINT
#: rules, and the suppression story all point at the same list.
VERIFIERS = frozenset({
    "verify",  # Commitment.verify / Accumulator.verify / QuorumCert.verify
    "verify_cached",
    "verify_many",
    "verify_many_cached",
    "verify_batch",
    "verify_all",
    "verify_qc",
    "verify_checkpoint",
    "verify_decide_qc",
    "verify_commitment",
    "_verify_commitment",
    "_verify_accumulator",
    "_verify_chained_certificate",
    "_verify_working",
    "_check_new_view_commitment",
    "_check_report",
})


def expr_roots(node: ast.AST) -> set[str]:
    """Local names whose taint the expression's value could carry."""
    roots: set[str] = set()

    def visit(sub: ast.AST) -> None:
        if isinstance(sub, ast.Call):
            name = _call_name(sub)
            if name in NEUTRAL_CALLS:
                return
            if isinstance(sub.func, ast.Attribute):
                visit(sub.func.value)  # method result carries receiver taint
            for arg in sub.args:
                visit(arg)
            for kw in sub.keywords:
                visit(kw.value)
            return
        if isinstance(sub, ast.Attribute):
            visit(sub.value)
            return
        if isinstance(sub, ast.Name):
            roots.add(sub.id)
            return
        for child in ast.iter_child_nodes(sub):
            visit(child)

    visit(node)
    roots.discard("self")
    roots.discard("cls")
    return roots


def _call_name(call: ast.Call) -> str | None:
    """Last segment of the called name (``x.y.f(...)`` -> ``f``)."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


@dataclass
class CallSite:
    """One call expression, pre-digested for taint checks."""

    node: ast.Call
    name: str
    #: Root names of the receiver expression (``self.checker.f(...)`` -> set()).
    recv_roots: set[str]
    #: Root-name sets per positional argument.
    arg_roots: list[set[str]]
    #: Root-name sets per keyword argument.
    kwarg_roots: dict[str, set[str]]


@dataclass
class FunctionFlow:
    """The taint-relevant events of one function body."""

    fn: FunctionInfo
    #: ``(target names, value root names)`` per assignment/for-target.
    assigns: list[tuple[set[str], set[str]]] = field(default_factory=list)
    #: Simple ``x = y`` aliases (both plain names).
    aliases: list[tuple[str, str]] = field(default_factory=list)
    #: ``self.attr = value`` writes: ``(attr, value roots, node)``.
    attr_writes: list[tuple[str, set[str], ast.AST]] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    #: Names cleared by verifier calls and equality guards (alias-closed).
    sanitized: set[str] = field(default_factory=set)

    @classmethod
    def build(cls, fn: FunctionInfo, verifiers: frozenset[str] = VERIFIERS) -> "FunctionFlow":
        flow = cls(fn)
        for node in scoped_statements(fn.node):
            flow._collect(node, verifiers)
        flow._close_aliases()
        return flow

    # -- collection --------------------------------------------------------

    def _collect(self, node: ast.AST, verifiers: frozenset[str]) -> None:
        if isinstance(node, ast.Assign):
            roots = expr_roots(node.value)
            for target in node.targets:
                self._collect_target(target, node.value, roots, node)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            self._collect_target(node.target, node.value, expr_roots(node.value), node)
        elif isinstance(node, ast.AugAssign):
            roots = expr_roots(node.value)
            if isinstance(node.target, ast.Name):
                roots = roots | {node.target.id}  # x += y reads x too
                self.assigns.append(({node.target.id}, roots))
            else:
                self._collect_target(node.target, node.value, roots, node)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self._collect_target(node.target, node.iter, expr_roots(node.iter), node)
        elif isinstance(node, ast.Call):
            self._collect_call(node, verifiers)
        elif isinstance(node, (ast.If, ast.Assert)):
            self._collect_guard(node)
        elif isinstance(node, (ast.withitem,)) and node.optional_vars is not None:
            self._collect_target(
                node.optional_vars, node.context_expr, expr_roots(node.context_expr), node
            )

    def _collect_target(
        self, target: ast.expr, value: ast.expr, roots: set[str], stmt: ast.AST
    ) -> None:
        if isinstance(target, ast.Name):
            self.assigns.append(({target.id}, roots))
            if isinstance(value, ast.Name):
                self.aliases.append((target.id, value.id))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                inner = elt.value if isinstance(elt, ast.Starred) else elt
                self._collect_target(inner, value, roots, stmt)
        elif isinstance(target, ast.Attribute):
            recv = target.value
            if isinstance(recv, ast.Name) and recv.id in ("self", "cls"):
                self.attr_writes.append((target.attr, roots, target))

    def _collect_call(self, node: ast.Call, verifiers: frozenset[str]) -> None:
        name = _call_name(node)
        if name is None:
            return
        recv_roots: set[str] = set()
        if isinstance(node.func, ast.Attribute):
            recv_roots = expr_roots(node.func.value)
        site = CallSite(
            node=node,
            name=name,
            recv_roots=recv_roots,
            arg_roots=[expr_roots(arg) for arg in node.args],
            kwarg_roots={
                kw.arg: expr_roots(kw.value)
                for kw in node.keywords
                if kw.arg is not None
            },
        )
        self.calls.append(site)
        if name in verifiers:
            self.sanitized |= recv_roots
            for roots in site.arg_roots:
                self.sanitized |= roots
            for roots in site.kwarg_roots.values():
                self.sanitized |= roots

    def _collect_guard(self, node: ast.If | ast.Assert) -> None:
        """Equality comparisons in a raising guard (or assert) sanitize."""
        if isinstance(node, ast.If):
            if not any(isinstance(stmt, ast.Raise) for stmt in node.body):
                return
            test = node.test
        else:
            test = node.test
        for sub in ast.walk(test):
            if not isinstance(sub, ast.Compare):
                continue
            if not all(isinstance(op, (ast.Eq, ast.NotEq)) for op in sub.ops):
                continue
            self.sanitized |= expr_roots(sub.left)
            for comparator in sub.comparators:
                self.sanitized |= expr_roots(comparator)

    def _close_aliases(self) -> None:
        """Close sanitization over ``x = y`` aliases, both directions."""
        changed = True
        while changed:
            changed = False
            for target, source in self.aliases:
                if target in self.sanitized and source not in self.sanitized:
                    self.sanitized.add(source)
                    changed = True
                if source in self.sanitized and target not in self.sanitized:
                    self.sanitized.add(target)
                    changed = True

    # -- taint fixpoint ----------------------------------------------------

    def tainted(self, sources: set[str]) -> set[str]:
        """Names reachable from ``sources`` minus everything sanitized."""
        tainted = set(sources) - self.sanitized
        changed = True
        while changed:
            changed = False
            for targets, roots in self.assigns:
                if roots & tainted:
                    fresh = targets - self.sanitized - tainted
                    if fresh:
                        tainted |= fresh
                        changed = True
        return tainted
