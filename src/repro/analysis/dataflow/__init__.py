"""``repro analyze``: whole-program dataflow analysis.

Where ``repro lint`` checks per-file syntactic invariants, this package
builds a symbol table and call graph over the whole tree
(:mod:`.graph`) and runs three interprocedural rule families on top:

* ``TAINT00x`` - host-influenced data crossing the TEE trust boundary
  without passing a registered verifier (:mod:`.rules_taint`); the
  family that re-detects the PR-6 ``tee_checkpoint`` bug, where
  host-supplied ``height``/``state_root`` were certified unverified;
* ``PURE00x`` - transitive effect-purity: nondeterminism or I/O
  reachable through the call graph from a ``Machine`` entry point
  (:mod:`.rules_pure`);
* ``ASYNC00x`` - await-race hazards in the asyncio runtime
  (:mod:`.rules_async`).

Suppression (``# repro-analyze: ignore[RULE]``) and baselines share the
lint engine's machinery (:mod:`repro.analysis.engine`), so both tools
behave identically around a finding.
"""

from repro.analysis.dataflow.base import (
    BASELINE_DEFAULT,
    Finding,
    all_analyze_rule_ids,
    format_findings_json,
    format_findings_text,
    load_baseline,
    run_analyze,
    write_baseline,
)
from repro.analysis.dataflow import (  # noqa: F401  (register rules)
    rules_async,
    rules_pure,
    rules_taint,
)

__all__ = [
    "BASELINE_DEFAULT",
    "Finding",
    "all_analyze_rule_ids",
    "format_findings_json",
    "format_findings_text",
    "load_baseline",
    "run_analyze",
    "write_baseline",
]
