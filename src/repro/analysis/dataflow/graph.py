"""Symbol table and call graph for ``repro analyze``.

The dataflow rules need to reason across function boundaries: a tainted
wire-message field handed through one helper call, or a wall-clock read
three frames below a ``Machine`` entry point.  :class:`ProgramGraph`
builds the whole-program view those rules share - every top-level class
and function of the parsed project, base-class links, per-module import
aliases - and resolves call expressions to candidate callees.

Resolution is name-based and deliberately over-approximate (no type
inference): ``self.m(...)`` resolves through the receiver's class
hierarchy (ancestors for inherited implementations, descendants for
overrides), bare names through the defining module then its imports,
and ``obj.m(...)`` on an unknown receiver falls back to every project
method named ``m``.  Over-approximation errs toward *more* paths, which
is the right direction for trust-boundary and purity analyses: a missed
edge hides a bug, a spurious edge at worst costs a reviewed suppression.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator
from weakref import WeakKeyDictionary

from repro.analysis.engine import FileContext, ProjectContext

#: Container/str method names never treated as project-method calls when
#: the receiver is unknown: ``votes.append(x)`` must not resolve to some
#: unrelated class's ``append``.  Explicit ``self.append(...)`` still
#: resolves through the hierarchy.
_OPAQUE_METHOD_NAMES = {
    "append", "add", "clear", "pop", "popleft", "update", "get", "items",
    "keys", "values", "discard", "remove", "extend", "insert", "setdefault",
    "popitem", "copy", "sort", "count", "index", "join", "split", "strip",
    "encode", "decode", "hex", "format", "startswith", "endswith", "items",
}


@dataclass
class FunctionInfo:
    """One top-level function or method of the parsed project."""

    module: str
    qualname: str  # "pkg.mod.func" or "pkg.mod.Class.method"
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    ctx: FileContext
    cls: "ClassInfo | None" = None

    @property
    def is_method(self) -> bool:
        return self.cls is not None

    def params(self) -> list[str]:
        """Positional parameter names, ``self``/``cls`` excluded."""
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args]
        if self.is_method and names and names[0] in ("self", "cls"):
            names = names[1:]
        names += [a.arg for a in args.kwonlyargs]
        return names

    def label(self) -> str:
        """Short human label: ``Class.method`` or ``func``."""
        if self.cls is not None:
            return f"{self.cls.name}.{self.name}"
        return self.name


@dataclass
class ClassInfo:
    """One top-level class: its methods and (textual) base names."""

    module: str
    qualname: str
    name: str
    node: ast.ClassDef
    ctx: FileContext
    bases: list[str] = field(default_factory=list)
    methods: dict[str, FunctionInfo] = field(default_factory=dict)


def scoped_statements(fn: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs/classes.

    Events found inside a nested function belong to *that* function's
    analysis, not its enclosing one.
    """
    stack: list[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


class ProgramGraph:
    """Whole-program symbol table + call resolution over a project."""

    def __init__(self, project: ProjectContext) -> None:
        self.project = project
        self.classes: dict[str, ClassInfo] = {}
        self.classes_by_name: dict[str, list[ClassInfo]] = {}
        self.functions: dict[str, FunctionInfo] = {}  # module-level, by qualname
        self.module_functions: dict[tuple[str, str], FunctionInfo] = {}
        self.methods_by_name: dict[str, list[FunctionInfo]] = {}
        self.imports: dict[str, dict[str, str]] = {}  # module -> alias -> dotted
        self._subclasses: dict[str, list[ClassInfo]] | None = None
        for ctx in project.files:
            self._index_file(ctx)

    # -- indexing ----------------------------------------------------------

    def _index_file(self, ctx: FileContext) -> None:
        aliases: dict[str, str] = {}
        self.imports[ctx.module] = aliases
        for node in ctx.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    aliases[alias.asname or alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:  # relative import: anchor at this package
                    parts = ctx.module.split(".")
                    parts = parts[: len(parts) - node.level]
                    base = ".".join(parts + ([node.module] if node.module else []))
                for alias in node.names:
                    aliases[alias.asname or alias.name] = f"{base}.{alias.name}"
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    module=ctx.module,
                    qualname=f"{ctx.module}.{node.name}",
                    name=node.name,
                    node=node,
                    ctx=ctx,
                )
                self.functions[info.qualname] = info
                self.module_functions[(ctx.module, node.name)] = info
            elif isinstance(node, ast.ClassDef):
                self._index_class(ctx, node)

    def _index_class(self, ctx: FileContext, node: ast.ClassDef) -> None:
        cls = ClassInfo(
            module=ctx.module,
            qualname=f"{ctx.module}.{node.name}",
            name=node.name,
            node=node,
            ctx=ctx,
            bases=[b.attr if isinstance(b, ast.Attribute) else b.id
                   for b in node.bases
                   if isinstance(b, (ast.Attribute, ast.Name))],
        )
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    module=ctx.module,
                    qualname=f"{cls.qualname}.{item.name}",
                    name=item.name,
                    node=item,
                    ctx=ctx,
                    cls=cls,
                )
                cls.methods[item.name] = info
                self.methods_by_name.setdefault(item.name, []).append(info)
        self.classes[cls.qualname] = cls
        self.classes_by_name.setdefault(cls.name, []).append(cls)

    # -- hierarchy ---------------------------------------------------------

    def resolve_class_name(self, name: str, module: str) -> ClassInfo | None:
        """A class referenced by ``name`` from ``module``, if indexed."""
        cls = self.classes.get(f"{module}.{name}")
        if cls is not None:
            return cls
        target = self.imports.get(module, {}).get(name)
        if target is not None and target in self.classes:
            return self.classes[target]
        candidates = self.classes_by_name.get(name, [])
        return candidates[0] if len(candidates) == 1 else None

    def ancestors(self, cls: ClassInfo) -> Iterator[ClassInfo]:
        """``cls`` and its transitive (resolvable) base classes."""
        seen: set[str] = set()
        stack = [cls]
        while stack:
            cur = stack.pop()
            if cur.qualname in seen:
                continue
            seen.add(cur.qualname)
            yield cur
            for base in cur.bases:
                resolved = self.resolve_class_name(base, cur.module)
                if resolved is not None:
                    stack.append(resolved)

    def subclasses(self, cls: ClassInfo) -> list[ClassInfo]:
        """Transitive subclasses of ``cls`` across the project."""
        if self._subclasses is None:
            self._subclasses = {}
            for candidate in self.classes.values():
                for ancestor in self.ancestors(candidate):
                    if ancestor is not candidate:
                        self._subclasses.setdefault(ancestor.qualname, []).append(
                            candidate
                        )
        out: list[ClassInfo] = []
        seen: set[str] = set()
        stack = list(self._subclasses.get(cls.qualname, []))
        while stack:
            sub = stack.pop()
            if sub.qualname in seen:
                continue
            seen.add(sub.qualname)
            out.append(sub)
            stack.extend(self._subclasses.get(sub.qualname, []))
        return out

    def resolve_method(self, cls: ClassInfo, name: str) -> list[FunctionInfo]:
        """Candidate implementations of ``cls.name``: MRO walk + overrides."""
        found: dict[str, FunctionInfo] = {}
        for ancestor in self.ancestors(cls):
            if name in ancestor.methods and name not in found:
                found[ancestor.methods[name].qualname] = ancestor.methods[name]
                break  # nearest inherited implementation
        for sub in self.subclasses(cls):
            if name in sub.methods:
                found.setdefault(sub.methods[name].qualname, sub.methods[name])
        return list(found.values())

    # -- call resolution ---------------------------------------------------

    def resolve_call(self, call: ast.Call, caller: FunctionInfo) -> list[FunctionInfo]:
        """Candidate callees of ``call`` as written inside ``caller``."""
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_bare(func.id, caller.module)
        if isinstance(func, ast.Attribute):
            recv = func.value
            if (
                isinstance(recv, ast.Name)
                and recv.id in ("self", "cls")
                and caller.cls is not None
            ):
                targets = self.resolve_method(caller.cls, func.attr)
                if targets:
                    return targets
            # ``module.func(...)`` through an import alias.
            if isinstance(recv, ast.Name):
                target = self.imports.get(caller.module, {}).get(recv.id)
                if target is not None:
                    qual = f"{target}.{func.attr}"
                    if qual in self.functions:
                        return [self.functions[qual]]
                    if qual in self.classes:
                        init = self.classes[qual].methods.get("__init__")
                        return [init] if init else []
            # Unknown receiver: every project method of that name.
            if func.attr in _OPAQUE_METHOD_NAMES:
                return []
            return list(self.methods_by_name.get(func.attr, []))
        return []

    def _resolve_bare(self, name: str, module: str) -> list[FunctionInfo]:
        info = self.module_functions.get((module, name))
        if info is not None:
            return [info]
        target = self.imports.get(module, {}).get(name)
        if target is not None:
            if target in self.functions:
                return [self.functions[target]]
            if target in self.classes:
                init = self.classes[target].methods.get("__init__")
                return [init] if init else []
        cls = self.classes.get(f"{module}.{name}")
        if cls is not None:
            init = cls.methods.get("__init__")
            return [init] if init else []
        return []


_GRAPH_CACHE: "WeakKeyDictionary[ProjectContext, ProgramGraph]" = WeakKeyDictionary()


def graph_for(project: ProjectContext) -> ProgramGraph:
    """The (cached) program graph of one analysis run's project."""
    graph = _GRAPH_CACHE.get(project)
    if graph is None:
        graph = ProgramGraph(project)
        _GRAPH_CACHE[project] = graph
    return graph
