"""ASYNC001-002: await-race detection for the asyncio runtime.

asyncio is cooperatively scheduled: code between two ``await``s runs
atomically, but *across* an ``await`` any other task may interleave.
The classic hazard is a read-modify-write of shared instance state
spanning a suspension point - ``tasks = list(self._tasks)``, ``await
gather(...)``, ``self._tasks.clear()`` - where a task registered during
the await is silently dropped by the stale clear.

**ASYNC001** flags, per async function and per ``self.<attr>`` (or
``nonlocal`` name): a read at line *r*, an ``await`` (including ``async
for``/``async with`` headers, which also suspend) at line *a*, and a
write at line *w* with ``r < a < w``, unless both the read and the
write sit inside the same ``async with`` over a lock-like object (name
containing ``lock``/``mutex``/``sem``).  Mutating method calls
(``clear``, ``append``, ``pop``...) count as writes only - ``add`` /
``discard`` of independent elements is not a stale read.  Textual
ordering approximates program order, which is exact for straight-line
teardown code and conservative in loops.

**ASYNC002** flags an ``await`` inside a ``for``/``while`` loop that is
itself inside an ``async with`` lock block: holding a lock across a
loop of suspension points starves every other task contending for it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.dataflow.base import (
    FileContext,
    Finding,
    Rule,
    register,
)
from repro.analysis.dataflow.graph import scoped_statements
from repro.analysis.engine import receiver_tokens

#: Method names that mutate their receiver in place.
_MUTATORS = {
    "append", "add", "clear", "pop", "popleft", "remove", "discard",
    "update", "extend", "insert", "setdefault", "popitem",
}

_LOCKISH = ("lock", "mutex", "sem")


def _is_lockish(expr: ast.expr) -> bool:
    return any(
        any(part in token.lower() for part in _LOCKISH)
        for token in receiver_tokens(expr)
    )


class _AsyncEvents:
    """Reads/writes/awaits of one async function, by line number."""

    def __init__(self, fn: ast.AsyncFunctionDef) -> None:
        self.reads: dict[str, list[int]] = {}
        self.writes: dict[str, list[int]] = {}
        self.awaits: list[int] = []
        #: [start, end] line ranges of ``async with <lock>`` blocks.
        self.lock_ranges: list[tuple[int, int]] = []
        #: (loop start, loop end) for loops inside a lock range.
        self.locked_loops: list[tuple[int, int]] = []
        self._nonlocals: set[str] = set()
        #: Receiver nodes consumed by a mutator call (identity-keyed).
        self._mutated_receivers: set[ast.expr] = set()
        self._collect(fn)

    def _attr_name(self, node: ast.expr) -> str | None:
        """``self.X`` -> ``X``; nonlocal name -> name; else ``None``."""
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        if isinstance(node, ast.Name) and node.id in self._nonlocals:
            return node.id
        return None

    def _collect(self, fn: ast.AsyncFunctionDef) -> None:
        nodes = list(scoped_statements(fn))
        for node in nodes:
            if isinstance(node, ast.Nonlocal):
                self._nonlocals.update(node.names)
        for node in nodes:
            if isinstance(node, ast.Await):
                self.awaits.append(node.lineno)
            elif isinstance(node, (ast.AsyncFor, ast.AsyncWith)):
                self.awaits.append(node.lineno)  # headers suspend too
                if isinstance(node, ast.AsyncWith) and any(
                    _is_lockish(item.context_expr) for item in node.items
                ):
                    end = node.end_lineno or node.lineno
                    self.lock_ranges.append((node.lineno, end))
                    for sub in ast.walk(node):
                        if isinstance(sub, (ast.For, ast.While, ast.AsyncFor)):
                            self.locked_loops.append(
                                (sub.lineno, sub.end_lineno or sub.lineno)
                            )
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                # self.X.mutator(...): a write to X, and the receiver
                # attribute node must not double-count as a read.
                name = self._attr_name(node.func.value)
                if name is not None and node.func.attr in _MUTATORS:
                    self.writes.setdefault(name, []).append(node.lineno)
                    self._mutated_receivers.add(node.func.value)
        for node in nodes:
            if isinstance(node, (ast.Attribute, ast.Name)):
                name = self._attr_name(node)
                if name is None or node in self._mutated_receivers:
                    continue
                if isinstance(node.ctx, (ast.Store, ast.Del)):
                    self.writes.setdefault(name, []).append(node.lineno)
                else:
                    self.reads.setdefault(name, []).append(node.lineno)

    def _locked_together(self, read: int, write: int) -> bool:
        return any(
            start <= read <= end and start <= write <= end
            for start, end in self.lock_ranges
        )

    def races(self) -> Iterator[tuple[str, int, int, int]]:
        """(attr, read line, await line, write line) triples, one per attr."""
        for attr, writes in sorted(self.writes.items()):
            reads = self.reads.get(attr, [])
            hit = None
            for read in sorted(reads):
                for write in sorted(writes):
                    if read >= write:
                        continue
                    awaited = next(
                        (a for a in sorted(self.awaits) if read < a < write),
                        None,
                    )
                    if awaited is not None and not self._locked_together(
                        read, write
                    ):
                        hit = (attr, read, awaited, write)
                        break
                if hit:
                    break
            if hit:
                yield hit

    def loop_awaits_under_lock(self) -> Iterator[int]:
        for await_line in sorted(self.awaits):
            for start, end in self.locked_loops:
                # The loop header itself (an async-for await) is the
                # loop, not a suspension inside it.
                if start < await_line <= end:
                    yield await_line
                    break


def _async_functions(ctx: FileContext) -> Iterator[ast.AsyncFunctionDef]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.AsyncFunctionDef):
            yield node


def _line_node(fn: ast.AsyncFunctionDef, lineno: int) -> ast.AST:
    """The smallest statement anchored at ``lineno`` (for suppression)."""
    best: ast.AST = fn
    for node in ast.walk(fn):
        if getattr(node, "lineno", None) == lineno and isinstance(
            node, (ast.stmt, ast.expr)
        ):
            return node
    return best


@register
class AwaitRaceRule(Rule):
    """ASYNC001: read-modify-write of shared state across an await."""

    rule_id = "ASYNC001"
    title = "read-modify-write spans an await without a lock"
    hint = (
        "snapshot-and-detach the shared state before awaiting (read and "
        "write in the same inter-await segment), or guard both sides "
        "with the same asyncio.Lock"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        for fn in _async_functions(ctx):
            events = _AsyncEvents(fn)
            for attr, read, awaited, write in events.races():
                yield ctx.finding(
                    self,
                    _line_node(fn, write),
                    f"{fn.name}: '{attr}' read at line {read} and written "
                    f"at line {write} across the await at line {awaited}; "
                    "another task may interleave",
                )


@register
class AwaitInLockedLoopRule(Rule):
    """ASYNC002: awaiting inside a loop while holding a lock."""

    rule_id = "ASYNC002"
    title = "await inside a loop under an async lock"
    hint = (
        "move the await out of the locked region, or take the lock "
        "per-iteration so contending tasks can make progress"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        for fn in _async_functions(ctx):
            events = _AsyncEvents(fn)
            for await_line in events.loop_awaits_under_lock():
                yield ctx.finding(
                    self,
                    _line_node(fn, await_line),
                    f"{fn.name}: await at line {await_line} inside a loop "
                    "holding an async lock",
                )
