"""TAINT001-003: host-influenced data crossing the TEE trust boundary.

DAMYSUS's safety argument (paper Section 4) rests on one invariant: the
trusted Checker/Accumulator never certifies or adopts host-influenced
data it has not verified.  These rules check that invariant as a
whole-program taint analysis:

**Sources.**  Inside :mod:`repro.tee`, every parameter of a public
method on a ``TrustedComponent`` subclass (the ``tee_*`` boundary) is
host-controlled.  Outside it, every parameter annotated with a wire
message class (anything defining ``msg_type``) or named ``msg`` carries
attacker-deliverable bytes.

**Sinks.**  In-TEE: writes to protected state (``self._*``) and
certification payloads (``checkpoint_payload``, raw ``_sign``).
Host-side: the TEE's *adopting* interface (``tee_checkpoint``,
``tee_install_checkpoint``), which mutates the certified horizon.  The
per-step stamped emitters (``_create_unique_sign``,
``commitment_payload``) are exempt: a commitment attests *presentation
at a step* - the TEE refuses or re-verifies its content - whereas a
checkpoint certificate attests *certified state*.  Vote-path entry
points (``tee_sign``/``tee_prepare``/``tee_store``) verify internally
and raise ``TEERefusal``, so handing them raw wire data is the designed
protocol, not a violation.

**Propagation.**  Intra-function via :class:`FunctionFlow`
(assignments, calls, dataclass construction); interprocedural via sink
*summaries*: a helper whose parameter reaches a sink unverified becomes
a sink itself, so the finding fires at the call that feeds it tainted
data.  A path through a registered verifier
(:data:`~repro.analysis.dataflow.flow.VERIFIERS`) or a raising
equality guard is clean - see :mod:`.flow` for why ordering comparisons
(the PR-6 ``height <= ...`` bug) deliberately do not count.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator
from weakref import WeakKeyDictionary

from repro.analysis.dataflow.base import (
    Finding,
    ProjectContext,
    ProjectRule,
    in_package,
    register,
)
from repro.analysis.dataflow.flow import VERIFIERS, CallSite, FunctionFlow
from repro.analysis.dataflow.graph import (
    ClassInfo,
    FunctionInfo,
    ProgramGraph,
    graph_for,
)

#: Calls certifying data under the TEE's key: host influence must never
#: reach them unverified.
_CERT_SINK_SEEDS = ("checkpoint_payload", "_sign")

#: Host-side TEE calls that *adopt* state (move the certified horizon);
#: wire data must be host-verified before reaching them.
_ADOPTING_SINK_SEEDS = ("tee_checkpoint", "tee_install_checkpoint")

#: Stamped per-step emitters: exempt from becoming sinks (see module doc).
_EXEMPT = frozenset({"_create_unique_sign", "commitment_payload"}) | VERIFIERS

_TEE_PACKAGE = "repro.tee"


@dataclass
class SinkSpec:
    """One sink callable: which of its parameters must stay clean."""

    name: str
    #: Positional parameter names (to map call args to params); empty
    #: when unknown - then every position is checked.
    params: tuple[str, ...]
    #: Parameter names that reach the underlying sink; ``None`` = all.
    taint_params: frozenset[str] | None
    #: Human-readable chain for propagated sinks ("" for seeds).
    via: str = ""


def _site_tainted_roots(
    site: CallSite, tainted: set[str], spec: SinkSpec
) -> set[str]:
    """Tainted names flowing into sink positions of one call site."""
    hit: set[str] = set()
    for idx, roots in enumerate(site.arg_roots):
        name = spec.params[idx] if idx < len(spec.params) else None
        if spec.taint_params is None or name is None or name in spec.taint_params:
            hit |= roots & tainted
    for name, roots in site.kwarg_roots.items():
        if spec.taint_params is None or name in spec.taint_params:
            hit |= roots & tainted
    return hit


class _TaintAnalysis:
    """Shared whole-program taint pass; built once per project."""

    def __init__(self, project: ProjectContext) -> None:
        self.project = project
        self.graph = graph_for(project)
        self._flows: dict[str, FunctionFlow] = {}
        self.tee_findings: list[tuple[str, FunctionInfo, ast.AST, str]] = []
        self.host_findings: list[tuple[str, FunctionInfo, ast.AST, str]] = []
        self._run_tee()
        self._run_host()

    def flow(self, fn: FunctionInfo) -> FunctionFlow:
        cached = self._flows.get(fn.qualname)
        if cached is None:
            cached = FunctionFlow.build(fn)
            self._flows[fn.qualname] = cached
        return cached

    # -- sink summaries ----------------------------------------------------

    def _seed_spec(self, name: str) -> SinkSpec:
        """A seed sink with parameter names looked up in the project."""
        for candidates in (
            self.graph.methods_by_name.get(name, []),
            [
                fn
                for (_, fname), fn in self.graph.module_functions.items()
                if fname == name
            ],
        ):
            for fn in candidates:
                return SinkSpec(name, tuple(fn.params()), None)
        return SinkSpec(name, (), None)

    def _summarize(
        self, functions: list[FunctionInfo], seeds: tuple[str, ...]
    ) -> dict[str, SinkSpec]:
        """Fixpoint: helpers whose params reach a sink become sinks."""
        specs = {name: self._seed_spec(name) for name in seeds}
        changed = True
        while changed:
            changed = False
            for fn in functions:
                if fn.name in specs or fn.name in _EXEMPT:
                    continue
                flow = self.flow(fn)
                reaching: set[str] = set()
                for param in fn.params():
                    tainted = flow.tainted({param})
                    if any(
                        _site_tainted_roots(site, tainted, specs[site.name])
                        for site in flow.calls
                        if site.name in specs
                    ):
                        reaching.add(param)
                if reaching:
                    inner = next(
                        site.name for site in flow.calls if site.name in specs
                    )
                    specs[fn.name] = SinkSpec(
                        fn.name,
                        tuple(fn.params()),
                        frozenset(reaching),
                        via=f"{fn.label()} -> {inner}",
                    )
                    changed = True
        return specs

    def _state_summaries(
        self, functions: list[FunctionInfo]
    ) -> dict[str, SinkSpec]:
        """Helpers whose params reach a protected ``self._*`` write."""
        specs: dict[str, SinkSpec] = {}
        changed = True
        while changed:
            changed = False
            for fn in functions:
                if fn.name in specs or fn.name in _EXEMPT:
                    continue
                flow = self.flow(fn)
                reaching: set[str] = set()
                target = ""
                for param in fn.params():
                    tainted = flow.tainted({param})
                    for attr, roots, _node in flow.attr_writes:
                        if attr.startswith("_") and roots & tainted:
                            reaching.add(param)
                            target = f"self.{attr}"
                            break
                    else:
                        for site in flow.calls:
                            if site.name in specs and _site_tainted_roots(
                                site, tainted, specs[site.name]
                            ):
                                reaching.add(param)
                                target = specs[site.name].via or site.name
                                break
                if reaching:
                    specs[fn.name] = SinkSpec(
                        fn.name,
                        tuple(fn.params()),
                        frozenset(reaching),
                        via=f"{fn.label()} -> {target}",
                    )
                    changed = True
        return specs

    # -- in-TEE pass (TAINT001/TAINT002) -----------------------------------

    def _tee_entry_points(self) -> Iterator[FunctionInfo]:
        for cls in self.graph.classes.values():
            if not in_package(cls.module, _TEE_PACKAGE):
                continue
            trusted = any(
                ancestor.name == "TrustedComponent"
                for ancestor in self.graph.ancestors(cls)
            )
            for method in cls.methods.values():
                if method.name.startswith("tee_") or (
                    trusted
                    and not method.name.startswith("_")
                    and method.name != "__init__"
                    and method.params()
                ):
                    yield method

    def _run_tee(self) -> None:
        tee_functions = [
            fn
            for fn in list(self.graph.functions.values())
            + [
                m
                for cls in self.graph.classes.values()
                for m in cls.methods.values()
            ]
            if in_package(fn.module, _TEE_PACKAGE)
        ]
        cert_sinks = self._summarize(tee_functions, _CERT_SINK_SEEDS)
        state_sinks = self._state_summaries(
            [fn for fn in tee_functions if not fn.name.startswith("tee_")]
        )
        for entry in self._tee_entry_points():
            flow = self.flow(entry)
            tainted = flow.tainted(set(entry.params()))
            if not tainted:
                continue
            for attr, roots, node in flow.attr_writes:
                hit = roots & tainted
                if attr.startswith("_") and hit:
                    self.tee_findings.append((
                        "TAINT001",
                        entry,
                        node,
                        f"{entry.label()}: host-supplied {_names(hit)} "
                        f"written to protected state self.{attr} without "
                        "in-TEE verification",
                    ))
            for site in flow.calls:
                spec = state_sinks.get(site.name)
                if spec is not None:
                    hit = _site_tainted_roots(site, tainted, spec)
                    if hit:
                        self.tee_findings.append((
                            "TAINT001",
                            entry,
                            site.node,
                            f"{entry.label()}: host-supplied {_names(hit)} "
                            f"reach protected state via {spec.via}",
                        ))
                spec = cert_sinks.get(site.name)
                if spec is not None:
                    hit = _site_tainted_roots(site, tainted, spec)
                    if hit:
                        via = f" via {spec.via}" if spec.via else ""
                        self.tee_findings.append((
                            "TAINT002",
                            entry,
                            site.node,
                            f"{entry.label()}: host-supplied {_names(hit)} "
                            f"reach certification sink {site.name}(){via} "
                            "unverified",
                        ))

    # -- host-side pass (TAINT003) -----------------------------------------

    def _message_classes(self) -> set[str]:
        names: set[str] = set()
        for cls in self.graph.classes.values():
            for item in cls.node.body:
                targets: list[ast.expr] = []
                if isinstance(item, ast.Assign):
                    targets = item.targets
                elif isinstance(item, ast.AnnAssign):
                    targets = [item.target]
                elif isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if item.name == "msg_type":
                        names.add(cls.name)
                    continue
                if any(
                    isinstance(t, ast.Name) and t.id == "msg_type"
                    for t in targets
                ):
                    names.add(cls.name)
        return names

    def _message_params(
        self, fn: FunctionInfo, message_classes: set[str]
    ) -> set[str]:
        sources: set[str] = set()
        args = fn.node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.arg in ("self", "cls"):
                continue
            if arg.arg in ("msg", "message"):
                sources.add(arg.arg)
                continue
            ann = arg.annotation
            label: str | None = None
            if isinstance(ann, ast.Name):
                label = ann.id
            elif isinstance(ann, ast.Attribute):
                label = ann.attr
            elif isinstance(ann, ast.Constant) and isinstance(ann.value, str):
                label = ann.value.split(".")[-1]
            if label in message_classes:
                sources.add(arg.arg)
        return sources

    def _run_host(self) -> None:
        message_classes = self._message_classes()
        host_functions = [
            fn
            for fn in list(self.graph.functions.values())
            + [
                m
                for cls in self.graph.classes.values()
                for m in cls.methods.values()
            ]
            if not in_package(fn.module, _TEE_PACKAGE)
        ]
        sinks = self._summarize(host_functions, _ADOPTING_SINK_SEEDS)
        for fn in host_functions:
            sources = self._message_params(fn, message_classes)
            if not sources:
                continue
            flow = self.flow(fn)
            tainted = flow.tainted(sources)
            if not tainted:
                continue
            for site in flow.calls:
                spec = sinks.get(site.name)
                if spec is None:
                    continue
                hit = _site_tainted_roots(site, tainted, spec)
                if hit:
                    via = f" via {spec.via}" if spec.via else ""
                    self.host_findings.append((
                        "TAINT003",
                        fn,
                        site.node,
                        f"{fn.label()}: wire-message-derived {_names(hit)} "
                        f"passed to TEE adopting call {site.name}(){via} "
                        "without host-side verification",
                    ))


def _names(names: set[str]) -> str:
    joined = ", ".join(repr(n) for n in sorted(names))
    return f"value(s) {joined}"


_ANALYSIS_CACHE: "WeakKeyDictionary[ProjectContext, _TaintAnalysis]" = (
    WeakKeyDictionary()
)


def _analysis(project: ProjectContext) -> _TaintAnalysis:
    analysis = _ANALYSIS_CACHE.get(project)
    if analysis is None:
        analysis = _TaintAnalysis(project)
        _ANALYSIS_CACHE[project] = analysis
    return analysis


class _TaintRule(ProjectRule):
    """Common emission: filter the shared analysis by rule id."""

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        analysis = _analysis(project)
        for rule_id, fn, node, message in (
            analysis.tee_findings + analysis.host_findings
        ):
            if rule_id == self.rule_id:
                yield fn.ctx.finding(self, node, message)


@register
class TaintedProtectedStateRule(_TaintRule):
    """TAINT001: host data written to TEE-protected state unverified."""

    rule_id = "TAINT001"
    title = "host-influenced value stored in protected TEE state"
    hint = (
        "verify the value with a registered verifier (verify_checkpoint, "
        "_verify_commitment, ...) or derive it from certified internal "
        "state before storing it"
    )


@register
class TaintedCertificationRule(_TaintRule):
    """TAINT002: host data reaching a certification payload unverified."""

    rule_id = "TAINT002"
    title = "host-influenced value certified by the TEE"
    hint = (
        "a TEE certificate must only attest values derived in-TEE or "
        "checked by a registered verifier; equality guards count, "
        "ordering comparisons do not"
    )


@register
class UnverifiedAdoptionRule(_TaintRule):
    """TAINT003: wire data handed to the TEE's adopting interface."""

    rule_id = "TAINT003"
    title = "unverified wire data passed to a TEE adopting call"
    hint = (
        "host-verify wire data (verify_checkpoint / verify_decide_qc) "
        "before tee_checkpoint / tee_install_checkpoint; vote-path calls "
        "(tee_sign/tee_prepare/tee_store) self-verify and are exempt"
    )
