"""Result regression checking between experiment runs.

``scripts/run_full_experiments.py`` dumps a JSON blob of every figure's
cells; this module diffs two such blobs so maintainers can tell whether
a code change moved the reproduced numbers, and by how much.  Shape
regressions (an ordering flip) are flagged separately from magnitude
drift, because only the former breaks the reproduction claims.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field

#: Figures whose cell grids are compared.
_GRID_KEYS = ("fig6a", "fig6b", "fig7a", "fig7b")

#: Ordering that must hold per (figure, f): throughput descending.
_ORDERING = ["damysus", "damysus-c", "damysus-a", "hotstuff"]


@dataclass
class Drift:
    """One cell's relative change between baseline and candidate."""

    figure: str
    cell: str
    metric: str
    baseline: float
    candidate: float

    @property
    def relative(self) -> float:
        if self.baseline == 0:
            return 0.0
        return (self.candidate - self.baseline) / self.baseline


@dataclass
class RegressionReport:
    drifts: list[Drift] = field(default_factory=list)
    ordering_breaks: list[str] = field(default_factory=list)

    def worst_drift(self) -> Drift | None:
        if not self.drifts:
            return None
        return max(self.drifts, key=lambda d: abs(d.relative))

    @property
    def shape_ok(self) -> bool:
        return not self.ordering_breaks

    def summary(self, drift_threshold: float = 0.25) -> str:
        big = [d for d in self.drifts if abs(d.relative) > drift_threshold]
        lines = [
            f"{len(self.drifts)} cells compared, "
            f"{len(big)} drifted more than {drift_threshold:.0%}, "
            f"{len(self.ordering_breaks)} ordering breaks"
        ]
        for d in sorted(big, key=lambda d: -abs(d.relative))[:10]:
            lines.append(
                f"  {d.figure} {d.cell} {d.metric}: "
                f"{d.baseline:.3g} -> {d.candidate:.3g} ({d.relative:+.0%})"
            )
        lines.extend(f"  ORDER BROKEN: {msg}" for msg in self.ordering_breaks)
        return "\n".join(lines)


def _check_ordering(figure: str, cells: dict, report: RegressionReport) -> None:
    fs = sorted({int(key.split("|")[1]) for key in cells})
    for f in fs:
        tputs = {}
        for name in _ORDERING:
            cell = cells.get(f"{name}|{f}")
            if cell is not None:
                tputs[name] = cell["tput_kops"]
        names = [n for n in _ORDERING if n in tputs]
        for first, second in zip(names, names[1:], strict=False):
            # Damysus must not fall below HotStuff etc.; equality allowed
            # (coarse cells can tie).
            if first == "damysus" and second == "hotstuff" or second == "hotstuff":
                if tputs[first] < tputs[second]:
                    report.ordering_breaks.append(
                        f"{figure} f={f}: {first} ({tputs[first]}) < "
                        f"{second} ({tputs[second]})"
                    )


def compare_results(baseline: dict, candidate: dict) -> RegressionReport:
    """Diff two ``full_results.json`` blobs."""
    report = RegressionReport()
    for figure in _GRID_KEYS:
        base_cells = baseline.get(figure, {}).get("cells", {})
        cand_cells = candidate.get(figure, {}).get("cells", {})
        for cell, base_val in base_cells.items():
            cand_val = cand_cells.get(cell)
            if cand_val is None:
                continue
            for metric in ("tput_kops", "lat_ms"):
                report.drifts.append(
                    Drift(figure, cell, metric, base_val[metric], cand_val[metric])
                )
        _check_ordering(figure, cand_cells, report)
    return report


def compare_files(baseline_path: str | pathlib.Path, candidate_path: str | pathlib.Path) -> RegressionReport:
    baseline = json.loads(pathlib.Path(baseline_path).read_text())
    candidate = json.loads(pathlib.Path(candidate_path).read_text())
    return compare_results(baseline, candidate)
