"""Simulation-determinism rules.

The chaos harness and every regression baseline assume a run is a pure
function of its :class:`~repro.config.SystemConfig` (seed included).
Ambient entropy - ``random``, ``secrets``, ``os.urandom``, wall-clock
time, ``uuid``, or CPython address/hash salts - breaks that silently.
All randomness must flow through :class:`repro.sim.rng.RngStream`
streams derived from the master seed; all time through the event loop's
virtual clock.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.engine import (
    FileContext,
    Finding,
    Rule,
    dotted_name,
    in_package,
    register,
)

#: Packages whose behaviour must be a pure function of the config.
RESTRICTED_PACKAGES = (
    "repro.sim",
    "repro.protocols",
    "repro.tee",
    "repro.adversary",
    "repro.analysis",
    "repro.core",
    "repro.crypto",
    "repro.runtime",
)

#: The runtime host modules that legitimately run on wall-clock time,
#: real sockets and real processes: the asyncio host plus the two
#: resilience modules that orchestrate OS processes (the supervisor and
#: the net-chaos scenario).  Everything else under ``repro.runtime`` -
#: the effect algebra, the machine base class, the simulator adapter,
#: and the *pure* resilience modules (fault decider, durable sealer,
#: watchdog) - must stay a pure function of the config.
_WALL_CLOCK_MODULES = (
    "repro.runtime.asyncio_net",
    "repro.runtime.resilience.supervisor",
    "repro.runtime.resilience.netchaos",
)

#: The modules allowed to touch ``random``: the seeded-stream wrapper
#: (now in the core) and its historical ``repro.sim.rng`` import path.
_RNG_MODULES = ("repro.core.rng", "repro.sim.rng")

_BANNED_MODULES = {"random", "secrets", "uuid", "time", "datetime"}
_BANNED_OS_IMPORTS = {"urandom", "getrandom"}

#: Qualified calls banned even when only the parent module was imported
#: elsewhere (matched on the last two dotted components).
_BANNED_QUALIFIED = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid3",
    "uuid.uuid4",
    "uuid.uuid5",
}

#: Bare names that only exist via ``from <entropy module> import ...``.
_BANNED_BARE_CALLS = {
    "urandom",
    "getrandom",
    "uuid1",
    "uuid4",
    "token_bytes",
    "token_hex",
    "getrandbits",
}


def restricted(ctx: FileContext) -> bool:
    if ctx.module in _RNG_MODULES or ctx.module in _WALL_CLOCK_MODULES:
        return False
    return any(in_package(ctx.module, pkg) for pkg in RESTRICTED_PACKAGES)


@register
class NondeterministicImportRule(Rule):
    """DET001: importing an ambient-entropy or wall-clock module."""

    rule_id = "DET001"
    title = "nondeterministic import in simulation code"
    hint = (
        "draw randomness from repro.sim.rng.RngStream (seed-derived) and "
        "time from the simulator's virtual clock"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if not restricted(ctx):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = alias.name.split(".")[0]
                    if top in _BANNED_MODULES:
                        yield ctx.finding(
                            self, node, f"import of nondeterministic module {top!r}"
                        )
            elif isinstance(node, ast.ImportFrom) and node.module is not None:
                top = node.module.split(".")[0]
                if top in _BANNED_MODULES:
                    yield ctx.finding(
                        self, node, f"import from nondeterministic module {top!r}"
                    )
                elif top == "os":
                    for alias in node.names:
                        if alias.name in _BANNED_OS_IMPORTS:
                            yield ctx.finding(
                                self, node, f"import of os.{alias.name}"
                            )


@register
class NondeterministicCallRule(Rule):
    """DET002: calling an ambient-entropy or wall-clock function."""

    rule_id = "DET002"
    title = "nondeterministic call in simulation code"
    hint = (
        "use an RngStream for randomness and sim.now for time; both are "
        "pure functions of the master seed"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if not restricted(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = dotted_name(node.func)
            if func is None:
                continue
            parts = func.split(".")
            if parts[0] in {"random", "secrets"} and len(parts) > 1:
                yield ctx.finding(self, node, f"call to {func}()")
            elif len(parts) >= 2 and ".".join(parts[-2:]) in _BANNED_QUALIFIED:
                yield ctx.finding(self, node, f"call to {func}()")
            elif len(parts) == 1 and parts[0] in _BANNED_BARE_CALLS:
                yield ctx.finding(self, node, f"call to {func}()")


@register
class AddressDependentValueRule(Rule):
    """DET003: ``id()`` / builtin ``hash()`` feeding simulation state.

    ``id()`` is a memory address and ``hash()`` of strings/bytes is
    salted per interpreter run; deriving keys, seeds or orderings from
    either makes identically-seeded runs diverge bit-for-bit.
    """

    rule_id = "DET003"
    title = "address- or salt-dependent value in simulation code"
    hint = (
        "derive identifiers from stable fields (scheme.name, signer ids, "
        "explicit counters) instead of id()/hash()"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if not restricted(ctx):
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in {"id", "hash"}
            ):
                yield ctx.finding(
                    self,
                    node,
                    f"builtin {node.func.id}() varies across interpreter runs",
                )
