"""Message-exhaustiveness rules.

A message type that no protocol dispatches is either dead weight or - far
worse - something a replica silently drops on the floor.  These rules
cross-reference the message classes declared in :mod:`repro.core.messages`
(and protocol-local ones) against the ``isinstance`` dispatch chains of
every protocol module, and check that ``match`` statements over
:class:`repro.core.phases.Phase` cover every phase.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.engine import (
    FileContext,
    Finding,
    ProjectContext,
    ProjectRule,
    Rule,
    in_package,
    register,
)

_MESSAGES_MODULE = "repro.core.messages"
_PROTOCOLS_PACKAGE = "repro.protocols"
_SENDER_PACKAGES = ("repro.protocols", "repro.adversary")
_PHASES_MODULE = "repro.core.phases"

#: Fallback when the project under lint does not include core/phases.py.
_DEFAULT_PHASES = ("NEW_VIEW", "PREPARE", "PRECOMMIT", "COMMIT", "DECIDE")


def _declares_msg_type(node: ast.ClassDef) -> bool:
    """True for classes carrying a ``msg_type`` attribute or property."""
    for stmt in node.body:
        if isinstance(stmt, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "msg_type" for t in stmt.targets
        ):
            return True
        if isinstance(stmt, ast.AnnAssign) and (
            isinstance(stmt.target, ast.Name) and stmt.target.id == "msg_type"
        ):
            return True
        if isinstance(stmt, ast.FunctionDef) and stmt.name == "msg_type":
            return True
    return False


def _message_classes(project: ProjectContext) -> dict[str, tuple[FileContext, ast.ClassDef]]:
    """Message classes by name: core/messages.py plus protocol-local ones."""
    declared: dict[str, tuple[FileContext, ast.ClassDef]] = {}
    for ctx in project.files:
        if ctx.module != _MESSAGES_MODULE and not in_package(
            ctx.module, _PROTOCOLS_PACKAGE
        ):
            continue
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and _declares_msg_type(node):
                declared[node.name] = (ctx, node)
    return declared


def _handled_classes(project: ProjectContext) -> set[str]:
    """Class names appearing in ``isinstance`` checks of protocol modules."""
    handled: set[str] = set()
    for ctx in project.in_package(_PROTOCOLS_PACKAGE):
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "isinstance"
                and len(node.args) == 2
            ):
                continue
            spec = node.args[1]
            names = spec.elts if isinstance(spec, ast.Tuple) else [spec]
            for name in names:
                if isinstance(name, ast.Name):
                    handled.add(name.id)
                elif isinstance(name, ast.Attribute):
                    handled.add(name.attr)
    return handled


@register
class UnhandledMessageTypeRule(ProjectRule):
    """MSG001: a declared message type no protocol dispatches."""

    rule_id = "MSG001"
    title = "message type without a dispatch handler"
    hint = (
        "add an isinstance branch for it in the owning protocol's "
        "dispatch(), or delete the dead message type"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        declared = _message_classes(project)
        if not declared or not project.in_package(_PROTOCOLS_PACKAGE):
            return
        handled = _handled_classes(project)
        for name, (ctx, node) in sorted(declared.items()):
            if name not in handled:
                yield ctx.finding(
                    self,
                    node,
                    f"message type {name!r} is never dispatched by any protocol",
                )


@register
class SentButUnhandledRule(ProjectRule):
    """MSG002: a message constructed for sending that nothing dispatches."""

    rule_id = "MSG002"
    title = "message sent without a receiver-side handler"
    hint = "register a handler before sending, or the message is dropped silently"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        declared = _message_classes(project)
        if not declared or not project.in_package(_PROTOCOLS_PACKAGE):
            return
        handled = _handled_classes(project)
        for ctx in project.files:
            if not any(in_package(ctx.module, pkg) for pkg in _SENDER_PACKAGES):
                continue
            for node in ast.walk(ctx.tree):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in declared
                    and node.func.id not in handled
                ):
                    yield ctx.finding(
                        self,
                        node,
                        f"constructs {node.func.id!r}, which no protocol dispatches",
                    )


def _phase_members(project: ProjectContext) -> set[str]:
    ctx = project.by_module.get(_PHASES_MODULE)
    if ctx is None:
        return set(_DEFAULT_PHASES)
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef) and node.name == "Phase":
            return {
                target.id
                for stmt in node.body
                if isinstance(stmt, ast.Assign)
                for target in stmt.targets
                if isinstance(target, ast.Name)
            }
    return set(_DEFAULT_PHASES)


@register
class NonExhaustivePhaseMatchRule(ProjectRule):
    """MSG003: a ``match`` over Phase missing members and lacking ``case _``."""

    rule_id = "MSG003"
    title = "non-exhaustive Phase match"
    hint = "cover every Phase member or add a `case _` that rejects explicitly"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        members = _phase_members(project)
        for ctx in project.files:
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Match):
                    continue
                covered: set[str] = set()
                saw_phase = False
                has_wildcard = False
                for case in node.cases:
                    patterns = (
                        case.pattern.patterns
                        if isinstance(case.pattern, ast.MatchOr)
                        else [case.pattern]
                    )
                    for pattern in patterns:
                        if (
                            isinstance(pattern, ast.MatchAs)
                            and pattern.pattern is None
                            and case.guard is None
                        ):
                            has_wildcard = True
                        elif isinstance(pattern, ast.MatchValue) and isinstance(
                            pattern.value, ast.Attribute
                        ):
                            value = pattern.value
                            if (
                                isinstance(value.value, ast.Name)
                                and value.value.id == "Phase"
                            ):
                                saw_phase = True
                                covered.add(value.attr)
                if saw_phase and not has_wildcard and covered != members:
                    missing = ", ".join(sorted(members - covered))
                    yield ctx.finding(
                        self,
                        node,
                        f"match over Phase does not cover: {missing}",
                    )
