"""Architecture layering rules.

The sans-I/O refactor split the codebase into layers: ``repro.core``
(pure protocol data + interfaces), ``repro.tee`` (trusted components),
``repro.protocols`` (effect-emitting machines) and ``repro.runtime``
(adapters that interpret effects on a host).  The protocol layers must
stay host-agnostic: the same machine runs on the discrete-event
simulator and on asyncio sockets precisely because it imports neither.
These rules pin that property - one rule per layer, so a violation
names the layer whose contract broke.

Forbidden targets are the two hosts: the simulator package
(``repro.sim``) and the socket runtime (``repro.runtime.asyncio_net``).
``repro.runtime.effects`` / ``repro.runtime.machine`` are *not*
forbidden - they are the host-agnostic vocabulary the layers speak.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.engine import FileContext, Finding, Rule, in_package, register

#: Host packages/modules the protocol layers must never import.
FORBIDDEN_TARGETS = ("repro.sim", "repro.runtime.asyncio_net")


def _targets(module: str) -> bool:
    return any(
        module == target or module.startswith(target + ".")
        for target in FORBIDDEN_TARGETS
    )


def _resolve_relative(ctx: FileContext, node: ast.ImportFrom) -> str | None:
    """Absolute module an ``ImportFrom`` refers to (handles ``from . import``)."""
    if node.level == 0:
        return node.module
    # ctx.module of a package's __init__ is the package itself; lint
    # targets are files, so ctx.module always names the importing module.
    parts = ctx.module.split(".")
    if len(parts) < node.level:
        return node.module
    base = parts[: len(parts) - node.level]
    if node.module:
        base.append(node.module)
    return ".".join(base)


def _forbidden_imports(ctx: FileContext) -> Iterator[tuple[ast.AST, str]]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if _targets(alias.name):
                    yield node, alias.name
        elif isinstance(node, ast.ImportFrom):
            module = _resolve_relative(ctx, node)
            if module is None:
                continue
            if _targets(module):
                yield node, module
            else:
                # ``from repro.runtime import asyncio_net`` imports the
                # submodule even though the target is the parent package.
                for alias in node.names:
                    if _targets(f"{module}.{alias.name}"):
                        yield node, f"{module}.{alias.name}"


class _LayerImportRule(Rule):
    """Shared machinery: flag forbidden host imports inside one layer."""

    layer = ""  # package the rule guards, e.g. "repro.core"

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if not in_package(ctx.module, self.layer):
            return
        for node, module in _forbidden_imports(ctx):
            yield ctx.finding(
                self, node, f"{self.layer} imports host module {module!r}"
            )


@register
class CoreLayerRule(_LayerImportRule):
    """ARCH001: ``repro.core`` must stay host-agnostic."""

    rule_id = "ARCH001"
    title = "core layer imports a runtime host"
    layer = "repro.core"
    hint = (
        "repro.core is pure protocol data and interfaces; depend on "
        "repro.core.clock.Clock / repro.core.monitor.ExecutionMonitor "
        "instead of a concrete host"
    )


@register
class TeeLayerRule(_LayerImportRule):
    """ARCH002: ``repro.tee`` must stay host-agnostic."""

    rule_id = "ARCH002"
    title = "TEE layer imports a runtime host"
    layer = "repro.tee"
    hint = (
        "trusted components take values and return certificates; any "
        "clock or scheduling concern belongs to the caller's runtime"
    )


@register
class ProtocolLayerRule(_LayerImportRule):
    """ARCH003: ``repro.protocols`` must stay host-agnostic."""

    rule_id = "ARCH003"
    title = "protocol layer imports a runtime host"
    layer = "repro.protocols"
    hint = (
        "protocol machines emit repro.runtime.effects and read time via "
        "their Clock; hosts (repro.sim, repro.runtime.asyncio_net) "
        "interpret the effects"
    )
