"""``repro lint``: AST-based invariant linter for this reproduction.

The simulator's two load-bearing properties - trusted state lives only
behind the TEE interface (paper Section 4.1) and every run is
bit-identical under a seed - are invisible to ordinary linters.  This
package enforces them mechanically:

* ``TEE00x`` - trust-boundary rules: code outside :mod:`repro.tee` must
  use the public ``TEEsign``/``TEEprepare``/``TEEstore``/``TEEstart``/
  ``TEEaccum`` interface, never a component's private state;
* ``DET00x`` - determinism rules: no ambient randomness or wall-clock
  time in simulation code; randomness flows through
  :class:`repro.sim.rng.RngStream`, time through the event loop;
* ``MSG00x`` - exhaustiveness rules: declared message types are
  dispatched by some protocol, sent messages have a receiver, and
  ``Phase`` matches cover every phase;
* ``ARCH00x`` - layering rules: the host-agnostic layers
  (:mod:`repro.core`, :mod:`repro.tee`, :mod:`repro.protocols`) must
  not import a runtime host (:mod:`repro.sim` or
  :mod:`repro.runtime.asyncio_net`).

Findings can be suppressed per line with ``# repro-lint: ignore[RULE]``
or waived wholesale via a committed baseline file.
"""

from repro.analysis.lint.engine import (
    BASELINE_DEFAULT,
    Finding,
    all_rule_ids,
    format_findings_json,
    format_findings_text,
    load_baseline,
    run_lint,
    write_baseline,
)
from repro.analysis.lint import (  # noqa: F401  (register rules)
    rules_arch,
    rules_det,
    rules_msg,
    rules_tee,
)

__all__ = [
    "BASELINE_DEFAULT",
    "Finding",
    "all_rule_ids",
    "format_findings_json",
    "format_findings_text",
    "load_baseline",
    "run_lint",
    "write_baseline",
]
