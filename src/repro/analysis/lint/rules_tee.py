"""TEE trust-boundary rules (paper Section 4.1).

DAMYSUS's safety argument assumes trusted state is reachable only
through the Checker/Accumulator interface (``TEEsign``, ``TEEprepare``,
``TEEstore``, ``TEEstart``, ``TEEaccum``, ``TEEfinalize``).  Host code
that reads a component's private attributes, mutates its state, or mints
signatures under a TEE signer id silently voids that argument, so these
rules fence :mod:`repro.tee` (and the key-holding :mod:`repro.crypto`)
off from the rest of the tree.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.engine import (
    FileContext,
    Finding,
    Rule,
    dotted_name,
    in_package,
    receiver_tokens,
    register,
)

#: Packages whose *internals* legitimately touch trusted private state.
_TRUSTED_PACKAGES = ("repro.tee", "repro.crypto")

#: Names under which host code typically holds a trusted component.
_COMPONENT_NAMES = {"checker", "accumulator", "acc_service", "tee"}

#: Private members of :class:`repro.tee.base.TrustedComponent` and its
#: subclasses; accessing these on *any* receiver outside the trusted
#: packages is a violation even if the variable is not named "checker".
_TRUSTED_PRIVATE = {
    "_signer",
    "_scheme",
    "_directory",
    "_sign",
    "_verify",
    "_count_call",
    "_prepv",
    "_preph",
    "_step",
    "_lockv",
    "_lockh",
    "_ckpt_counter",
    "_ckpt_height",
    "_ckpt_hash",
    "_ckpt_root",
    "_seal_fields",
    "_restore_seal_fields",
    "_create_unique_sign",
    "_verify_commitment",
    "_verify_accumulator",
    "_verify_chained_certificate",
    "_check_new_view_commitment",
    "_sign_working",
    "_verify_working",
    "_check_report",
}


def _outside_trusted(ctx: FileContext) -> bool:
    return not any(in_package(ctx.module, pkg) for pkg in _TRUSTED_PACKAGES)


def _mentions_component(node: ast.AST) -> bool:
    return bool(receiver_tokens(node) & _COMPONENT_NAMES)


def _is_self_like(node: ast.AST) -> bool:
    if isinstance(node, ast.Name) and node.id in {"self", "cls"}:
        return True
    # ``super().x`` resolves to the instance's own hierarchy.
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "super"
    )


@register
class PrivateTrustedAttributeRule(Rule):
    """TEE001: private attribute access on a trusted component."""

    rule_id = "TEE001"
    title = "private access across the TEE boundary"
    hint = (
        "use the public TEE interface (tee_sign/tee_prepare/tee_store/"
        "tee_start/tee_accum) or a read-only property instead of private state"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if not _outside_trusted(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            attr = node.attr
            if not attr.startswith("_") or attr.startswith("__"):
                continue
            if _mentions_component(node.value):
                yield ctx.finding(
                    self,
                    node,
                    f"access to private attribute {attr!r} of a trusted component",
                )
            elif attr in _TRUSTED_PRIVATE and not _is_self_like(node.value):
                yield ctx.finding(
                    self,
                    node,
                    f"access to TrustedComponent-private member {attr!r} "
                    "outside repro.tee",
                )


@register
class ForgedTeeSignatureRule(Rule):
    """TEE002: minting signatures under a TEE signer identity."""

    rule_id = "TEE002"
    title = "host code forging TEE signatures"
    hint = (
        "only trusted components may sign as tee_signer_id(i); obtain "
        "certificates via the TEE interface instead"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if not _outside_trusted(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = dotted_name(node.func)
            if func is None:
                continue
            is_signature_ctor = func.split(".")[-1] == "Signature"
            is_sign_call = func.split(".")[-1] == "sign"
            if not (is_signature_ctor or is_sign_call):
                continue
            for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                if "tee_signer_id" in receiver_tokens(arg):
                    what = "Signature(...)" if is_signature_ctor else f"{func}(...)"
                    yield ctx.finding(
                        self,
                        node,
                        f"{what} uses tee_signer_id: host code may not sign "
                        "as a trusted component",
                    )
                    break


@register
class TrustedStateMutationRule(Rule):
    """TEE003: assigning to (or deleting) trusted-component state."""

    rule_id = "TEE003"
    title = "host code mutating trusted state"
    hint = (
        "trusted state changes only through the TEE interface; rebuild the "
        "component via sealed storage if recovery is the goal"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if not _outside_trusted(ctx):
            return
        for node in ast.walk(ctx.tree):
            targets: list[ast.expr]
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = node.targets
            else:
                continue
            for target in targets:
                # ``x.checker = ...`` rebinding the host's slot is fine;
                # ``x.checker.step = ...`` reaching *into* it is not.
                if isinstance(target, ast.Attribute) and _mentions_component(
                    target.value
                ):
                    yield ctx.finding(
                        self,
                        target,
                        f"mutation of trusted-component attribute {target.attr!r}",
                    )
