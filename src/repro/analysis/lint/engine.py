"""Rule engine for ``repro lint``.

The generic machinery - parsing, findings, suppression, baselines,
selection, formatting - lives in :mod:`repro.analysis.engine`, shared
with ``repro analyze``.  This module owns the lint-specific pieces: the
lint rule registry and the ``run_lint`` entry point.  Rule modules keep
importing their vocabulary (``Rule``, ``FileContext``, ``register``...)
from here.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.analysis.engine import (  # noqa: F401  (re-exported rule vocabulary)
    FileContext,
    Finding,
    ProjectContext,
    ProjectRule,
    Rule,
    RuleRegistry,
    dotted_name,
    format_findings_json,
    format_findings_text,
    in_package,
    iter_python_files,
    load_baseline,
    module_name,
    parse_files,
    receiver_tokens,
    run_rules,
    write_baseline,
)

#: Default baseline location, resolved against the current directory.
BASELINE_DEFAULT = ".repro-lint-baseline.json"

#: The lint analyzer's rule set.  Populated by the ``register`` decorator
#: when the rule modules import; ``REGISTRY`` keeps the historical
#: name-to-rule mapping view.
_REGISTRY = RuleRegistry("repro lint")
REGISTRY = _REGISTRY.rules

register = _REGISTRY.register


def all_rule_ids() -> list[str]:
    return _REGISTRY.ids()


def run_lint(
    paths: Sequence[Path | str],
    *,
    rules: Sequence[str] | None = None,
    baseline: set[str] | None = None,
) -> list[Finding]:
    """Lint ``paths`` and return surviving findings, sorted by location.

    ``rules`` restricts the run to the given rule ids; ``baseline`` is a
    set of finding keys to drop (see
    :func:`repro.analysis.engine.load_baseline`).
    """
    return run_rules(paths, _REGISTRY, rules=rules, baseline=baseline)
