"""Non-invasive per-view phase tracing.

A :class:`TraceCollector` taps a system's network and monitor and derives
a per-view timeline - when the proposal went out, when each certificate
broadcast happened, when replicas executed - without touching protocol
code.  Used by examples for visualisation and by tests to check phase
structure (a 2-phase protocol must show exactly one certificate broadcast
between proposal and decide; a 3-phase one shows two).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.bench.reporting import format_table
from repro.runtime.sim import ConsensusSystem

#: Message types that mark a leader certificate broadcast, per protocol
#: family (votes and new-views are omitted: they are the inbound halves).
_PROPOSAL_TYPES = {
    "proposal",
    "block-proposal",
    "proposal-a",
    "chained-proposal",
    "fast-proposal",
}
_CERT_BROADCAST_TYPES = {
    "qc",
    "damysus-prep-qc",
    "damysus-decide",
    "damysus-c-prep-qc",
    "damysus-c-pcom-qc",
    "damysus-c-decide",
}


@dataclass
class ViewTrace:
    """Observed timeline of one view."""

    view: int
    proposal_at: float | None = None
    cert_broadcasts: list[tuple[float, str]] = field(default_factory=list)
    first_executed_at: float | None = None
    messages: int = 0

    @property
    def duration_ms(self) -> float | None:
        if self.proposal_at is None or self.first_executed_at is None:
            return None
        return self.first_executed_at - self.proposal_at


class TraceCollector:
    """Attach to a system *before* running it to record view timelines."""

    def __init__(self, system: ConsensusSystem) -> None:
        self.system = system
        self._views: dict[int, ViewTrace] = defaultdict(lambda: ViewTrace(view=-1))
        system.network.add_tap(self._tap)

    def _trace(self, view: int) -> ViewTrace:
        trace = self._views[view]
        if trace.view < 0:
            trace.view = view
        return trace

    def _tap(self, src: int, dst: int, payload) -> None:
        view = getattr(payload, "view", None)
        if view is None:
            return
        now = self.system.sim.now
        trace = self._trace(view)
        trace.messages += 1
        msg_type = getattr(payload, "msg_type", "")
        if msg_type in _PROPOSAL_TYPES and trace.proposal_at is None:
            trace.proposal_at = now
        elif msg_type in _CERT_BROADCAST_TYPES:
            # Broadcasts fan out as N sends at the same instant; collapse
            # them into one event per (time, type).
            if not trace.cert_broadcasts or trace.cert_broadcasts[-1] != (now, msg_type):
                trace.cert_broadcasts.append((now, msg_type))

    def finalize(self) -> None:
        """Fold execution times in from the monitor (call after the run)."""
        for record in self.system.monitor.executions:
            trace = self._trace(record.view)
            if trace.first_executed_at is None or record.executed_at < trace.first_executed_at:
                trace.first_executed_at = record.executed_at

    # -- queries -----------------------------------------------------------------

    def views(self) -> list[ViewTrace]:
        self.finalize()
        return [self._views[v] for v in sorted(self._views) if self._views[v].view >= 0]

    def completed_views(self) -> list[ViewTrace]:
        return [t for t in self.views() if t.duration_ms is not None]

    def cert_rounds_per_view(self) -> dict[int, int]:
        """Distinct leader certificate broadcasts per view.

        For basic protocols this equals (core phases - 1) + 1 = the number
        of QC fan-outs: HotStuff 3 (prepare/pre-commit/commit QCs), Damysus
        2 (prepare QC + decide).
        """
        return {
            t.view: len(t.cert_broadcasts) for t in self.views() if t.cert_broadcasts
        }

    def render(self, limit: int = 12) -> str:
        rows = []
        for trace in self.completed_views()[:limit]:
            rows.append(
                [
                    trace.view,
                    f"{trace.proposal_at:.1f}" if trace.proposal_at is not None else "-",
                    len(trace.cert_broadcasts),
                    f"{trace.first_executed_at:.1f}",
                    f"{trace.duration_ms:.1f}",
                    trace.messages,
                ]
            )
        return format_table(
            ["view", "proposed", "cert bcasts", "executed", "duration ms", "msgs"],
            rows,
            title=f"view timeline ({self.system.config.protocol})",
        )
