"""Shared rule/finding/baseline core for repro's static analyzers.

Two analyzers ride on this engine: ``repro lint`` (per-file syntactic
invariants: TEE fencing, determinism, message exhaustiveness, layering)
and ``repro analyze`` (whole-program dataflow: taint tracking across the
host/TEE boundary, transitive effect purity, await-race detection).
Each owns a :class:`RuleRegistry`; everything else - parsing, findings,
inline suppression, baselines, selection and formatting - is shared, so
a suppression comment or a baseline file behaves identically under both
tools.

Findings carry a stable rule id, location and fix hint; they can be
silenced per line with ``# repro-lint: ignore[RULE]`` or
``# repro-analyze: ignore[RULE]`` (or a bare ``ignore`` for all rules),
per file with ``# repro-lint: skip-file``, or per finding via a
committed JSON baseline.  Suppression comments are matched over the
whole physical extent of the offending node - including decorator lines
above a decorated ``def``/``class`` and every line of a multiline
expression - so the comment can sit wherever the code is readable.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

_IGNORE_RE = re.compile(r"#\s*repro-(?:lint|analyze):\s*ignore(?:\[([A-Za-z0-9,\s]+)\])?")
_SKIP_FILE_RE = re.compile(r"#\s*repro-(?:lint|analyze):\s*skip-file")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location.

    ``span_start``/``span_end`` bound the physical lines of the node the
    finding anchors to (0 = just ``line``); they exist so inline
    suppression comments work on decorated and multiline nodes, and they
    deliberately stay out of :meth:`key` and :meth:`to_json` - baselines
    and reports identify a finding by its primary line alone.
    """

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""
    span_start: int = 0
    span_end: int = 0

    def key(self) -> str:
        """Stable identity used by the baseline file."""
        return f"{self.path}::{self.rule_id}::{self.line}"

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_json(self) -> dict[str, object]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }


class FileContext:
    """One parsed source file plus the metadata rules need."""

    def __init__(self, path: Path, rel: str, module: str, source: str) -> None:
        self.path = path
        self.rel = rel
        self.module = module
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=rel)
        self.skip_file = any(_SKIP_FILE_RE.search(line) for line in self.lines[:5])

    def finding(
        self, rule: "Rule", node: ast.AST, message: str, hint: str | None = None
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        span_start = line
        # A decorated def/class starts - as humans read it - at its first
        # decorator; let a suppression comment live there too.
        for deco in getattr(node, "decorator_list", ()) or ():
            span_start = min(span_start, getattr(deco, "lineno", span_start))
        if hasattr(node, "body"):
            # Compound statements (def, class, if, for...) suppress on
            # their header only - a comment buried in the body must not
            # silence a finding about the statement itself.
            span_end = line
        else:
            span_end = getattr(node, "end_lineno", None) or line
        return Finding(
            rule_id=rule.rule_id,
            path=self.rel,
            line=line,
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            hint=rule.hint if hint is None else hint,
            span_start=span_start,
            span_end=span_end,
        )

    def suppressed(self, finding: Finding) -> bool:
        """True if any line of the finding's node carries an ignore comment."""
        start = finding.span_start or finding.line
        end = finding.span_end or finding.line
        for lineno in range(start, end + 1):
            if not 1 <= lineno <= len(self.lines):
                continue
            match = _IGNORE_RE.search(self.lines[lineno - 1])
            if match is None:
                continue
            rules = match.group(1)
            if rules is None:
                return True  # bare "ignore": all rules
            if finding.rule_id in {r.strip().upper() for r in rules.split(",")}:
                return True
        return False


class ProjectContext:
    """Every parsed file of one analysis run, indexed for project rules."""

    def __init__(self, files: Sequence[FileContext]) -> None:
        self.files = list(files)
        self.by_module = {ctx.module: ctx for ctx in self.files}

    def in_package(self, package: str) -> list[FileContext]:
        prefix = package + "."
        return [
            ctx
            for ctx in self.files
            if ctx.module == package or ctx.module.startswith(prefix)
        ]


class Rule:
    """A per-file rule; subclasses override :meth:`check_file`."""

    rule_id = "RULE000"
    title = ""
    hint = ""

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())


class ProjectRule(Rule):
    """A rule that needs the whole parsed project at once."""

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        return iter(())


class RuleRegistry:
    """The rule set of one analyzer (``repro lint`` or ``repro analyze``)."""

    def __init__(self, label: str) -> None:
        self.label = label
        self.rules: dict[str, Rule] = {}

    def register(self, rule_cls: type[Rule]) -> type[Rule]:
        """Class decorator: instantiate and register a rule."""
        rule = rule_cls()
        if rule.rule_id in self.rules:
            raise ValueError(f"duplicate rule id {rule.rule_id}")
        self.rules[rule.rule_id] = rule
        return rule_cls

    def ids(self) -> list[str]:
        return sorted(self.rules)

    def select(self, rules: Sequence[str] | None) -> list[Rule]:
        """Resolve a ``--rule`` filter; unknown ids raise ``KeyError``."""
        selected: list[Rule] = []
        for rule_id in rules if rules is not None else self.ids():
            rule = self.rules.get(rule_id.upper())
            if rule is None:
                raise KeyError(
                    f"unknown rule {rule_id!r}; known: {', '.join(self.ids())}"
                )
            selected.append(rule)
        return selected


# -- helpers shared by rule modules -------------------------------------------


def module_name(path: Path) -> str:
    """Dotted module path, inferred from ``__init__.py`` package markers.

    Walking up the directory tree (rather than relying on a ``src`` root
    passed in) makes the analyzers work identically on the real tree and
    on fixture trees tests build under a temp directory.
    """
    parts = [] if path.stem == "__init__" else [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


def in_package(module: str, package: str) -> bool:
    return module == package or module.startswith(package + ".")


def dotted_name(node: ast.AST) -> str | None:
    """Flatten ``a.b.c`` attribute chains to a dotted string."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def receiver_tokens(node: ast.AST) -> set[str]:
    """Every name and attribute label appearing in a receiver expression."""
    tokens: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute):
            tokens.add(sub.attr)
        elif isinstance(sub, ast.Name):
            tokens.add(sub.id)
    return tokens


# -- file collection -----------------------------------------------------------


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            yield path
        elif path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if "__pycache__" not in sub.parts:
                    yield sub


def _relative_label(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def parse_files(paths: Iterable[Path]) -> tuple[list[FileContext], list[Finding]]:
    """Parse every target; syntax errors become PARSE000 findings."""
    contexts: list[FileContext] = []
    errors: list[Finding] = []
    for path in iter_python_files(paths):
        rel = _relative_label(path)
        source = path.read_text(encoding="utf-8")
        try:
            ctx = FileContext(path, rel, module_name(path), source)
        except SyntaxError as exc:
            errors.append(
                Finding(
                    rule_id="PARSE000",
                    path=rel,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        if not ctx.skip_file:
            contexts.append(ctx)
    return contexts, errors


# -- baseline ------------------------------------------------------------------


def load_baseline(path: Path | str) -> set[str]:
    """Finding keys waived by the committed baseline (empty if absent)."""
    baseline_path = Path(path)
    if not baseline_path.exists():
        return set()
    data = json.loads(baseline_path.read_text(encoding="utf-8"))
    return set(data.get("findings", []))


def write_baseline(path: Path | str, findings: Sequence[Finding]) -> None:
    payload = {
        "version": 1,
        "findings": sorted(finding.key() for finding in findings),
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


# -- entry point ---------------------------------------------------------------


def run_rules(
    paths: Sequence[Path | str],
    registry: RuleRegistry,
    *,
    rules: Sequence[str] | None = None,
    baseline: set[str] | None = None,
) -> list[Finding]:
    """Run ``registry``'s rules over ``paths``; return surviving findings.

    ``rules`` restricts the run to the given rule ids; ``baseline`` is a
    set of finding keys to drop (see :func:`load_baseline`).  Findings
    are sorted by location.
    """
    selected = registry.select(rules)
    contexts, findings = parse_files(Path(p) for p in paths)
    project = ProjectContext(contexts)
    by_rel = {ctx.rel: ctx for ctx in contexts}
    for rule in selected:
        if isinstance(rule, ProjectRule):
            raw: Iterable[Finding] = rule.check_project(project)
        else:
            raw = (f for ctx in contexts for f in rule.check_file(ctx))
        for finding in raw:
            ctx = by_rel.get(finding.path)
            if ctx is not None and ctx.suppressed(finding):
                continue
            findings.append(finding)

    if baseline:
        findings = [f for f in findings if f.key() not in baseline]
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule_id))


def format_findings_text(findings: Sequence[Finding], prog: str = "repro lint") -> str:
    if not findings:
        return f"{prog}: no findings"
    lines = [finding.render() for finding in findings]
    lines.append(f"{prog}: {len(findings)} finding(s)")
    return "\n".join(lines)


def format_findings_json(findings: Sequence[Finding]) -> str:
    return json.dumps(
        {"count": len(findings), "findings": [f.to_json() for f in findings]},
        indent=2,
    )
