"""Inter-region latency data modelled on AWS.

The paper deploys nodes on EC2 across 4 EU regions (Fig 6) and 11 world
regions (Fig 7).  We reproduce those topologies with one-way latency
matrices derived from published AWS inter-region RTT measurements (RTT/2,
rounded).  Values are milliseconds of one-way delay; the diagonal is the
intra-region latency.

The exact numbers do not need to match AWS on a given day - what matters
for reproducing the paper's *shape* is the realistic spread between nearby
regions (~5 ms in the EU) and antipodal ones (~100+ ms one-way).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

#: 4 EU regions used in Fig 6: Ireland, London, Paris, Frankfurt.
EU_REGION_NAMES = ["eu-west-1", "eu-west-2", "eu-west-3", "eu-central-1"]

#: One-way latency (ms) between the EU regions, symmetric.
EU_LATENCY_MS = [
    #  IRL   LDN   PAR   FRA
    [0.4, 5.0, 9.0, 12.0],  # Ireland
    [5.0, 0.4, 4.0, 7.0],  # London
    [9.0, 4.0, 0.4, 4.5],  # Paris
    [12.0, 7.0, 4.5, 0.4],  # Frankfurt
]

#: 11 world regions used in Fig 7: 4 US + 4 EU + Singapore, Sydney, Canada.
WORLD_REGION_NAMES = [
    "us-east-1",  # N. Virginia
    "us-east-2",  # Ohio
    "us-west-1",  # N. California
    "us-west-2",  # Oregon
    "eu-west-1",  # Ireland
    "eu-west-2",  # London
    "eu-west-3",  # Paris
    "eu-central-1",  # Frankfurt
    "ap-southeast-1",  # Singapore
    "ap-southeast-2",  # Sydney
    "ca-central-1",  # Canada Central
]

#: One-way latency (ms) between world regions, symmetric (RTT/2 of typical
#: published AWS inter-region pings).
WORLD_LATENCY_MS = [
    # use1  use2  usw1  usw2  euw1  euw2  euw3  euc1  apse1 apse2 cac1
    [0.4, 6.0, 31.0, 33.0, 34.0, 38.0, 40.0, 44.0, 108.0, 100.0, 7.0],  # us-east-1
    [6.0, 0.4, 25.0, 29.0, 39.0, 43.0, 45.0, 49.0, 103.0, 97.0, 13.0],  # us-east-2
    [31.0, 25.0, 0.4, 11.0, 64.0, 68.0, 70.0, 73.0, 88.0, 74.0, 39.0],  # us-west-1
    [33.0, 29.0, 11.0, 0.4, 62.0, 66.0, 68.0, 71.0, 83.0, 70.0, 30.0],  # us-west-2
    [34.0, 39.0, 64.0, 62.0, 0.4, 5.0, 9.0, 12.0, 120.0, 128.0, 35.0],  # eu-west-1
    [38.0, 43.0, 68.0, 66.0, 5.0, 0.4, 4.0, 7.0, 115.0, 131.0, 39.0],  # eu-west-2
    [40.0, 45.0, 70.0, 68.0, 9.0, 4.0, 0.4, 4.5, 115.0, 135.0, 42.0],  # eu-west-3
    [44.0, 49.0, 73.0, 71.0, 12.0, 7.0, 4.5, 0.4, 110.0, 140.0, 46.0],  # eu-central-1
    [108.0, 103.0, 88.0, 83.0, 120.0, 115.0, 115.0, 110.0, 0.4, 46.0, 105.0],  # ap-se-1
    [100.0, 97.0, 74.0, 70.0, 128.0, 131.0, 135.0, 140.0, 46.0, 0.4, 99.0],  # ap-se-2
    [7.0, 13.0, 39.0, 30.0, 35.0, 39.0, 42.0, 46.0, 105.0, 99.0, 0.4],  # ca-central-1
]


@dataclass(frozen=True)
class RegionMap:
    """A named set of regions with a symmetric one-way latency matrix."""

    name: str
    region_names: tuple[str, ...]
    latency_ms: tuple[tuple[float, ...], ...]

    def __post_init__(self) -> None:
        n = len(self.region_names)
        if len(self.latency_ms) != n or any(len(row) != n for row in self.latency_ms):
            raise ConfigError(f"latency matrix of {self.name} is not {n}x{n}")
        for i in range(n):
            for j in range(n):
                if self.latency_ms[i][j] != self.latency_ms[j][i]:
                    raise ConfigError(
                        f"latency matrix of {self.name} is asymmetric at ({i},{j})"
                    )
                if self.latency_ms[i][j] < 0:
                    raise ConfigError("negative latency")

    @property
    def num_regions(self) -> int:
        return len(self.region_names)

    def latency(self, region_a: int, region_b: int) -> float:
        """One-way latency in ms between two region indices."""
        return self.latency_ms[region_a][region_b]

    def assign_round_robin(self, num_nodes: int) -> list[int]:
        """Spread ``num_nodes`` over the regions round-robin (paper style).

        The paper places one t2.micro per node across the listed regions;
        with more nodes than regions the assignment simply wraps around.
        """
        return [i % self.num_regions for i in range(num_nodes)]


def _freeze(matrix: list[list[float]]) -> tuple[tuple[float, ...], ...]:
    return tuple(tuple(row) for row in matrix)


#: Fig 6 deployment: 4 EU regions.
EU_REGIONS = RegionMap("eu-4", tuple(EU_REGION_NAMES), _freeze(EU_LATENCY_MS))

#: Fig 7 deployment: 11 world regions.
WORLD_REGIONS = RegionMap("world-11", tuple(WORLD_REGION_NAMES), _freeze(WORLD_LATENCY_MS))

#: Single-site deployment (useful for unit tests and micro-benchmarks).
LOCAL_REGION = RegionMap("local-1", ("local",), ((0.2,),))
