"""Measurement plane: message, byte and latency accounting.

The paper reports throughput in Kops/s and latency in ms, and Table 1
counts protocol messages.  The :class:`Monitor` observes every network send
and every block execution so that experiments can pull those numbers out of
a finished simulation without the protocols carrying measurement code.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

# The record type moved to the core (the ledger produces it); it is
# re-exported here because the simulator side has always offered it.
from repro.core.monitor import ExecutionRecord

__all__ = ["ExecutionRecord", "Monitor"]


@dataclass
class Monitor:
    """Accumulates counters during a simulation run."""

    messages_sent: int = 0
    bytes_sent: int = 0
    messages_by_type: Counter = field(default_factory=Counter)
    bytes_by_type: Counter = field(default_factory=Counter)
    executions: list[ExecutionRecord] = field(default_factory=list)
    view_message_counts: Counter = field(default_factory=Counter)
    # Fault-injection accounting: messages suppressed or duplicated by the
    # network's fault pipeline (repro.sim.faults).  Sends are still counted
    # in messages_sent - a dropped message was sent, then lost.
    messages_dropped: int = 0
    dropped_by_type: Counter = field(default_factory=Counter)
    messages_duplicated: int = 0
    duplicated_by_type: Counter = field(default_factory=Counter)

    def record_send(self, msg_type: str, size_bytes: int, view: int | None = None) -> None:
        """Called by the network for every message handed to it."""
        self.messages_sent += 1
        self.bytes_sent += size_bytes
        self.messages_by_type[msg_type] += 1
        self.bytes_by_type[msg_type] += size_bytes
        if view is not None:
            self.view_message_counts[view] += 1

    def record_drop(self, msg_type: str) -> None:
        """Called by the network when the fault pipeline drops a message."""
        self.messages_dropped += 1
        self.dropped_by_type[msg_type] += 1

    def record_duplicate(self, msg_type: str, copies: int = 1) -> None:
        """Called by the network when ``copies`` extra copies are injected."""
        self.messages_duplicated += copies
        self.duplicated_by_type[msg_type] += copies

    def record_execution(self, record: ExecutionRecord) -> None:
        """Called by replicas when they execute (commit) a block."""
        self.executions.append(record)

    # -- derived metrics ----------------------------------------------------

    def committed_views(self) -> set[int]:
        """Views in which at least one replica executed a block."""
        return {r.view for r in self.executions}

    def throughput_kops(self, duration_ms: float) -> float:
        """Committed transactions per second, in thousands.

        Each block is counted once (not once per replica) using the first
        replica to execute it, matching the paper's replica-side throughput.
        """
        if duration_ms <= 0:
            return 0.0
        seen: set[bytes] = set()
        txs = 0
        for rec in self.executions:
            if rec.block_hash in seen:
                continue
            seen.add(rec.block_hash)
            txs += rec.num_transactions
        return (txs / (duration_ms / 1000.0)) / 1000.0

    def mean_latency_ms(self) -> float:
        """Average proposal-to-execution latency over all executions."""
        if not self.executions:
            return 0.0
        return sum(r.latency_ms for r in self.executions) / len(self.executions)

    def latency_percentile_ms(self, percentile: float) -> float:
        """Latency percentile (nearest-rank) over all executions.

        ``percentile`` is in [0, 100]; tail latencies (p99) expose
        view-change stalls that the mean smooths over.
        """
        if not (0.0 <= percentile <= 100.0):
            raise ValueError("percentile must be within [0, 100]")
        if not self.executions:
            return 0.0
        ordered = sorted(r.latency_ms for r in self.executions)
        rank = max(0, min(len(ordered) - 1, round(percentile / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def latency_stddev_ms(self) -> float:
        """Population standard deviation of execution latencies."""
        if len(self.executions) < 2:
            return 0.0
        mean = self.mean_latency_ms()
        var = sum((r.latency_ms - mean) ** 2 for r in self.executions) / len(self.executions)
        return var**0.5

    def messages_per_view(self, view: int) -> int:
        """Protocol messages attributed to a given view (Table 1 check)."""
        return self.view_message_counts[view]
