"""Compatibility shim: the seeded-stream RNG moved to :mod:`repro.core.rng`.

The protocol core consumes seeded randomness (pacemaker jitter, Poisson
clients) without depending on the simulator, so the implementation lives
in ``repro.core``; this module keeps the historical import path alive.
"""

from repro.core.rng import RngFactory, RngStream, derive_seed

__all__ = ["RngFactory", "RngStream", "derive_seed"]
