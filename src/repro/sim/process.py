"""Simulated actors and timers.

A :class:`Process` is anything with an identity that can receive messages
from the :class:`~repro.sim.network.Network` and set timers on the
simulator: replicas, clients, and scripted adversaries all subclass it.

Timers wrap simulator events with cancellation, which is what consensus
pacemakers need (cancel the view timer when the view succeeds).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.errors import SimulationError
from repro.sim.events import Event, Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.network import Network


class Timer:
    """A cancellable one-shot timer bound to a simulator event."""

    def __init__(self, sim: Simulator, delay: float, fn: Callable[[], None]) -> None:
        self._event: Event = sim.schedule(delay, self._fire)
        self._fn = fn
        self._fired = False
        self._cancelled = False

    def _fire(self) -> None:
        if self._cancelled:
            return
        self._fired = True
        self._fn()

    def cancel(self) -> None:
        """Prevent the timer from firing (idempotent)."""
        self._cancelled = True
        self._event.cancel()

    @property
    def active(self) -> bool:
        """True while the timer is pending (not fired, not cancelled)."""
        return not (self._fired or self._cancelled)


class Process:
    """Base class for simulated actors.

    Subclasses implement :meth:`on_message`.  A process learns its network
    when it is registered via :meth:`Network.add_process`; sending before
    registration is an error.
    """

    def __init__(self, pid: int, sim: Simulator) -> None:
        self.pid = pid
        self.sim = sim
        self.network: "Network | None" = None
        self.crashed = False
        # Virtual time until which this process's (single) CPU is busy.
        # Crypto and TEE costs are charged here so that a loaded leader
        # becomes a bottleneck exactly as on a t2.micro instance.
        self._busy_until = 0.0
        self.cpu_time_charged = 0.0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Hook called once the network wiring is complete."""

    def crash(self) -> None:
        """Silence this process: it stops sending and ignores deliveries."""
        self.crashed = True

    def recover(self) -> None:
        """Clear the crashed flag; the process handles traffic again.

        Messages that arrived while crashed are gone (deliveries to a
        crashed process are discarded, modelling lost volatile state).
        Subclasses restore whatever durable state their fault model
        grants them - see ``BaseReplica.recover`` for sealed TEE state.
        """
        self.crashed = False
        self._busy_until = self.sim.now

    # -- CPU accounting ------------------------------------------------------

    def charge(self, cost_ms: float) -> None:
        """Occupy this process's CPU for ``cost_ms`` of virtual time.

        Charged time delays both the process's subsequent sends and the
        handling of messages that arrive while it is busy, modelling a
        single-core replica.
        """
        if cost_ms <= 0:
            return
        self._busy_until = max(self._busy_until, self.sim.now) + cost_ms
        self.cpu_time_charged += cost_ms

    @property
    def busy_until(self) -> float:
        """Virtual time at which the CPU becomes free again."""
        return self._busy_until

    # -- messaging ---------------------------------------------------------

    def send(self, dest: int, payload: Any, size_bytes: int | None = None) -> None:
        """Send ``payload`` to ``dest``, after any pending CPU work.

        If the process has charged CPU time that extends past ``now``, the
        message is handed to the network only when the CPU frees up - the
        wire cannot outrun the crypto that produced the message.
        """
        if self.network is None:
            raise SimulationError(f"process {self.pid} is not attached to a network")
        if self.crashed:
            return
        network = self.network
        if self._busy_until > self.sim.now:
            self.sim.schedule(
                self._busy_until - self.sim.now,
                lambda: network.send(self.pid, dest, payload, size_bytes=size_bytes),
            )
        else:
            network.send(self.pid, dest, payload, size_bytes=size_bytes)

    def broadcast(
        self,
        dests: list[int],
        payload: Any,
        size_bytes: int | None = None,
        include_self: bool = False,
    ) -> None:
        """Send ``payload`` to every pid in ``dests`` (optionally self too)."""
        for dest in dests:
            if dest == self.pid and not include_self:
                continue
            self.send(dest, payload, size_bytes=size_bytes)
        if include_self and self.pid not in dests:
            self.send(self.pid, payload, size_bytes=size_bytes)

    def deliver(self, sender: int, payload: Any) -> None:
        """Called by the network when a message arrives.

        A message that arrives while the CPU is busy waits in the receive
        queue until the CPU frees up.
        """
        if self.crashed:
            return
        if self._busy_until > self.sim.now:
            self.sim.schedule(
                self._busy_until - self.sim.now,
                lambda: self.deliver(sender, payload),
            )
            return
        self.on_message(sender, payload)

    def on_message(self, sender: int, payload: Any) -> None:
        """Handle an incoming message.  Subclasses override."""
        raise NotImplementedError

    # -- timers ------------------------------------------------------------

    def set_timer(self, delay: float, fn: Callable[[], None]) -> Timer:
        """Arm a cancellable timer ``delay`` ms from now."""
        return Timer(self.sim, delay, fn)
