"""Compatibility shim: the fault model moved to :mod:`repro.core.faults`.

The fault model (rules, plans, the shared :func:`evaluate_rules`
combiner) is runtime-agnostic - the asyncio TCP runtime applies the same
:class:`FaultPlan` to real frames via
:mod:`repro.runtime.resilience.transport` - so the implementation lives
in ``repro.core``; this module keeps the historical import path alive
for simulator-facing code and existing chaos harness callers.
``FaultPlan.install`` still wires a plan into a simulated
:class:`~repro.sim.network.Network`.
"""

from repro.core.faults import (
    DROP,
    CrashEvent,
    FaultAction,
    FaultPlan,
    FaultRule,
    LinkFaultRule,
    PartitionRule,
    evaluate_rules,
)

__all__ = [
    "DROP",
    "CrashEvent",
    "FaultAction",
    "FaultPlan",
    "FaultRule",
    "LinkFaultRule",
    "PartitionRule",
    "evaluate_rules",
]
