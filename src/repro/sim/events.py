"""Deterministic discrete-event loop with a virtual clock.

The simulator keeps a heap of pending events keyed by ``(time, sequence)``
so that two events scheduled for the same instant fire in the order they
were scheduled.  That tie-break rule is what makes every simulation run
bit-for-bit reproducible from its seed; nothing in the library reads the
wall clock.

Times are floats in *milliseconds* of virtual time.  Milliseconds are the
natural unit for wide-area consensus (inter-region RTTs are tens of ms,
crypto operations are fractions of a ms).

Cancelled events are discarded lazily when they reach the top of the
heap, but the simulator tracks how many cancelled entries are pending and
*compacts* the heap once they are the majority, so chaos runs that cancel
many timeouts keep the heap (and every push/pop) small.

For profiling, an external wall clock can be attached with
:meth:`Simulator.attach_wall_clock`; the simulator itself never imports a
time source (determinism rule DET001) and the measured wall time feeds
only the reporting counters, never the event order.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError

#: Compact the heap when more than half its entries are cancelled and it
#: is at least this large (tiny heaps are not worth rebuilding).
_COMPACT_MIN_HEAP = 64


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` which is exactly the heap order used
    by :class:`Simulator`.  ``fn`` is excluded from comparisons.
    """

    time: float
    seq: int
    fn: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    # Back-reference used for cancelled-event accounting; detached (set to
    # None) once the event leaves the heap so late cancels cannot skew the
    # pending counter.
    sim: "Simulator | None" = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when it fires."""
        if not self.cancelled:
            self.cancelled = True
            if self.sim is not None:
                self.sim._note_cancelled()


class Simulator:
    """Event heap plus virtual clock.

    Usage::

        sim = Simulator()
        sim.schedule(5.0, lambda: print(sim.now))
        sim.run()
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self._events_processed = 0
        self._cancelled_pending = 0
        # Optional profiling clock (e.g. time.perf_counter), injected from
        # outside the sim package; see module docstring.
        self._wall_clock: Callable[[], float] | None = None
        self._wall_seconds = 0.0

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events that have fired so far (cancelled ones excluded)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still on the heap (including cancelled ones)."""
        return len(self._heap)

    @property
    def cancelled_pending(self) -> int:
        """Cancelled events still occupying heap slots."""
        return self._cancelled_pending

    # -- profiling counters -------------------------------------------------

    def attach_wall_clock(self, clock: Callable[[], float]) -> None:
        """Install a wall-clock source (seconds) used only for reporting.

        The clock is read around :meth:`run` to maintain
        :attr:`wall_seconds`; it never influences event order, so
        determinism is preserved.
        """
        self._wall_clock = clock

    @property
    def wall_seconds(self) -> float:
        """Wall-clock seconds spent inside :meth:`run` (0 if no clock)."""
        return self._wall_seconds

    @property
    def events_per_wall_second(self) -> float:
        """Fired events per wall-clock second (0 without an attached clock)."""
        if self._wall_seconds <= 0.0:
            return 0.0
        return self._events_processed / self._wall_seconds

    @property
    def wall_seconds_per_sim_second(self) -> float:
        """Wall-clock seconds needed per simulated second (0 without clock)."""
        if self._wall_seconds <= 0.0 or self._now <= 0.0:
            return 0.0
        return self._wall_seconds / (self._now / 1000.0)

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run ``delay`` ms from now; returns the event.

        ``delay`` must be non-negative: simulated causality only moves
        forward.  A zero delay is allowed and fires after all events already
        scheduled for the current instant.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        event = Event(time=self._now + delay, seq=next(self._seq), fn=fn, sim=self)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` at absolute virtual time ``time``."""
        return self.schedule(time - self._now, fn)

    # -- cancellation accounting -------------------------------------------

    def _note_cancelled(self) -> None:
        """One pending event was cancelled; compact if the heap is mostly dead."""
        self._cancelled_pending += 1
        heap = self._heap
        if (
            len(heap) >= _COMPACT_MIN_HEAP
            and self._cancelled_pending * 2 > len(heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, in place.

        In-place (slice assignment) so that a compaction triggered from a
        callback does not invalidate the heap list the run loop iterates.
        """
        heap = self._heap
        live = [event for event in heap if not event.cancelled]
        heap[:] = live
        heapq.heapify(heap)
        self._cancelled_pending = 0

    # -- running ------------------------------------------------------------

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Process events until the heap drains or a bound is hit.

        ``until`` stops the clock at that virtual time (events at exactly
        ``until`` still run).  ``max_events`` bounds the number of callbacks
        fired, which guards tests against accidental infinite event chains.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        fired = 0
        heap = self._heap
        heappop = heapq.heappop
        clock = self._wall_clock
        started = clock() if clock is not None else 0.0
        try:
            while heap:
                event = heap[0]
                if until is not None and event.time > until:
                    self._now = until
                    break
                heappop(heap)
                if event.cancelled:
                    event.sim = None
                    self._cancelled_pending -= 1
                    continue
                if max_events is not None and fired >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway event chain?"
                    )
                event.sim = None
                self._now = event.time
                self._events_processed += 1
                fired += 1
                event.fn()
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
            if clock is not None:
                self._wall_seconds += clock() - started

    def step(self, max_events: int | None = None) -> bool:
        """Fire exactly one (non-cancelled) event; return False if none left.

        Applies the same reentrancy guard and accounting as :meth:`run`:
        calling ``step()`` from inside a callback raises, cancelled events
        are discarded (and counted off ``cancelled_pending``), and
        ``max_events`` - checked against the lifetime
        :attr:`events_processed` counter - guards stepped drains against
        runaway event chains just like ``run(max_events=...)`` does.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            heap = self._heap
            while heap:
                event = heapq.heappop(heap)
                if event.cancelled:
                    event.sim = None
                    self._cancelled_pending -= 1
                    continue
                if max_events is not None and self._events_processed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway event chain?"
                    )
                event.sim = None
                self._now = event.time
                self._events_processed += 1
                event.fn()
                return True
            return False
        finally:
            self._running = False
