"""Deterministic discrete-event loop with a virtual clock.

The simulator keeps a heap of pending events keyed by ``(time, sequence)``
so that two events scheduled for the same instant fire in the order they
were scheduled.  That tie-break rule is what makes every simulation run
bit-for-bit reproducible from its seed; nothing in the library reads the
wall clock.

Times are floats in *milliseconds* of virtual time.  Milliseconds are the
natural unit for wide-area consensus (inter-region RTTs are tens of ms,
crypto operations are fractions of a ms).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` which is exactly the heap order used
    by :class:`Simulator`.  ``fn`` is excluded from comparisons.
    """

    time: float
    seq: int
    fn: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when it fires."""
        self.cancelled = True


class Simulator:
    """Event heap plus virtual clock.

    Usage::

        sim = Simulator()
        sim.schedule(5.0, lambda: print(sim.now))
        sim.run()
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events that have fired so far (cancelled ones excluded)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still on the heap (including cancelled ones)."""
        return len(self._heap)

    def schedule(self, delay: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run ``delay`` ms from now; returns the event.

        ``delay`` must be non-negative: simulated causality only moves
        forward.  A zero delay is allowed and fires after all events already
        scheduled for the current instant.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        event = Event(time=self._now + delay, seq=next(self._seq), fn=fn)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` at absolute virtual time ``time``."""
        return self.schedule(time - self._now, fn)

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Process events until the heap drains or a bound is hit.

        ``until`` stops the clock at that virtual time (events at exactly
        ``until`` still run).  ``max_events`` bounds the number of callbacks
        fired, which guards tests against accidental infinite event chains.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        fired = 0
        try:
            while self._heap:
                event = self._heap[0]
                if until is not None and event.time > until:
                    self._now = until
                    break
                heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                if max_events is not None and fired >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway event chain?"
                    )
                self._now = event.time
                self._events_processed += 1
                fired += 1
                event.fn()
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Fire exactly one (non-cancelled) event; return False if none left."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            event.fn()
            return True
        return False
