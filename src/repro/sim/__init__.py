"""Discrete-event simulation substrate.

This package is the stand-in for the paper's AWS deployment: a
deterministic discrete-event simulator with a virtual clock, actors that
exchange messages over simulated wide-area links, and latency models that
implement the partial-synchrony assumption (arbitrary delays before GST,
bounded by delta after GST).

Public entry points:

* :class:`~repro.sim.events.Simulator` - the event loop and virtual clock.
* :class:`~repro.sim.process.Process` - base class for simulated actors.
* :class:`~repro.sim.network.Network` - message delivery between processes.
* :mod:`~repro.sim.latency` - latency models (constant, matrix, GST).
* :mod:`~repro.sim.regions` - AWS-like inter-region RTT data sets.
* :class:`~repro.sim.monitor.Monitor` - message/byte/latency accounting.
"""

from repro.sim.events import Event, Simulator
from repro.sim.latency import (
    ConstantLatency,
    LatencyModel,
    MatrixLatency,
    PartialSynchronyLatency,
)
from repro.sim.monitor import Monitor
from repro.sim.network import Network
from repro.sim.process import Process, Timer
from repro.sim.regions import EU_REGIONS, WORLD_REGIONS, RegionMap
from repro.sim.rng import RngStream

__all__ = [
    "Event",
    "Simulator",
    "Process",
    "Timer",
    "Network",
    "Monitor",
    "LatencyModel",
    "ConstantLatency",
    "MatrixLatency",
    "PartialSynchronyLatency",
    "RegionMap",
    "EU_REGIONS",
    "WORLD_REGIONS",
    "RngStream",
]
