"""Simulated point-to-point network with composable fault injection.

By default links are reliable (paper Section 5): messages are never lost
or corrupted, but each delivery is delayed according to the installed
:class:`~repro.sim.latency.LatencyModel`.  Self-sends loop back with a tiny
local delay but are still counted by the monitor, because Table 1's message
counts explicitly "include self-messages".

The network also supports *taps* (observers used by tests and by scripted
adversaries to watch traffic) and a pipeline of *fault filters* used by
:mod:`repro.sim.faults` to model lossy links, duplication, extra delay
and partitions.  A filter is called for every send and may return:

* ``None`` or ``False`` - no opinion, the message passes;
* ``True`` - drop (the legacy ``drop_filter`` contract);
* a :class:`~repro.sim.faults.FaultAction` - drop, duplicate, or delay.

Faults are never enabled in the paper-reproduction benchmarks; dropped
and duplicated messages are counted by the monitor so chaos experiments
can report exactly what they injected.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SimulationError

# Sizing/labelling helpers grew up here but belong to the wire codec;
# re-exported for compatibility with existing imports.
from repro.core.codec import msg_type_of, wire_size_of
from repro.sim.events import Simulator
from repro.sim.latency import LatencyModel
from repro.sim.monitor import Monitor
from repro.sim.process import Process

__all__ = ["SELF_DELIVERY_MS", "Network", "msg_type_of", "wire_size_of"]

#: Loop-back delay for a process sending to itself, in ms.
SELF_DELIVERY_MS = 0.01


class Network:
    """Delivers payloads between registered processes with modelled delay."""

    def __init__(
        self,
        sim: Simulator,
        latency: LatencyModel,
        monitor: Monitor | None = None,
        fifo: bool = False,
    ) -> None:
        self.sim = sim
        self.latency = latency
        self.monitor = monitor if monitor is not None else Monitor()
        self.processes: dict[int, Process] = {}
        self.taps: list[Callable[[int, int, Any], None]] = []
        # Composable fault pipeline; see the module docstring for the
        # filter contract.  The legacy single-slot ``drop_filter`` is a
        # view onto one entry of this list.
        self.fault_filters: list[Callable[[int, int, Any], Any]] = []
        self._legacy_drop_filter: Callable[[int, int, Any], bool] | None = None
        # TCP-like per-link ordering: with fifo=True a message never
        # overtakes an earlier one on the same (src, dst) link.
        self.fifo = fifo
        self._last_arrival: dict[tuple[int, int], float] = {}

    # -- fault pipeline ----------------------------------------------------

    @property
    def drop_filter(self) -> Callable[[int, int, Any], bool] | None:
        """Backward-compatible single-slot drop filter.

        Assigning a callable installs it in the fault pipeline (replacing
        any previously assigned one); assigning ``None`` removes it.
        """
        return self._legacy_drop_filter

    @drop_filter.setter
    def drop_filter(self, fn: Callable[[int, int, Any], bool] | None) -> None:
        if self._legacy_drop_filter is not None:
            self.fault_filters.remove(self._legacy_drop_filter)
        self._legacy_drop_filter = fn
        if fn is not None:
            self.fault_filters.append(fn)

    def add_fault_filter(self, fn: Callable[[int, int, Any], Any]) -> None:
        """Append a filter to the fault pipeline."""
        self.fault_filters.append(fn)

    def remove_fault_filter(self, fn: Callable[[int, int, Any], Any]) -> None:
        """Remove a previously installed filter (idempotent)."""
        if fn in self.fault_filters:
            self.fault_filters.remove(fn)
        if fn is self._legacy_drop_filter:
            self._legacy_drop_filter = None

    def add_process(self, process: Process) -> None:
        """Register a process; its pid must be unique on this network."""
        if process.pid in self.processes:
            raise SimulationError(f"duplicate pid {process.pid}")
        self.processes[process.pid] = process
        process.network = self

    def add_tap(self, tap: Callable[[int, int, Any], None]) -> None:
        """Install an observer called for every (src, dst, payload) send."""
        self.taps.append(tap)

    def send(
        self,
        src: int,
        dst: int,
        payload: Any,
        size_bytes: int | None = None,
    ) -> None:
        """Queue ``payload`` for delivery from ``src`` to ``dst``."""
        if dst not in self.processes:
            raise SimulationError(f"unknown destination pid {dst}")
        size = size_bytes if size_bytes is not None else wire_size_of(payload)
        self.monitor.record_send(
            msg_type_of(payload), size, view=getattr(payload, "view", None)
        )
        for tap in self.taps:
            tap(src, dst, payload)
        copies = 1
        extra_delay = 0.0
        for fault in self.fault_filters:
            decision = fault(src, dst, payload)
            if decision is None or decision is False:
                continue
            if decision is True or decision.drop:
                self.monitor.record_drop(msg_type_of(payload))
                return
            copies += decision.duplicates
            extra_delay += decision.extra_delay_ms
        if copies > 1:
            self.monitor.record_duplicate(msg_type_of(payload), copies - 1)
        target = self.processes[dst]
        for _ in range(copies):
            if src == dst:
                delay = SELF_DELIVERY_MS + extra_delay
            else:
                delay = self.latency.delay(src, dst, size, self.sim.now) + extra_delay
            if self.fifo:
                link = (src, dst)
                arrival = max(self.sim.now + delay, self._last_arrival.get(link, 0.0))
                self._last_arrival[link] = arrival
                delay = arrival - self.sim.now
            self.sim.schedule(delay, lambda: target.deliver(src, payload))
