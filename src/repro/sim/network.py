"""Simulated reliable point-to-point network.

Messages are never lost or corrupted (reliable links, paper Section 5) but
each delivery is delayed according to the installed
:class:`~repro.sim.latency.LatencyModel`.  Self-sends loop back with a tiny
local delay but are still counted by the monitor, because Table 1's message
counts explicitly "include self-messages".

The network also supports *taps* (observers used by tests and by scripted
adversaries to watch traffic) and a *drop filter* used to model message
suppression by a network-level adversary in liveness tests.  Dropping is
never enabled in the paper-reproduction benchmarks.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.events import Simulator
from repro.sim.latency import LatencyModel
from repro.sim.monitor import Monitor
from repro.sim.process import Process

#: Loop-back delay for a process sending to itself, in ms.
SELF_DELIVERY_MS = 0.01


def wire_size_of(payload: Any) -> int:
    """Best-effort wire size of a payload in bytes.

    Protocol messages implement ``wire_size()``; other payloads (test
    strings, tuples...) fall back to a small constant so unit tests do not
    need size plumbing.
    """
    sizer = getattr(payload, "wire_size", None)
    if callable(sizer):
        return int(sizer())
    return 64


def msg_type_of(payload: Any) -> str:
    """Message-type label used for per-type accounting."""
    label = getattr(payload, "msg_type", None)
    if isinstance(label, str):
        return label
    return type(payload).__name__


class Network:
    """Delivers payloads between registered processes with modelled delay."""

    def __init__(
        self,
        sim: Simulator,
        latency: LatencyModel,
        monitor: Monitor | None = None,
        fifo: bool = False,
    ) -> None:
        self.sim = sim
        self.latency = latency
        self.monitor = monitor if monitor is not None else Monitor()
        self.processes: dict[int, Process] = {}
        self.taps: list[Callable[[int, int, Any], None]] = []
        self.drop_filter: Callable[[int, int, Any], bool] | None = None
        # TCP-like per-link ordering: with fifo=True a message never
        # overtakes an earlier one on the same (src, dst) link.
        self.fifo = fifo
        self._last_arrival: dict[tuple[int, int], float] = {}

    def add_process(self, process: Process) -> None:
        """Register a process; its pid must be unique on this network."""
        if process.pid in self.processes:
            raise SimulationError(f"duplicate pid {process.pid}")
        self.processes[process.pid] = process
        process.network = self

    def add_tap(self, tap: Callable[[int, int, Any], None]) -> None:
        """Install an observer called for every (src, dst, payload) send."""
        self.taps.append(tap)

    def send(
        self,
        src: int,
        dst: int,
        payload: Any,
        size_bytes: int | None = None,
    ) -> None:
        """Queue ``payload`` for delivery from ``src`` to ``dst``."""
        if dst not in self.processes:
            raise SimulationError(f"unknown destination pid {dst}")
        size = size_bytes if size_bytes is not None else wire_size_of(payload)
        self.monitor.record_send(
            msg_type_of(payload), size, view=getattr(payload, "view", None)
        )
        for tap in self.taps:
            tap(src, dst, payload)
        if self.drop_filter is not None and self.drop_filter(src, dst, payload):
            return
        if src == dst:
            delay = SELF_DELIVERY_MS
        else:
            delay = self.latency.delay(src, dst, size, self.sim.now)
        if self.fifo:
            link = (src, dst)
            arrival = max(self.sim.now + delay, self._last_arrival.get(link, 0.0))
            self._last_arrival[link] = arrival
            delay = arrival - self.sim.now
        target = self.processes[dst]
        self.sim.schedule(delay, lambda: target.deliver(src, payload))
