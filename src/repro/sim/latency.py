"""Latency models for the simulated network.

A latency model answers one question: how long does a message of ``size``
bytes sent at virtual time ``now`` from node ``src`` to node ``dst`` take to
arrive?  Three models are provided:

* :class:`ConstantLatency` - fixed propagation delay (unit tests).
* :class:`MatrixLatency` - per-region propagation from a
  :class:`~repro.sim.regions.RegionMap` plus a bandwidth term and jitter;
  this is the model used by all paper-reproduction benchmarks.
* :class:`PartialSynchronyLatency` - wraps another model and adds
  adversarially random extra delay before GST, implementing the
  partial-synchrony assumption of Section 5 (after GST every message
  arrives within a known bound delta).
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.sim.regions import RegionMap
from repro.sim.rng import RngStream

#: Default WAN bandwidth per link in bytes/ms (~1 Gbit/s = 125 000 B/ms).
DEFAULT_BANDWIDTH_BYTES_PER_MS = 125_000.0


class LatencyModel:
    """Interface: map (src, dst, size, now) to a one-way delay in ms."""

    def delay(self, src: int, dst: int, size_bytes: int, now: float) -> float:
        raise NotImplementedError


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``base_ms`` (plus optional bandwidth)."""

    def __init__(self, base_ms: float, bandwidth: float | None = None) -> None:
        if base_ms < 0:
            raise ConfigError("latency must be non-negative")
        self.base_ms = base_ms
        self.bandwidth = bandwidth

    def delay(self, src: int, dst: int, size_bytes: int, now: float) -> float:
        transfer = size_bytes / self.bandwidth if self.bandwidth else 0.0
        return self.base_ms + transfer


class MatrixLatency(LatencyModel):
    """Region-matrix propagation + serialization time + multiplicative jitter.

    ``placement[i]`` gives the region index of node ``i``.  The delay of a
    message is ``matrix[region(src)][region(dst)] * (1 +/- jitter) +
    size/bandwidth``.  Jitter draws come from a dedicated RNG stream so the
    model is deterministic per seed.
    """

    def __init__(
        self,
        regions: RegionMap,
        placement: list[int],
        rng: RngStream,
        bandwidth: float = DEFAULT_BANDWIDTH_BYTES_PER_MS,
        jitter: float = 0.05,
    ) -> None:
        if any(r < 0 or r >= regions.num_regions for r in placement):
            raise ConfigError("placement refers to an unknown region")
        self.regions = regions
        self.placement = list(placement)
        self.rng = rng
        self.bandwidth = bandwidth
        self.jitter = jitter

    def delay(self, src: int, dst: int, size_bytes: int, now: float) -> float:
        base = self.regions.latency(self.placement[src], self.placement[dst])
        propagation = self.rng.jitter(base, self.jitter)
        transfer = size_bytes / self.bandwidth if self.bandwidth else 0.0
        return propagation + transfer


class PartialSynchronyLatency(LatencyModel):
    """Partial synchrony: arbitrary (bounded) chaos before GST, delta after.

    Before ``gst`` every message suffers an extra uniform delay in
    ``[0, max_extra_ms]``; after GST delays are clamped to ``delta_ms`` so
    the known bound of the model holds.  Messages are never lost (reliable
    links, Section 5).
    """

    def __init__(
        self,
        inner: LatencyModel,
        rng: RngStream,
        gst: float,
        delta_ms: float,
        max_extra_ms: float = 500.0,
    ) -> None:
        if delta_ms <= 0:
            raise ConfigError("delta must be positive")
        self.inner = inner
        self.rng = rng
        self.gst = gst
        self.delta_ms = delta_ms
        self.max_extra_ms = max_extra_ms

    def delay(self, src: int, dst: int, size_bytes: int, now: float) -> float:
        base = self.inner.delay(src, dst, size_bytes, now)
        if now < self.gst:
            extra = self.rng.uniform(0.0, self.max_extra_ms)
            # A pre-GST message must still arrive within delta after GST.
            return min(base + extra, (self.gst - now) + self.delta_ms)
        return min(base, self.delta_ms)
