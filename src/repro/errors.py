"""Exception hierarchy for the DAMYSUS reproduction.

All library-specific errors derive from :class:`ReproError` so callers can
catch the whole family with a single ``except`` clause.  The TEE errors are
deliberately split from protocol errors: a :class:`TEERefusal` models a
trusted component declining an operation (the hardware analogue of an
enclave returning an error code), which Byzantine callers may legitimately
trigger, while :class:`ProtocolError` indicates a malformed message or an
invariant violation observed by untrusted replica code.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """Invalid system or protocol configuration."""


class CryptoError(ReproError):
    """Signature or hashing failure (bad key, malformed signature...)."""


class VerificationError(CryptoError):
    """A signature or certificate failed verification."""


class TEEError(ReproError):
    """Base class for trusted-component errors."""


class TEERefusal(TEEError):
    """A trusted service refused an operation.

    Raised when a caller (possibly Byzantine) invokes a TEE function with
    arguments that do not satisfy the function's guard, e.g. calling
    ``TEEprepare`` with an accumulator for a stale view.  Real enclaves
    return an error status; we raise so the refusal cannot be ignored
    silently.
    """


class ProtocolError(ReproError):
    """A replica observed a malformed or inconsistent protocol message."""


class MissingBlockError(ProtocolError):
    """An operation needed a block body this replica has not received.

    Recoverable: replicas react by fetching the block from peers (block
    synchronization), unlike other protocol errors.
    """


class SafetyViolation(ReproError):
    """Two conflicting blocks were executed - consensus safety is broken.

    This error is never raised during correct operation of Damysus or
    HotStuff; it exists so that tests and the Section-4 counter-example can
    detect when a deliberately weakened protocol loses safety.
    """


class SimulationError(ReproError):
    """The discrete-event simulator was driven into an invalid state."""
