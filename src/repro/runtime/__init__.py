"""Pluggable runtimes for the sans-I/O protocol core.

The protocol machines in :mod:`repro.protocols` emit
:mod:`~repro.runtime.effects` instead of performing I/O; a runtime
interprets those effects:

* :mod:`repro.runtime.sim` - the discrete-event simulator runtime used
  by every benchmark and figure script (bit-identical to the pre-refactor
  architecture);
* :mod:`repro.runtime.asyncio_net` - real asyncio TCP sockets with
  length-prefixed :mod:`repro.core.codec` frames (``repro serve`` /
  ``repro net-bench``).

This package intentionally re-exports only the runtime-agnostic pieces;
import the adapters from their own modules so the protocol layer never
drags in the simulator or asyncio.
"""

from repro.runtime.effects import (
    Broadcast,
    CancelTimer,
    ChargeCpu,
    Commit,
    Effect,
    Runtime,
    Send,
    SetTimer,
)
from repro.runtime.machine import Machine, MachineTimer

__all__ = [
    "Broadcast",
    "CancelTimer",
    "ChargeCpu",
    "Commit",
    "Effect",
    "Machine",
    "MachineTimer",
    "Runtime",
    "Send",
    "SetTimer",
]
