"""The effect algebra: everything a protocol machine can ask of the world.

A sans-I/O protocol machine never touches a network, a timer wheel or a
CPU model directly.  Its handlers *describe* I/O as a list of effects, in
the exact order the actions should happen, and a :class:`Runtime` carries
them out - on the discrete-event simulator, on real asyncio sockets, or
on nothing at all (unit tests can simply assert on the list).

Effect interpretation order is part of the contract: runtimes must apply
effects in list order, because the simulator derives its deterministic
event ordering from the order side effects are scheduled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol


@dataclass(frozen=True, slots=True)
class Send:
    """Deliver ``payload`` to the peer ``dest`` (best effort)."""

    dest: int
    payload: Any
    size_bytes: int | None = None


@dataclass(frozen=True, slots=True)
class Broadcast:
    """Deliver ``payload`` to every pid in ``dests`` in order.

    ``include_self`` mirrors the paper's message counting: self-messages
    are real sends (Table 1 "includes self-messages"), delivered through
    the same path as peer traffic.
    """

    dests: tuple[int, ...]
    payload: Any
    include_self: bool = False
    size_bytes: int | None = None


@dataclass(frozen=True, slots=True)
class SetTimer:
    """Arm one-shot timer ``timer_id`` to fire ``delay_ms`` from now.

    The runtime calls ``machine.on_timer(timer_id)`` when it fires.
    """

    timer_id: int
    delay_ms: float


@dataclass(frozen=True, slots=True)
class CancelTimer:
    """Disarm a previously set timer (no-op if it already fired)."""

    timer_id: int


@dataclass(frozen=True, slots=True)
class Commit:
    """Announce that ``block`` was executed (committed) in ``view``.

    Runtimes use this for progress reporting; the ledger has already
    applied the block by the time this effect is emitted.
    """

    block: Any
    view: int


@dataclass(frozen=True, slots=True)
class ChargeCpu:
    """Occupy the machine's (single) CPU for ``ms`` of processing time.

    The simulator models this as busy time that delays subsequent sends
    and deliveries; wall-clock runtimes may ignore it (the real CPU burns
    real time).
    """

    ms: float = field(default=0.0)


#: Union of every effect a machine may emit.
Effect = Send | Broadcast | SetTimer | CancelTimer | Commit | ChargeCpu


class Runtime(Protocol):
    """What a machine needs from whatever hosts it."""

    def execute(self, effects: list[Effect]) -> None:
        """Apply ``effects`` in order on behalf of the attached machine."""
        ...

    def machine_recovered(self) -> None:
        """The machine restarted: reset host-side state (CPU busy time)."""
        ...
