"""Length-prefixed framing for protocol messages on a byte stream.

TCP gives a byte stream; the wire codec (:mod:`repro.core.codec`) gives
message bytes.  This module glues them: every message travels as a
``u32-le`` length prefix followed by that many payload bytes, and the
first frame of every connection is a *hello* identifying the sender's
pid (consensus messages carry signatures, but the transport needs an
address book entry before the first message is parsed).

Pure and I/O-free by design - :class:`FrameDecoder` is fed bytes and
yields frames - so it is unit-testable without sockets and reusable by
any transport.
"""

from __future__ import annotations

import struct

from repro.errors import ProtocolError

#: Frames above this size are treated as a protocol violation (a byzantine
#: peer must not be able to make us buffer unbounded memory).
MAX_FRAME_BYTES = 4 * 1024 * 1024

_LEN = struct.Struct("<I")

#: First-frame payload prefix identifying a peer connection.
HELLO_MAGIC = b"repro-hello\x00"


class FramingError(ProtocolError):
    """Malformed framing on a connection (oversized or bad hello)."""


def encode_frame(payload: bytes) -> bytes:
    """Wrap ``payload`` in a length prefix."""
    if len(payload) > MAX_FRAME_BYTES:
        raise FramingError(f"frame of {len(payload)} bytes exceeds {MAX_FRAME_BYTES}")
    return _LEN.pack(len(payload)) + payload


def encode_hello(pid: int) -> bytes:
    """The hello frame a connecting peer sends first: magic + sender pid."""
    return encode_frame(HELLO_MAGIC + _LEN.pack(pid))


def decode_hello(payload: bytes) -> int:
    """Parse a hello frame payload; returns the sender pid."""
    if len(payload) != len(HELLO_MAGIC) + _LEN.size or not payload.startswith(HELLO_MAGIC):
        raise FramingError("connection did not open with a valid hello frame")
    return int(_LEN.unpack_from(payload, len(HELLO_MAGIC))[0])


class FrameDecoder:
    """Incremental frame parser: feed bytes in, take whole frames out."""

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[bytes]:
        """Absorb ``data``; return every frame completed by it, in order."""
        self._buffer.extend(data)
        frames: list[bytes] = []
        while True:
            if len(self._buffer) < _LEN.size:
                break
            (length,) = _LEN.unpack_from(self._buffer, 0)
            if length > self.max_frame_bytes:
                raise FramingError(
                    f"peer announced a {length}-byte frame (cap {self.max_frame_bytes})"
                )
            end = _LEN.size + length
            if len(self._buffer) < end:
                break
            frames.append(bytes(self._buffer[_LEN.size:end]))
            del self._buffer[:end]
        return frames

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buffer)
