"""Length-prefixed framing for protocol messages on a byte stream.

TCP gives a byte stream; the wire codec (:mod:`repro.core.codec`) gives
message bytes.  This module glues them: every message travels as a
``u32-le`` length prefix followed by that many payload bytes, and the
first frame of every connection is a *hello* identifying the sender's
pid (consensus messages carry signatures, but the transport needs an
address book entry before the first message is parsed).

Pure and I/O-free by design - :class:`FrameDecoder` is fed bytes and
yields frames - so it is unit-testable without sockets and reusable by
any transport.
"""

from __future__ import annotations

import struct

from repro.core.codec import WIRE_VERSION
from repro.errors import ProtocolError

#: Frames above this size are treated as a protocol violation (a byzantine
#: peer must not be able to make us buffer unbounded memory).
MAX_FRAME_BYTES = 4 * 1024 * 1024

_LEN = struct.Struct("<I")

#: First-frame payload prefix identifying a peer connection.
HELLO_MAGIC = b"repro-hello\x00"

#: Hello pids above this bound are treated as hostile input: real
#: deployments number replicas densely from zero, so an id like 2**31
#: can only come from garbage or an attack, and admitting it would let a
#: stranger key unbounded per-peer state.
MAX_HELLO_PID = 1 << 20


class FramingError(ProtocolError):
    """Malformed framing on a connection (oversized or bad hello)."""


def encode_frame(payload: bytes) -> bytes:
    """Wrap ``payload`` in a length prefix."""
    if len(payload) > MAX_FRAME_BYTES:
        raise FramingError(f"frame of {len(payload)} bytes exceeds {MAX_FRAME_BYTES}")
    return _LEN.pack(len(payload)) + payload


def encode_hello(pid: int) -> bytes:
    """The hello frame a connecting peer sends first: magic + pid + version.

    The trailing :data:`~repro.core.codec.WIRE_VERSION` word is the codec
    generation the sender will speak; a receiver on a different
    generation refuses the connection at the hello instead of misparsing
    consensus frames mid-stream.
    """
    return encode_frame(HELLO_MAGIC + _LEN.pack(pid) + _LEN.pack(WIRE_VERSION))


def decode_hello(payload: bytes, max_pid: int = MAX_HELLO_PID) -> int:
    """Parse a hello frame payload; returns the sender pid.

    Rejects, with a :class:`FramingError` naming the reason, every
    malformed shape a hostile or confused peer can present: wrong magic,
    truncated payload, trailing bytes, out-of-range sender ids, and
    mismatched wire versions (including version-1 peers, whose hello
    predates the version word entirely).
    """
    if len(payload) < len(HELLO_MAGIC) or not payload.startswith(HELLO_MAGIC):
        raise FramingError("hello frame has wrong magic")
    body = len(payload) - len(HELLO_MAGIC)
    if body < _LEN.size:
        raise FramingError("hello frame truncated before the sender pid")
    if body == _LEN.size:
        # The version-1 hello layout: magic + pid, no version word.
        raise FramingError(
            f"peer speaks wire version 1 (pre-version hello); "
            f"this build requires {WIRE_VERSION}"
        )
    if body < 2 * _LEN.size:
        raise FramingError("hello frame truncated before the wire version")
    if body > 2 * _LEN.size:
        raise FramingError("hello frame carries trailing bytes after the version")
    pid = int(_LEN.unpack_from(payload, len(HELLO_MAGIC))[0])
    version = int(_LEN.unpack_from(payload, len(HELLO_MAGIC) + _LEN.size)[0])
    if version != WIRE_VERSION:
        raise FramingError(
            f"peer speaks wire version {version}; this build requires {WIRE_VERSION}"
        )
    if pid > max_pid:
        raise FramingError(f"hello pid {pid} exceeds the bound {max_pid}")
    return pid


class FrameDecoder:
    """Incremental frame parser: feed bytes in, take whole frames out."""

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()
        self._poisoned = False

    def feed(self, data: bytes) -> list[bytes]:
        """Absorb ``data``; return every frame completed by it, in order.

        Raises :class:`FramingError` the moment a peer announces a frame
        above the cap - before buffering any of its payload - and stays
        poisoned afterwards: a stream that lied about one length prefix
        has no trustworthy frame boundaries left.
        """
        if self._poisoned:
            raise FramingError("decoder already rejected this stream")
        self._buffer.extend(data)
        frames: list[bytes] = []
        while True:
            if len(self._buffer) < _LEN.size:
                break
            (length,) = _LEN.unpack_from(self._buffer, 0)
            if length > self.max_frame_bytes:
                self._poisoned = True
                raise FramingError(
                    f"peer announced a {length}-byte frame (cap {self.max_frame_bytes})"
                )
            end = _LEN.size + length
            if len(self._buffer) < end:
                break
            frames.append(bytes(self._buffer[_LEN.size:end]))
            del self._buffer[:end]
        return frames

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buffer)
