"""Signature extraction for off-event-loop pre-verification.

The asyncio runtime can hand inbound messages to a
:class:`~repro.crypto.pool.VerifyPool` before the protocol machine sees
them.  This module knows, per message type, which ``(payload,
signature)`` pairs the replica will eventually verify; the pool checks
them in worker processes and the runtime primes the scheme's
verification memo with the outcomes, so the protocol's own
``verify_cached`` / ``verify_many_cached`` calls become cache hits
instead of modular exponentiations on the event loop.

Pre-checking is sound by construction: signature verification is a pure
function of the replicated key directory, so a memo primed from a
worker's outcome is indistinguishable from one computed inline - the
protocol still performs every check it performed before, byte-identical
in result.  It is also best-effort: a message type this module does not
cover simply yields no pairs and verifies inline, exactly as before.

Two kinds of signatures are deliberately skipped:

* threshold *group* signatures (they verify under a group secret the
  base scheme cannot evaluate - see :mod:`repro.crypto.threshold`);
* genesis certificates (never signature-checked by any protocol).

Signatures the protocol reconstructs payloads for out of its own state
(e.g. the Damysus ``BlockProposal`` leader commitment, rebuilt by
backups from the proposed block) are likewise left to the inline path.
"""

from __future__ import annotations

from typing import Any

from repro.crypto.scheme import Signature, VerifyPair
from repro.crypto.threshold import is_group_signature
from repro.core.block import Block
from repro.core.certificate import Accumulator, QuorumCert, vote_payload
from repro.core.commitment import Commitment
from repro.core.messages import (
    BlockProposal,
    ChainedProposal,
    CommitmentMsg,
    NewViewAMsg,
    NewViewMsg,
    ProposalAMsg,
    ProposalMsg,
    QCMsg,
    VoteMsg,
)
from repro.core.phases import Phase
from repro.protocols.chained_damysus import ChainedVote
from repro.protocols.fast_hotstuff import FastProposal
from repro.protocols.sync import SyncBlocks, SyncCheckpoint
from repro.tee.accumulator import new_view_a_payload

__all__ = ["signature_checks"]


def _qc_pairs(qc: QuorumCert) -> list[VerifyPair]:
    if qc.is_genesis:
        return []
    payload = qc.signed_payload()
    return [(payload, sig) for sig in qc.sigs if not is_group_signature(sig)]


def _commitment_pairs(phi: Commitment) -> list[VerifyPair]:
    payload = phi.signed_payload()
    return [(payload, sig) for sig in phi.sigs if not is_group_signature(sig)]


def _acc_pairs(acc: Accumulator) -> list[VerifyPair]:
    return [(acc.signed_payload(), acc.signature)]


def _cert_pairs(cert: QuorumCert | Accumulator | Commitment | None) -> list[VerifyPair]:
    """Pairs for any certificate representation a block or report carries."""
    if isinstance(cert, QuorumCert):
        return _qc_pairs(cert)
    if isinstance(cert, Accumulator):
        return _acc_pairs(cert)
    if isinstance(cert, Commitment):
        return _commitment_pairs(cert)
    return []


def _block_pairs(block: Block) -> list[VerifyPair]:
    return _cert_pairs(block.justify)


def _report_pairs(report: NewViewAMsg) -> list[VerifyPair]:
    """A Damysus-A / Fast-HotStuff new-view report: sender sig + its QC."""
    pairs: list[VerifyPair] = []
    if not is_group_signature(report.sender_sig):
        pairs.append(
            (new_view_a_payload(report.view, report.justify), report.sender_sig)
        )
    pairs.extend(_qc_pairs(report.justify))
    return pairs


def _vote_pair(view: int, phase: Phase, block_hash: bytes, sig: Signature) -> list[VerifyPair]:
    if is_group_signature(sig):
        return []
    return [(vote_payload(view, phase, block_hash), sig)]


def signature_checks(payload: Any) -> list[VerifyPair]:
    """Every (message bytes, signature) pair ``payload`` will be checked against.

    Duplicates within one message are fine (the memo dedupes); missing
    coverage is fine (the protocol verifies inline).  The one thing this
    function must never do is attribute the *wrong* payload to a
    signature - that would prime the memo with a ``False`` for a pair
    the protocol never asks about, which is wasted work but still sound.
    """
    if isinstance(payload, VoteMsg):
        return _vote_pair(payload.view, payload.phase, payload.block_hash, payload.sig)
    if isinstance(payload, NewViewMsg):
        return _qc_pairs(payload.justify)
    if isinstance(payload, NewViewAMsg):
        return _report_pairs(payload)
    if isinstance(payload, ProposalMsg):
        return _qc_pairs(payload.justify) + _block_pairs(payload.block)
    if isinstance(payload, QCMsg):
        return _qc_pairs(payload.qc)
    if isinstance(payload, ProposalAMsg):
        from repro.protocols.damysus_a import proposal_a_payload

        pairs = _acc_pairs(payload.acc) + _block_pairs(payload.block)
        if not is_group_signature(payload.leader_sig):
            pairs.append(
                (
                    proposal_a_payload(payload.view, payload.block.hash),
                    payload.leader_sig,
                )
            )
        return pairs
    if isinstance(payload, ChainedProposal):
        # The leader signature doubles as the leader's prepare vote.
        return (
            _vote_pair(
                payload.view, Phase.PREPARE, payload.block.hash, payload.leader_sig
            )
            + _block_pairs(payload.block)
        )
    if isinstance(payload, FastProposal):
        pairs = _qc_pairs(payload.justify) + _block_pairs(payload.block)
        for report in payload.proof or ():
            pairs.extend(_report_pairs(report))
        return pairs
    if isinstance(payload, CommitmentMsg):
        return _commitment_pairs(payload.commitment)
    if isinstance(payload, ChainedVote):
        pairs = _commitment_pairs(payload.nv)
        if payload.prep is not None:
            pairs.extend(_commitment_pairs(payload.prep))
        return pairs
    if isinstance(payload, BlockProposal):
        # leader_sig is checked against a commitment the backup rebuilds
        # from protocol state - leave it to the inline path.
        pairs = _block_pairs(payload.block)
        if payload.acc is not None:
            pairs.extend(_acc_pairs(payload.acc))
        if payload.justify_commitment is not None:
            pairs.extend(_commitment_pairs(payload.justify_commitment))
        return pairs
    if isinstance(payload, SyncCheckpoint):
        checkpoint = payload.checkpoint
        return [
            (checkpoint.payload(), checkpoint.signature)
        ] + _commitment_pairs(checkpoint.qc)
    if isinstance(payload, SyncBlocks):
        pairs = []
        for block in payload.blocks:
            pairs.extend(_block_pairs(block))
        if payload.tip_qc is not None:
            pairs.extend(_commitment_pairs(payload.tip_qc))
        return pairs
    return []
