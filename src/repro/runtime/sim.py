"""Discrete-event simulator runtime: hosts sans-I/O machines bit-identically.

:class:`MachineProcess` adapts one protocol machine to the simulator: it
is the :class:`~repro.sim.process.Process` registered on the network, and
it interprets the machine's effect lists (in emission order, inside the
same simulator event that invoked the handler) onto the CPU model, the
network and the timer wheel.  Because effect order equals the order the
old imperative handlers performed those calls, every (time, seq) event
ordering - and therefore every benchmark, figure and chaos result - is
bit-identical to the pre-refactor architecture.

:class:`ConsensusSystem` (moved here from ``repro.protocols.system``,
which re-exports it) wires one complete simulated deployment and remains
the single entry point used by tests, examples and the bench harness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SystemConfig
from repro.crypto.hmac_scheme import HmacScheme
from repro.crypto.keys import KeyDirectory
from repro.crypto.scheme import SignatureScheme
from repro.crypto.schnorr import GROUP_TEST, SchnorrScheme
from repro.core.executor import SafetyOracle
from repro.protocols.client import Client
from repro.protocols.registry import ProtocolSpec, get_spec
from repro.protocols.replica import BaseReplica
from repro.runtime.effects import (
    Broadcast,
    CancelTimer,
    ChargeCpu,
    Effect,
    Send,
    SetTimer,
)
from repro.runtime.machine import Machine
from repro.sim.events import Simulator
from repro.sim.faults import FaultPlan
from repro.sim.latency import MatrixLatency, PartialSynchronyLatency
from repro.sim.monitor import Monitor
from repro.sim.network import Network
from repro.sim.process import Process, Timer
from repro.sim.rng import RngFactory

#: Simulation chunk size (virtual ms) between stop-condition checks.
_RUN_CHUNK_MS = 200.0


class MachineProcess(Process):
    """One machine's seat on the simulator: its Process and its Runtime."""

    def __init__(self, machine: Machine, sim: Simulator) -> None:
        self.machine = machine
        super().__init__(machine.pid, sim)
        machine.runtime = self
        self._timers: dict[int, Timer] = {}

    # The machine owns the crashed flag (fault plans crash machines
    # directly); delegating keeps network delivery gating consistent.
    @property
    def crashed(self) -> bool:  # type: ignore[override]
        return self.machine.crashed

    @crashed.setter
    def crashed(self, value: bool) -> None:
        self.machine.crashed = value

    # -- Process side ------------------------------------------------------

    def start(self) -> None:
        self.machine.start()

    def crash(self) -> None:
        self.machine.crash()

    def recover(self) -> None:
        self.machine.recover()

    def on_message(self, sender: int, payload: object) -> None:
        self.machine.on_message(sender, payload)

    # -- Runtime side ------------------------------------------------------

    def execute(self, effects: list[Effect]) -> None:
        """Interpret ``effects`` in order on the simulator.

        Runs inside the simulator event that invoked the machine handler,
        so scheduled deliveries get the same (time, seq) keys as when the
        handler performed the sends itself.
        """
        for effect in effects:
            if type(effect) is Send:
                self.send(effect.dest, effect.payload, size_bytes=effect.size_bytes)
            elif type(effect) is Broadcast:
                self.broadcast(
                    list(effect.dests),
                    effect.payload,
                    size_bytes=effect.size_bytes,
                    include_self=effect.include_self,
                )
            elif type(effect) is ChargeCpu:
                self.charge(effect.ms)
            elif type(effect) is SetTimer:
                self._arm_timer(effect.timer_id, effect.delay_ms)
            elif type(effect) is CancelTimer:
                timer = self._timers.pop(effect.timer_id, None)
                if timer is not None:
                    timer.cancel()
            # Commit needs no interpretation here: the monitor already
            # observed the execution through the ledger.

    def _arm_timer(self, timer_id: int, delay_ms: float) -> None:
        def fire() -> None:
            self._timers.pop(timer_id, None)
            self.machine.on_timer(timer_id)

        self._timers[timer_id] = self.set_timer(delay_ms, fire)

    def machine_recovered(self) -> None:
        """Mirror ``Process.recover``: a restarted CPU starts out idle."""
        self._busy_until = self.sim.now


@dataclass
class RunResult:
    """Aggregated outcome of one simulated run."""

    protocol: str
    f: int
    num_replicas: int
    duration_ms: float
    committed_blocks: int
    committed_views: int
    throughput_kops: float
    mean_latency_ms: float
    messages_sent: int
    bytes_sent: int
    safe: bool


class ConsensusSystem:
    """One fully wired simulated deployment."""

    def __init__(
        self,
        config: SystemConfig,
        strict_safety: bool = True,
        replica_overrides: dict[int, type] | None = None,
    ) -> None:
        self.config = config
        self.replica_overrides = replica_overrides or {}
        self.spec: ProtocolSpec = get_spec(config.protocol)
        self.num_replicas = self.spec.num_replicas(config.f)
        self.quorum = self.spec.quorum(config.f)
        self.sim = Simulator()
        self.rng = RngFactory(config.seed)
        self.monitor = Monitor()
        self.oracle = SafetyOracle(strict=strict_safety)
        self.scheme = self._build_scheme()
        self.directory = KeyDirectory(self.scheme)
        self.network = Network(
            self.sim, self._build_latency(), self.monitor, fifo=config.fifo_links
        )
        self.replicas: list[BaseReplica] = []
        self.clients: list[Client] = []
        self._build_processes()
        self._started = False

    # -- construction ------------------------------------------------------------

    def _build_scheme(self) -> SignatureScheme:
        if self.config.use_real_crypto:
            return SchnorrScheme(GROUP_TEST)
        return HmacScheme(secret=f"system-{self.config.seed}".encode())

    def _build_latency(self):
        # Clients get region slots too (they occupy pids after the replicas).
        placement = self.config.regions.assign_round_robin(
            self.num_replicas + self.config.num_clients
        )
        matrix = MatrixLatency(
            self.config.regions,
            placement,
            self.rng.stream("latency"),
            bandwidth=self.config.bandwidth_bytes_per_ms,
            jitter=self.config.latency_jitter,
        )
        if self.config.gst_ms > 0:
            return PartialSynchronyLatency(
                matrix,
                self.rng.stream("pre-gst"),
                gst=self.config.gst_ms,
                delta_ms=self.config.delta_ms,
                max_extra_ms=self.config.pre_gst_extra_ms,
            )
        return matrix

    def _build_processes(self) -> None:
        config = self.config
        client_pids = {
            cid: self.num_replicas + cid for cid in range(config.num_clients)
        }
        for pid in range(self.num_replicas):
            self.directory.register_replica(pid)
        for pid in range(self.num_replicas):
            replica_class = self.replica_overrides.get(pid, self.spec.replica_class)
            replica = replica_class(
                pid,
                self.sim,
                config,
                self.scheme,
                self.directory,
                self.num_replicas,
                self.quorum,
                oracle=self.oracle,
                monitor=self.monitor,
                client_pids=client_pids,
            )
            replica.replica_pids = list(range(self.num_replicas))
            self.network.add_process(MachineProcess(replica, self.sim))
            self.replicas.append(replica)
        # Payload mixes and fee draws need client randomness even when
        # arrivals stay periodic; the explicit ``poisson`` flag keeps the
        # two concerns independent (and historical seeds bit-identical).
        needs_rng = bool(
            config.client_poisson or config.client_payload_mix or config.client_max_fee
        )
        for cid in range(config.num_clients):
            client = Client(
                pid=client_pids[cid],
                clock=self.sim,
                client_id=cid,
                replica_pids=list(range(self.num_replicas)),
                payload_bytes=config.payload_bytes,
                interval_ms=config.client_interval_ms,
                total_txs=config.client_total_txs,
                rng=self.rng.stream(f"client:{cid}") if needs_rng else None,
                poisson=config.client_poisson,
                payload_mix=config.client_payload_mix or None,
                max_fee=config.client_max_fee,
                retry_limit=config.client_retry_limit,
            )
            self.network.add_process(MachineProcess(client, self.sim))
            self.clients.append(client)

    # -- faults -------------------------------------------------------------------

    def crash_replicas(self, pids: list[int]) -> None:
        """Crash (silence) the given replicas before or during a run."""
        for pid in pids:
            self.replicas[pid].crash()

    def recover_replicas(self, pids: list[int]) -> None:
        """Recover previously crashed replicas (unseal TEE state, rejoin)."""
        for pid in pids:
            self.replicas[pid].recover()

    def apply_fault_plan(self, plan: FaultPlan) -> None:
        """Install a fault plan: link faults now, crash/recover on schedule.

        The plan draws from the system's seeded ``"faults"`` RNG stream,
        so a given (config, plan) pair replays identically.
        """
        plan.install(self.network, self.rng.stream("faults"), replicas=self.replicas)

    # -- running --------------------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for replica in self.replicas:
            if not replica.crashed:
                replica.start()
        for client in self.clients:
            client.start()

    def run(self, duration_ms: float) -> RunResult:
        """Run for a fixed amount of virtual time."""
        self.start()
        self.sim.run(until=self.sim.now + duration_ms)
        return self.result()

    def run_until_views(self, num_views: int, max_time_ms: float = 600_000.0) -> RunResult:
        """Run until ``num_views`` blocks committed (or the time cap)."""
        self.start()
        while self.sim.now < max_time_ms:
            if len(self.monitor.committed_views()) >= num_views:
                break
            if self.sim.pending == 0:
                break
            self.sim.run(until=self.sim.now + _RUN_CHUNK_MS)
        return self.result()

    # -- results ---------------------------------------------------------------------

    def result(self) -> RunResult:
        distinct_blocks = {rec.block_hash for rec in self.monitor.executions}
        duration = self.sim.now
        return RunResult(
            protocol=self.config.protocol,
            f=self.config.f,
            num_replicas=self.num_replicas,
            duration_ms=duration,
            committed_blocks=len(distinct_blocks),
            committed_views=len(self.monitor.committed_views()),
            throughput_kops=self.monitor.throughput_kops(duration),
            mean_latency_ms=self.monitor.mean_latency_ms(),
            messages_sent=self.monitor.messages_sent,
            bytes_sent=self.monitor.bytes_sent,
            safe=self.oracle.safe,
        )
