"""Sans-I/O machine base: protocol logic in, effects out.

A :class:`Machine` is a pure state machine with an identity and an
injected :class:`~repro.core.clock.Clock`.  Its handlers never perform
I/O; helper methods (``send``, ``broadcast``, ``set_timer``, ``charge``)
append :mod:`~repro.runtime.effects` to an ordered buffer, and when the
outermost *entry point* (``on_message``, ``on_timer``, ``start``,
``crash``, ``recover``...) returns, the buffered effects are handed - in
emission order - to the attached :class:`~repro.runtime.effects.Runtime`
and also returned to the caller.

Emission order is load-bearing: the simulator runtime replays the effect
list inside the same simulator event that invoked the handler, so the
(time, seq) ordering of scheduled deliveries is bit-identical to the old
architecture where handlers called the network directly.

Entry points are declared per class in ``ENTRY_POINTS`` and wrapped
automatically for every subclass, so protocol modules just override
``dispatch``/``start`` as plain methods.  Calling an effectful helper
outside any entry point (unit tests poking a machine directly) flushes
each effect immediately, which preserves the old imperative behaviour.
"""

from __future__ import annotations

import functools
from typing import Any, Callable

from repro.core.clock import Clock
from repro.runtime.effects import (
    Broadcast,
    CancelTimer,
    ChargeCpu,
    Effect,
    Runtime,
    Send,
    SetTimer,
)

#: Entry points whose wrapper returns the flushed effect list (the pure
#: ``handler(input) -> list[Effect]`` shape); the rest keep their own
#: return value so internal callers (and tests) see normal results.
_RETURNS_EFFECTS = ("on_message", "on_timer")


def _wrap_entry(fn: Callable[..., Any], returns_effects: bool) -> Callable[..., Any]:
    """Wrap ``fn`` so effects flush when the outermost entry returns."""
    if getattr(fn, "_machine_entry", False):
        return fn

    @functools.wraps(fn)
    def wrapper(self: "Machine", *args: Any, **kwargs: Any) -> Any:
        self._entry_depth += 1
        try:
            result = fn(self, *args, **kwargs)
        finally:
            self._entry_depth -= 1
            flushed = self._flush() if self._entry_depth == 0 else None
        if returns_effects and flushed is not None:
            return flushed
        return result

    wrapper._machine_entry = True  # type: ignore[attr-defined]
    return wrapper


class MachineTimer:
    """Cancellable handle for a timer set by a machine."""

    __slots__ = ("_machine", "timer_id")

    def __init__(self, machine: "Machine", timer_id: int) -> None:
        self._machine = machine
        self.timer_id = timer_id

    def cancel(self) -> None:
        """Disarm the timer (idempotent; no-op after it fired)."""
        if self._machine._timer_fns.pop(self.timer_id, None) is not None:
            self._machine._emit(CancelTimer(self.timer_id))

    @property
    def active(self) -> bool:
        """True while the timer is pending (not fired, not cancelled)."""
        return self.timer_id in self._machine._timer_fns


class Machine:
    """Base class for sans-I/O actors (replicas, clients, adversaries)."""

    #: Methods wrapped as entry points on every subclass.
    ENTRY_POINTS: tuple[str, ...] = ("start", "on_message", "on_timer", "crash", "recover")

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        for name in cls.ENTRY_POINTS:
            fn = cls.__dict__.get(name)
            if fn is None or not callable(fn):
                continue
            setattr(cls, name, _wrap_entry(fn, name in _RETURNS_EFFECTS))

    def __init__(self, pid: int, clock: Clock) -> None:
        self.pid = pid
        self.clock = clock
        self.runtime: Runtime | None = None
        self.crashed = False
        # Processing time this machine has accounted for; the runtime
        # decides what "busy" means (virtual busy-wait or nothing).
        self.cpu_time_charged = 0.0
        self._effects: list[Effect] = []
        self._entry_depth = 0
        self._timer_fns: dict[int, Callable[[], None]] = {}
        self._next_timer_id = 0

    @property
    def now(self) -> float:
        """Current time in ms, read from the injected clock."""
        return self.clock.now

    # -- effect plumbing ---------------------------------------------------

    def _emit(self, effect: Effect) -> None:
        self._effects.append(effect)
        if self._entry_depth == 0:
            self._flush()

    def _flush(self) -> list[Effect]:
        if not self._effects:
            return []
        effects = self._effects
        self._effects = []
        if self.runtime is not None:
            self.runtime.execute(effects)
        return effects

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Hook called once the runtime wiring is complete."""

    def crash(self) -> None:
        """Silence this machine: it stops emitting and ignores input."""
        self.crashed = True

    def recover(self) -> None:
        """Clear the crashed flag; the machine handles input again."""
        self.crashed = False
        if self.runtime is not None:
            self.runtime.machine_recovered()

    # -- CPU accounting ----------------------------------------------------

    def charge(self, cost_ms: float) -> None:
        """Account ``cost_ms`` of processing time for this machine."""
        if cost_ms <= 0:
            return
        self.cpu_time_charged += cost_ms
        self._emit(ChargeCpu(cost_ms))

    # -- messaging ---------------------------------------------------------

    def send(self, dest: int, payload: Any, size_bytes: int | None = None) -> None:
        """Emit a point-to-point send (dropped while crashed)."""
        if self.crashed:
            return
        self._emit(Send(dest, payload, size_bytes))

    def broadcast(
        self,
        dests: list[int] | tuple[int, ...],
        payload: Any,
        size_bytes: int | None = None,
        include_self: bool = False,
    ) -> None:
        """Emit a broadcast to ``dests`` (optionally self too)."""
        if self.crashed:
            return
        self._emit(Broadcast(tuple(dests), payload, include_self, size_bytes))

    def on_message(self, sender: int, payload: Any) -> None:
        """Handle an incoming message.  Subclasses override."""
        raise NotImplementedError

    # -- timers ------------------------------------------------------------

    def set_timer(self, delay_ms: float, fn: Callable[[], None]) -> MachineTimer:
        """Arm a cancellable one-shot timer ``delay_ms`` from now."""
        self._next_timer_id += 1
        timer_id = self._next_timer_id
        self._timer_fns[timer_id] = fn
        self._emit(SetTimer(timer_id, delay_ms))
        return MachineTimer(self, timer_id)

    def on_timer(self, timer_id: int) -> None:
        """Runtime callback: run the registered function, if still armed."""
        fn = self._timer_fns.pop(timer_id, None)
        if fn is not None:
            fn()


# ``Machine`` itself is not covered by ``__init_subclass__``; wrap its own
# effect-emitting entry points in place.
for _name in ("on_timer", "crash", "recover"):
    setattr(Machine, _name, _wrap_entry(Machine.__dict__[_name], _name in _RETURNS_EFFECTS))
del _name
