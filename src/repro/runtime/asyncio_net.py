"""Real-network runtime: protocol machines on asyncio TCP sockets.

The same sans-I/O machines the simulator hosts (``repro.runtime.sim``)
run here unchanged against real sockets and wall-clock timers:

* :class:`WallClock` satisfies :class:`repro.core.clock.Clock` with
  monotonic milliseconds.
* :class:`AsyncioRuntime` is one machine's seat on an event loop.  It
  interprets effect lists onto per-peer outbound queues (length-prefixed
  frames over :mod:`repro.core.codec`, see :mod:`repro.runtime.framing`)
  and ``loop.call_later`` timers.  ``ChargeCpu`` is a no-op - real CPUs
  charge themselves.
* :func:`run_local_cluster` boots an n-replica localhost deployment
  (two-phase: bind every server on an ephemeral port, then exchange the
  real addresses) and reports committed throughput - the backing of the
  ``repro net-bench`` CLI and the cross-runtime equivalence test.
* :func:`serve_replica` runs a single replica on a fixed port for
  multi-process deployments (``repro serve``).

Outbound connections are lazy with exponential reconnect backoff; each
starts with a hello frame naming the sender pid so the acceptor can
attribute inbound messages before parsing any consensus payload.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

from repro.config import SystemConfig
from repro.core.codec import CodecError, decode_message, encode_message
from repro.crypto.hmac_scheme import HmacScheme
from repro.crypto.keys import KeyDirectory
from repro.errors import ConfigError
from repro.protocols.registry import ProtocolSpec, get_spec
from repro.protocols.replica import BaseReplica
from repro.runtime.effects import (
    Broadcast,
    CancelTimer,
    ChargeCpu,
    Commit,
    Effect,
    Send,
    SetTimer,
)
from repro.runtime.framing import (
    FrameDecoder,
    FramingError,
    decode_hello,
    encode_frame,
    encode_hello,
)

#: Reconnect backoff bounds for outbound peer connections (seconds).
RECONNECT_INITIAL_S = 0.05
RECONNECT_MAX_S = 1.0

#: Outbound frames queued per peer before the oldest are dropped.  A BFT
#: protocol tolerates message loss (the pacemaker recovers), so bounding
#: memory beats backpressuring the consensus handler.
MAX_OUTBOUND_QUEUE = 10_000

_RECV_CHUNK = 64 * 1024


class WallClock:
    """Monotonic wall-clock milliseconds, zeroed at construction."""

    def __init__(self) -> None:
        self._t0 = time.monotonic()

    @property
    def now(self) -> float:
        return (time.monotonic() - self._t0) * 1000.0


class AsyncioRuntime:
    """One machine's seat on an asyncio event loop: server, peers, timers."""

    def __init__(
        self,
        machine: BaseReplica,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.machine = machine
        machine.runtime = self
        self.host = host
        self.port = port  # replaced by the bound port after start_server()
        self.peers: dict[int, tuple[str, int]] = {}
        self._server: asyncio.Server | None = None
        self._queues: dict[int, asyncio.Queue[bytes]] = {}
        self._sender_tasks: dict[int, asyncio.Task[None]] = {}
        self._reader_tasks: set[asyncio.Task[None]] = set()
        self._timers: dict[int, asyncio.TimerHandle] = {}
        self._closed = False
        # Transport-level counters for net-bench reporting.
        self.sent_messages = 0
        self.sent_bytes = 0
        self.dropped_messages = 0
        self.committed_blocks = 0
        self.committed_txs = 0
        self.commit_event = asyncio.Event()

    # -- lifecycle ---------------------------------------------------------

    async def start_server(self) -> tuple[str, int]:
        """Bind the listening socket; returns the (host, port) peers dial."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.host, self.port

    def set_peers(self, peers: dict[int, tuple[str, int]]) -> None:
        """Install the pid -> (host, port) address book (excluding self)."""
        self.peers = {pid: addr for pid, addr in peers.items() if pid != self.machine.pid}

    def start_machine(self) -> None:
        self.machine.start()

    async def close(self) -> None:
        """Tear down timers, sender tasks, inbound readers and the server."""
        self._closed = True
        for handle in self._timers.values():
            handle.cancel()
        self._timers.clear()
        tasks = list(self._sender_tasks.values()) + list(self._reader_tasks)
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        self._sender_tasks.clear()
        self._reader_tasks.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- Runtime interface -------------------------------------------------

    def execute(self, effects: list[Effect]) -> None:
        for effect in effects:
            if type(effect) is Send:
                self._send(effect.dest, effect.payload)
            elif type(effect) is Broadcast:
                dests = list(effect.dests)
                if effect.include_self and self.machine.pid not in dests:
                    dests.append(self.machine.pid)
                for dest in dests:
                    self._send(dest, effect.payload)
            elif type(effect) is SetTimer:
                self._arm_timer(effect.timer_id, effect.delay_ms)
            elif type(effect) is CancelTimer:
                handle = self._timers.pop(effect.timer_id, None)
                if handle is not None:
                    handle.cancel()
            elif type(effect) is Commit:
                self.committed_blocks += 1
                self.committed_txs += effect.block.num_transactions()
                self.commit_event.set()
            # ChargeCpu models simulated CPU occupancy; real CPUs charge
            # themselves, so it needs no interpretation here.

    def machine_recovered(self) -> None:
        """No CPU model to reset on a real host."""

    # -- sending -----------------------------------------------------------

    def _send(self, dest: int, payload: object) -> None:
        if self._closed:
            return
        if dest == self.machine.pid:
            # Self-delivery skips the codec, mirroring the simulator's
            # in-memory self loop; call_soon keeps the handler re-entrant
            # safe (never invoked inside another handler's flush).
            asyncio.get_running_loop().call_soon(
                self.machine.on_message, self.machine.pid, payload
            )
            return
        if dest not in self.peers:
            return
        frame = encode_frame(encode_message(payload))
        queue = self._queues.get(dest)
        if queue is None:
            queue = asyncio.Queue(maxsize=MAX_OUTBOUND_QUEUE)
            self._queues[dest] = queue
            self._sender_tasks[dest] = asyncio.get_running_loop().create_task(
                self._sender_loop(dest, queue)
            )
        try:
            queue.put_nowait(frame)
        except asyncio.QueueFull:
            self.dropped_messages += 1
            return
        self.sent_messages += 1
        self.sent_bytes += len(frame)

    async def _sender_loop(self, dest: int, queue: asyncio.Queue[bytes]) -> None:
        """Drain ``queue`` to ``dest``, reconnecting with backoff on failure."""
        backoff = RECONNECT_INITIAL_S
        while not self._closed:
            try:
                host, port = self.peers[dest]
                _reader, writer = await asyncio.open_connection(host, port)
            except (OSError, KeyError):
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, RECONNECT_MAX_S)
                continue
            backoff = RECONNECT_INITIAL_S
            try:
                writer.write(encode_hello(self.machine.pid))
                await writer.drain()
                while True:
                    frame = await queue.get()
                    writer.write(frame)
                    await writer.drain()
            except (OSError, ConnectionError):
                # Frames written into the dead socket are lost; consensus
                # tolerates that (the next view change resynchronises).
                pass
            finally:
                writer.close()

    # -- receiving ---------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._reader_tasks.add(task)
        sender: int | None = None
        decoder = FrameDecoder()
        try:
            while not self._closed:
                data = await reader.read(_RECV_CHUNK)
                if not data:
                    break
                for frame in decoder.feed(data):
                    if sender is None:
                        sender = decode_hello(frame)
                        continue
                    self.machine.on_message(sender, decode_message(frame))
        except (FramingError, CodecError):
            pass  # malformed peer stream: drop the connection
        except (OSError, ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._reader_tasks.discard(task)
            writer.close()

    # -- timers ------------------------------------------------------------

    def _arm_timer(self, timer_id: int, delay_ms: float) -> None:
        def fire() -> None:
            self._timers.pop(timer_id, None)
            self.machine.on_timer(timer_id)

        self._timers[timer_id] = asyncio.get_running_loop().call_later(
            max(delay_ms, 0.0) / 1000.0, fire
        )


# -- cluster construction ---------------------------------------------------


def _sized_quorum(spec: ProtocolSpec, n: int) -> tuple[int, int]:
    """(f, quorum) for an ``n``-replica deployment of ``spec``.

    ``n`` need not sit exactly on the protocol's N(f) line; extra
    replicas above N(f) enlarge the quorum so the intersection argument
    still holds.
    """
    f = spec.max_faults(n)
    if f < 1:
        raise ConfigError(f"{spec.name} needs more than {n} replicas to tolerate a fault")
    return f, spec.quorum(f) + (n - spec.num_replicas(f))


def build_machine(
    protocol: str,
    pid: int,
    n: int,
    clock: WallClock,
    *,
    seed: int = 1,
    payload_bytes: int = 128,
    block_size: int = 32,
    timeout_ms: float = 2_000.0,
) -> BaseReplica:
    """Construct one protocol machine for an ``n``-replica TCP deployment.

    Every replica of a deployment must be built with the same arguments:
    the HMAC scheme is keyed off ``seed`` and quorum sizing off ``n``.
    """
    spec = get_spec(protocol)
    f, quorum = _sized_quorum(spec, n)
    config = SystemConfig(
        protocol=protocol,
        f=f,
        seed=seed,
        payload_bytes=payload_bytes,
        block_size=block_size,
        timeout_ms=timeout_ms,
        open_loop=True,
    )
    scheme = HmacScheme(secret=f"system-{seed}".encode())
    directory = KeyDirectory(scheme)
    # Unlike the simulator, each process holds its own directory, so the
    # peers' trusted-component identities must be registered here too
    # (each replica's own TEE self-registers during construction).
    for peer in range(n):
        directory.register_replica(peer)
        directory.register_tee(peer)
    replica = spec.replica_class(
        pid, clock, config, scheme, directory, n, quorum, client_pids={}
    )
    replica.replica_pids = list(range(n))
    return replica


@dataclass
class ClusterReport:
    """Outcome of one :func:`run_local_cluster` run."""

    protocol: str
    num_replicas: int
    f: int
    quorum: int
    elapsed_s: float
    committed_blocks: int  # at the slowest replica
    committed_txs: int  # at the slowest replica
    messages_sent: int
    bytes_sent: int
    dropped_messages: int
    #: Per-replica executed block-hash chains (for equivalence checks).
    chains: dict[int, list[str]] = field(default_factory=dict)

    @property
    def tx_per_s(self) -> float:
        return self.committed_txs / self.elapsed_s if self.elapsed_s > 0 else 0.0


async def run_local_cluster(
    protocol: str,
    n: int,
    *,
    seed: int = 1,
    duration_s: float = 5.0,
    target_blocks: int = 0,
    payload_bytes: int = 128,
    block_size: int = 32,
    timeout_ms: float = 2_000.0,
    host: str = "127.0.0.1",
) -> ClusterReport:
    """Run an ``n``-replica cluster on localhost TCP; report throughput.

    Stops after ``duration_s`` seconds, or as soon as every replica has
    committed ``target_blocks`` blocks (when ``target_blocks`` > 0).
    """
    spec = get_spec(protocol)
    f, quorum = _sized_quorum(spec, n)
    clock = WallClock()
    runtimes = [
        AsyncioRuntime(
            build_machine(
                protocol,
                pid,
                n,
                clock,
                seed=seed,
                payload_bytes=payload_bytes,
                block_size=block_size,
                timeout_ms=timeout_ms,
            ),
            host=host,
        )
        for pid in range(n)
    ]
    # Phase 1: bind every server on an ephemeral port; phase 2: exchange
    # the real addresses.  No fixed ports, so parallel CI runs never race.
    addresses = {}
    for pid, runtime in enumerate(runtimes):
        addresses[pid] = await runtime.start_server()
    for runtime in runtimes:
        runtime.set_peers(addresses)
    t0 = time.monotonic()
    for runtime in runtimes:
        runtime.start_machine()
    deadline = t0 + duration_s
    try:
        while time.monotonic() < deadline:
            if target_blocks > 0 and all(
                rt.committed_blocks >= target_blocks for rt in runtimes
            ):
                break
            await asyncio.sleep(0.02)
    finally:
        elapsed = time.monotonic() - t0
        for runtime in runtimes:
            await runtime.close()
    return ClusterReport(
        protocol=protocol,
        num_replicas=n,
        f=f,
        quorum=quorum,
        elapsed_s=elapsed,
        committed_blocks=min(rt.committed_blocks for rt in runtimes),
        committed_txs=min(rt.committed_txs for rt in runtimes),
        messages_sent=sum(rt.sent_messages for rt in runtimes),
        bytes_sent=sum(rt.sent_bytes for rt in runtimes),
        dropped_messages=sum(rt.dropped_messages for rt in runtimes),
        chains={
            rt.machine.pid: [block.hash.hex() for block in rt.machine.ledger.executed]
            for rt in runtimes
        },
    )


async def serve_replica(
    protocol: str,
    pid: int,
    n: int,
    *,
    base_port: int,
    host: str = "127.0.0.1",
    seed: int = 1,
    duration_s: float = 0.0,
    payload_bytes: int = 128,
    block_size: int = 32,
    timeout_ms: float = 2_000.0,
) -> AsyncioRuntime:
    """Run one replica of a fixed-port deployment (``repro serve``).

    Peers are assumed at ``base_port + pid`` on ``host`` - start one
    process per pid with identical arguments.  Runs for ``duration_s``
    seconds (0 = until cancelled) and returns the runtime for inspection.
    """
    if not 0 <= pid < n:
        raise ConfigError(f"pid {pid} outside cluster of {n} replicas")
    clock = WallClock()
    runtime = AsyncioRuntime(
        build_machine(
            protocol,
            pid,
            n,
            clock,
            seed=seed,
            payload_bytes=payload_bytes,
            block_size=block_size,
            timeout_ms=timeout_ms,
        ),
        host=host,
        port=base_port + pid,
    )
    await runtime.start_server()
    runtime.set_peers({peer: (host, base_port + peer) for peer in range(n)})
    runtime.start_machine()
    try:
        if duration_s > 0:
            await asyncio.sleep(duration_s)
        else:
            await asyncio.Event().wait()
    finally:
        await runtime.close()
    return runtime
