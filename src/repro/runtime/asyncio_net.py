"""Real-network runtime: protocol machines on asyncio TCP sockets.

The same sans-I/O machines the simulator hosts (``repro.runtime.sim``)
run here unchanged against real sockets and wall-clock timers:

* :class:`WallClock` satisfies :class:`repro.core.clock.Clock` with
  monotonic milliseconds.
* :class:`AsyncioRuntime` is one machine's seat on an event loop.  It
  interprets effect lists onto per-peer outbound queues (length-prefixed
  frames over :mod:`repro.core.codec`, see :mod:`repro.runtime.framing`)
  and ``loop.call_later`` timers.  ``ChargeCpu`` is a no-op - real CPUs
  charge themselves.
* :func:`run_local_cluster` boots an n-replica localhost deployment
  (two-phase: bind every server on an ephemeral port, then exchange the
  real addresses) and reports committed throughput - the backing of the
  ``repro net-bench`` CLI and the cross-runtime equivalence test.
* :func:`serve_replica` runs a single replica on a fixed port for
  multi-process deployments (``repro serve``).

Resilience hooks (all optional, see :mod:`repro.runtime.resilience`):

* a :class:`~repro.runtime.resilience.transport.FaultDecider` sits on
  the sending side of every peer link, applying the cluster's
  :class:`~repro.core.faults.FaultPlan` to real frames (drop, duplicate,
  delay) with seeded-deterministic decisions;
* a :class:`~repro.runtime.resilience.durable.DurableSealer` persists
  sealed checker state before any frame leaves the host, so a SIGKILLed
  process restarts without ever being able to re-sign a lower step;
* :class:`~repro.config.NetConfig` bounds the runtime's appetite:
  per-peer outbound queues with an explicit overflow policy and counter,
  a max-frame-size guard that disconnects instead of buffering, and
  jittered (seeded) reconnect backoff.

Outbound connections are lazy with exponential reconnect backoff; each
starts with a hello frame naming the sender pid so the acceptor can
attribute inbound messages before parsing any consensus payload.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro import perf
from repro.config import NetConfig, SystemConfig
from repro.core.codec import CodecError, decode_message, encode_message
from repro.core.rng import RngStream
from repro.crypto.hmac_scheme import HmacScheme
from repro.crypto.keys import KeyDirectory
from repro.crypto.pool import VerifyPool, resolve_verify_jobs
from repro.errors import ConfigError, TEERefusal
from repro.protocols.registry import ProtocolSpec, get_spec
from repro.protocols.replica import BaseReplica
from repro.runtime.effects import (
    Broadcast,
    CancelTimer,
    ChargeCpu,
    Commit,
    Effect,
    Send,
    SetTimer,
)
from repro.runtime.framing import (
    FrameDecoder,
    FramingError,
    decode_hello,
    encode_frame,
    encode_hello,
)
from repro.runtime.machine import Machine
from repro.runtime.precheck import signature_checks
from repro.runtime.resilience.durable import DurableSealer
from repro.runtime.resilience.transport import FaultDecider
from repro.runtime.resilience.watchdog import LivenessWatchdog
from repro.tee.sealed import FileSealStore

_LOG = logging.getLogger("repro.net")

#: Reconnect backoff bounds for outbound peer connections (seconds).
#: Kept as module constants for callers that predate :class:`NetConfig`;
#: the dataclass defaults mirror them.
RECONNECT_INITIAL_S = 0.05
RECONNECT_MAX_S = 1.0

#: Outbound frames queued per peer before the overflow policy applies.
MAX_OUTBOUND_QUEUE = 10_000

_RECV_CHUNK = 64 * 1024


class WallClock:
    """Monotonic wall-clock milliseconds, zeroed at construction."""

    def __init__(self) -> None:
        self._t0 = time.monotonic()

    @property
    def now(self) -> float:
        return (time.monotonic() - self._t0) * 1000.0


class AsyncioRuntime:
    """One machine's seat on an asyncio event loop: server, peers, timers."""

    def __init__(
        self,
        machine: Machine,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        net: NetConfig | None = None,
        fault_decider: FaultDecider | None = None,
        sealer: DurableSealer | None = None,
        verify_pool: VerifyPool | None = None,
    ) -> None:
        self.machine = machine
        machine.runtime = self
        self.host = host
        self.port = port  # replaced by the bound port after start_server()
        self.net = net or NetConfig()
        self.fault_decider = fault_decider
        self.sealer = sealer
        # Optional multi-core signature pre-verification: inbound frames
        # have their signatures checked in worker processes before the
        # machine sees them, priming the scheme's memo (pure, so results
        # are bit-identical to inline verification).  Shared across the
        # runtimes of a local cluster; the creator owns close().
        self.verify_pool = verify_pool
        self.peers: dict[int, tuple[str, int]] = {}
        self._server: asyncio.Server | None = None
        self._queues: dict[int, asyncio.Queue[bytes]] = {}
        self._sender_tasks: dict[int, asyncio.Task[None]] = {}
        self._reader_tasks: set[asyncio.Task[None]] = set()
        self._timers: dict[int, asyncio.TimerHandle] = {}
        self._delayed: set[asyncio.TimerHandle] = set()
        self._closed = False
        self._machine_started = False
        # Seeded jitter for reconnect backoff: deterministic per
        # (seed, src, dst), so backoff schedules never share phase
        # across links yet stay reproducible (DET-lint clean).
        self._reconnect_rng: dict[int, RngStream] = {}
        # Transport-level counters for net-bench / health reporting.
        self.sent_messages = 0
        self.sent_bytes = 0
        self.dropped_messages = 0  # outbound queue overflow (either policy)
        self.rejected_connections = 0  # malformed hello / framing violations
        self.prechecked_sigs = 0  # signatures verified off the event loop
        self.committed_blocks = 0
        self.committed_txs = 0
        self.commit_event = asyncio.Event()

    # -- lifecycle ---------------------------------------------------------

    async def start_server(self) -> tuple[str, int]:
        """Bind the listening socket; returns the (host, port) peers dial."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.host, self.port

    def set_peers(self, peers: dict[int, tuple[str, int]]) -> None:
        """Install the pid -> (host, port) address book (excluding self)."""
        self.peers = {pid: addr for pid, addr in peers.items() if pid != self.machine.pid}

    def start_machine(self) -> None:
        self._machine_started = True
        self.machine.start()

    async def close(self) -> None:
        """Tear down timers, sender tasks, inbound readers and the server.

        Graceful by construction: every sender awaits its writer's
        ``wait_closed`` and every reader closes its transport, so a
        completed ``close()`` leaves no pending tasks and no open
        sockets behind (asserted by the shutdown tests).
        """
        self._closed = True
        for handle in self._timers.values():
            handle.cancel()
        self._timers.clear()
        for handle in self._delayed:
            handle.cancel()
        self._delayed.clear()
        # Detach all shared teardown state *before* the first await: a
        # concurrent or re-entrant close() then finds nothing left to
        # tear down, and a reader task registered during the gather can
        # never be orphaned by a stale clear() afterwards.
        tasks = list(self._sender_tasks.values()) + list(self._reader_tasks)
        self._sender_tasks.clear()
        self._reader_tasks.clear()
        server, self._server = self._server, None
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        if server is not None:
            server.close()
            await server.wait_closed()

    # -- Runtime interface -------------------------------------------------

    def execute(self, effects: list[Effect]) -> None:
        # Durability before visibility: persist the checker's advanced
        # (view, phase) step before any frame that depends on it can be
        # queued, so a SIGKILL at any later instant leaves a seal at
        # least as high as every signature the cluster may have seen.
        if self.sealer is not None:
            self.sealer.maybe_seal()
        for effect in effects:
            if type(effect) is Send:
                self._send(effect.dest, effect.payload)
            elif type(effect) is Broadcast:
                dests = list(effect.dests)
                if effect.include_self and self.machine.pid not in dests:
                    dests.append(self.machine.pid)
                for dest in dests:
                    self._send(dest, effect.payload)
            elif type(effect) is SetTimer:
                self._arm_timer(effect.timer_id, effect.delay_ms)
            elif type(effect) is CancelTimer:
                handle = self._timers.pop(effect.timer_id, None)
                if handle is not None:
                    handle.cancel()
            elif type(effect) is Commit:
                self.committed_blocks += 1
                self.committed_txs += effect.block.num_transactions()
                self.commit_event.set()
            # ChargeCpu models simulated CPU occupancy; real CPUs charge
            # themselves, so it needs no interpretation here.

    def machine_recovered(self) -> None:
        """No CPU model to reset on a real host."""

    # -- sending -----------------------------------------------------------

    def _send(self, dest: int, payload: object) -> None:
        if self._closed:
            return
        if dest == self.machine.pid:
            # Self-delivery skips the codec, mirroring the simulator's
            # in-memory self loop; call_soon keeps the handler re-entrant
            # safe (never invoked inside another handler's flush).
            asyncio.get_running_loop().call_soon(self._deliver_self, payload)
            return
        if dest not in self.peers:
            return
        copies = 1
        delay_ms = 0.0
        if self.fault_decider is not None:
            action = self.fault_decider.decide(
                self.machine.pid, dest, payload, self.machine.clock.now
            )
            if action is not None:
                if action.drop:
                    return
                copies += action.duplicates
                delay_ms = action.extra_delay_ms
        frame = encode_frame(encode_message(payload))
        for _ in range(copies):
            if delay_ms > 0.0:
                self._enqueue_later(dest, frame, delay_ms)
            else:
                self._enqueue(dest, frame)

    def _deliver_self(self, payload: object) -> None:
        if not self._closed:
            self.machine.on_message(self.machine.pid, payload)

    def _enqueue(self, dest: int, frame: bytes) -> None:
        if self._closed:
            return
        queue = self._queues.get(dest)
        if queue is None:
            queue = asyncio.Queue(maxsize=self.net.max_outbound_queue)
            self._queues[dest] = queue
            self._sender_tasks[dest] = asyncio.get_running_loop().create_task(
                self._sender_loop(dest, queue)
            )
        try:
            queue.put_nowait(frame)
        except asyncio.QueueFull:
            self.dropped_messages += 1
            if self.net.overflow_policy == "drop-newest":
                return
            # drop-oldest: sacrifice the stalest frame for the fresh one.
            # Old consensus messages are the most likely to be obsolete
            # (their view has moved on), so this keeps recovery traffic
            # - new-views, fresh votes - flowing to a slow peer.
            with contextlib.suppress(asyncio.QueueEmpty):
                queue.get_nowait()
            with contextlib.suppress(asyncio.QueueFull):
                queue.put_nowait(frame)
        self.sent_messages += 1
        self.sent_bytes += len(frame)

    def _enqueue_later(self, dest: int, frame: bytes, delay_ms: float) -> None:
        handle_box: list[asyncio.TimerHandle] = []

        def deliver() -> None:
            if handle_box:
                self._delayed.discard(handle_box[0])
            self._enqueue(dest, frame)

        handle = asyncio.get_running_loop().call_later(delay_ms / 1000.0, deliver)
        handle_box.append(handle)
        self._delayed.add(handle)

    def _backoff_jitter(self, dest: int, backoff: float) -> float:
        if self.net.reconnect_jitter <= 0.0:
            return backoff
        rng = self._reconnect_rng.get(dest)
        if rng is None:
            # Client machines carry no SystemConfig; their backoff
            # streams derive from seed 0 (still per-link deterministic).
            config = getattr(self.machine, "config", None)
            rng = RngStream(
                getattr(config, "seed", 0),
                f"reconnect:{self.machine.pid}->{dest}",
            )
            self._reconnect_rng[dest] = rng
        return rng.jitter(backoff, self.net.reconnect_jitter)

    async def _sender_loop(self, dest: int, queue: asyncio.Queue[bytes]) -> None:
        """Drain ``queue`` to ``dest``, reconnecting with jittered backoff."""
        backoff = self.net.reconnect_initial_s
        while not self._closed:
            try:
                host, port = self.peers[dest]
                _reader, writer = await asyncio.open_connection(host, port)
            except (OSError, KeyError):
                await asyncio.sleep(self._backoff_jitter(dest, backoff))
                backoff = min(backoff * 2, self.net.reconnect_max_s)
                continue
            backoff = self.net.reconnect_initial_s
            try:
                writer.write(encode_hello(self.machine.pid))
                await writer.drain()
                while True:
                    frame = await queue.get()
                    writer.write(frame)
                    await writer.drain()
            except (OSError, ConnectionError):
                # Frames written into the dead socket are lost; consensus
                # tolerates that (the next view change resynchronises).
                pass
            finally:
                writer.close()
                with contextlib.suppress(Exception, asyncio.CancelledError):
                    await writer.wait_closed()

    # -- receiving ---------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is None:  # pragma: no cover - handlers always run on the loop
            raise RuntimeError("connection handler invoked outside the event loop")
        self._reader_tasks.add(task)
        sender: int | None = None
        decoder = FrameDecoder(max_frame_bytes=self.net.max_frame_bytes)
        try:
            while not self._closed:
                data = await reader.read(_RECV_CHUNK)
                if not data:
                    break
                for frame in decoder.feed(data):
                    if sender is None:
                        sender = decode_hello(frame)
                        continue
                    if not self._machine_started:
                        # The process is up (socket bound) but the machine
                        # has not been started yet - a deliberately held-
                        # back replica.  Dropping mirrors a dark process:
                        # consensus retransmits cover the loss.
                        self.dropped_messages += 1
                        continue
                    payload = decode_message(frame)
                    if self.verify_pool is not None:
                        await self._precheck(payload)
                    self.machine.on_message(sender, payload)
        except (FramingError, CodecError) as exc:
            # Malformed peer stream: disconnect, never buffer or guess.
            self.rejected_connections += 1
            peer = writer.get_extra_info("peername")
            _LOG.warning(
                "replica %d: rejecting connection from %s (claimed pid %s): %s",
                self.machine.pid,
                peer,
                sender,
                exc,
            )
        except (OSError, ConnectionError, asyncio.CancelledError):  # noqa: S110 - peer loss is the normal end of a reader; the reconnect loop owns recovery
            pass
        finally:
            self._reader_tasks.discard(task)
            writer.close()
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await writer.wait_closed()

    async def _precheck(self, payload: object) -> None:
        """Verify ``payload``'s signatures in the worker pool, priming the memo.

        Only pairs not already memoized are shipped to workers; the
        outcomes are primed into the scheme's verification cache so the
        machine's own ``verify_cached`` / ``verify_many_cached`` calls
        hit it.  The protocol still performs every check it performed
        before - this moves the algebra off the event loop, it never
        skips or weakens a verification.
        """
        if self.verify_pool is None:
            return
        scheme = self.machine.scheme
        pending = [
            pair
            for pair in signature_checks(payload)
            if scheme.cached_verification(pair[0], pair[1]) is None
        ]
        if not pending:
            return
        outcomes = await self.verify_pool.verify_many_async(pending)
        scheme.prime_verification(pending, outcomes)
        self.prechecked_sigs += len(pending)

    # -- timers ------------------------------------------------------------

    def _arm_timer(self, timer_id: int, delay_ms: float) -> None:
        def fire() -> None:
            self._timers.pop(timer_id, None)
            if not self._closed:
                self.machine.on_timer(timer_id)

        self._timers[timer_id] = asyncio.get_running_loop().call_later(
            max(delay_ms, 0.0) / 1000.0, fire
        )


# -- cluster construction ---------------------------------------------------


def _sized_quorum(spec: ProtocolSpec, n: int) -> tuple[int, int]:
    """(f, quorum) for an ``n``-replica deployment of ``spec``.

    ``n`` need not sit exactly on the protocol's N(f) line; extra
    replicas above N(f) enlarge the quorum so the intersection argument
    still holds.
    """
    f = spec.max_faults(n)
    if f < 1:
        raise ConfigError(f"{spec.name} needs more than {n} replicas to tolerate a fault")
    return f, spec.quorum(f) + (n - spec.num_replicas(f))


def build_machine(
    protocol: str,
    pid: int,
    n: int,
    clock: WallClock,
    *,
    seed: int = 1,
    payload_bytes: int = 128,
    block_size: int = 32,
    timeout_ms: float = 2_000.0,
    checkpoint_interval: int = 0,
    client_pids: dict[int, int] | None = None,
    config_overrides: dict[str, object] | None = None,
    replica_class: type | None = None,
) -> BaseReplica:
    """Construct one protocol machine for an ``n``-replica TCP deployment.

    Every replica of a deployment must be built with the same arguments:
    the HMAC scheme is keyed off ``seed`` and quorum sizing off ``n``.

    ``client_pids`` maps client ids to their transport pids (for
    closed-loop deployments driven by ``repro load``), and
    ``config_overrides`` merges extra :class:`SystemConfig` fields -
    the ingest-pipeline knobs - into the derived configuration.
    ``replica_class`` substitutes another machine class (a registered
    adversary from :mod:`repro.adversary.registry`) for the protocol's
    honest one - same constructor signature, sans-I/O, so attacks run
    unchanged over real sockets.
    """
    spec = get_spec(protocol)
    f, quorum = _sized_quorum(spec, n)
    kwargs: dict[str, object] = dict(
        protocol=protocol,
        f=f,
        seed=seed,
        payload_bytes=payload_bytes,
        block_size=block_size,
        timeout_ms=timeout_ms,
        open_loop=True,
        checkpoint_interval=checkpoint_interval,
    )
    if config_overrides:
        kwargs.update(config_overrides)
    config = SystemConfig(**kwargs)  # type: ignore[arg-type]
    scheme = HmacScheme(secret=f"system-{seed}".encode())
    directory = KeyDirectory(scheme)
    # Unlike the simulator, each process holds its own directory, so the
    # peers' trusted-component identities must be registered here too
    # (each replica's own TEE self-registers during construction).
    for peer in range(n):
        directory.register_replica(peer)
        directory.register_tee(peer)
    cls = replica_class if replica_class is not None else spec.replica_class
    replica = cls(
        pid, clock, config, scheme, directory, n, quorum,
        client_pids=dict(client_pids or {}),
    )
    replica.replica_pids = list(range(n))
    return replica


@dataclass
class ClusterReport:
    """Outcome of one :func:`run_local_cluster` run."""

    protocol: str
    num_replicas: int
    f: int
    quorum: int
    elapsed_s: float
    committed_blocks: int  # at the slowest replica
    committed_txs: int  # at the slowest replica
    messages_sent: int
    bytes_sent: int
    dropped_messages: int
    #: Signatures verified off the event loop by the shared VerifyPool.
    prechecked_sigs: int = 0
    #: Per-replica executed block-hash chains (for equivalence checks).
    chains: dict[int, list[str]] = field(default_factory=dict)
    #: Per-replica rolling execution state roots (cross-runtime digests).
    state_roots: dict[int, str] = field(default_factory=dict)
    #: Per-replica ledger heights (checkpoint base + executed suffix).
    heights: dict[int, int] = field(default_factory=dict)
    #: Per-replica compaction horizons and the state roots at them, so a
    #: caller can recompute the rolling root at any retained height.
    base_heights: dict[int, int] = field(default_factory=dict)
    base_roots: dict[int, str] = field(default_factory=dict)
    #: Pids that rejoined by installing a peer's certified checkpoint.
    caught_up_pids: tuple[int, ...] = ()

    @property
    def tx_per_s(self) -> float:
        return self.committed_txs / self.elapsed_s if self.elapsed_s > 0 else 0.0


async def run_local_cluster(
    protocol: str,
    n: int,
    *,
    seed: int = 1,
    duration_s: float = 5.0,
    target_blocks: int = 0,
    payload_bytes: int = 128,
    block_size: int = 32,
    timeout_ms: float = 2_000.0,
    max_timeout_ms: float = 0.0,
    timeout_jitter: float = 0.0,
    host: str = "127.0.0.1",
    net: NetConfig | None = None,
    checkpoint_interval: int = 0,
    start_delay_s: dict[int, float] | None = None,
    verify_jobs: int | None = None,
    adversary: str | None = None,
    replica_overrides: dict[int, type] | None = None,
) -> ClusterReport:
    """Run an ``n``-replica cluster on localhost TCP; report throughput.

    Stops after ``duration_s`` seconds, or as soon as every replica has
    committed ``target_blocks`` blocks (when ``target_blocks`` > 0).

    ``adversary`` seats a registered attack (by name) at its default
    pids; ``replica_overrides`` seats explicit machine classes per pid
    (and wins where both name a pid).  Honest replicas must stay safe
    and live - the returned per-replica ``chains`` let callers check.

    ``start_delay_s`` holds back named pids (seconds) before starting
    their machines - the servers still bind immediately, so a delayed
    replica looks cleanly partitioned-from-genesis and must rejoin via
    state transfer once ``checkpoint_interval`` is on.

    ``verify_jobs`` shards inbound signature verification across worker
    processes (0 = one per core, 1 = inline, ``None`` = the
    :func:`repro.perf.verify_jobs` default).  All runtimes share one
    pool - every replica holds the same key material - and results are
    bit-identical to inline verification.
    """
    spec = get_spec(protocol)
    f, quorum = _sized_quorum(spec, n)
    clock = WallClock()
    jobs = resolve_verify_jobs(
        perf.verify_jobs() if verify_jobs is None else verify_jobs
    )
    overrides: dict[int, type] = {}
    if adversary is not None:
        from repro.adversary.registry import get_adversary

        adv = get_adversary(adversary)
        overrides.update(
            {pid: adv.replica_class(protocol) for pid in adv.seats(n, f)}
        )
    overrides.update(replica_overrides or {})
    config_overrides: dict[str, object] = dict(
        max_timeout_ms=max_timeout_ms, timeout_jitter=timeout_jitter
    )
    machines = [
        build_machine(
            protocol,
            pid,
            n,
            clock,
            seed=seed,
            payload_bytes=payload_bytes,
            block_size=block_size,
            timeout_ms=timeout_ms,
            checkpoint_interval=checkpoint_interval,
            config_overrides=config_overrides,
            replica_class=overrides.get(pid),
        )
        for pid in range(n)
    ]
    pool = VerifyPool(machines[0].scheme, jobs=jobs) if jobs > 1 else None
    runtimes = [
        AsyncioRuntime(machine, host=host, net=net, verify_pool=pool)
        for machine in machines
    ]
    # Phase 1: bind every server on an ephemeral port; phase 2: exchange
    # the real addresses.  No fixed ports, so parallel CI runs never race.
    addresses = {}
    for pid, runtime in enumerate(runtimes):
        addresses[pid] = await runtime.start_server()
    for runtime in runtimes:
        runtime.set_peers(addresses)
    t0 = time.monotonic()
    delays = start_delay_s or {}
    late_tasks: list[asyncio.Task[None]] = []

    async def _start_late(rt: AsyncioRuntime, delay: float) -> None:
        await asyncio.sleep(delay)
        rt.start_machine()

    for pid, runtime in enumerate(runtimes):
        delay = delays.get(pid, 0.0)
        if delay > 0.0:
            late_tasks.append(asyncio.ensure_future(_start_late(runtime, delay)))
        else:
            runtime.start_machine()
    deadline = t0 + duration_s
    try:
        while time.monotonic() < deadline:
            # Ledger height counts checkpoint-skipped prefixes too, so a
            # replica that rejoined by state transfer satisfies the
            # target without replaying every block.
            if target_blocks > 0 and all(
                rt.machine.ledger.height() >= target_blocks for rt in runtimes
            ):
                break
            await asyncio.sleep(0.02)
    finally:
        elapsed = time.monotonic() - t0
        for task in late_tasks:
            task.cancel()
        if late_tasks:
            await asyncio.gather(*late_tasks, return_exceptions=True)
        for runtime in runtimes:
            await runtime.close()
        if pool is not None:
            pool.close()
    return ClusterReport(
        protocol=protocol,
        num_replicas=n,
        f=f,
        quorum=quorum,
        elapsed_s=elapsed,
        committed_blocks=min(rt.committed_blocks for rt in runtimes),
        committed_txs=min(rt.committed_txs for rt in runtimes),
        messages_sent=sum(rt.sent_messages for rt in runtimes),
        bytes_sent=sum(rt.sent_bytes for rt in runtimes),
        dropped_messages=sum(rt.dropped_messages for rt in runtimes),
        prechecked_sigs=sum(rt.prechecked_sigs for rt in runtimes),
        chains={
            rt.machine.pid: [block.hash.hex() for block in rt.machine.ledger.executed]
            for rt in runtimes
        },
        state_roots={
            rt.machine.pid: rt.machine.ledger.state_root.hex() for rt in runtimes
        },
        heights={rt.machine.pid: rt.machine.ledger.height() for rt in runtimes},
        base_heights={
            rt.machine.pid: rt.machine.ledger.base_height for rt in runtimes
        },
        base_roots={
            rt.machine.pid: rt.machine.ledger.base_state_root.hex() for rt in runtimes
        },
        caught_up_pids=tuple(
            rt.machine.pid for rt in runtimes if rt.machine.caught_up_via_checkpoint
        ),
    )


# -- single-replica service (repro serve) -----------------------------------


def _load_fault_rules(path: Path) -> tuple:
    """Parse a fault-spec file into its rule tuple (empty on any problem).

    The spec file is a control plane written by an orchestrator while
    this process runs; a torn or half-written read is not fatal, the
    poller simply retries on the next tick.
    """
    from repro.core.faults import FaultPlan

    try:
        return tuple(FaultPlan.from_rules_spec(path.read_text()).rules)
    except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
        return tuple()


def _write_health_file(path: Path, payload: dict) -> None:
    """Atomically replace ``path`` with JSON ``payload`` (no torn reads)."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload, indent=0, sort_keys=True))
    os.replace(tmp, path)


async def serve_replica(
    protocol: str,
    pid: int,
    n: int,
    *,
    base_port: int,
    host: str = "127.0.0.1",
    seed: int = 1,
    duration_s: float = 0.0,
    payload_bytes: int = 128,
    block_size: int = 32,
    timeout_ms: float = 2_000.0,
    max_timeout_ms: float = 0.0,
    timeout_jitter: float = 0.0,
    adversary: str | None = None,
    checkpoint_interval: int = 0,
    net: NetConfig | None = None,
    seal_dir: str | Path | None = None,
    health_file: str | Path | None = None,
    health_interval_s: float = 0.5,
    fault_spec: str | Path | None = None,
    verify_jobs: int | None = None,
) -> AsyncioRuntime:
    """Run one replica of a fixed-port deployment (``repro serve``).

    Peers are assumed at ``base_port + pid`` on ``host`` - start one
    process per pid with identical arguments.  Runs for ``duration_s``
    seconds (0 = until cancelled) and returns the runtime for inspection.

    Resilience options:

    * ``seal_dir`` - durable sealed checker state: every step advance is
      persisted before frames leave, and on start the latest snapshot is
      restored (rollback-refusing).  A process SIGKILLed mid-view can be
      respawned with identical arguments and rejoins safely.
    * ``health_file`` - a JSON liveness snapshot rewritten atomically
      every ``health_interval_s`` seconds (commit counts, checker step,
      fault counters); the ``repro net-chaos`` watchdog consumes these.
    * ``fault_spec`` - a :meth:`~repro.core.faults.FaultPlan.rules_spec`
      file applied to outbound frames, re-read whenever its mtime
      changes (live partition/heal without restarting processes).
    * ``verify_jobs`` - shard inbound signature verification across
      worker processes (0 = one per core, 1 = inline, ``None`` = the
      :func:`repro.perf.verify_jobs` default); bit-identical results.

    ``adversary`` runs *this* replica as the named registered attack
    (the same sans-I/O Machine the simulator seats); which pid plays
    Byzantine is the orchestrator's choice.
    """
    if not 0 <= pid < n:
        raise ConfigError(f"pid {pid} outside cluster of {n} replicas")
    clock = WallClock()
    replica_class: type | None = None
    if adversary is not None:
        from repro.adversary.registry import get_adversary

        replica_class = get_adversary(adversary).replica_class(protocol)
    machine = build_machine(
        protocol,
        pid,
        n,
        clock,
        seed=seed,
        payload_bytes=payload_bytes,
        block_size=block_size,
        timeout_ms=timeout_ms,
        checkpoint_interval=checkpoint_interval,
        config_overrides=dict(
            max_timeout_ms=max_timeout_ms, timeout_jitter=timeout_jitter
        ),
        replica_class=replica_class,
    )
    decider: FaultDecider | None = None
    spec_path: Path | None = None
    spec_mtime = -1.0
    if fault_spec is not None:
        spec_path = Path(fault_spec)
        decider = FaultDecider(_load_fault_rules(spec_path), seed)
        try:
            spec_mtime = spec_path.stat().st_mtime
        except OSError:
            spec_mtime = -1.0
    sealer: DurableSealer | None = None
    restored = False
    if seal_dir is not None:
        sealer = DurableSealer(machine, FileSealStore(Path(seal_dir)))
        try:
            restored = sealer.restore()
        except TEERefusal:
            _LOG.error(
                "replica %d: durable sealed state refused (rollback?); "
                "refusing to start",
                pid,
            )
            raise
        if restored:
            _LOG.info(
                "replica %d: restored sealed checker state at view %d",
                pid,
                machine.checker.step.view,
            )
    jobs = resolve_verify_jobs(
        perf.verify_jobs() if verify_jobs is None else verify_jobs
    )
    pool = VerifyPool(machine.scheme, jobs=jobs) if jobs > 1 else None
    runtime = AsyncioRuntime(
        machine,
        host=host,
        port=base_port + pid,
        net=net,
        fault_decider=decider,
        sealer=sealer,
        verify_pool=pool,
    )
    await runtime.start_server()
    runtime.set_peers({peer: (host, base_port + peer) for peer in range(n)})
    runtime.start_machine()

    watchdog = LivenessWatchdog()
    aux_tasks: list[asyncio.Task[None]] = []

    async def health_loop(path: Path) -> None:
        started = time.monotonic()
        last_blocks = -1
        while True:
            blocks = runtime.committed_blocks
            now_ms = clock.now
            watchdog.record_alive(pid, now_ms)
            if blocks > max(last_blocks, 0):
                watchdog.record_commit(
                    pid,
                    now_ms,
                    blocks,
                    committed_view=machine.last_committed_view,
                    catchup_retries=machine.catchup.retries,
                )
            last_blocks = blocks
            checker = machine.checker
            latest_ckpt = machine.latest_checkpoint
            payload = {
                "pid": pid,
                "protocol": protocol,
                "uptime_s": time.monotonic() - started,
                "committed_blocks": blocks,
                "committed_txs": runtime.committed_txs,
                "view": machine.view,
                "last_committed_view": machine.last_committed_view,
                "view_lag": machine.view_lag(),
                "ledger_height": machine.ledger.height(),
                "state_root": machine.ledger.state_root.hex(),
                "timeouts_fired": machine.pacemaker.timeouts_fired,
                "timeout_ms": machine.pacemaker.current_timeout_ms,
                "checker_view": None if checker is None else checker.step.view,
                "checker_phase": None if checker is None else checker.step.phase.value,
                "checkpoint_interval": checkpoint_interval,
                "checkpoint_height": 0 if latest_ckpt is None else latest_ckpt.height,
                "caught_up_via_checkpoint": machine.caught_up_via_checkpoint,
                "catchup_active": machine.catchup.active,
                "catchup_retries": machine.catchup.retries,
                "catchup_rounds": machine.catchup.completed,
                "restored_from_seal": restored,
                "seal_writes": 0 if sealer is None else sealer.seal_writes,
                "checkpoint_writes": 0 if sealer is None else sealer.checkpoint_writes,
                "restored_checkpoint_height": (
                    0 if sealer is None else sealer.restored_checkpoint_height
                ),
                "dropped_messages": runtime.dropped_messages,
                "rejected_connections": runtime.rejected_connections,
                "prechecked_sigs": runtime.prechecked_sigs,
                "mempool": machine.mempool.stats(),
                "faults": {} if decider is None else decider.counts(),
                "watchdog": watchdog.snapshot(now_ms).to_dict(),
            }
            try:
                _write_health_file(path, payload)
            except OSError:  # health reporting must never kill the replica
                _LOG.warning("replica %d: could not write health file %s", pid, path)
            await asyncio.sleep(health_interval_s)

    async def fault_spec_loop(path: Path, active: FaultDecider) -> None:
        nonlocal spec_mtime
        while True:
            await asyncio.sleep(0.25)
            try:
                mtime = path.stat().st_mtime
            except OSError:  # noqa: S112 - spec file absent until the operator writes it; keep polling
                continue
            if mtime == spec_mtime:
                continue
            rules = _load_fault_rules(path)
            active.set_rules(rules)
            spec_mtime = mtime
            _LOG.info(
                "replica %d: reloaded fault spec (%d rule(s))", pid, len(rules)
            )

    if health_file is not None:
        aux_tasks.append(asyncio.ensure_future(health_loop(Path(health_file))))
    if spec_path is not None and decider is not None:
        aux_tasks.append(asyncio.ensure_future(fault_spec_loop(spec_path, decider)))

    try:
        if duration_s > 0:
            await asyncio.sleep(duration_s)
        else:
            await asyncio.Event().wait()
    finally:
        for task in aux_tasks:
            task.cancel()
        if aux_tasks:
            await asyncio.gather(*aux_tasks, return_exceptions=True)
        await runtime.close()
        if pool is not None:
            pool.close()
    return runtime
