"""Durable sealed TEE state for the socket runtime.

On the simulator, ``BaseReplica.crash()`` seals checker state in memory
and ``recover()`` unseals it.  A real process killed with SIGKILL gets
no chance to seal - so on the socket runtime the seal must already be
on disk *before* any signature that depends on it leaves the host.
:class:`DurableSealer` enforces exactly that: the asyncio runtime calls
:meth:`maybe_seal` at the top of every effect flush (after the handler
ran, before any frame is written), persisting a snapshot whenever the
checker's (view, phase) step advanced.  Restart then restores the
latest snapshot and primes the seal manager with the durable counter
record, so presenting a stale snapshot raises
:class:`~repro.errors.TEERefusal` exactly as the simulator path does.

The latest certified checkpoint rides along: whenever the replica's
checkpoint height advances, the sealer persists the checkpoint record
next to the snapshot, and :meth:`restore` reinstalls it (signature and
quorum re-verified, height checked against the sealed checker's
monotonic certified height) so a restarted replica resumes from its
certified horizon instead of replaying the whole chain.
"""

from __future__ import annotations

from repro.errors import TEERefusal
from repro.protocols.replica import BaseReplica
from repro.tee.checkpoint import verify_checkpoint
from repro.tee.sealed import FileSealStore


class DurableSealer:
    """Glue between one replica's checker and a :class:`FileSealStore`."""

    def __init__(self, replica: BaseReplica, store: FileSealStore) -> None:
        self.replica = replica
        self.store = store
        self._last_sealed: tuple[int, str] | None = None
        self._last_ckpt_height = 0
        self.seal_writes = 0
        self.checkpoint_writes = 0
        self.restored = False
        self.restored_checkpoint_height = 0

    @property
    def enabled(self) -> bool:
        """Protocols without a trusted component have nothing to seal."""
        return getattr(self.replica, "checker", None) is not None

    def _step_key(self) -> tuple[int, str]:
        step = self.replica.checker.step
        return (step.view, step.phase.value)

    def restore(self) -> bool:
        """Restore the latest durable snapshot into the (fresh) replica.

        Returns ``True`` when a snapshot existed and was accepted.
        Always primes the replica's seal manager with the durable
        counter record first, so a rolled-back snapshot - however
        authentic - raises :class:`~repro.errors.TEERefusal` instead of
        reviving an older step.  Call before ``start()``.
        """
        if not self.enabled:
            return False
        component_id = self.replica.checker.component_id
        self.store.prime_manager(self.replica.seal_manager, component_id)
        sealed = self.store.load(component_id)
        if sealed is None:
            self._restore_checkpoint(component_id)
            return False
        self.replica.restore_tee_state(sealed)  # raises TEERefusal on rollback
        self._last_sealed = self._step_key()
        self.restored = True
        self._restore_checkpoint(component_id)
        return True

    def _restore_checkpoint(self, component_id: int) -> None:
        """Reinstall the durable certified checkpoint, if one exists.

        The record is fully re-verified (Checker signature plus the
        embedded quorum commitment), and its height is checked against
        the sealed checker's certified height: the checker's monotonic
        checkpoint counter outlives a checkpoint-file rollback, so an
        older - however authentic - checkpoint is refused.
        """
        checkpoint = self.store.load_checkpoint(component_id)
        if checkpoint is None:
            return
        replica = self.replica
        verify_checkpoint(
            checkpoint, replica.scheme, replica.directory, replica.quorum
        )  # raises TEERefusal on forgery
        if checkpoint.height < replica.checker.checkpoint_height:
            raise TEERefusal(
                f"durable checkpoint rolled back (height {checkpoint.height} < "
                f"certified {replica.checker.checkpoint_height})"
            )
        if checkpoint.height > replica.checker.checkpoint_height:
            # A durable checkpoint newer than the sealed floor (e.g. the
            # seal predates it): the checker re-verifies and adopts the
            # certified tip so future certifications chain from it.
            replica.checker.tee_install_checkpoint(checkpoint)
        if checkpoint.height > replica.ledger.height():
            replica.ledger.install_checkpoint(
                checkpoint.height, checkpoint.block_hash, checkpoint.state_root
            )
        replica.latest_checkpoint = checkpoint
        replica.last_committed_view = max(
            replica.last_committed_view, checkpoint.view
        )
        # Resume consensus past the checkpointed view; start() runs after
        # this and opens the pacemaker at the restored view.
        replica.view = max(replica.view, checkpoint.view + 1)
        self._last_ckpt_height = checkpoint.height
        self.restored_checkpoint_height = checkpoint.height

    def maybe_seal(self) -> bool:
        """Persist a snapshot iff the checker's durable state advanced.

        Runs before outbound frames are queued, so the signature a
        restarted replica could try to re-issue is always covered by a
        durable step at least as high - re-signing a lower (view, phase)
        is impossible by construction.  The latest certified checkpoint
        is persisted under the same call whenever its height advanced
        (durability before visibility: both writes land before any
        frame or commit effect is interpreted).
        """
        if not self.enabled:
            return False
        checkpoint = self.replica.latest_checkpoint
        ckpt_advanced = (
            checkpoint is not None and checkpoint.height > self._last_ckpt_height
        )
        wrote = False
        key = self._step_key()
        # A checkpoint-height advance forces a re-seal even at an unchanged
        # step: the snapshot carries the checker's monotonic certified
        # height, and the rollback check on restore is only as fresh as the
        # last seal that landed.
        if key != self._last_sealed or ckpt_advanced:
            sealed = self.replica.seal_tee_state()
            if sealed is not None:
                self.store.save(sealed)
                self._last_sealed = key
                self.seal_writes += 1
                wrote = True
        self._maybe_persist_checkpoint()
        return wrote

    def _maybe_persist_checkpoint(self) -> None:
        checkpoint = self.replica.latest_checkpoint
        if checkpoint is None or checkpoint.height <= self._last_ckpt_height:
            return
        self.store.save_checkpoint(
            self.replica.checker.component_id, checkpoint
        )
        self._last_ckpt_height = checkpoint.height
        self.checkpoint_writes += 1
