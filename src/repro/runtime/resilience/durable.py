"""Durable sealed TEE state for the socket runtime.

On the simulator, ``BaseReplica.crash()`` seals checker state in memory
and ``recover()`` unseals it.  A real process killed with SIGKILL gets
no chance to seal - so on the socket runtime the seal must already be
on disk *before* any signature that depends on it leaves the host.
:class:`DurableSealer` enforces exactly that: the asyncio runtime calls
:meth:`maybe_seal` at the top of every effect flush (after the handler
ran, before any frame is written), persisting a snapshot whenever the
checker's (view, phase) step advanced.  Restart then restores the
latest snapshot and primes the seal manager with the durable counter
record, so presenting a stale snapshot raises
:class:`~repro.errors.TEERefusal` exactly as the simulator path does.
"""

from __future__ import annotations

from repro.protocols.replica import BaseReplica
from repro.tee.sealed import FileSealStore


class DurableSealer:
    """Glue between one replica's checker and a :class:`FileSealStore`."""

    def __init__(self, replica: BaseReplica, store: FileSealStore) -> None:
        self.replica = replica
        self.store = store
        self._last_sealed: tuple[int, str] | None = None
        self.seal_writes = 0
        self.restored = False

    @property
    def enabled(self) -> bool:
        """Protocols without a trusted component have nothing to seal."""
        return getattr(self.replica, "checker", None) is not None

    def _step_key(self) -> tuple[int, str]:
        step = self.replica.checker.step
        return (step.view, step.phase.value)

    def restore(self) -> bool:
        """Restore the latest durable snapshot into the (fresh) replica.

        Returns ``True`` when a snapshot existed and was accepted.
        Always primes the replica's seal manager with the durable
        counter record first, so a rolled-back snapshot - however
        authentic - raises :class:`~repro.errors.TEERefusal` instead of
        reviving an older step.  Call before ``start()``.
        """
        if not self.enabled:
            return False
        component_id = self.replica.checker.component_id
        self.store.prime_manager(self.replica.seal_manager, component_id)
        sealed = self.store.load(component_id)
        if sealed is None:
            return False
        self.replica.restore_tee_state(sealed)  # raises TEERefusal on rollback
        self._last_sealed = self._step_key()
        self.restored = True
        return True

    def maybe_seal(self) -> bool:
        """Persist a snapshot iff the checker step advanced since the last.

        Runs before outbound frames are queued, so the signature a
        restarted replica could try to re-issue is always covered by a
        durable step at least as high - re-signing a lower (view, phase)
        is impossible by construction.
        """
        if not self.enabled:
            return False
        key = self._step_key()
        if key == self._last_sealed:
            return False
        sealed = self.replica.seal_tee_state()
        if sealed is None:  # pragma: no cover - enabled implies a checker
            return False
        self.store.save(sealed)
        self._last_sealed = key
        self.seal_writes += 1
        return True
