"""Replica process supervision: spawn, SIGKILL, respawn from sealed state.

The crash-recovery loop is only closed end-to-end when a *real* process
dies without warning and a new one resumes from durable sealed state.
:class:`ReplicaSupervisor` owns one replica's OS process: it spawns
``python -m repro serve`` with a seal directory, health file and fault
spec, kills it with SIGKILL (no cleanup handlers run - exactly the
crash the sealed store must survive), and respawns it with identical
arguments so the new process restores the sealed checker and rejoins.

This is host-side orchestration code: it runs on wall-clock time and is
exempted from the determinism lint alongside the asyncio host.
"""

from __future__ import annotations

import os
import signal
import subprocess  # noqa: S404 - process supervision is this module's purpose
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path


@dataclass(frozen=True)
class ReplicaProcessSpec:
    """Everything needed to (re)spawn one ``repro serve`` process."""

    pid: int
    protocol: str
    n: int
    base_port: int
    seed: int = 1
    host: str = "127.0.0.1"
    payload_bytes: int = 128
    block_size: int = 32
    timeout_ms: float = 2_000.0
    max_timeout_ms: float = 0.0
    timeout_jitter: float = 0.0
    adversary: str | None = None
    checkpoint_interval: int = 0
    seal_dir: Path | None = None
    health_file: Path | None = None
    health_interval_s: float = 0.5
    fault_spec: Path | None = None

    def argv(self) -> list[str]:
        argv = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--protocol",
            self.protocol,
            "--pid",
            str(self.pid),
            "--n",
            str(self.n),
            "--host",
            self.host,
            "--base-port",
            str(self.base_port),
            "--seed",
            str(self.seed),
            "--payload",
            str(self.payload_bytes),
            "--block-size",
            str(self.block_size),
            "--timeout-ms",
            str(self.timeout_ms),
        ]
        if self.max_timeout_ms > 0:
            argv += ["--max-timeout-ms", str(self.max_timeout_ms)]
        if self.timeout_jitter > 0:
            argv += ["--timeout-jitter", str(self.timeout_jitter)]
        if self.adversary is not None:
            argv += ["--adversary", self.adversary]
        if self.checkpoint_interval > 0:
            argv += ["--checkpoint-interval", str(self.checkpoint_interval)]
        if self.seal_dir is not None:
            argv += ["--seal-dir", str(self.seal_dir)]
        if self.health_file is not None:
            argv += [
                "--health-file",
                str(self.health_file),
                "--health-interval",
                str(self.health_interval_s),
            ]
        if self.fault_spec is not None:
            argv += ["--fault-spec", str(self.fault_spec)]
        return argv


@dataclass
class ReplicaSupervisor:
    """Owns one replica process: spawn / SIGKILL / respawn.

    The supervisor never restarts automatically - the chaos scenario
    (and eventually an operator) decides when; what it guarantees is
    that respawns reuse identical arguments, so recovery is always
    "same replica, restored from its sealed state".
    """

    spec: ReplicaProcessSpec
    log_path: Path | None = None
    spawn_count: int = 0
    kill_count: int = 0
    _process: subprocess.Popen[bytes] | None = field(default=None, repr=False)
    _log_handle: object | None = field(default=None, repr=False)

    def spawn(self) -> None:
        """Start the replica process (idempotent while it is running)."""
        if self.running:
            return
        stdout: object
        if self.log_path is not None:
            self.log_path.parent.mkdir(parents=True, exist_ok=True)
            self._log_handle = open(self.log_path, "ab")
            stdout = self._log_handle
        else:
            stdout = subprocess.DEVNULL
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parents[3])
        existing = env.get("PYTHONPATH")
        if existing:
            if src_root not in existing.split(os.pathsep):
                env["PYTHONPATH"] = src_root + os.pathsep + existing
        else:
            env["PYTHONPATH"] = src_root
        self._process = subprocess.Popen(  # noqa: S603 - argv is the supervisor's own replica command, not user input
            self.spec.argv(),
            stdout=stdout,  # type: ignore[arg-type]
            stderr=subprocess.STDOUT,
            env=env,
        )
        self.spawn_count += 1

    @property
    def running(self) -> bool:
        return self._process is not None and self._process.poll() is None

    @property
    def returncode(self) -> int | None:
        return None if self._process is None else self._process.poll()

    def kill(self) -> None:
        """SIGKILL the process: no shutdown handlers, no final seal."""
        if self._process is not None and self._process.poll() is None:
            self._process.send_signal(signal.SIGKILL)
            self._process.wait()
            self.kill_count += 1
        self._close_log()

    def terminate(self, grace_s: float = 5.0) -> None:
        """Polite shutdown: SIGTERM, then SIGKILL after ``grace_s``."""
        if self._process is not None and self._process.poll() is None:
            self._process.terminate()
            try:
                self._process.wait(timeout=grace_s)
            except subprocess.TimeoutExpired:
                self._process.kill()
                self._process.wait()
        self._close_log()

    def restart(self) -> None:
        """Respawn with identical arguments (kills first if still alive)."""
        self.kill()
        self.spawn()

    def wait_exit(self, timeout_s: float) -> bool:
        """Wait up to ``timeout_s`` for the process to exit on its own."""
        if self._process is None:
            return True
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self._process.poll() is not None:
                return True
            time.sleep(0.05)
        return self._process.poll() is not None

    def _close_log(self) -> None:
        handle = self._log_handle
        if handle is not None:
            self._log_handle = None
            handle.close()  # type: ignore[attr-defined]
