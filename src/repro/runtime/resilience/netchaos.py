"""Scripted real-network chaos: kill -> restart -> partition -> heal.

This is the socket-runtime counterpart of :mod:`repro.analysis.chaos`:
an n-replica localhost cluster of *real OS processes* (spawned via
:class:`~repro.runtime.resilience.supervisor.ReplicaSupervisor`) is
driven through the scenario the paper's trust model must survive:

1. **boot** - every replica commits at least one block;
2. **kill** - one replica is SIGKILLed; the rest keep committing
   (n=4 Damysus tolerates f=1);
3. **restart** - the killed replica respawns, restores its durable
   sealed checker state (rollback-refusing), rejoins and commits;
4. **partition** - the cluster splits 2/2 via a live fault-spec reload;
   no quorum exists, commits stall (observed, informational);
5. **heal** - the spec reverts; every replica commits a fresh block
   within the bound.

Fault injection is seeded-deterministic per (src, dst, frame sequence):
the report carries the :func:`~repro.runtime.resilience.transport.decision_digest`
of the scenario's rule set, which two same-seed runs reproduce exactly.

Control plane: replica processes poll their ``--fault-spec`` file and
apply rule changes live; health flows back through per-process JSON
files (attributes written atomically) that the orchestrator's
:class:`~repro.runtime.resilience.watchdog.LivenessWatchdog` consumes.
"""

from __future__ import annotations

import json
import shutil
import socket
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.core.faults import FaultPlan
from repro.errors import ConfigError
from repro.runtime.resilience.supervisor import ReplicaProcessSpec, ReplicaSupervisor
from repro.runtime.resilience.transport import decision_digest
from repro.runtime.resilience.watchdog import LivenessWatchdog

#: Polling cadence for health files and phase predicates (seconds).
_POLL_S = 0.25


@dataclass(frozen=True)
class PhaseResult:
    """Outcome of one scenario phase."""

    name: str
    ok: bool
    detail: str
    elapsed_s: float


@dataclass
class NetChaosReport:
    """Everything one ``repro net-chaos`` run observed."""

    protocol: str
    n: int
    seed: int
    base_port: int
    loss: float
    decision_digest: str
    phases: list[PhaseResult] = field(default_factory=list)
    fault_counts: dict[str, int] = field(default_factory=dict)
    run_dir: str = ""
    checkpoint_interval: int = 0
    adversary: str | None = None
    adversary_pids: tuple[int, ...] = ()

    @property
    def ok(self) -> bool:
        return all(phase.ok for phase in self.phases)

    def describe(self) -> str:
        lines = [
            f"protocol            {self.protocol} (n={self.n}, seed={self.seed})",
            f"base port           {self.base_port}",
            f"loss probability    {self.loss}",
            f"checkpoint interval {self.checkpoint_interval or 'off'}",
            f"adversary           "
            f"{self.adversary or 'none'}"
            + (f" at pids {list(self.adversary_pids)}" if self.adversary else ""),
            f"decision digest     {self.decision_digest}",
            "                    (pure function of seed + fault plan: identical "
            "across same-seed runs)",
        ]
        for phase in self.phases:
            status = "ok" if phase.ok else "FAILED"
            lines.append(
                f"phase {phase.name:<12} {status:<7} {phase.elapsed_s:6.1f} s  "
                f"{phase.detail}"
            )
        if self.fault_counts:
            lines.append(
                "injected faults     "
                + ", ".join(f"{k}={v}" for k, v in sorted(self.fault_counts.items()))
            )
        lines.append(f"run artifacts       {self.run_dir}")
        lines.append(f"verdict             {'OK' if self.ok else 'FAILED'}")
        return "\n".join(lines)


def _find_free_base_port(n: int, host: str) -> int:
    """A base port with ``n`` consecutive free ports above it (best effort)."""
    for _ in range(32):
        with socket.socket() as probe:
            probe.bind((host, 0))
            base = probe.getsockname()[1]
        if base + n >= 65535:
            continue
        try:
            holders = []
            try:
                for offset in range(n):
                    holder = socket.socket()
                    holders.append(holder)
                    holder.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
                    holder.bind((host, base + offset))
            finally:
                for holder in holders:
                    holder.close()
        except OSError:  # noqa: S112 - port range in use; probe the next base
            continue
        return base
    raise ConfigError(f"could not find {n} consecutive free ports on {host}")


def _read_health(path: Path) -> dict[str, Any] | None:
    try:
        return json.loads(path.read_text())
    except (FileNotFoundError, json.JSONDecodeError, OSError):
        return None


class _Cluster:
    """The orchestrator's view of the running processes."""

    def __init__(self, supervisors: list[ReplicaSupervisor], health: list[Path]) -> None:
        self.supervisors = supervisors
        self.health_paths = health
        self.watchdog = LivenessWatchdog(stall_after_ms=20_000.0)
        self._t0 = time.monotonic()
        self._last_blocks: dict[int, int] = {}

    @property
    def now_ms(self) -> float:
        return (time.monotonic() - self._t0) * 1000.0

    def observe(self) -> dict[int, dict[str, Any]]:
        """Read every health file, feeding the watchdog."""
        out: dict[int, dict[str, Any]] = {}
        for pid, path in enumerate(self.health_paths):
            health = _read_health(path)
            if health is None:
                continue
            out[pid] = health
            if not self.supervisors[pid].running:
                self.watchdog.record_dead(pid)
                continue
            self.watchdog.record_alive(pid, self.now_ms)
            blocks = int(health.get("committed_blocks", 0))
            if blocks > self._last_blocks.get(pid, -1):
                if blocks > self._last_blocks.get(pid, 0):
                    self.watchdog.record_commit(pid, self.now_ms, blocks)
                self._last_blocks[pid] = blocks
        return out

    def committed(self, pids: list[int]) -> dict[int, int]:
        health = self.observe()
        return {
            pid: int(health[pid].get("committed_blocks", 0))
            for pid in pids
            if pid in health
        }

    def wait_until(
        self, predicate: Callable[[dict[int, dict[str, Any]]], bool], timeout_s: float
    ) -> bool:
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if predicate(self.observe()):
                return True
            time.sleep(_POLL_S)
        return predicate(self.observe())


def run_net_chaos(
    protocol: str = "damysus",
    n: int = 4,
    *,
    seed: int = 1,
    loss: float = 0.05,
    base_port: int = 0,
    host: str = "127.0.0.1",
    commit_bound_s: float = 60.0,
    partition_hold_s: float = 6.0,
    timeout_ms: float = 1_000.0,
    max_timeout_ms: float = 0.0,
    timeout_jitter: float = 0.0,
    adversary: str | None = None,
    kill: bool = True,
    partition: bool = True,
    catchup: bool = False,
    checkpoint_interval: int = 0,
    catchup_commits: int = 100,
    run_dir: str | Path | None = None,
    keep_artifacts: bool = False,
) -> NetChaosReport:
    """Run the scripted kill/restart/partition/heal scenario; see module doc.

    ``commit_bound_s`` bounds every liveness assertion (boot, post-restart
    and post-heal commits).  Artifacts (per-replica logs, health files,
    seal files, the fault spec) land under ``run_dir`` (a fresh temp
    directory by default, removed on success unless ``keep_artifacts``).

    ``catchup`` appends a state-transfer cycle: the victim is SIGKILLed
    again, the survivors commit ``catchup_commits`` further blocks (far
    past the checkpoint horizon), the victim respawns and must rejoin by
    installing a peer's certified checkpoint - not by replaying the
    missed blocks - within ``commit_bound_s``.  Requires (and defaults)
    a positive ``checkpoint_interval``.

    ``adversary`` seats the named registered attack at its default pids
    (the victim at ``n-1`` always stays honest - the scenario kills and
    restarts it, and a Byzantine victim would prove nothing).  Every
    liveness assertion then runs *with the attack live*: the honest
    majority must boot, survive the kill, and heal regardless.
    """
    if n < 4:
        raise ConfigError("net-chaos needs n >= 4 (a 2/2 partition and f >= 1)")
    if catchup and checkpoint_interval <= 0:
        checkpoint_interval = 25
    adversary_pids: tuple[int, ...] = ()
    if adversary is not None:
        from repro.adversary.registry import get_adversary
        from repro.protocols.registry import get_spec

        adv = get_adversary(adversary)
        adv.replica_class(protocol)  # fail fast on unsupported protocols
        f = get_spec(protocol).max_faults(n)
        adversary_pids = tuple(
            pid for pid in adv.seats(n, f) if pid != n - 1
        )
    owns_dir = run_dir is None
    root = Path(tempfile.mkdtemp(prefix="repro-netchaos-")) if owns_dir else Path(run_dir)
    root.mkdir(parents=True, exist_ok=True)
    seal_dir = root / "seal"
    health_dir = root / "health"
    log_dir = root / "logs"
    for directory in (seal_dir, health_dir, log_dir):
        directory.mkdir(exist_ok=True)
    fault_spec = root / "faults.json"

    # Three live fault-spec states drive the scenario: background loss
    # while all n replicas are up (quorum slack absorbs it), a clean
    # network while only a bare quorum survives the kill (n-1 live
    # replicas of a 2f+1 protocol leave zero slack - permanent loss
    # there bounds liveness by luck, not by the protocol), and the 2/2
    # partition.  Every transition exercises the replicas' live reload.
    base_plan = FaultPlan()
    if loss > 0.0:
        base_plan.lossy_links(loss)
    quiet_plan = FaultPlan()
    left = set(range(0, 2))
    right = set(range(2, n))
    partition_plan = FaultPlan().partition(left, right)
    # The digest advertises the full decision table of everything this
    # scenario can inject (loss + partition rules).
    digest_plan = FaultPlan()
    if loss > 0.0:
        digest_plan.lossy_links(loss)
    digest_plan.partition(left, right)
    fault_spec.write_text(base_plan.rules_spec())

    if base_port == 0:
        base_port = _find_free_base_port(n, host)
    digest = decision_digest(digest_plan.rules, seed, list(range(n)))
    report = NetChaosReport(
        protocol=protocol,
        n=n,
        seed=seed,
        base_port=base_port,
        loss=loss,
        decision_digest=digest,
        run_dir=str(root),
        checkpoint_interval=checkpoint_interval,
        adversary=adversary,
        adversary_pids=adversary_pids,
    )

    supervisors = []
    health_paths = []
    for pid in range(n):
        health_path = health_dir / f"replica-{pid}.json"
        health_paths.append(health_path)
        spec = ReplicaProcessSpec(
            pid=pid,
            protocol=protocol,
            n=n,
            base_port=base_port,
            seed=seed,
            host=host,
            timeout_ms=timeout_ms,
            max_timeout_ms=max_timeout_ms,
            timeout_jitter=timeout_jitter,
            adversary=adversary if pid in adversary_pids else None,
            checkpoint_interval=checkpoint_interval,
            seal_dir=seal_dir,
            health_file=health_path,
            fault_spec=fault_spec,
        )
        supervisors.append(
            ReplicaSupervisor(spec=spec, log_path=log_dir / f"replica-{pid}.log")
        )
    cluster = _Cluster(supervisors, health_paths)

    def phase(name: str, started: float, ok: bool, detail: str) -> bool:
        report.phases.append(
            PhaseResult(name, ok, detail, elapsed_s=time.monotonic() - started)
        )
        return ok

    victim = n - 1
    survivors = [pid for pid in range(n) if pid != victim]
    try:
        for supervisor in supervisors:
            supervisor.spawn()

        # -- boot: everyone commits ------------------------------------------
        t = time.monotonic()
        booted = cluster.wait_until(
            lambda h: len(h) == n
            and all(int(h[p].get("committed_blocks", 0)) >= 1 for p in range(n)),
            commit_bound_s,
        )
        blocks = cluster.committed(list(range(n)))
        if not phase("boot", t, booted, f"committed blocks per replica: {blocks}"):
            return report

        if kill:
            # -- kill: survivors keep committing -----------------------------
            t = time.monotonic()
            fault_spec.write_text(quiet_plan.rules_spec())
            before = cluster.committed(survivors)
            supervisors[victim].kill()
            cluster.watchdog.record_dead(victim)
            survived = cluster.wait_until(
                lambda h: all(
                    int(h.get(p, {}).get("committed_blocks", 0)) > before.get(p, 0)
                    for p in survivors
                ),
                commit_bound_s,
            )
            after = cluster.committed(survivors)
            if not phase(
                "kill",
                t,
                survived,
                f"SIGKILLed replica {victim}; survivor commits {before} -> {after}",
            ):
                return report

            # -- restart: restore from durable sealed state ------------------
            t = time.monotonic()
            supervisors[victim].spawn()
            rejoined = cluster.wait_until(
                lambda h: bool(h.get(victim, {}).get("restored_from_seal"))
                and int(h.get(victim, {}).get("committed_blocks", 0)) >= 1,
                commit_bound_s,
            )
            health = cluster.observe().get(victim, {})
            if not phase(
                "restart",
                t,
                rejoined,
                f"replica {victim} restored_from_seal="
                f"{health.get('restored_from_seal')} checker_view="
                f"{health.get('checker_view')} committed="
                f"{health.get('committed_blocks')}",
            ):
                return report

        if partition:
            # -- partition: 2/2, no quorum, commits stall --------------------
            t = time.monotonic()
            fault_spec.write_text(partition_plan.rules_spec())
            time.sleep(max(partition_hold_s / 2, 2.0))
            mid = cluster.committed(list(range(n)))
            time.sleep(max(partition_hold_s / 2, 2.0))
            end = cluster.committed(list(range(n)))
            stalled = all(end.get(p, 0) == mid.get(p, 0) for p in mid)
            # Informational: a commit already quorum-certified before the
            # split may land late; the hard requirement is healing below.
            phase(
                "partition",
                t,
                True,
                f"2/2 split {sorted(left)}|{sorted(right)}; commits during hold: "
                f"{mid} -> {end} ({'stalled' if stalled else 'straggler commits seen'})",
            )

            # -- heal: everyone commits a fresh block ------------------------
            t = time.monotonic()
            before_heal = cluster.committed(list(range(n)))
            fault_spec.write_text(quiet_plan.rules_spec())
            healed = cluster.wait_until(
                lambda h: all(
                    int(h.get(p, {}).get("committed_blocks", 0))
                    > before_heal.get(p, 0)
                    for p in range(n)
                ),
                commit_bound_s,
            )
            after_heal = cluster.committed(list(range(n)))
            if not phase(
                "heal",
                t,
                healed,
                f"post-heal commits {before_heal} -> {after_heal}",
            ):
                return report

        if catchup:
            # -- catchup-kill: survivors race past the checkpoint horizon ----
            t = time.monotonic()
            fault_spec.write_text(quiet_plan.rules_spec())
            supervisors[victim].kill()
            cluster.watchdog.record_dead(victim)
            base = cluster.committed(survivors)
            grown = cluster.wait_until(
                lambda h: all(
                    int(h.get(p, {}).get("committed_blocks", 0))
                    >= base.get(p, 0) + catchup_commits
                    for p in survivors
                ),
                commit_bound_s,
            )
            after = cluster.committed(survivors)
            if not phase(
                "catchup-kill",
                t,
                grown,
                f"SIGKILLed replica {victim}; survivor commits {base} -> {after} "
                f"(target +{catchup_commits})",
            ):
                return report

            # -- catchup: rejoin via certified checkpoint, not replay --------
            t = time.monotonic()
            frontier = min(
                int(h.get("ledger_height", 0))
                for p, h in cluster.observe().items()
                if p in survivors
            )
            supervisors[victim].spawn()
            rejoined = cluster.wait_until(
                lambda h: bool(h.get(victim, {}).get("caught_up_via_checkpoint"))
                and int(h.get(victim, {}).get("ledger_height", 0)) >= frontier,
                commit_bound_s,
            )
            health = cluster.observe().get(victim, {})
            if not phase(
                "catchup",
                t,
                rejoined,
                f"replica {victim} caught_up_via_checkpoint="
                f"{health.get('caught_up_via_checkpoint')} checkpoint_height="
                f"{health.get('checkpoint_height')} ledger_height="
                f"{health.get('ledger_height')} (survivor frontier {frontier}) "
                f"retries={health.get('catchup_retries')}",
            ):
                return report

        totals: dict[str, int] = {}
        for health in cluster.observe().values():
            for key, value in (health.get("faults") or {}).items():
                totals[key] = totals.get(key, 0) + int(value)
        report.fault_counts = totals
        return report
    finally:
        for supervisor in supervisors:
            supervisor.terminate()
        if owns_dir and report.ok and not keep_artifacts:
            shutil.rmtree(root, ignore_errors=True)
            report.run_dir += " (removed; pass keep_artifacts to retain)"
