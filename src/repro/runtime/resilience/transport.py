"""Socket-level fault injection: the :class:`FaultDecider`.

The simulator applies a :class:`~repro.core.faults.FaultPlan` at the
point where a message enters the network; the asyncio runtime applies
the *same rules* at the point where a frame enters a peer connection.
:class:`FaultDecider` sits between the protocol machine and the per-peer
outbound queues of :class:`repro.runtime.asyncio_net.AsyncioRuntime`:
every consensus frame consults it once, on the sending side, so each
frame crosses exactly one fault pipeline (mirroring the simulated
network) and a symmetric partition cuts both directions because both
senders apply the plan.

Determinism contract: the random draws for the k-th frame on link
(src, dst) come from a fresh :class:`~repro.core.rng.RngStream` named
``netfault:{src}->{dst}:{k}`` and derived from the master seed - a pure
function of (seed, src, dst, k), independent of wall-clock timing.  Two
runs with the same seed and plan therefore inject identically at every
(link, sequence) coordinate; :func:`decision_digest` fingerprints that
decision table so runs can prove it cheaply.  Time-*windowed* rules
(partition healing) additionally gate on the host's wall clock, which
the caller passes in as ``now_ms``.

This module is pure (no sockets, no clock reads) and stays inside the
determinism lint perimeter; the asyncio glue lives in
:mod:`repro.runtime.asyncio_net`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.core.faults import FaultAction, FaultRule, evaluate_rules
from repro.core.rng import RngStream

#: Frames per link covered by :func:`decision_digest`'s decision table.
DIGEST_HORIZON = 64


def _frame_stream(seed: int, src: int, dst: int, seq: int) -> RngStream:
    """The seeded stream deciding the fate of one frame on one link."""
    return RngStream(seed, f"netfault:{src}->{dst}:{seq}")


def _kind_of(action: FaultAction | None) -> str:
    if action is None:
        return "pass"
    if action.drop:
        return "drop"
    parts = []
    if action.duplicates:
        parts.append("duplicate")
    if action.extra_delay_ms > 0.0:
        parts.append("delay")
    return "+".join(parts) if parts else "pass"


@dataclass(frozen=True)
class FaultRecord:
    """One applied fault-injection decision (pass decisions are not kept)."""

    src: int
    dst: int
    seq: int
    kind: str
    duplicates: int = 0
    extra_delay_ms: float = 0.0


class FaultDecider:
    """Seeded, per-frame fault decisions for one sending host.

    One decider serves one replica process; the (src, dst) pair of every
    outbound frame keys a per-link sequence counter, and the decision for
    sequence number k is drawn from the ``netfault:{src}->{dst}:{k}``
    stream.  ``set_rules`` supports live fault-plan reloads (the
    net-chaos control plane heals a partition by rewriting the spec
    file); sequence counters - and hence the decision table - are not
    disturbed by a reload.
    """

    def __init__(
        self,
        rules: Iterable[FaultRule],
        seed: int,
        *,
        max_records: int = 50_000,
    ) -> None:
        self.rules: tuple[FaultRule, ...] = tuple(rules)
        self.seed = seed
        self.max_records = max_records
        self._next_seq: dict[tuple[int, int], int] = {}
        #: Applied (non-pass) decisions, in decision order, up to the cap.
        self.records: list[FaultRecord] = []
        self.records_truncated = 0
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0

    def set_rules(self, rules: Iterable[FaultRule]) -> None:
        """Replace the active rule set (live fault-plan reload)."""
        self.rules = tuple(rules)

    def decide(self, src: int, dst: int, payload: Any, now_ms: float) -> FaultAction | None:
        """The fate of the next frame on (src, dst) at wall time ``now_ms``."""
        link = (src, dst)
        seq = self._next_seq.get(link, 0)
        self._next_seq[link] = seq + 1
        if not self.rules:
            return None
        rng = _frame_stream(self.seed, src, dst, seq)
        action = evaluate_rules(self.rules, src, dst, payload, now_ms, rng)
        if action is not None:
            self._record(src, dst, seq, action)
        return action

    def counts(self) -> dict[str, int]:
        """Applied-fault counters for health reporting."""
        return {
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "delayed": self.delayed,
        }

    def _record(self, src: int, dst: int, seq: int, action: FaultAction) -> None:
        if action.drop:
            self.dropped += 1
        if action.duplicates:
            self.duplicated += action.duplicates
        if action.extra_delay_ms > 0.0:
            self.delayed += 1
        if len(self.records) >= self.max_records:
            self.records_truncated += 1
            return
        self.records.append(
            FaultRecord(
                src=src,
                dst=dst,
                seq=seq,
                kind=_kind_of(action),
                duplicates=action.duplicates,
                extra_delay_ms=action.extra_delay_ms,
            )
        )


def decision_table(
    rules: Sequence[FaultRule],
    seed: int,
    pids: Sequence[int],
    horizon: int = DIGEST_HORIZON,
) -> list[FaultRecord]:
    """The deterministic decision table: every link x sequence decision.

    Pure function of (seed, rules, pids, horizon): each rule is evaluated
    at the opening instant of its own activity window (so window gating,
    which depends on wall-clock phase alignment at run time, does not
    enter the table), drawing from the same per-frame streams the live
    :class:`FaultDecider` uses.  Frames whose run-time window state
    matches the table (in particular every un-windowed probabilistic
    rule) are injected exactly as tabled.
    """
    entries: list[FaultRecord] = []
    for src in sorted(pids):
        for dst in sorted(pids):
            if src == dst:
                continue
            for seq in range(horizon):
                rng = _frame_stream(seed, src, dst, seq)
                duplicates = 0
                extra = 0.0
                acted = False
                dropped = False
                for rule in rules:
                    now = getattr(rule, "start_ms", 0.0)
                    decision = rule.decide(src, dst, None, now, rng)
                    if decision is None:
                        continue
                    if decision.drop:
                        dropped = True
                        break
                    acted = True
                    duplicates += decision.duplicates
                    extra += decision.extra_delay_ms
                if dropped:
                    action: FaultAction | None = FaultAction(drop=True)
                elif acted:
                    action = FaultAction(duplicates=duplicates, extra_delay_ms=extra)
                else:
                    action = None
                entries.append(
                    FaultRecord(
                        src=src,
                        dst=dst,
                        seq=seq,
                        kind=_kind_of(action),
                        duplicates=0 if action is None else action.duplicates,
                        extra_delay_ms=0.0 if action is None else action.extra_delay_ms,
                    )
                )
    return entries


def decision_digest(
    rules: Sequence[FaultRule],
    seed: int,
    pids: Sequence[int],
    horizon: int = DIGEST_HORIZON,
) -> str:
    """Hex fingerprint of :func:`decision_table`.

    Two runs with the same (seed, plan, cluster) report the same digest;
    a differing digest proves the runs injected from different decision
    tables.  ``repro net-chaos`` prints it as the fault-injection
    decision log's identity.
    """
    hasher = hashlib.sha256()
    for entry in decision_table(rules, seed, pids, horizon):
        hasher.update(
            f"{entry.src}>{entry.dst}#{entry.seq}:{entry.kind}"
            f":{entry.duplicates}:{entry.extra_delay_ms:.6f};".encode()
        )
    return hasher.hexdigest()
