"""Liveness watchdog: per-replica last-commit tracking and health snapshots.

A BFT deployment that silently stops committing is worse than one that
crashes loudly.  :class:`LivenessWatchdog` tracks, per replica, the wall
time of the last commit (and the last sign of life of any kind) and
renders a structured :class:`HealthSnapshot` - the machine-readable
health surface behind ``repro net-chaos`` and the per-process health
files ``repro serve --health-file`` writes.

Beyond stall detection, the snapshot reports each replica's
last-committed view and its *view lag* behind the most advanced replica
in the cluster, plus the cumulative catch-up retry count - so an
operator (or the net-chaos gate) can see a replica falling behind before
it misses its catch-up window entirely.

Time is injected by the caller (the asyncio host passes its wall clock;
tests pass fixed values), so this module is deterministic and lint-clean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class ReplicaHealth:
    """One replica's liveness ledger."""

    pid: int
    alive: bool = True
    committed_blocks: int = 0
    last_commit_ms: float | None = None
    last_seen_ms: float | None = None
    last_committed_view: int = 0
    catchup_retries: int = 0

    def stalled(self, now_ms: float, stall_after_ms: float) -> bool:
        """True when no commit landed within the stall budget.

        A replica that never committed counts its silence from the first
        time the watchdog saw it, so a wedged-from-birth cluster is
        reported too.
        """
        if not self.alive:
            return False  # dead is reported separately, not as a stall
        reference = self.last_commit_ms
        if reference is None:
            reference = self.last_seen_ms
        if reference is None:
            return False
        return now_ms - reference > stall_after_ms


@dataclass(frozen=True)
class HealthSnapshot:
    """Structured cluster health at one instant."""

    at_ms: float
    stall_after_ms: float
    replicas: tuple[ReplicaHealth, ...]
    stalled_pids: tuple[int, ...]
    dead_pids: tuple[int, ...]

    @property
    def healthy(self) -> bool:
        """Every live replica committed within the stall budget."""
        return not self.stalled_pids

    @property
    def min_committed(self) -> int:
        live = [r.committed_blocks for r in self.replicas if r.alive]
        return min(live) if live else 0

    @property
    def highest_committed_view(self) -> int:
        """The most advanced committed view anywhere in the cluster."""
        views = [r.last_committed_view for r in self.replicas]
        return max(views) if views else 0

    def view_lag_of(self, pid: int) -> int:
        """Views between ``pid``'s last commit and the cluster frontier."""
        frontier = self.highest_committed_view
        for replica in self.replicas:
            if replica.pid == pid:
                return max(0, frontier - replica.last_committed_view)
        return 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "at_ms": self.at_ms,
            "stall_after_ms": self.stall_after_ms,
            "healthy": self.healthy,
            "stalled_pids": list(self.stalled_pids),
            "dead_pids": list(self.dead_pids),
            "highest_committed_view": self.highest_committed_view,
            "replicas": [
                {
                    "pid": r.pid,
                    "alive": r.alive,
                    "committed_blocks": r.committed_blocks,
                    "last_commit_ms": r.last_commit_ms,
                    "last_seen_ms": r.last_seen_ms,
                    "last_committed_view": r.last_committed_view,
                    "view_lag": self.view_lag_of(r.pid),
                    "catchup_retries": r.catchup_retries,
                }
                for r in self.replicas
            ],
        }


@dataclass
class LivenessWatchdog:
    """Tracks per-replica commit progress against a stall budget."""

    stall_after_ms: float = 30_000.0
    _replicas: dict[int, ReplicaHealth] = field(default_factory=dict)

    def _entry(self, pid: int) -> ReplicaHealth:
        entry = self._replicas.get(pid)
        if entry is None:
            entry = ReplicaHealth(pid=pid)
            self._replicas[pid] = entry
        return entry

    # -- feeding -----------------------------------------------------------

    def record_alive(self, pid: int, now_ms: float) -> None:
        """Any sign of life: a health report, a frame, a reconnect."""
        entry = self._entry(pid)
        entry.alive = True
        if entry.last_seen_ms is None or now_ms > entry.last_seen_ms:
            entry.last_seen_ms = now_ms

    def record_commit(
        self,
        pid: int,
        now_ms: float,
        committed_blocks: int | None = None,
        *,
        committed_view: int | None = None,
        catchup_retries: int | None = None,
    ) -> None:
        """A commit landed at ``pid`` at wall time ``now_ms``."""
        entry = self._entry(pid)
        entry.alive = True
        entry.last_commit_ms = now_ms
        entry.last_seen_ms = max(entry.last_seen_ms or 0.0, now_ms)
        if committed_blocks is None:
            entry.committed_blocks += 1
        else:
            entry.committed_blocks = committed_blocks
        if committed_view is not None:
            entry.last_committed_view = max(entry.last_committed_view, committed_view)
        if catchup_retries is not None:
            entry.catchup_retries = catchup_retries

    def record_dead(self, pid: int) -> None:
        """The supervisor observed the replica's process exit."""
        self._entry(pid).alive = False

    # -- reading -----------------------------------------------------------

    def snapshot(self, now_ms: float) -> HealthSnapshot:
        replicas = tuple(
            self._replicas[pid] for pid in sorted(self._replicas)
        )
        return HealthSnapshot(
            at_ms=now_ms,
            stall_after_ms=self.stall_after_ms,
            replicas=replicas,
            stalled_pids=tuple(
                r.pid for r in replicas if r.stalled(now_ms, self.stall_after_ms)
            ),
            dead_pids=tuple(r.pid for r in replicas if not r.alive),
        )
