"""Real-network fault tolerance for the asyncio runtime.

The simulator has had deterministic fault injection since PR 1
(:mod:`repro.core.faults` via :mod:`repro.sim.faults`); this package
ports the same contract to real sockets and closes the crash-recovery
loop end-to-end:

* :mod:`~repro.runtime.resilience.transport` - frame-level fault
  injection between the protocol machines and their peer connections,
  seeded-deterministic per (src, dst, frame sequence);
* :mod:`~repro.runtime.resilience.durable` - durable sealed TEE state:
  every checker step advance is persisted (atomic write + fsync) before
  its signature reaches the wire, so a SIGKILLed replica restarts from
  its latest sealed step and refuses rollback;
* :mod:`~repro.runtime.resilience.watchdog` - per-replica liveness
  tracking with structured health snapshots;
* :mod:`~repro.runtime.resilience.supervisor` - spawn / SIGKILL /
  respawn replica processes (the ``repro serve`` entry point);
* :mod:`~repro.runtime.resilience.netchaos` - the scripted
  kill -> restart -> partition -> heal scenario behind
  ``repro net-chaos``.
"""

from repro.runtime.resilience.durable import DurableSealer
from repro.runtime.resilience.transport import (
    FaultDecider,
    FaultRecord,
    decision_digest,
)
from repro.runtime.resilience.watchdog import (
    HealthSnapshot,
    LivenessWatchdog,
    ReplicaHealth,
)

__all__ = [
    "DurableSealer",
    "FaultDecider",
    "FaultRecord",
    "HealthSnapshot",
    "LivenessWatchdog",
    "ReplicaHealth",
    "decision_digest",
]
