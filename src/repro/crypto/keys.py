"""Key pairs and the shared public-key directory.

Replica ``i``'s untrusted code and its trusted components use distinct
signer identities so that a TEE certificate can never be confused with a
plain replica signature: replica ``i`` signs as ``i`` and its trusted
component signs as ``tee_signer_id(i)``.  The directory records which
identities exist and of which kind, mirroring the paper's "public keys"
state replicated inside every TEE.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.scheme import SignatureScheme
from repro.errors import CryptoError

#: Offset separating TEE signer ids from replica signer ids.
_TEE_ID_OFFSET = 1_000_000


def tee_signer_id(replica: int) -> int:
    """Signer identity of replica ``replica``'s trusted component."""
    return _TEE_ID_OFFSET + replica


def replica_of_tee_signer(signer: int) -> int:
    """Inverse of :func:`tee_signer_id`."""
    if signer < _TEE_ID_OFFSET:
        raise CryptoError(f"{signer} is not a TEE signer id")
    return signer - _TEE_ID_OFFSET


def is_tee_signer(signer: int) -> bool:
    return signer >= _TEE_ID_OFFSET


@dataclass(frozen=True)
class KeyPair:
    """Marker that a signer identity has been registered with the scheme."""

    signer: int
    kind: str  # "replica" or "tee"


class KeyDirectory:
    """Registry of all signer identities in one system instance."""

    def __init__(self, scheme: SignatureScheme) -> None:
        self.scheme = scheme
        self._pairs: dict[int, KeyPair] = {}

    def register_replica(self, replica: int) -> KeyPair:
        """Create keys for a replica's untrusted identity."""
        return self._register(replica, "replica")

    def register_tee(self, replica: int) -> KeyPair:
        """Create keys for a replica's trusted-component identity."""
        return self._register(tee_signer_id(replica), "tee")

    def _register(self, signer: int, kind: str) -> KeyPair:
        if signer in self._pairs:
            return self._pairs[signer]
        self.scheme.keygen(signer)
        pair = KeyPair(signer=signer, kind=kind)
        self._pairs[signer] = pair
        return pair

    def kind_of(self, signer: int) -> str | None:
        """Return "replica"/"tee" for known signers, None otherwise."""
        pair = self._pairs.get(signer)
        return pair.kind if pair else None

    def known(self, signer: int) -> bool:
        return signer in self._pairs
