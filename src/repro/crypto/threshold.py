"""k-of-n threshold signatures (simulation-grade, BLS-style interface).

The original HotStuff uses threshold signatures so quorum certificates
stay constant-size; the DAMYSUS implementation (and our default) uses
ECDSA signature lists instead.  This module provides the threshold
alternative so the benchmarks can quantify what compact certificates buy
at large f.

Model: members sign ordinary *shares* with their own keys; ``combine``
verifies that at least ``threshold`` distinct members contributed valid
shares and emits a single group signature, an authenticator under a
group secret that only the scheme object holds.  As with the HMAC
scheme, unforgeability holds inside the simulation by encapsulation: no
replica or adversary code can reach the group secret, so the only way to
obtain a group signature is to present a genuine quorum of shares.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.crypto.scheme import Signature, SignatureScheme
from repro.errors import CryptoError, VerificationError

#: Signer id carried by group signatures.
GROUP_SIGNER_ID = -1

#: Scheme tag carried by group signatures.
THRESHOLD_TAG = "threshold"


class ThresholdScheme:
    """Combine ordinary signature shares into one constant-size signature."""

    def __init__(
        self,
        base: SignatureScheme,
        group_name: str,
        members: list[int],
        threshold: int,
    ) -> None:
        if threshold < 1 or threshold > len(members):
            raise CryptoError(
                f"threshold {threshold} out of range for {len(members)} members"
            )
        self.base = base
        self.members = frozenset(members)
        self.threshold = threshold
        # Bound to the base scheme's deterministic instance nonce: every
        # group over the same base derives the same secret (so replicas'
        # independently-built groups agree on combined signatures), while
        # distinct systems cannot cross-verify each other's certificates.
        self._group_secret = hashlib.sha256(
            f"threshold:{group_name}:{sorted(members)}:{threshold}:"
            f"{base.name}:{base.instance_nonce}".encode()
        ).digest()

    # -- shares ------------------------------------------------------------------

    def sign_share(self, signer: int, message: bytes) -> Signature:
        """A member's share is just its ordinary signature."""
        if signer not in self.members:
            raise CryptoError(f"{signer} is not a group member")
        return self.base.sign(signer, message)

    # -- combination ----------------------------------------------------------------

    def combine(self, message: bytes, shares: list[Signature]) -> Signature:
        """Verify >= threshold distinct member shares; emit the group signature.

        Membership and distinctness are checked first; the shares then
        verify jointly through the base scheme's batch path (they all
        sign the same message - the quorum-certificate shape).
        """
        signers: set[int] = set()
        for share in shares:
            if share.signer not in self.members:
                raise VerificationError(f"share from non-member {share.signer}")
            if share.signer in signers:
                raise VerificationError(f"duplicate share from {share.signer}")
            signers.add(share.signer)
        outcomes = self.base.verify_many([(message, share) for share in shares])
        for share, outcome in zip(shares, outcomes):
            if not outcome:
                raise VerificationError(f"invalid share from {share.signer}")
        if len(signers) < self.threshold:
            raise VerificationError(
                f"only {len(signers)} valid shares, need {self.threshold}"
            )
        mac = hmac.new(self._group_secret, message, hashlib.sha256).digest()
        return Signature(signer=GROUP_SIGNER_ID, data=mac, scheme=THRESHOLD_TAG)

    def verify_group(self, message: bytes, signature: Signature) -> bool:
        """Constant-time verification of a combined signature."""
        if signature.scheme != THRESHOLD_TAG or signature.signer != GROUP_SIGNER_ID:
            return False
        expected = hmac.new(self._group_secret, message, hashlib.sha256).digest()
        return hmac.compare_digest(expected, signature.data)


def is_group_signature(signature: Signature) -> bool:
    return signature.scheme == THRESHOLD_TAG
