"""Signature scheme interface and signature values.

A :class:`Signature` carries the signer's identity, mirroring the paper's
assumption that "a digital signature contains the identity of the signing
replica or component, which is obtained using sigma.id" (Section 5).

Schemes are stateful objects holding a key directory: ``keygen`` registers
a signer, ``sign`` requires that signer's private key, and ``verify`` only
needs the public directory.  Protocol code never touches key material
directly; TEEs hold private keys internally.

Beyond single-signature ``verify``, schemes expose a batch surface:

* :meth:`SignatureScheme.verify_many` checks a list of independent
  ``(message, signature)`` pairs and returns per-pair outcomes;
* :meth:`SignatureScheme.verify_batch` checks many signatures over one
  shared message (the quorum-certificate shape) and returns a single bool.

Subclasses override ``verify_many`` when they have a genuinely cheaper
joint check (Schnorr's random-linear-combination equation, HMAC's fused
single pass); the base class falls back to per-signature verification.
Batch verification never changes *results*: a failing batch falls back to
per-signature checks so the caller learns exactly which signer was bad.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro import perf

#: Wire size we account for one signature, matching ECDSA/prime256v1 (64 B).
SIGNATURE_WIRE_SIZE = 64

#: Deterministic per-instance nonces, allocated in construction order.
#: Key material derived from a scheme instance stays distinct between
#: instances (adversaries cannot re-derive another system's keys) yet
#: identical across identically-seeded runs - unlike ``id()``, which is a
#: memory address and breaks bit-for-bit reproducibility.
_SCHEME_NONCE = itertools.count()


@dataclass(frozen=True, slots=True)
class Signature:
    """A signature over some message bytes, tagged with the signer id."""

    signer: int
    data: bytes
    scheme: str

    @property
    def id(self) -> int:
        """Paper notation ``sigma.id``: the identity of the signer."""
        return self.signer

    def wire_size(self) -> int:
        return SIGNATURE_WIRE_SIZE


#: Entries kept in a scheme's verification memo before eviction kicks in.
#: The cap only bounds memory; eviction never changes results because
#: every entry is recomputable from its key.
_VERIFY_CACHE_MAX = 1 << 18

#: A pair accepted by :meth:`SignatureScheme.verify_many`.
VerifyPair = tuple[bytes, Signature]


class SignatureScheme:
    """Common interface of the Schnorr and HMAC schemes."""

    name = "abstract"

    def __init__(self) -> None:
        self.instance_nonce = next(_SCHEME_NONCE)
        # Memoized verification outcomes keyed by (signer, message, sig
        # bytes).  Verification is a pure function of that key and the
        # signer's registered public key, so re-delivered or re-validated
        # messages (every replica checks the same quorum certificate)
        # skip the underlying crypto.  Keygen invalidates the memo.
        self._verify_cache: dict[tuple[int, bytes, bytes], bool] = {}

    def keygen(self, signer: int) -> None:
        """Create and register a key pair for ``signer``."""
        raise NotImplementedError

    def sign(self, signer: int, message: bytes) -> Signature:
        """Sign ``message`` with ``signer``'s private key."""
        raise NotImplementedError

    def verify(self, message: bytes, signature: Signature) -> bool:
        """Check ``signature`` over ``message`` against the public directory."""
        raise NotImplementedError

    # -- batch surface ---------------------------------------------------------

    def verify_many(self, pairs: Sequence[VerifyPair]) -> list[bool]:
        """Check independent ``(message, signature)`` pairs; one bool each.

        The base implementation is a plain loop.  Subclasses override it
        with an algebraic or fused batch check; overrides must return
        exactly the same outcomes as the loop (a failed joint check falls
        back to per-pair verification to identify the bad signature).
        """
        return [self.verify(message, sig) for message, sig in pairs]

    def verify_batch(self, message: bytes, sigs: Sequence[Signature]) -> bool:
        """Check many signatures over one shared message (the QC shape)."""
        return all(self.verify_many([(message, sig) for sig in sigs]))

    # -- memo ------------------------------------------------------------------

    def _evict_oldest(self) -> None:
        """Drop the oldest half of the memo (FIFO: dicts keep insertion order).

        A full ``clear()`` here caused a latency cliff: the next quorum
        certificate re-verified every signature at once.  Halving keeps
        the hot (recent) entries resident while bounding memory.
        """
        cache = self._verify_cache
        for key in list(itertools.islice(cache, len(cache) // 2)):
            del cache[key]

    def _remember(self, key: tuple[int, bytes, bytes], outcome: bool) -> None:
        if len(self._verify_cache) >= _VERIFY_CACHE_MAX:
            self._evict_oldest()
        self._verify_cache[key] = outcome

    def verify_cached(self, message: bytes, signature: Signature) -> bool:
        """:meth:`verify`, memoized by ``(signer, message, sig bytes)``."""
        if not perf.caches_enabled():
            return self.verify(message, signature)
        key = (signature.signer, message, signature.data)
        cached = self._verify_cache.get(key)
        if cached is None:
            cached = self.verify(message, signature)
            self._remember(key, cached)
        return cached

    def cached_verification(self, message: bytes, signature: Signature) -> bool | None:
        """Probe the memo without computing: the outcome, or ``None`` on miss."""
        return self._verify_cache.get((signature.signer, message, signature.data))

    def prime_verification(
        self, pairs: Iterable[VerifyPair], outcomes: Iterable[bool]
    ) -> None:
        """Install externally computed outcomes into the memo.

        Used by the process worker pool: workers verify against a
        replicated public-key directory (verification is a pure function
        of the key directory, so worker results are identical to local
        ones), and the event-loop thread primes its memo with them.
        """
        if not perf.caches_enabled():
            return
        for (message, sig), outcome in zip(pairs, outcomes):
            self._remember((sig.signer, message, sig.data), outcome)

    def _forget_cached_verifications(self) -> None:
        """Drop memoized outcomes; called whenever the key directory changes."""
        self._verify_cache.clear()

    def verify_many_cached(self, pairs: Sequence[VerifyPair]) -> list[bool]:
        """:meth:`verify_many` with the memo consulted and updated per pair.

        Cache hits drop out of the batch; only the misses enter the joint
        check, and their outcomes are remembered for the next caller.
        """
        if not perf.caches_enabled():
            return self.verify_many(pairs)
        cache = self._verify_cache
        outcomes: list[bool | None] = []
        misses: list[tuple[int, VerifyPair]] = []
        for index, (message, sig) in enumerate(pairs):
            cached = cache.get((sig.signer, message, sig.data))
            if cached is None:
                misses.append((index, (message, sig)))
            outcomes.append(cached)
        if misses:
            fresh = self.verify_many([pair for _, pair in misses])
            for (index, (message, sig)), outcome in zip(misses, fresh):
                self._remember((sig.signer, message, sig.data), outcome)
                outcomes[index] = outcome
        return [bool(outcome) for outcome in outcomes]

    # -- quorum helper ---------------------------------------------------------

    def verify_all(self, message: bytes, signatures: Sequence[Signature]) -> bool:
        """Verify signatures over the same message, via the batch fast path.

        Also enforces the quorum-certificate requirement that all
        signatures come from *distinct* signers.  Outcomes are memoized
        per signature, so the next replica validating the same quorum
        certificate skips the crypto entirely.
        """
        signers = {sig.signer for sig in signatures}
        if len(signers) != len(signatures):
            return False
        if not perf.caches_enabled():
            return self.verify_batch(message, signatures)
        return all(self.verify_many_cached([(message, sig) for sig in signatures]))

    # -- worker-pool replication -----------------------------------------------

    def replication_spec(self) -> dict[str, object]:
        """A picklable description from which a *verifying* clone can be built.

        The spec carries only what verification needs (public keys or MAC
        keys); see :func:`repro.crypto.pool.build_scheme`.
        """
        raise NotImplementedError
