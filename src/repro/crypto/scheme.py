"""Signature scheme interface and signature values.

A :class:`Signature` carries the signer's identity, mirroring the paper's
assumption that "a digital signature contains the identity of the signing
replica or component, which is obtained using sigma.id" (Section 5).

Schemes are stateful objects holding a key directory: ``keygen`` registers
a signer, ``sign`` requires that signer's private key, and ``verify`` only
needs the public directory.  Protocol code never touches key material
directly; TEEs hold private keys internally.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro import perf

#: Wire size we account for one signature, matching ECDSA/prime256v1 (64 B).
SIGNATURE_WIRE_SIZE = 64

#: Deterministic per-instance nonces, allocated in construction order.
#: Key material derived from a scheme instance stays distinct between
#: instances (adversaries cannot re-derive another system's keys) yet
#: identical across identically-seeded runs - unlike ``id()``, which is a
#: memory address and breaks bit-for-bit reproducibility.
_SCHEME_NONCE = itertools.count()


@dataclass(frozen=True, slots=True)
class Signature:
    """A signature over some message bytes, tagged with the signer id."""

    signer: int
    data: bytes
    scheme: str

    @property
    def id(self) -> int:
        """Paper notation ``sigma.id``: the identity of the signer."""
        return self.signer

    def wire_size(self) -> int:
        return SIGNATURE_WIRE_SIZE


#: Entries kept in a scheme's verification memo before it is reset.  The
#: cap only bounds memory; a reset never changes results because every
#: entry is recomputable from its key.
_VERIFY_CACHE_MAX = 1 << 18


class SignatureScheme:
    """Common interface of the Schnorr and HMAC schemes."""

    name = "abstract"

    def __init__(self) -> None:
        self.instance_nonce = next(_SCHEME_NONCE)
        # Memoized verification outcomes keyed by (signer, message, sig
        # bytes).  Verification is a pure function of that key and the
        # signer's registered public key, so re-delivered or re-validated
        # messages (every replica checks the same quorum certificate)
        # skip the underlying crypto.  Keygen invalidates the memo.
        self._verify_cache: dict[tuple[int, bytes, bytes], bool] = {}

    def keygen(self, signer: int) -> None:
        """Create and register a key pair for ``signer``."""
        raise NotImplementedError

    def sign(self, signer: int, message: bytes) -> Signature:
        """Sign ``message`` with ``signer``'s private key."""
        raise NotImplementedError

    def verify(self, message: bytes, signature: Signature) -> bool:
        """Check ``signature`` over ``message`` against the public directory."""
        raise NotImplementedError

    def verify_cached(self, message: bytes, signature: Signature) -> bool:
        """:meth:`verify`, memoized by ``(signer, message, sig bytes)``."""
        if not perf.caches_enabled():
            return self.verify(message, signature)
        key = (signature.signer, message, signature.data)
        cached = self._verify_cache.get(key)
        if cached is None:
            if len(self._verify_cache) >= _VERIFY_CACHE_MAX:
                self._verify_cache.clear()
            cached = self.verify(message, signature)
            self._verify_cache[key] = cached
        return cached

    def _forget_cached_verifications(self) -> None:
        """Drop memoized outcomes; called whenever the key directory changes."""
        self._verify_cache.clear()

    def verify_all(self, message: bytes, signatures: list[Signature]) -> bool:
        """Verify a list of signatures over the same message.

        Also enforces the quorum-certificate requirement that all
        signatures come from *distinct* signers.
        """
        signers = {sig.signer for sig in signatures}
        if len(signers) != len(signatures):
            return False
        verify = self.verify_cached
        return all(verify(message, sig) for sig in signatures)
