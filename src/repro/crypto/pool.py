"""Process-sharded signature verification.

Pure-Python big-int crypto holds the GIL, so batch verification alone
cannot use more than one core.  This module shards verification jobs
across a ``ProcessPoolExecutor``: each worker process rebuilds a
*verifying clone* of the signature scheme from a picklable
:meth:`~repro.crypto.scheme.SignatureScheme.replication_spec` (public or
MAC keys only - Schnorr private exponents never cross the process
boundary, and re-running keygen per worker would cost a full-size
exponentiation per signer), then checks chunks of ``(message,
signature)`` pairs with the scheme's own batch path.

Determinism contract (mirroring :mod:`repro.bench.parallel`): chunks are
submitted in input order and results are concatenated in that same
order, and verification is a pure function of the replicated key
directory, so :meth:`VerifyPool.verify_many` returns *byte-identical*
outcomes to the in-process sequential path for any worker count.
``jobs <= 1`` never spawns processes.
"""

from __future__ import annotations

import asyncio
import os
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Mapping, Sequence, cast

from repro.crypto.hmac_scheme import HmacScheme
from repro.crypto.scheme import Signature, SignatureScheme, VerifyPair
from repro.crypto.schnorr import SchnorrGroup, SchnorrScheme
from repro.errors import CryptoError

#: Pairs shipped per worker job.  Large enough to amortize pickling and
#: task dispatch, small enough to spread a 2f+1 certificate over cores.
DEFAULT_CHUNK = 16

#: The picklable wire form of one verify job item.
WireItem = tuple[bytes, int, bytes, str]


def available_cpus() -> int:
    """CPUs actually usable by this process (affinity-aware)."""
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        return len(cast("set[int]", getaffinity(0)))
    return os.cpu_count() or 1


def resolve_verify_jobs(jobs: int) -> int:
    """Normalize a ``--verify-jobs`` value: 0 means "all cores"."""
    if jobs < 0:
        raise CryptoError(f"verify jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return available_cpus()
    return jobs


def build_scheme(spec: Mapping[str, object]) -> SignatureScheme:
    """Rebuild a verifying scheme clone from a replication spec."""
    kind = spec.get("kind")
    if kind == HmacScheme.name:
        scheme = HmacScheme(secret=cast(bytes, spec["secret"]))
        for signer in cast("list[int]", spec["signers"]):
            scheme.keygen(signer)
        return scheme
    if kind == SchnorrScheme.name:
        name, p, g = cast("tuple[str, int, int]", spec["group"])
        public = cast("dict[int, int]", spec["public"])
        return SchnorrScheme.verification_only(SchnorrGroup(name, p, g), public)
    raise CryptoError(f"unknown scheme replication spec: {kind!r}")


# Per-worker scheme clone, installed once by the pool initializer so the
# key directory is replicated per process, not per job.
_worker_scheme: SignatureScheme | None = None


def _init_worker(spec: Mapping[str, object]) -> None:
    global _worker_scheme
    _worker_scheme = build_scheme(spec)


def _verify_chunk(items: Sequence[WireItem]) -> list[bool]:
    """Verify one chunk in a worker; module-level so it pickles."""
    scheme = _worker_scheme
    if scheme is None:  # pragma: no cover - initializer always ran
        raise CryptoError("verify worker used before initialization")
    pairs = [
        (message, Signature(signer=signer, data=data, scheme=tag))
        for message, signer, data, tag in items
    ]
    return scheme.verify_many(pairs)


def _to_wire(pairs: Sequence[VerifyPair]) -> list[WireItem]:
    return [(message, sig.signer, sig.data, sig.scheme) for message, sig in pairs]


class VerifyPool:
    """Shard signature verification across worker processes.

    With ``jobs <= 1`` the pool degrades to an in-process verifying
    clone (still built from the replication spec, so tests exercise the
    same rebuild path on single-core machines).
    """

    def __init__(
        self,
        scheme: SignatureScheme,
        jobs: int = 0,
        chunk: int = DEFAULT_CHUNK,
    ) -> None:
        self.jobs = resolve_verify_jobs(jobs)
        self.chunk = max(1, chunk)
        self._spec = scheme.replication_spec()
        self._pool: ProcessPoolExecutor | None = None
        self._local: SignatureScheme | None = None
        if self.jobs > 1:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_init_worker,
                initargs=(self._spec,),
            )
        else:
            self._local = build_scheme(self._spec)

    # -- submission ------------------------------------------------------------

    def _submit(self, pairs: Sequence[VerifyPair]) -> list[Future[list[bool]]]:
        pool = self._pool
        if pool is None:  # pragma: no cover - callers check first
            raise CryptoError("verify pool is not sharded")
        wire = _to_wire(pairs)
        return [
            pool.submit(_verify_chunk, wire[start : start + self.chunk])
            for start in range(0, len(wire), self.chunk)
        ]

    def verify_many(self, pairs: Sequence[VerifyPair]) -> list[bool]:
        """Per-pair outcomes, identical to the sequential scheme's."""
        if not pairs:
            return []
        if self._local is not None:
            return self._local.verify_many(list(pairs))
        outcomes: list[bool] = []
        # Results merge in submission order: bit-identical to sequential.
        for future in self._submit(pairs):
            outcomes.extend(future.result())
        return outcomes

    async def verify_many_async(self, pairs: Sequence[VerifyPair]) -> list[bool]:
        """Like :meth:`verify_many` without blocking the event loop."""
        if self._local is not None or not pairs:
            return self.verify_many(pairs)
        loop = asyncio.get_running_loop()
        futures = [
            asyncio.wrap_future(future, loop=loop) for future in self._submit(pairs)
        ]
        chunks = await asyncio.gather(*futures)
        outcomes: list[bool] = []
        for chunk in chunks:
            outcomes.extend(chunk)
        return outcomes

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "VerifyPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
