"""Fast HMAC-based signature scheme for large simulations.

Big-int Schnorr in pure Python costs ~1 ms per operation, which would make
121-node benchmark sweeps take hours of wall time while teaching us nothing:
the *simulated* cost of crypto is charged to the virtual clock by the cost
model, not by Python arithmetic.  This scheme makes each sign/verify a
single HMAC-SHA256 call.

Unforgeability inside the simulation is preserved by construction: each
signer's MAC key lives in this scheme object's private dictionary, and
Byzantine behaviours implemented in :mod:`repro.adversary` only interact
with the scheme through ``sign``/``verify`` using their own identities.
The declared wire size of a signature stays 64 B (ECDSA-sized) so message
byte accounting is identical under either scheme.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.crypto.scheme import Signature, SignatureScheme
from repro.errors import CryptoError


class HmacScheme(SignatureScheme):
    """Per-signer HMAC-SHA256 'signatures' (simulation-grade)."""

    name = "hmac"

    def __init__(self, secret: bytes = b"repro-hmac-scheme") -> None:
        super().__init__()
        self._secret = secret
        self._keys: dict[int, bytes] = {}

    def keygen(self, signer: int) -> None:
        if signer in self._keys:
            return
        self._keys[signer] = hashlib.sha256(
            self._secret + signer.to_bytes(8, "big", signed=True)
        ).digest()
        self._forget_cached_verifications()

    def sign(self, signer: int, message: bytes) -> Signature:
        key = self._keys.get(signer)
        if key is None:
            raise CryptoError(f"no key registered for signer {signer}")
        mac = hmac.new(key, message, hashlib.sha256).digest()
        return Signature(signer=signer, data=mac, scheme=self.name)

    def verify(self, message: bytes, signature: Signature) -> bool:
        if signature.scheme != self.name:
            return False
        key = self._keys.get(signature.signer)
        if key is None:
            return False
        expected = hmac.new(key, message, hashlib.sha256).digest()
        return hmac.compare_digest(expected, signature.data)
