"""Fast HMAC-based signature scheme for large simulations.

Big-int Schnorr in pure Python costs ~1 ms per operation, which would make
121-node benchmark sweeps take hours of wall time while teaching us nothing:
the *simulated* cost of crypto is charged to the virtual clock by the cost
model, not by Python arithmetic.  This scheme makes each sign/verify a
single HMAC-SHA256 call.

Unforgeability inside the simulation is preserved by construction: each
signer's MAC key lives in this scheme object's private dictionary, and
Byzantine behaviours implemented in :mod:`repro.adversary` only interact
with the scheme through ``sign``/``verify`` using their own identities.
The declared wire size of a signature stays 64 B (ECDSA-sized) so message
byte accounting is identical under either scheme.

There is no HMAC analogue of Schnorr's algebraic batch equation, but the
batch surface still wins here: ``verify_many`` is a fused single pass
that reuses a precomputed per-signer HMAC base state (``copy()`` of a
keyed digest skips the two key-padding compression rounds that
``hmac.new`` pays on every call).
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Sequence

from repro.crypto.scheme import Signature, SignatureScheme, VerifyPair
from repro.errors import CryptoError


class HmacScheme(SignatureScheme):
    """Per-signer HMAC-SHA256 'signatures' (simulation-grade)."""

    name = "hmac"

    def __init__(self, secret: bytes = b"repro-hmac-scheme") -> None:
        super().__init__()
        self._secret = secret
        self._keys: dict[int, bytes] = {}
        # Keyed-but-empty HMAC states: cloning one is ~4x cheaper than
        # rebuilding the key schedule with hmac.new per verification.
        self._bases: dict[int, hmac.HMAC] = {}

    def keygen(self, signer: int) -> None:
        if signer in self._keys:
            return
        key = hashlib.sha256(
            self._secret + signer.to_bytes(8, "big", signed=True)
        ).digest()
        self._keys[signer] = key
        self._bases[signer] = hmac.new(key, None, hashlib.sha256)
        self._forget_cached_verifications()

    def replication_spec(self) -> dict[str, object]:
        # HMAC is symmetric: the worker clone needs the shared secret and
        # the registered signer set to rebuild an identical key directory.
        return {"kind": self.name, "secret": self._secret, "signers": sorted(self._keys)}

    def _mac(self, signer: int, message: bytes) -> bytes | None:
        base = self._bases.get(signer)
        if base is None:
            return None
        state = base.copy()
        state.update(message)
        return state.digest()

    def sign(self, signer: int, message: bytes) -> Signature:
        mac = self._mac(signer, message)
        if mac is None:
            raise CryptoError(f"no key registered for signer {signer}")
        return Signature(signer=signer, data=mac, scheme=self.name)

    def verify(self, message: bytes, signature: Signature) -> bool:
        if signature.scheme != self.name:
            return False
        expected = self._mac(signature.signer, message)
        if expected is None:
            return False
        return hmac.compare_digest(expected, signature.data)

    def verify_many(self, pairs: Sequence[VerifyPair]) -> list[bool]:
        """Fused single pass: clone per-signer base states, compare digests."""
        bases = self._bases
        compare = hmac.compare_digest
        name = self.name
        outcomes: list[bool] = []
        for message, sig in pairs:
            base = bases.get(sig.signer)
            if base is None or sig.scheme != name:
                outcomes.append(False)
                continue
            state = base.copy()
            state.update(message)
            outcomes.append(compare(state.digest(), sig.data))
        return outcomes
