"""Cryptographic substrate.

The paper's implementation signs with ECDSA over prime256v1 via OpenSSL;
replicas and trusted components share one asymmetric signature scheme
(Section 5).  We provide:

* :mod:`~repro.crypto.hashing` - SHA-256 block/field hashing.
* :mod:`~repro.crypto.schnorr` - a real Schnorr signature scheme over
  RFC-3526 MODP groups, implemented from scratch with deterministic nonces.
* :mod:`~repro.crypto.hmac_scheme` - a fast HMAC-based scheme used for
  large simulations, where sign/verify CPU time is *modelled* by the cost
  model instead of burned in Python big-int arithmetic.
* :mod:`~repro.crypto.keys` - key pairs and the public-key directory that
  replicas and TEEs share.

Both schemes implement the same :class:`~repro.crypto.scheme.SignatureScheme`
interface, so protocols are agnostic to which one is installed.
"""

from repro.crypto.hashing import HASH_SIZE, Hash, encode_fields, hash_block_fields, sha256
from repro.crypto.hmac_scheme import HmacScheme
from repro.crypto.keys import KeyDirectory, KeyPair
from repro.crypto.scheme import SIGNATURE_WIRE_SIZE, Signature, SignatureScheme
from repro.crypto.schnorr import SchnorrScheme
from repro.crypto.threshold import ThresholdScheme

__all__ = [
    "HASH_SIZE",
    "Hash",
    "sha256",
    "encode_fields",
    "hash_block_fields",
    "Signature",
    "SignatureScheme",
    "SIGNATURE_WIRE_SIZE",
    "SchnorrScheme",
    "HmacScheme",
    "ThresholdScheme",
    "KeyPair",
    "KeyDirectory",
]
