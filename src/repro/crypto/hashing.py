"""Hashing and canonical field encoding.

Commitments, accumulators and blocks are signed over tuples of
heterogeneous fields (hash values, view numbers, phase tags, the bottom
symbol...).  ``encode_fields`` defines one canonical, prefix-free byte
encoding for such tuples so that signatures are well-defined and two
different field tuples can never encode to the same bytes.
"""

from __future__ import annotations

import hashlib
from typing import Any

#: SHA-256 digest size; the paper assumes 32-byte block hashes.
HASH_SIZE = 32

#: Type alias used across the library for 32-byte digests.
Hash = bytes


def sha256(data: bytes) -> Hash:
    """Plain SHA-256."""
    return hashlib.sha256(data).digest()


# Tags make the encoding prefix-free across types.
_TAG_NONE = b"\x00"
_TAG_INT = b"\x01"
_TAG_BYTES = b"\x02"
_TAG_STR = b"\x03"
_TAG_SEQ = b"\x04"
_TAG_BOOL = b"\x05"


def encode_fields(fields: tuple[Any, ...] | list[Any]) -> bytes:
    """Canonically encode a tuple of fields to bytes.

    Supported field types: ``None`` (the paper's bottom symbol), ``bool``,
    ``int``, ``bytes``, ``str`` and nested sequences thereof.  Each value is
    length-prefixed so the encoding is injective.
    """
    out = bytearray()
    out += _TAG_SEQ + len(fields).to_bytes(4, "big")
    for field in fields:
        out += _encode_one(field)
    return bytes(out)


def _encode_one(value: Any) -> bytes:
    if value is None:
        return _TAG_NONE
    if isinstance(value, bool):  # bool before int: bool is an int subclass
        return _TAG_BOOL + (b"\x01" if value else b"\x00")
    if isinstance(value, int):
        raw = value.to_bytes((value.bit_length() + 8) // 8 or 1, "big", signed=True)
        return _TAG_INT + len(raw).to_bytes(4, "big") + raw
    if isinstance(value, bytes):
        return _TAG_BYTES + len(value).to_bytes(4, "big") + value
    if isinstance(value, str):
        raw = value.encode()
        return _TAG_STR + len(raw).to_bytes(4, "big") + raw
    if isinstance(value, (tuple, list)):
        return encode_fields(tuple(value))
    raise TypeError(f"cannot canonically encode {type(value).__name__}")


def hash_fields(fields: tuple[Any, ...] | list[Any]) -> Hash:
    """SHA-256 of the canonical encoding of ``fields``."""
    return sha256(encode_fields(fields))


def hash_block_fields(
    parent_hash: Hash, view: int, payload_digest: Hash, extra: tuple[Any, ...] = ()
) -> Hash:
    """Hash value of a block from its identifying fields.

    Blocks "store the hash values of the blocks they extend" (Section 5),
    so the parent hash is part of the preimage, which is what makes the
    extension relation checkable.
    """
    return hash_fields(("block", parent_hash, view, payload_digest, extra))
