"""High/low watermark hysteresis over the pool's fill fraction.

Backpressure engages when fill reaches the high watermark and only
releases once it drains back to the low one.  The gap is the point:
a pool oscillating around a single threshold would flap between
accepting and refusing on every admission, so clients would see a
verdict stream that depends on message interleaving rather than load.
"""

from __future__ import annotations


class Watermark:
    """Two-threshold backpressure latch on a fill fraction in [0, 1]."""

    __slots__ = ("high", "low", "backpressured", "engagements")

    def __init__(self, high: float, low: float) -> None:
        self.high = high
        self.low = low
        self.backpressured = False
        #: Times backpressure engaged (monotone; for stats snapshots).
        self.engagements = 0

    def update(self, fill: float) -> bool:
        """Observe the current fill fraction; return the latched state."""
        if self.backpressured:
            if fill <= self.low:
                self.backpressured = False
        elif fill >= self.high:
            self.backpressured = True
            self.engagements += 1
        return self.backpressured
