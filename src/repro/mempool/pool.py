"""The bounded, fee-prioritized replica mempool.

Replaces the seed deque: admission returns an explicit
:class:`~repro.core.mempool.AdmissionVerdict`, the pool is bounded in
both transaction count and bytes (evicting the lowest-priority resident
deterministically when full), duplicates and replays are rejected by
``(client_id, tx_id)``, per-sender token buckets cap the admitted rate,
and watermark backpressure refuses low-priority work before the hard
caps are hit.

Everything is pure and deterministic: no clocks, no unseeded
randomness, state transitions are a function of the call sequence
alone.  The same admissions in the same order therefore produce
byte-identical drained blocks under the simulator and the asyncio
runtime (the cross-runtime determinism tests assert exactly this).

Priority is ``(fee desc, arrival asc)`` for draining and the exact
reverse for eviction, via two lazy-deletion heaps over one entry index:
heap entries are never removed in place, they are skipped at pop time
when their sequence number no longer matches the index.  All paper
workloads use ``fee=0``, which degenerates to FIFO - so the refactor
leaves every seed benchmark figure bit-identical.
"""

from __future__ import annotations

import heapq
import itertools

from repro.core.mempool import TX_METADATA_BYTES, AdmissionVerdict, Transaction
from repro.mempool.limiter import SenderRateLimiter
from repro.mempool.watermark import Watermark

#: Default resident-transaction cap (the paper's blocks are 400 txs, so
#: this is ~250 blocks of queued work before eviction starts).
DEFAULT_MAX_TXS = 100_000

#: Replay-memory entries kept before the oldest half is forgotten.
_SEEN_MAX = 1 << 16


class _Entry:
    """One resident transaction; ``seq`` doubles as the liveness token."""

    __slots__ = ("tx", "seq")

    def __init__(self, tx: Transaction, seq: int) -> None:
        self.tx = tx
        self.seq = seq


class PriorityMempool:
    """Bounded priority mempool with admission control.

    The first four parameters match the seed ``Mempool`` signature, so
    every historical call site constructs an equivalent (FIFO, unbounded
    in practice) pool; the keyword-only parameters opt into the
    production behaviours.
    """

    def __init__(
        self,
        payload_bytes: int,
        block_size: int,
        open_loop: bool = True,
        synthetic_client: int = -1,
        *,
        max_txs: int = DEFAULT_MAX_TXS,
        max_bytes: int = 0,
        max_block_bytes: int = 0,
        high_watermark: float = 0.9,
        low_watermark: float = 0.7,
        rate_limit_per_ms: float = 0.0,
        rate_burst: float = 32.0,
    ) -> None:
        self.payload_bytes = payload_bytes
        self.block_size = block_size
        self.open_loop = open_loop
        self.max_txs = max_txs
        self.max_bytes = max_bytes  # 0 = unbounded by bytes
        self.max_block_bytes = max_block_bytes  # 0 = unbounded blocks
        self.limiter = SenderRateLimiter(rate_limit_per_ms, rate_burst)
        self.watermark = Watermark(high_watermark, low_watermark)
        self._synth = itertools.count()
        self._synthetic_client = synthetic_client
        self._seq = itertools.count()
        #: Residents by (client_id, tx_id); the single source of truth.
        self._entries: dict[tuple[int, int], _Entry] = {}
        #: Drain order: highest fee first, oldest first within a fee.
        self._drain_heap: list[tuple[int, int, tuple[int, int]]] = []
        #: Eviction order: lowest fee first, *newest* first within a fee,
        #: so an overload sheds the latecomer, never a queued elder.
        self._evict_heap: list[tuple[int, int, tuple[int, int]]] = []
        #: Replay memory: keys admitted and not since evicted (residents
        #: and already-proposed transactions both reject as DUPLICATE;
        #: an evicted transaction may be resubmitted).
        self._seen: dict[tuple[int, int], None] = {}
        self._count = 0
        self._bytes = 0
        # -- monotone counters for stats()/watchdog snapshots ------------
        self.admitted = 0
        self.drained = 0
        self.evicted = 0
        self.rejected: dict[AdmissionVerdict, int] = {
            AdmissionVerdict.RATE_LIMITED: 0,
            AdmissionVerdict.POOL_FULL: 0,
            AdmissionVerdict.DUPLICATE: 0,
        }

    # -- admission ---------------------------------------------------------

    def admit(self, tx: Transaction, now: float) -> AdmissionVerdict:
        """Run the full admission pipeline on one submission.

        Order matters and is part of the contract: replay rejection
        first (a duplicate must never consume the sender's rate budget),
        then the sender's token bucket, then backpressure, then the hard
        caps (insert-then-evict, so a transaction that cannot displace
        anything cheaper bounces as ``POOL_FULL``).
        """
        key = (tx.client_id, tx.tx_id)
        if key in self._seen:
            self.rejected[AdmissionVerdict.DUPLICATE] += 1
            return AdmissionVerdict.DUPLICATE
        if not self.limiter.allow(tx.client_id, now):
            self.rejected[AdmissionVerdict.RATE_LIMITED] += 1
            return AdmissionVerdict.RATE_LIMITED
        if self.watermark.update(self._fill()) and tx.fee <= self._lowest_fee():
            self.rejected[AdmissionVerdict.POOL_FULL] += 1
            return AdmissionVerdict.POOL_FULL
        self._insert(tx, key)
        evicted = self._enforce_caps()
        self.watermark.update(self._fill())
        if key in evicted:
            self.evicted -= 1  # bounced, not a resident casualty
            self.rejected[AdmissionVerdict.POOL_FULL] += 1
            return AdmissionVerdict.POOL_FULL
        self.admitted += 1
        return AdmissionVerdict.ACCEPTED

    def add(self, tx: Transaction) -> None:
        """Legacy unconditioned enqueue (idempotent per key).

        Internal submitters (``ReplicatedApp``, tests) bypass rate
        limiting and backpressure; the hard caps still hold.
        """
        key = (tx.client_id, tx.tx_id)
        if key in self._seen:
            return
        self._insert(tx, key)
        self._enforce_caps()
        self.watermark.update(self._fill())

    def _insert(self, tx: Transaction, key: tuple[int, int]) -> None:
        seq = next(self._seq)
        self._entries[key] = _Entry(tx, seq)
        heapq.heappush(self._drain_heap, (-tx.fee, seq, key))
        heapq.heappush(self._evict_heap, (tx.fee, -seq, key))
        self._seen[key] = None
        if len(self._seen) > _SEEN_MAX:
            residents = self._entries
            for stale in list(itertools.islice(self._seen, _SEEN_MAX // 2)):
                if stale not in residents:  # never forget a live resident
                    del self._seen[stale]
        self._count += 1
        self._bytes += tx.wire_size()

    def _enforce_caps(self) -> set[tuple[int, int]]:
        """Evict lowest-priority residents until both caps hold."""
        evicted: set[tuple[int, int]] = set()
        while self._count > self.max_txs or (
            self.max_bytes and self._bytes > self.max_bytes
        ):
            victim = self._pop_extreme(self._evict_heap)
            if victim is None:  # pragma: no cover - caps imply residents
                break
            key, entry = victim
            self._remove(key, entry)
            del self._seen[key]  # an evicted tx may be resubmitted
            self.evicted += 1
            evicted.add(key)
        return evicted

    # -- proposal ----------------------------------------------------------

    def take_block(self, now: float) -> tuple[Transaction, ...]:
        """Drain up to ``block_size`` transactions by priority.

        Both caps apply: at most ``block_size`` transactions and (when
        ``max_block_bytes`` is set) at most that many payload+metadata
        bytes - except that a block always carries at least one queued
        transaction, so an outsized transaction cannot wedge the pool.

        In open-loop mode the remainder is filled with synthetic
        transactions (the paper's inexhaustible supply), so blocks are
        always full; in closed-loop mode the block may be short or
        empty, matching a real system under light load.
        """
        batch: list[Transaction] = []
        used = 0
        while self._count and len(batch) < self.block_size:
            item = self._pop_extreme(self._drain_heap, peek_unfit=batch, used=used)
            if item is None:
                break
            key, entry = item
            self._remove(key, entry)
            batch.append(entry.tx)
            used += entry.tx.wire_size()
            self.drained += 1
        if self.open_loop:
            synth_size = self.payload_bytes + TX_METADATA_BYTES
            while len(batch) < self.block_size and not (
                self.max_block_bytes and batch and used + synth_size > self.max_block_bytes
            ):
                batch.append(
                    Transaction(
                        client_id=self._synthetic_client,
                        tx_id=next(self._synth),
                        payload_bytes=self.payload_bytes,
                        submitted_at=now,
                    )
                )
                used += synth_size
        self.watermark.update(self._fill())
        return tuple(batch)

    def _pop_extreme(
        self,
        heap: list[tuple[int, int, tuple[int, int]]],
        peek_unfit: list[Transaction] | None = None,
        used: int = 0,
    ) -> tuple[tuple[int, int], _Entry] | None:
        """Pop the live extreme of a lazy-deletion heap.

        With ``peek_unfit`` (the batch built so far), a transaction that
        would overflow ``max_block_bytes`` of a non-empty batch is pushed
        back and ``None`` returned - the byte-capped drain stop.
        """
        while heap:
            item = heapq.heappop(heap)
            entry = self._entries.get(item[2])
            if entry is None or entry.seq != abs(item[1]):
                continue  # stale: evicted or drained since pushed
            if (
                peek_unfit is not None
                and self.max_block_bytes
                and peek_unfit
                and used + entry.tx.wire_size() > self.max_block_bytes
            ):
                heapq.heappush(heap, item)
                return None
            return item[2], entry
        return None

    def _remove(self, key: tuple[int, int], entry: _Entry) -> None:
        del self._entries[key]
        self._count -= 1
        self._bytes -= entry.tx.wire_size()

    # -- introspection -----------------------------------------------------

    def pending(self) -> int:
        """Number of resident client transactions."""
        return self._count

    def pending_bytes(self) -> int:
        """Bytes (payload + metadata) occupied by resident transactions."""
        return self._bytes

    def _fill(self) -> float:
        fill = self._count / self.max_txs
        if self.max_bytes:
            fill = max(fill, self._bytes / self.max_bytes)
        return fill

    def _lowest_fee(self) -> int:
        """Fee of the current eviction candidate (0 for an empty pool)."""
        while self._evict_heap:
            fee, neg_seq, key = self._evict_heap[0]
            entry = self._entries.get(key)
            if entry is None or entry.seq != -neg_seq:
                heapq.heappop(self._evict_heap)
                continue
            return fee
        return 0

    def stats(self) -> dict[str, int | bool]:
        """Monotone counters + current occupancy, for watchdog snapshots."""
        return {
            "pending_txs": self._count,
            "pending_bytes": self._bytes,
            "admitted": self.admitted,
            "drained": self.drained,
            "evicted": self.evicted,
            "rejected_rate_limited": self.rejected[AdmissionVerdict.RATE_LIMITED],
            "rejected_pool_full": self.rejected[AdmissionVerdict.POOL_FULL],
            "rejected_duplicate": self.rejected[AdmissionVerdict.DUPLICATE],
            "backpressured": self.watermark.backpressured,
            "backpressure_engagements": self.watermark.engagements,
        }
