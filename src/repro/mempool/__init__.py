"""Production ingest pipeline: admission control and the bounded pool.

The paper's evaluation treats the transaction supply as inexhaustible
(Figs 6-8) or as a thin closed loop (Fig 9); a deployable replica needs
the layer in between.  This package provides it, sans-I/O and seeded-
deterministic so both the discrete-event simulator and the asyncio TCP
runtime host it bit-identically:

* :class:`~repro.mempool.pool.PriorityMempool` - a bounded,
  fee-prioritized pool with deterministic lowest-priority eviction,
  duplicate/replay rejection and watermark backpressure;
* :class:`~repro.mempool.limiter.TokenBucket` /
  :class:`~repro.mempool.limiter.SenderRateLimiter` - per-sender
  token-bucket admission rate limiting;
* :class:`~repro.mempool.watermark.Watermark` - high/low hysteresis on
  pool fill that surfaces as ``POOL_FULL`` admission verdicts.

Admission outcomes are :class:`repro.core.mempool.AdmissionVerdict`
values, carried back to clients in ``ClientReply``.
"""

from repro.core.mempool import AdmissionVerdict
from repro.mempool.limiter import SenderRateLimiter, TokenBucket
from repro.mempool.pool import PriorityMempool
from repro.mempool.watermark import Watermark

__all__ = [
    "AdmissionVerdict",
    "PriorityMempool",
    "SenderRateLimiter",
    "TokenBucket",
    "Watermark",
]
