"""Per-sender token-bucket rate limiting for transaction admission.

Pure and clock-free: callers pass ``now`` (simulated or wall-clock
milliseconds), so the limiter behaves identically under the simulator
and the asyncio runtime.  Refill is continuous - tokens accrue at
exactly ``rate_per_ms`` between observations - so the admitted rate
converges on the configured rate regardless of how bursty the arrivals
are, while ``burst`` bounds how far a quiet sender can get ahead.
"""

from __future__ import annotations

import itertools

#: Distinct senders tracked before the oldest half of the bucket map is
#: evicted (an evicted sender restarts with a full burst; bounded memory
#: beats perfect fairness against a sender-id-churning adversary).
MAX_TRACKED_SENDERS = 65_536

#: Tolerance for float refill accumulation: ``n`` refills of ``rate *
#: dt`` must never strand a sender one ulp short of a whole token.
_EPSILON = 1e-9


class TokenBucket:
    """One sender's budget: capacity ``burst``, refilled at ``rate_per_ms``."""

    __slots__ = ("rate_per_ms", "burst", "tokens", "updated_at")

    def __init__(self, rate_per_ms: float, burst: float, now: float = 0.0) -> None:
        self.rate_per_ms = rate_per_ms
        self.burst = burst
        self.tokens = burst
        self.updated_at = now

    def refill(self, now: float) -> None:
        """Accrue tokens for the time elapsed since the last observation."""
        if now > self.updated_at:
            self.tokens = min(
                self.burst, self.tokens + (now - self.updated_at) * self.rate_per_ms
            )
            self.updated_at = now

    def try_acquire(self, now: float, cost: float = 1.0) -> bool:
        """Spend ``cost`` tokens if the refilled balance covers them."""
        self.refill(now)
        if self.tokens + _EPSILON >= cost:
            self.tokens -= cost
            return True
        return False


class SenderRateLimiter:
    """A :class:`TokenBucket` per sender id, with bounded memory.

    A ``rate_per_ms`` of zero disables limiting entirely (every sender
    is always allowed), which is the default deployment configuration.
    """

    def __init__(
        self,
        rate_per_ms: float,
        burst: float,
        max_senders: int = MAX_TRACKED_SENDERS,
    ) -> None:
        self.rate_per_ms = rate_per_ms
        self.burst = burst
        self.max_senders = max_senders
        self._buckets: dict[int, TokenBucket] = {}

    @property
    def enabled(self) -> bool:
        return self.rate_per_ms > 0.0

    def allow(self, sender: int, now: float) -> bool:
        """Charge one token against ``sender``'s bucket."""
        if not self.enabled:
            return True
        bucket = self._buckets.get(sender)
        if bucket is None:
            if len(self._buckets) >= self.max_senders:
                for stale in list(
                    itertools.islice(self._buckets, self.max_senders // 2)
                ):
                    del self._buckets[stale]
            bucket = TokenBucket(self.rate_per_ms, self.burst, now)
            self._buckets[sender] = bucket
        return bucket.try_acquire(now)

    def tracked_senders(self) -> int:
        return len(self._buckets)
