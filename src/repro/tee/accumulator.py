"""The Accumulator trusted service (paper Fig 2b, Section 4.2.2).

The accumulator certifies that some block has the highest view among a set
of reported latest-prepared blocks, which is what lets Damysus drop
HotStuff's locking phase: a leader physically cannot produce a valid
proposal that extends anything but the highest prepared block it received.

Two variants are provided:

* :class:`AccumulatorService` accumulates Checker *commitments* (Damysus
  and Chained-Damysus, where new-view messages are TEE-signed and
  constant-size);
* :class:`QCAccumulatorService` accumulates replica-signed reports that
  carry full prepare *quorum certificates* (Damysus-A, which has no
  Checker, so claims must be backed by 2f+1-signature QCs that the
  accumulator verifies itself).
"""

from __future__ import annotations

from repro.crypto.hashing import encode_fields
from repro.crypto.keys import KeyDirectory
from repro.crypto.scheme import Signature, SignatureScheme
from repro.errors import TEERefusal
from repro.core.certificate import Accumulator, QuorumCert
from repro.core.commitment import Commitment
from repro.core.messages import NewViewAMsg
from repro.core.phases import Phase
from repro.tee.base import TrustedComponent


class AccumulatorService(TrustedComponent):
    """Accumulates new-view commitments (Fig 2b, TEEstart/TEEaccum/TEEfinalize)."""

    def __init__(
        self,
        replica: int,
        scheme: SignatureScheme,
        directory: KeyDirectory,
        quorum: int,
    ) -> None:
        super().__init__(replica, scheme, directory)
        self.quorum = quorum

    # -- helpers ---------------------------------------------------------------

    def _check_new_view_commitment(self, phi: Commitment) -> None:
        if len(phi.sigs) != 1:
            raise TEERefusal("accumulator: expected a 1-commitment")
        if phi.phase != Phase.NEW_VIEW or phi.h_prep is not None:
            raise TEERefusal("accumulator: not a new-view commitment")
        if phi.h_just is None or phi.v_just is None:
            raise TEERefusal("accumulator: commitment lacks a prepared block")
        if self._directory.kind_of(phi.sigs[0].signer) != "tee":
            raise TEERefusal("accumulator: commitment not signed by a TEE")
        if not phi.verify(self._scheme):
            raise TEERefusal("accumulator: bad commitment signature")

    def _sign_working(self, acc: Accumulator) -> Signature:
        return self._sign(acc.signed_payload())

    # -- TEE interface -----------------------------------------------------------

    def tee_start(self, phi: Commitment) -> Accumulator:
        """``TEEstart``: initial accumulator from one new-view commitment."""
        self._count_call()
        self._check_new_view_commitment(phi)
        acc = Accumulator(
            made_in_view=phi.v_prep,
            prep_view=phi.v_just,  # type: ignore[arg-type]
            prep_hash=phi.h_just,  # type: ignore[arg-type]
            signature=Signature(self._signer, b"", self._scheme.name),
            ids=(phi.sigs[0].signer,),
        )
        return Accumulator(
            made_in_view=acc.made_in_view,
            prep_view=acc.prep_view,
            prep_hash=acc.prep_hash,
            signature=self._sign_working(acc),
            ids=acc.ids,
        )

    def tee_accum(self, acc: Accumulator, phi: Commitment) -> Accumulator:
        """``TEEaccum``: extend ``acc`` with one more commitment.

        Accepts only commitments for the same view, for prepared blocks no
        higher than the accumulated one, from nodes not yet counted.
        """
        self._count_call()
        if acc.finalized:
            raise TEERefusal("accumulator: already finalized")
        if not self._verify_working(acc):
            raise TEERefusal("accumulator: invalid accumulator")
        self._check_new_view_commitment(phi)
        if acc.made_in_view != phi.v_prep:
            raise TEERefusal("accumulator: commitment for a different view")
        if phi.v_just is None or acc.prep_view < phi.v_just:
            raise TEERefusal(
                "accumulator: commitment reports a higher prepared block than "
                "the accumulated one"
            )
        signer = phi.sigs[0].signer
        if signer in (acc.ids or ()):
            raise TEERefusal("accumulator: node already counted")
        new_ids = tuple(acc.ids or ()) + (signer,)
        unsigned = Accumulator(
            made_in_view=acc.made_in_view,
            prep_view=acc.prep_view,
            prep_hash=acc.prep_hash,
            signature=Signature(self._signer, b"", self._scheme.name),
            ids=new_ids,
        )
        return Accumulator(
            made_in_view=acc.made_in_view,
            prep_view=acc.prep_view,
            prep_hash=acc.prep_hash,
            signature=self._sign_working(unsigned),
            ids=new_ids,
        )

    def tee_finalize(self, acc: Accumulator) -> Accumulator:
        """``TEEfinalize``: replace the id list by its cardinality."""
        self._count_call()
        if acc.finalized:
            raise TEERefusal("accumulator: already finalized")
        if not self._verify_working(acc):
            raise TEERefusal("accumulator: invalid accumulator")
        count = len(acc.ids or ())
        unsigned = Accumulator(
            made_in_view=acc.made_in_view,
            prep_view=acc.prep_view,
            prep_hash=acc.prep_hash,
            signature=Signature(self._signer, b"", self._scheme.name),
            count=count,
        )
        return Accumulator(
            made_in_view=acc.made_in_view,
            prep_view=acc.prep_view,
            prep_hash=acc.prep_hash,
            signature=self._sign(unsigned.signed_payload()),
            count=count,
        )

    def _verify_working(self, acc: Accumulator) -> bool:
        if self._directory.kind_of(acc.signature.signer) != "tee":
            return False
        return acc.verify(self._scheme)

    # -- convenience: the leader-side accumList loop (Fig 2a, line 49) -----------

    def accumulate(self, commitments: list[Commitment]) -> Accumulator:
        """Paper's ``accumList``: start from the highest, accumulate the rest.

        The caller (leader) selects the commitment with the highest
        justification view; the TEE enforces that the choice was maximal
        because ``tee_accum`` refuses any commitment above the start one.
        """
        if len(commitments) != self.quorum:
            raise TEERefusal(
                f"accumList: need exactly {self.quorum} commitments, "
                f"got {len(commitments)}"
            )
        highest = max(commitments, key=lambda phi: (phi.v_just or 0))
        acc = self.tee_start(highest)
        for phi in commitments:
            if phi is highest:
                continue
            acc = self.tee_accum(acc, phi)
        return self.tee_finalize(acc)


def new_view_a_payload(view: int, qc: QuorumCert) -> bytes:
    """Bytes a Damysus-A replica signs over its new-view report."""
    return encode_fields(("newview-a", view, qc.view, qc.block_hash))


class QCAccumulatorService(TrustedComponent):
    """Damysus-A accumulator: items are replica-signed prepare-QC reports."""

    def __init__(
        self,
        replica: int,
        scheme: SignatureScheme,
        directory: KeyDirectory,
        quorum: int,
        qc_quorum: int,
    ) -> None:
        super().__init__(replica, scheme, directory)
        self.quorum = quorum  # how many reports to accumulate (2f+1)
        self.qc_quorum = qc_quorum  # signatures per prepare QC (2f+1)

    def _check_report_shape(self, msg: NewViewAMsg) -> None:
        if self._directory.kind_of(msg.sender_sig.signer) != "replica":
            raise TEERefusal("qc-accumulator: report not signed by a replica")
        if msg.justify.phase != Phase.PREPARE:
            raise TEERefusal("qc-accumulator: justification is not a prepare QC")

    def accumulate(self, reports: list[NewViewAMsg]) -> Accumulator:
        """Verify ``quorum`` distinct reports; certify the highest QC.

        Report signatures are checked jointly through the scheme's batch
        path (structural checks first, then one
        :meth:`~repro.crypto.scheme.SignatureScheme.verify_many_cached`
        over all reports; a batch miss falls back per signature inside
        the scheme, so the refusal still names a specific report).

        Only the *selected* (highest) report's embedded quorum certificate
        is verified in full: lower claims never influence the outcome, so
        verifying them would be wasted work, and an overstated claim with
        an invalid certificate is caught here before certification.
        """
        self._count_call()
        if len(reports) != self.quorum:
            raise TEERefusal(
                f"qc-accumulator: need exactly {self.quorum} reports, "
                f"got {len(reports)}"
            )
        views = {msg.view for msg in reports}
        if len(views) != 1:
            raise TEERefusal("qc-accumulator: reports span multiple views")
        senders: set[int] = set()
        for msg in reports:
            self._check_report_shape(msg)
            sender = msg.sender_sig.signer
            if sender in senders:
                raise TEERefusal("qc-accumulator: duplicate reporter")
            senders.add(sender)
        outcomes = self._scheme.verify_many_cached(
            [
                (new_view_a_payload(msg.view, msg.justify), msg.sender_sig)
                for msg in reports
            ]
        )
        for msg, outcome in zip(reports, outcomes):
            if not outcome:
                raise TEERefusal(
                    "qc-accumulator: bad report signature "
                    f"from {msg.sender_sig.signer}"
                )
        best = max(reports, key=lambda msg: msg.justify.view)
        if not best.justify.verify(self._scheme, self.qc_quorum):
            raise TEERefusal("qc-accumulator: invalid prepare QC in selected report")
        unsigned = Accumulator(
            made_in_view=best.view,
            prep_view=best.justify.view,
            prep_hash=best.justify.block_hash,
            signature=Signature(self._signer, b"", self._scheme.name),
            count=len(reports),
        )
        return Accumulator(
            made_in_view=unsigned.made_in_view,
            prep_view=unsigned.prep_view,
            prep_hash=unsigned.prep_hash,
            signature=self._sign(unsigned.signed_payload()),
            count=unsigned.count,
        )
