"""The Checker trusted service (paper Fig 2b, Section 4.2.1).

The checker keeps (1) a monotonically increasing step counter - split into
a view and a phase for convenience - and (2) the view and hash of the
latest *prepared* block.  Every certificate it emits is a 1-commitment
stamped with the current step, after which the step is incremented, so a
node can never obtain two certificates for the same step (no
equivocation), and can never report anything but its true latest prepared
block (no lying in new-view messages).

:class:`Checker` implements the basic (Damysus) interface; the chained
variant :class:`ChainedChecker` replaces ``TEEprepare`` per Fig 5b and
follows the chained step cycle.
"""

from __future__ import annotations

from repro.crypto.hashing import Hash
from repro.crypto.keys import KeyDirectory
from repro.crypto.scheme import SignatureScheme
from repro.errors import TEERefusal
from repro.core.block import Block
from repro.core.certificate import Accumulator, QuorumCert
from repro.core.commitment import Commitment, commitment_payload
from repro.core.executor import fold_state_root
from repro.core.phases import Phase, Step, StepRule, initial_step
from repro.tee.base import TrustedComponent
from repro.tee.checkpoint import Checkpoint, checkpoint_payload, verify_checkpoint


class Checker(TrustedComponent):
    """Damysus's checker instance (Fig 2b)."""

    step_rule = StepRule.BASIC

    def __init__(
        self,
        replica: int,
        scheme: SignatureScheme,
        directory: KeyDirectory,
        genesis_hash: Hash,
        quorum: int,
    ) -> None:
        super().__init__(replica, scheme, directory)
        self._prepv = 0
        self._preph = genesis_hash
        self._step = initial_step(self.step_rule)
        self._ckpt_counter = 0
        self._ckpt_height = 0
        # Certified executed-chain tip: the hash of the last checkpointed
        # block and the state root folded *inside* the TEE up to it.  A
        # checkpoint's height and root are derived from these, never taken
        # from the host.
        self._ckpt_hash = genesis_hash
        self._ckpt_root = genesis_hash
        self.quorum = quorum

    # -- read-only views for the host (duplicated outside the TEE, Fig 2a) ---

    @property
    def step(self) -> Step:
        """Current (view, phase) step; hosts may read but never write it."""
        return self._step

    @property
    def prepared_view(self) -> int:
        return self._prepv

    @property
    def prepared_hash(self) -> Hash:
        return self._preph

    @property
    def checkpoint_counter(self) -> int:
        """Monotonic count of checkpoints this component has certified."""
        return self._ckpt_counter

    @property
    def checkpoint_height(self) -> int:
        """Highest executed-chain height this component has certified."""
        return self._ckpt_height

    @property
    def checkpoint_hash(self) -> Hash:
        """Hash of the last certified checkpoint block (genesis initially)."""
        return self._ckpt_hash

    @property
    def checkpoint_root(self) -> Hash:
        """TEE-folded state root at the last certified height."""
        return self._ckpt_root

    def storage_bytes(self) -> int:
        """Constant: a step counter plus one (view, hash) pair (Section 2:
        "arguably requires minimal storage")."""
        # view+phase+prepv+preph plus the checkpoint counter, height, and
        # certified (tip hash, state root) pair
        return super().storage_bytes() + 4 + 1 + 4 + 32 + 8 + 8 + 32 + 32

    # -- sealing (repro.tee.sealed) -------------------------------------------

    def _seal_fields(self) -> list[bytes]:
        """Protected state serialized into a sealed snapshot.

        Subclasses with extra protected state (the Damysus-C lock) append
        their fields; order must match :meth:`_restore_seal_fields`.
        """
        return [
            str(self._prepv).encode(),
            self._preph.hex().encode(),
            str(self._step.view).encode(),
            self._step.phase.value.encode(),
            str(self._ckpt_counter).encode(),
            str(self._ckpt_height).encode(),
            self._ckpt_hash.hex().encode(),
            self._ckpt_root.hex().encode(),
        ]

    #: Number of fields :meth:`_seal_fields` emits for the base checker;
    #: subclasses slice their own suffix relative to this.
    BASE_SEAL_FIELDS = 8

    def _restore_seal_fields(self, fields: list[bytes]) -> None:
        """Restore protected state from an authenticated snapshot."""
        self._prepv = int(fields[0])
        self._preph = bytes.fromhex(fields[1].decode())
        self._step = Step(int(fields[2]), Phase(fields[3].decode()))
        self._ckpt_counter = int(fields[4])
        self._ckpt_height = int(fields[5])
        self._ckpt_hash = bytes.fromhex(fields[6].decode())
        self._ckpt_root = bytes.fromhex(fields[7].decode())

    # -- internals ------------------------------------------------------------

    def _create_unique_sign(
        self, h_prep: Hash | None, h_just: Hash | None, v_just: int | None
    ) -> Commitment:
        """Fig 2b ``createUniqueSign``: stamp with the step, then advance it."""
        payload = commitment_payload(
            h_prep, self._step.view, h_just, v_just, self._step.phase
        )
        sig = self._sign(payload)
        phi = Commitment(
            h_prep=h_prep,
            v_prep=self._step.view,
            h_just=h_just,
            v_just=v_just,
            phase=self._step.phase,
            sigs=(sig,),
        )
        self._step = self._step.increment(self.step_rule)
        return phi

    def _verify_commitment(self, phi: Commitment, expected_sigs: int) -> bool:
        """Signatures must verify, be distinct, and all come from TEEs."""
        if len(phi.sigs) != expected_sigs:
            return False
        if any(self._directory.kind_of(sig.signer) != "tee" for sig in phi.sigs):
            return False
        return phi.verify(self._scheme)

    def _verify_accumulator(self, acc: Accumulator) -> bool:
        if not acc.finalized or len(acc) != self.quorum:
            return False
        if self._directory.kind_of(acc.signature.signer) != "tee":
            return False
        return acc.verify(self._scheme)

    # -- TEE interface (Fig 2b) ------------------------------------------------

    def tee_sign(self) -> Commitment:
        """``TEEsign()``: certificate for the stored latest prepared block.

        The proposed hash is bottom so the commitment can only ever be used
        as a new-view-phase commitment (Section 6.3).
        """
        self._count_call()
        return self._create_unique_sign(None, self._preph, self._prepv)

    def tee_prepare(self, h: Hash, acc: Accumulator) -> Commitment:
        """``TEEprepare(h, acc)``: partially signed prepare vote for ``h``.

        Accepts only an accumulator generated for the checker's current
        view, guaranteeing a single valid proposal per view.
        """
        self._count_call()
        if h is None:
            raise TEERefusal("TEEprepare: proposed hash is bottom")
        if not self._verify_accumulator(acc):
            raise TEERefusal("TEEprepare: invalid accumulator")
        if self._step.view != acc.made_in_view:
            raise TEERefusal(
                f"TEEprepare: accumulator view {acc.made_in_view} != "
                f"checker view {self._step.view}"
            )
        return self._create_unique_sign(h, acc.prep_hash, acc.prep_view)

    def tee_store(self, phi: Commitment) -> Commitment:
        """``TEEstore(phi)``: persist a prepared block; emit a pre-commit vote.

        ``phi`` must be an (f+1)-commitment for a block prepared in the
        checker's current view.  Storing inside the TEE is what forces
        nodes - even Byzantine ones - to relay the block in later
        new-view messages.
        """
        self._count_call()
        if not self._verify_commitment(phi, expected_sigs=self.quorum):
            raise TEERefusal("TEEstore: invalid quorum commitment")
        if self._step.view != phi.v_prep or phi.phase != Phase.PREPARE:
            raise TEERefusal("TEEstore: commitment not for the current prepare phase")
        if phi.h_prep is None:
            raise TEERefusal("TEEstore: nothing to store")
        self._preph = phi.h_prep
        self._prepv = phi.v_prep
        return self._create_unique_sign(phi.h_prep, None, None)

    def tee_checkpoint(
        self, headers: "tuple[tuple[Hash, Hash], ...]", qc: Commitment
    ) -> Checkpoint:
        """Certify an executed-chain checkpoint (state-transfer subsystem).

        ``headers`` is the ``(block_hash, parent_hash)`` sequence of every
        block executed since the last certified checkpoint, oldest first;
        ``qc`` must be the decide-phase quorum commitment for the final
        header.  The checker verifies the hash chain from its internally
        stored certified tip and re-verifies the commitment inside the
        TEE, then *derives* the new height and folds the state root
        itself - the certificate never attests host-asserted values, so a
        Byzantine host cannot splice a real decide QC onto a fabricated
        height or root.  The internal checkpoint counter and height are
        monotonic, so a host cannot re-issue fresh-looking certificates
        for stale state either.
        """
        self._count_call()
        if not headers:
            raise TEERefusal("TEEcheckpoint: no executed blocks to certify")
        tip = self._ckpt_hash
        root = self._ckpt_root
        for block_hash, parent_hash in headers:
            if parent_hash != tip:
                raise TEERefusal(
                    "TEEcheckpoint: headers do not chain from the certified tip"
                )
            root = fold_state_root(root, block_hash)
            tip = block_hash
        height = self._ckpt_height + len(headers)
        if qc.h_prep != tip or qc.phase != Phase.PRECOMMIT:
            raise TEERefusal("TEEcheckpoint: commitment does not decide the tip block")
        if not self._verify_commitment(qc, expected_sigs=self.quorum):
            raise TEERefusal("TEEcheckpoint: invalid quorum commitment")
        self._ckpt_counter += 1
        self._ckpt_height = height
        self._ckpt_hash = tip
        self._ckpt_root = root
        payload = checkpoint_payload(
            self.replica, self._ckpt_counter, height, qc.v_prep, tip, root, qc
        )
        return Checkpoint(
            replica=self.replica,
            counter=self._ckpt_counter,
            height=height,
            view=qc.v_prep,
            block_hash=tip,
            state_root=root,
            qc=qc,
            signature=self._sign(payload),
        )

    def tee_install_checkpoint(self, checkpoint: Checkpoint) -> None:
        """Adopt another replica's certified checkpoint as the local tip.

        Run during state-transfer catch-up: the checkpoint is fully
        re-verified inside the TEE (certifying Checker signature plus the
        embedded decide commitment) and must move the certified height
        strictly forward, so neither a forged nor a stale checkpoint can
        rewind the monotonic certified state.  Afterwards the checker's
        own certifications chain from the installed tip.
        """
        self._count_call()
        if checkpoint.height <= self._ckpt_height:
            raise TEERefusal(
                f"TEEinstall: stale checkpoint height {checkpoint.height} "
                f"(already certified {self._ckpt_height})"
            )
        verify_checkpoint(checkpoint, self._scheme, self._directory, self.quorum)
        self._ckpt_height = checkpoint.height
        self._ckpt_hash = checkpoint.block_hash
        self._ckpt_root = checkpoint.state_root


class ChainedChecker(Checker):
    """Chained-Damysus checker (Fig 5b): same state, chained TEEprepare."""

    step_rule = StepRule.CHAINED

    def tee_prepare_chained(self, block: Block, b0: Block) -> Commitment:
        """``TEEprepare(b, b0)`` for the chained protocol (Fig 5b).

        ``b.just`` must be a valid f+1 certificate - a combined prepare
        commitment, an accumulator, or the genesis bottom certificate -
        created in the previous view and certifying ``b0``.  When ``b``
        directly extends ``b0``, the certified block becomes the latest
        prepared one.
        """
        self._count_call()
        qc = block.justify
        if qc is None:
            raise TEERefusal("chained TEEprepare: block has no justification")
        if not self._verify_chained_certificate(qc):
            raise TEERefusal("chained TEEprepare: invalid justification")
        if self._step.view != qc.cview + 1:
            raise TEERefusal(
                f"chained TEEprepare: certificate from view {qc.cview}, "
                f"checker at view {self._step.view}"
            )
        if qc.hash != b0.hash:
            raise TEERefusal("chained TEEprepare: justification does not certify b0")
        if block.parent == b0.hash:
            self._preph = qc.hash
            self._prepv = qc.view
        return self._create_unique_sign(block.hash, None, None)

    def _verify_chained_certificate(
        self, qc: "Commitment | Accumulator | QuorumCert"
    ) -> bool:
        if isinstance(qc, QuorumCert):
            # Only the genesis bottom certificate takes this shape in
            # Chained-Damysus; real certificates are commitments.
            return qc.is_genesis
        if isinstance(qc, Accumulator):
            return self._verify_accumulator(qc)
        if isinstance(qc, Commitment):
            if qc.phase != Phase.PREPARE or qc.h_prep is None:
                return False
            return self._verify_commitment(qc, expected_sigs=self.quorum)
        return False
