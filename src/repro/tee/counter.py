"""A plain TrInc/MinBFT-style trusted monotonic counter.

This is the "simplest established trusted component" discussed in
Section 4.1: every attested message receives a fresh, strictly increasing
counter value bound to the message by a TEE signature.  It prevents
equivocation on a per-counter-value basis - but, as the paper demonstrates
and :mod:`repro.analysis.counterexample` reproduces, it is *not*
sufficient to make a 2f+1 HotStuff-like protocol safe, because receivers
cannot tell whether a gap in counter values hides messages about
prepared/locked blocks that were sent to other nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import Hash, encode_fields
from repro.crypto.keys import KeyDirectory
from repro.crypto.scheme import Signature, SignatureScheme
from repro.tee.base import TrustedComponent


@dataclass(frozen=True)
class CounterCertificate:
    """Attestation that a message was assigned one unique counter value."""

    component_id: int
    value: int
    message_digest: Hash
    signature: Signature

    def signed_payload(self) -> bytes:
        return counter_payload(self.component_id, self.value, self.message_digest)


def counter_payload(component_id: int, value: int, message_digest: Hash) -> bytes:
    return encode_fields(("trinc", component_id, value, message_digest))


class TrustedCounter(TrustedComponent):
    """Monotonic counter: each attestation consumes the next value."""

    def __init__(self, replica: int, scheme: SignatureScheme, directory: KeyDirectory) -> None:
        super().__init__(replica, scheme, directory)
        self._value = 0

    @property
    def value(self) -> int:
        """Number of attestations issued so far (reads do not consume)."""
        return self._value

    def attest(self, message_digest: Hash) -> CounterCertificate:
        """Bind ``message_digest`` to the next counter value."""
        self._count_call()
        self._value += 1
        payload = counter_payload(self._signer, self._value, message_digest)
        return CounterCertificate(
            component_id=self._signer,
            value=self._value,
            message_digest=message_digest,
            # TrInc attests an *unverified* host digest by design: the
            # certificate binds presentation order, not validity - which
            # is precisely why Section 4.1 (and counterexample.py) show a
            # bare counter cannot make a 2f+1 protocol safe.
            signature=self._sign(payload),  # repro-analyze: ignore[TAINT002]
        )

    def verify_certificate(self, cert: CounterCertificate) -> bool:
        """Check any component's attestation against the directory."""
        if self._directory.kind_of(cert.signature.signer) != "tee":
            return False
        if cert.signature.signer != cert.component_id:
            return False
        return self._scheme.verify_cached(cert.signed_payload(), cert.signature)


def verify_counter_certificate(
    scheme: SignatureScheme, directory: KeyDirectory, cert: CounterCertificate
) -> bool:
    """Untrusted-side verification of a counter attestation."""
    if directory.kind_of(cert.signature.signer) != "tee":
        return False
    if cert.signature.signer != cert.component_id:
        return False
    return scheme.verify_cached(cert.signed_payload(), cert.signature)
