"""Trusted-component base class.

A trusted component is identified by a unique identifier (Section 4.1,
"each component is identified by a unique identifier stored with the
component") and signs its certificates with a private key held inside the
component.  The component counts its invocations so that experiments can
charge enclave-call overhead (SGX ECALL cost) to the hosting replica's
simulated CPU.
"""

from __future__ import annotations

from repro.crypto.keys import KeyDirectory, tee_signer_id
from repro.crypto.scheme import Signature, SignatureScheme


class TrustedComponent:
    """Common machinery: identity, private signing, public verification."""

    def __init__(self, replica: int, scheme: SignatureScheme, directory: KeyDirectory) -> None:
        self.replica = replica
        self._signer = tee_signer_id(replica)
        self._scheme = scheme
        self._directory = directory
        directory.register_tee(replica)
        self.calls = 0  # total TEE invocations, for ECALL cost accounting

    @property
    def component_id(self) -> int:
        """The component's unique (signer) identifier."""
        return self._signer

    def _sign(self, payload: bytes) -> Signature:
        """Sign with the component's confidential private key."""
        return self._scheme.sign(self._signer, payload)

    def _verify(self, payload: bytes, signature: Signature) -> bool:
        """Verify against the shared public-key directory.

        Certificates exchanged between trusted services must originate
        from *trusted* signers; a replica's untrusted key never validates
        a TEE certificate.
        """
        if self._directory.kind_of(signature.signer) != "tee":
            return False
        return self._scheme.verify_cached(payload, signature)

    def _count_call(self) -> None:
        self.calls += 1

    def storage_bytes(self) -> int:
        """Bytes of protected state the component must keep (Table 1).

        The base component stores only its identity and keys; subclasses
        add their protocol state.  Damysus's point is that this stays
        *constant* - independent of history length - unlike HotStuff-M's
        per-message logs.
        """
        return 8 + 32 + 32  # component id + private key + public-key root
