"""Sealed storage: persisting trusted-component state across restarts.

SGX enclaves persist state with *sealing*: the enclave encrypts and MACs
its state with a key derived from the CPU and enclave identity, so only
the same enclave on the same platform can unseal it.  For the paper's
trust model the critical property is that a restarted checker resumes
from its latest sealed step and prepared block - never from an earlier
one, which would let a Byzantine host rewind the monotonic counter and
equivocate.

We model sealing with an authenticated (HMAC) snapshot bound to the
component's private identity, plus a monotonic seal counter so stale
snapshots are rejected on unseal (rollback protection, as provided by
SGX's monotonic counters or an external trusted store).

:class:`FileSealStore` makes sealing *durable*: snapshots and the
trusted latest-counter record survive a real process death (SIGKILL
included) via atomic write-temp + fsync + rename, so a replica process
restarted by :class:`repro.runtime.resilience.supervisor.ReplicaSupervisor`
resumes from its latest sealed step - and refuses rollback exactly as
the in-memory path does, even across restarts.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.core.codec import CodecError, decode_checkpoint, encode_checkpoint
from repro.errors import TEERefusal
from repro.tee.checker import Checker
from repro.tee.checkpoint import Checkpoint


@dataclass(frozen=True)
class SealedState:
    """An authenticated checker snapshot (opaque to the untrusted host)."""

    component_id: int
    seal_counter: int
    payload: bytes
    mac: bytes


def _seal_key(checker: Checker) -> bytes:
    # Derived from the component's confidential signing identity: only
    # this component can produce or verify its seals.  Reaching into the
    # private attribute mirrors "inside the enclave" code.  The scheme is
    # bound by its stable name, never id(): seal keys must be identical
    # across identically-seeded runs.
    return hashlib.sha256(
        b"seal-key"
        + str(checker._signer).encode()
        + checker._scheme.name.encode()
    ).digest()


def _encode_state(checker: Checker, seal_counter: int) -> bytes:
    # The checker serializes its own protected fields (subclasses append
    # theirs, e.g. the Damysus-C lock); the seal header binds identity
    # and the rollback counter.
    return b"|".join(
        [
            str(checker._signer).encode(),
            str(seal_counter).encode(),
            *checker._seal_fields(),
        ]
    )


class SealManager:
    """Seal/unseal checker state with rollback protection.

    One manager per platform: it remembers the latest seal counter per
    component (the role SGX delegates to a monotonic counter service), so
    an old snapshot - however authentic - cannot be replayed.
    """

    def __init__(self) -> None:
        self._latest: dict[int, int] = {}

    def latest_counter(self, component_id: int) -> int:
        """The highest seal counter issued for ``component_id`` (0 = none)."""
        return self._latest.get(component_id, 0)

    def prime(self, component_id: int, counter: int) -> None:
        """Install a trusted floor for ``component_id``'s seal counter.

        This is how a freshly started process rejoins the monotonic
        counter service: the durable counter record (written by
        :class:`FileSealStore` before any snapshot is trusted) primes the
        new manager, so a stale snapshot is refused across a real process
        death just as within one.  Priming never lowers the floor.
        """
        if counter < 0:
            raise TEERefusal(f"prime: negative seal counter {counter}")
        self._latest[component_id] = max(self._latest.get(component_id, 0), counter)

    def seal(self, checker: Checker) -> SealedState:
        """Snapshot the checker's protected state."""
        counter = self._latest.get(checker.component_id, 0) + 1
        self._latest[checker.component_id] = counter
        payload = _encode_state(checker, counter)
        mac = hmac.new(_seal_key(checker), payload, hashlib.sha256).digest()
        return SealedState(
            component_id=checker.component_id,
            seal_counter=counter,
            payload=payload,
            mac=mac,
        )

    def unseal_into(self, checker: Checker, sealed: SealedState) -> None:
        """Restore a fresh checker from a sealed snapshot.

        Refuses snapshots with a bad MAC, for a different component, or
        older than the latest seal (rollback).
        """
        if sealed.component_id != checker.component_id:
            raise TEERefusal("unseal: snapshot belongs to a different component")
        expected = hmac.new(_seal_key(checker), sealed.payload, hashlib.sha256).digest()
        if not hmac.compare_digest(expected, sealed.mac):
            raise TEERefusal("unseal: authentication failed")
        latest = self._latest.get(checker.component_id, 0)
        if sealed.seal_counter < latest:
            raise TEERefusal(
                f"unseal: rollback detected (snapshot {sealed.seal_counter} < "
                f"latest {latest})"
            )
        checker._restore_seal_fields(sealed.payload.split(b"|")[2:])
        self._latest[checker.component_id] = max(latest, sealed.seal_counter)


class FileSealStore:
    """Durable sealed snapshots: survive SIGKILL, refuse rollback.

    Two files per component under ``root``:

    * ``component-<id>.seal.json`` - the latest :class:`SealedState`;
    * ``component-<id>.counter.json`` - the trusted monotonic-counter
      record (the role SGX delegates to a counter service).  It is
      written *after* the snapshot, so a crash between the two writes
      leaves a counter one behind the snapshot - which still unseals -
      never a counter ahead of every available snapshot.

    Every write is atomic: write a temp file in the same directory,
    flush + fsync, then :func:`os.replace` over the target and fsync the
    directory.  A process killed mid-write leaves either the old file or
    the new one, never a torn half of each.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- paths --------------------------------------------------------------

    def seal_path(self, component_id: int) -> Path:
        return self.root / f"component-{component_id}.seal.json"

    def counter_path(self, component_id: int) -> Path:
        return self.root / f"component-{component_id}.counter.json"

    def checkpoint_path(self, component_id: int) -> Path:
        return self.root / f"component-{component_id}.checkpoint.json"

    # -- persistence --------------------------------------------------------

    def save(self, sealed: SealedState) -> None:
        """Persist ``sealed`` and advance the durable counter record."""
        snapshot = {
            "component_id": sealed.component_id,
            "seal_counter": sealed.seal_counter,
            "payload": sealed.payload.hex(),
            "mac": sealed.mac.hex(),
        }
        self._atomic_write(self.seal_path(sealed.component_id), snapshot)
        stored = self.load_counter(sealed.component_id)
        if sealed.seal_counter > stored:
            self._atomic_write(
                self.counter_path(sealed.component_id),
                {"component_id": sealed.component_id, "latest": sealed.seal_counter},
            )

    def load(self, component_id: int) -> SealedState | None:
        """Read the latest durable snapshot, or ``None`` if none exists."""
        path = self.seal_path(component_id)
        if not path.exists():
            return None
        try:
            data = json.loads(path.read_text())
            return SealedState(
                component_id=int(data["component_id"]),
                seal_counter=int(data["seal_counter"]),
                payload=bytes.fromhex(data["payload"]),
                mac=bytes.fromhex(data["mac"]),
            )
        except (ValueError, KeyError, TypeError) as exc:
            raise TEERefusal(f"durable seal file {path} is corrupt: {exc}") from exc

    def load_counter(self, component_id: int) -> int:
        """The durable latest-counter record (0 when none was written)."""
        path = self.counter_path(component_id)
        if not path.exists():
            return 0
        try:
            data = json.loads(path.read_text())
            return int(data["latest"])
        except (ValueError, KeyError, TypeError) as exc:
            raise TEERefusal(f"durable counter file {path} is corrupt: {exc}") from exc

    def save_checkpoint(self, component_id: int, checkpoint: Checkpoint) -> None:
        """Persist the latest certified checkpoint (atomic, never regresses).

        The checkpoint rides next to the sealed snapshot so a restarted
        replica resumes from its certified horizon instead of replaying
        (or re-fetching) the whole chain.  A write for a height at or
        below the durable one is skipped: the file only ever moves
        forward, so a crash mid-sequence cannot demote it.
        """
        existing = self.load_checkpoint(component_id)
        if existing is not None and existing.height >= checkpoint.height:
            return
        self._atomic_write(
            self.checkpoint_path(component_id),
            {
                "component_id": component_id,
                "height": checkpoint.height,
                "encoded": encode_checkpoint(checkpoint).hex(),
            },
        )

    def load_checkpoint(self, component_id: int) -> Checkpoint | None:
        """Read the durable certified checkpoint, or ``None`` if absent.

        The caller must still verify the Checker signature and the
        embedded quorum commitment (:func:`repro.tee.checkpoint.
        verify_checkpoint`) - durability is not authenticity.
        """
        path = self.checkpoint_path(component_id)
        if not path.exists():
            return None
        try:
            data = json.loads(path.read_text())
            ckpt = decode_checkpoint(bytes.fromhex(data["encoded"]))
        except (ValueError, KeyError, TypeError, CodecError) as exc:
            raise TEERefusal(
                f"durable checkpoint file {path} is corrupt: {exc}"
            ) from exc
        if not isinstance(ckpt, Checkpoint):  # pragma: no cover - decoder invariant
            raise TEERefusal(f"durable checkpoint file {path} is corrupt")
        return ckpt

    def prime_manager(self, manager: SealManager, component_id: int) -> None:
        """Prime ``manager`` with the durable counter floor for a component."""
        manager.prime(component_id, self.load_counter(component_id))

    # -- internals ----------------------------------------------------------

    def _atomic_write(self, path: Path, payload: dict[str, object]) -> None:
        tmp = path.with_suffix(path.suffix + ".tmp")
        data = json.dumps(payload, sort_keys=True).encode()
        fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o600)
        try:
            os.write(fd, data)
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, path)
        # fsync the directory so the rename itself is durable.
        dir_fd = os.open(self.root, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
