"""Sealed storage: persisting trusted-component state across restarts.

SGX enclaves persist state with *sealing*: the enclave encrypts and MACs
its state with a key derived from the CPU and enclave identity, so only
the same enclave on the same platform can unseal it.  For the paper's
trust model the critical property is that a restarted checker resumes
from its latest sealed step and prepared block - never from an earlier
one, which would let a Byzantine host rewind the monotonic counter and
equivocate.

We model sealing with an authenticated (HMAC) snapshot bound to the
component's private identity, plus a monotonic seal counter so stale
snapshots are rejected on unseal (rollback protection, as provided by
SGX's monotonic counters or an external trusted store).
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.errors import TEERefusal
from repro.tee.checker import Checker


@dataclass(frozen=True)
class SealedState:
    """An authenticated checker snapshot (opaque to the untrusted host)."""

    component_id: int
    seal_counter: int
    payload: bytes
    mac: bytes


def _seal_key(checker: Checker) -> bytes:
    # Derived from the component's confidential signing identity: only
    # this component can produce or verify its seals.  Reaching into the
    # private attribute mirrors "inside the enclave" code.  The scheme is
    # bound by its stable name, never id(): seal keys must be identical
    # across identically-seeded runs.
    return hashlib.sha256(
        b"seal-key"
        + str(checker._signer).encode()
        + checker._scheme.name.encode()
    ).digest()


def _encode_state(checker: Checker, seal_counter: int) -> bytes:
    # The checker serializes its own protected fields (subclasses append
    # theirs, e.g. the Damysus-C lock); the seal header binds identity
    # and the rollback counter.
    return b"|".join(
        [
            str(checker._signer).encode(),
            str(seal_counter).encode(),
            *checker._seal_fields(),
        ]
    )


class SealManager:
    """Seal/unseal checker state with rollback protection.

    One manager per platform: it remembers the latest seal counter per
    component (the role SGX delegates to a monotonic counter service), so
    an old snapshot - however authentic - cannot be replayed.
    """

    def __init__(self) -> None:
        self._latest: dict[int, int] = {}

    def seal(self, checker: Checker) -> SealedState:
        """Snapshot the checker's protected state."""
        counter = self._latest.get(checker.component_id, 0) + 1
        self._latest[checker.component_id] = counter
        payload = _encode_state(checker, counter)
        mac = hmac.new(_seal_key(checker), payload, hashlib.sha256).digest()
        return SealedState(
            component_id=checker.component_id,
            seal_counter=counter,
            payload=payload,
            mac=mac,
        )

    def unseal_into(self, checker: Checker, sealed: SealedState) -> None:
        """Restore a fresh checker from a sealed snapshot.

        Refuses snapshots with a bad MAC, for a different component, or
        older than the latest seal (rollback).
        """
        if sealed.component_id != checker.component_id:
            raise TEERefusal("unseal: snapshot belongs to a different component")
        expected = hmac.new(_seal_key(checker), sealed.payload, hashlib.sha256).digest()
        if not hmac.compare_digest(expected, sealed.mac):
            raise TEERefusal("unseal: authentication failed")
        latest = self._latest.get(checker.component_id, 0)
        if sealed.seal_counter < latest:
            raise TEERefusal(
                f"unseal: rollback detected (snapshot {sealed.seal_counter} < "
                f"latest {latest})"
            )
        checker._restore_seal_fields(sealed.payload.split(b"|")[2:])
        self._latest[checker.component_id] = max(latest, sealed.seal_counter)
