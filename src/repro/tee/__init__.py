"""Trusted components (paper Section 4).

Each replica hosts instances of these services in a trusted execution
environment; in the hybrid fault model everything at a faulty node can be
tampered with *except* this package's objects.  The enforcement here is by
convention + encapsulation: private keys and protected state live in
underscore attributes that protocol and adversary code never reads, and
all interaction goes through the ``TEE*`` methods, which check their
guards and raise :class:`~repro.errors.TEERefusal` when violated.

Services:

* :class:`~repro.tee.checker.Checker` - Damysus's checker (Fig 2b).
* :class:`~repro.tee.checker_lock.LockingChecker` - Damysus-C's checker,
  which additionally persists locked blocks (Section 4.1).
* :class:`~repro.tee.accumulator.AccumulatorService` - the accumulator
  over checker commitments (Fig 2b).
* :class:`~repro.tee.accumulator.QCAccumulatorService` - the Damysus-A
  variant that accumulates signed prepare-QC reports instead.
* :class:`~repro.tee.counter.TrustedCounter` - a plain TrInc/MinBFT-style
  monotonic counter, shown insufficient for streamlined protocols in
  Section 4 (see :mod:`repro.analysis.counterexample`).
"""

from repro.tee.accumulator import AccumulatorService, QCAccumulatorService
from repro.tee.base import TrustedComponent
from repro.tee.checker import Checker
from repro.tee.checker_lock import LockingChecker
from repro.tee.counter import CounterCertificate, TrustedCounter

__all__ = [
    "TrustedComponent",
    "Checker",
    "LockingChecker",
    "AccumulatorService",
    "QCAccumulatorService",
    "TrustedCounter",
    "CounterCertificate",
]
