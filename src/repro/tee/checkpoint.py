"""TEE-certified checkpoints: portable proofs of executed state.

A replica that was dead or partitioned for thousands of views cannot
replay history a peer no longer stores.  Instead, peers hand out a
:class:`Checkpoint`: the executed-chain height, the rolling state root,
and the quorum commitment that decided the checkpointed block, all
signed by the peer's local Checker and stamped with a monotonic
checkpoint counter held *inside* the trusted component.

The trust argument mirrors sealing (rollback protection): the Checker
only certifies a checkpoint after verifying the decide-phase quorum
commitment itself, and it refuses to certify a height at or below its
last certified one, so a Byzantine host cannot mint a fresh-looking
certificate for stale state.  A receiver verifies two independent
layers - the Checker signature over the checkpoint payload, and the
embedded quorum commitment - before installing anything.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.commitment import Commitment
from repro.core.phases import Phase
from repro.crypto.hashing import HASH_SIZE, Hash, encode_fields
from repro.crypto.keys import KeyDirectory
from repro.crypto.scheme import SIGNATURE_WIRE_SIZE, Signature, SignatureScheme
from repro.errors import TEERefusal


def checkpoint_payload(
    replica: int,
    counter: int,
    height: int,
    view: int,
    block_hash: Hash,
    state_root: Hash,
    qc: Commitment,
) -> bytes:
    """The byte string a Checker signs when certifying a checkpoint.

    Binds the quorum commitment by digest so a host cannot splice the
    signature onto a different justification.
    """
    return encode_fields(
        (
            "checkpoint",
            replica,
            counter,
            height,
            view,
            block_hash,
            state_root,
            qc.digest(),
        )
    )


@dataclass(frozen=True, slots=True)
class Checkpoint:
    """A Checker-certified snapshot of the executed chain at ``height``."""

    replica: int
    counter: int
    height: int
    view: int
    block_hash: Hash
    state_root: Hash
    qc: Commitment
    signature: Signature

    def payload(self) -> bytes:
        return checkpoint_payload(
            self.replica,
            self.counter,
            self.height,
            self.view,
            self.block_hash,
            self.state_root,
            self.qc,
        )

    def wire_size(self) -> int:
        # replica + counter + height + view + two hashes + qc + signature
        return 4 * 4 + 2 * HASH_SIZE + self.qc.wire_size() + SIGNATURE_WIRE_SIZE


def verify_decide_qc(
    qc: Commitment,
    block_hash: Hash,
    scheme: SignatureScheme,
    directory: KeyDirectory,
    quorum: int,
) -> None:
    """Validate a decide-phase quorum commitment for ``block_hash``.

    The check every state-transfer artifact bottoms out in: the
    commitment must be a full-quorum pre-commit certificate, signed
    exclusively by trusted components, deciding exactly ``block_hash``.
    Raises :class:`~repro.errors.TEERefusal` on any forgery or mismatch.
    """
    if qc.phase != Phase.PRECOMMIT or qc.h_prep != block_hash:
        raise TEERefusal("decide qc: commitment does not decide this block")
    if len(qc.sigs) != quorum:
        raise TEERefusal("decide qc: wrong signature count for a quorum")
    if any(directory.kind_of(s.signer) != "tee" for s in qc.sigs):
        raise TEERefusal("decide qc: commitment carries untrusted signers")
    if not qc.verify(scheme):
        raise TEERefusal("decide qc: commitment does not verify")


def verify_checkpoint(
    checkpoint: Checkpoint,
    scheme: SignatureScheme,
    directory: KeyDirectory,
    quorum: int,
) -> None:
    """Validate a checkpoint received from an untrusted peer.

    Checks both layers - the certifying Checker's signature and the
    embedded decide-phase quorum commitment - and raises
    :class:`~repro.errors.TEERefusal` on any forgery or mismatch.
    """
    if checkpoint.height < 1:
        raise TEERefusal("checkpoint: height must be positive")
    sig = checkpoint.signature
    if directory.kind_of(sig.signer) != "tee":
        raise TEERefusal("checkpoint: certifying signer is not a trusted component")
    if not scheme.verify_cached(checkpoint.payload(), sig):
        raise TEERefusal("checkpoint: Checker signature does not verify")
    if checkpoint.qc.v_prep != checkpoint.view:
        raise TEERefusal("checkpoint: quorum commitment view mismatch")
    verify_decide_qc(
        checkpoint.qc, checkpoint.block_hash, scheme, directory, quorum
    )
