"""The Damysus-C checker: trusted storage of prepared AND locked blocks.

Section 4.1: to increase resilience without an accumulator, "the
additional secure storage would need to persist both prepared and locked
blocks".  Damysus-C keeps HotStuff's 3-phase structure (prepare,
pre-commit, commit, plus the decide half-phase) with f+1 quorums of 2f+1
replicas; its checker therefore cycles through four steps per view and
evaluates the SafeNode predicate *inside* the TEE against the stored
locked block, so not even a Byzantine node can vote for a proposal that
conflicts with its lock.
"""

from __future__ import annotations

from repro.crypto.hashing import Hash
from repro.crypto.keys import KeyDirectory
from repro.crypto.scheme import SignatureScheme
from repro.errors import TEERefusal
from repro.core.commitment import Commitment
from repro.core.phases import Phase, StepRule
from repro.tee.checker import Checker


class LockingChecker(Checker):
    """Checker with locked-block storage and in-TEE SafeNode (Damysus-C)."""

    step_rule = StepRule.THREE_PHASE

    def __init__(
        self,
        replica: int,
        scheme: SignatureScheme,
        directory: KeyDirectory,
        genesis_hash: Hash,
        quorum: int,
    ) -> None:
        super().__init__(replica, scheme, directory, genesis_hash, quorum)
        self._lockv = 0
        self._lockh = genesis_hash

    @property
    def locked_view(self) -> int:
        return self._lockv

    @property
    def locked_hash(self) -> Hash:
        return self._lockh

    def storage_bytes(self) -> int:
        """Constant, but larger than Damysus's checker: Section 4.2.3 notes
        that the accumulator removes the need to store locked blocks."""
        return super().storage_bytes() + 4 + 32  # lockv + lockh

    def _seal_fields(self) -> list[bytes]:
        # The lock is protected state too: a restart must not forget it,
        # or the host could vote for a conflicting branch after recovery.
        return [
            *super()._seal_fields(),
            str(self._lockv).encode(),
            self._lockh.hex().encode(),
        ]

    def _restore_seal_fields(self, fields: list[bytes]) -> None:
        base = Checker.BASE_SEAL_FIELDS
        super()._restore_seal_fields(fields[:base])
        self._lockv = int(fields[base])
        self._lockh = bytes.fromhex(fields[base + 1].decode())

    # -- TEE interface ----------------------------------------------------------

    def tee_prepare_locked(self, h: Hash, justify: Commitment) -> Commitment:
        """Prepare vote for ``h``, gated by SafeNode against the stored lock.

        ``justify`` is the highest new-view commitment the leader selected:
        a TEE-signed 1-commitment for the current view whose justification
        fields name the proposing node's latest prepared block.  SafeNode
        (Section 3): accept if the justification equals the locked block,
        or was prepared at a view higher than the lock's.
        """
        self._count_call()
        if h is None:
            raise TEERefusal("TEEprepareLocked: proposed hash is bottom")
        if not self._verify_commitment(justify, expected_sigs=1):
            raise TEERefusal("TEEprepareLocked: invalid justification commitment")
        if justify.phase != Phase.NEW_VIEW or justify.h_prep is not None:
            raise TEERefusal("TEEprepareLocked: justification is not a new-view commitment")
        if justify.v_prep != self._step.view:
            raise TEERefusal(
                f"TEEprepareLocked: justification for view {justify.v_prep}, "
                f"checker at view {self._step.view}"
            )
        if justify.v_just is None or justify.h_just is None:
            raise TEERefusal("TEEprepareLocked: justification lacks a prepared block")
        safe_by_lock = justify.h_just == self._lockh
        live_by_view = justify.v_just > self._lockv
        if not (safe_by_lock or live_by_view):
            raise TEERefusal(
                "TEEprepareLocked: SafeNode rejected the proposal "
                f"(justified at view {justify.v_just}, locked at {self._lockv})"
            )
        return self._create_unique_sign(h, justify.h_just, justify.v_just)

    def tee_store(self, phi: Commitment) -> Commitment:
        """Store a prepared block (prepare quorum) or lock it (pre-commit).

        * an (f+1)-commitment from the prepare phase stores the prepared
          block and emits a pre-commit vote;
        * an (f+1)-commitment from the pre-commit phase locks the block and
          emits a commit vote.
        """
        self._count_call()
        if not self._verify_commitment(phi, expected_sigs=self.quorum):
            raise TEERefusal("TEEstore: invalid quorum commitment")
        if phi.h_prep is None:
            raise TEERefusal("TEEstore: nothing to store")
        if self._step.view != phi.v_prep:
            raise TEERefusal("TEEstore: commitment not for the current view")
        if phi.phase == Phase.PREPARE:
            self._preph = phi.h_prep
            self._prepv = phi.v_prep
            return self._create_unique_sign(phi.h_prep, None, None)
        if phi.phase == Phase.PRECOMMIT:
            self._lockh = phi.h_prep
            self._lockv = phi.v_prep
            return self._create_unique_sign(phi.h_prep, None, None)
        raise TEERefusal(f"TEEstore: unexpected phase {phi.phase}")
