"""Compatibility shim: the system builder moved to :mod:`repro.runtime.sim`.

``ConsensusSystem`` wires protocol machines to the *simulator* runtime,
so it lives with the other runtime adapters now.  This module keeps the
historical import path working.  Attribute access is lazy (PEP 562) so
that importing a protocol module never drags in the simulator package -
the layering the ``ARCH00x`` lint rules enforce.
"""

from __future__ import annotations

from typing import Any

__all__ = ["ConsensusSystem", "RunResult"]


def __getattr__(name: str) -> Any:
    if name in __all__:
        from repro.runtime import sim as _sim

        return getattr(_sim, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
