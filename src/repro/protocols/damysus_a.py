"""Damysus-A (paper Section 4.2.3 / Section 8): Accumulator only.

3f+1 replicas with 2f+1 quorums, but only 2 core phases: the leader's
accumulator certifies that the proposal extends the highest prepared
block among 2f+1 signed reports, which removes the need for locking.
Without a Checker, new-view reports must carry full prepare quorum
certificates (a node could otherwise overstate its latest prepared
block); quorum intersection guarantees at least one correct node's honest
report reaches every accumulator.

Six communication steps per view: new-view reports, proposal, prepare
votes, prepare-QC broadcast, pre-commit votes, decide broadcast.
"""

from __future__ import annotations

from typing import Any

from repro.errors import TEERefusal
from repro.crypto.hashing import encode_fields
from repro.core.block import create_leaf
from repro.core.certificate import QuorumCert, genesis_qc, vote_payload
from repro.core.messages import NewViewAMsg, ProposalAMsg, QCMsg, VoteMsg
from repro.core.phases import Phase
from repro.protocols.replica import BaseReplica, QuorumCollector
from repro.tee.accumulator import QCAccumulatorService, new_view_a_payload


def proposal_a_payload(view: int, block_hash: bytes) -> bytes:
    """Bytes the leader signs over its Damysus-A proposal."""
    return encode_fields(("proposal-a", view, block_hash))


class DamysusAReplica(BaseReplica):
    """One Damysus-A replica: accumulator TEE, plain replica signatures."""

    protocol_name = "damysus-a"

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.acc_service = QCAccumulatorService(
            self.pid,
            self.scheme,
            self.directory,
            quorum=self.quorum,
            qc_quorum=self.quorum,
        )
        self.prepare_qc = genesis_qc(self.store.genesis.hash)
        self._new_views = QuorumCollector(self.quorum)
        self._votes = QuorumCollector(self.quorum)
        self._proposed: set[int] = set()
        self._voted: set[tuple[int, Phase]] = set()
        self._decided: set[int] = set()
        # Consensus views start at 1; genesis owns view 0.
        self.view = 1

    # -- lifecycle --------------------------------------------------------------------

    def start(self) -> None:
        self.pacemaker.start_view(self.view)
        self._send_new_view()

    def _send_new_view(self) -> None:
        self.charge_sign()
        sig = self.scheme.sign(
            self.pid, new_view_a_payload(self.view, self.prepare_qc)
        )
        self.send_charged(
            self.leader_of(self.view), NewViewAMsg(self.view, self.prepare_qc, sig)
        )

    def on_view_entered(self, view: int) -> None:
        self._send_new_view()

    def reset_protocol_state(self) -> None:
        # prepare_qc survives on stable storage (Damysus-A has no checker
        # to seal; its accumulator is stateless between calls).
        self._new_views = QuorumCollector(self.quorum)
        self._votes = QuorumCollector(self.quorum)
        self._proposed.clear()
        self._voted.clear()
        self._decided.clear()

    def on_recovered(self) -> None:
        self._send_new_view()

    def prune_state(self, view: int) -> None:
        horizon = view - 1
        self._new_views.discard_before_view(horizon)
        self._votes.discard_before_view(horizon)
        self._prune_view_sets(horizon, self._proposed, self._voted, self._decided)

    def on_view_timeout(self, view: int) -> None:
        self.advance_view(view + 1)

    # -- dispatch -----------------------------------------------------------------------

    def dispatch(self, sender: int, payload: Any) -> None:
        if isinstance(payload, NewViewAMsg):
            self._handle_new_view(sender, payload)
        elif isinstance(payload, ProposalAMsg):
            self._handle_proposal(sender, payload)
        elif isinstance(payload, VoteMsg):
            self._handle_vote(sender, payload)
        elif isinstance(payload, QCMsg):
            self._handle_qc(sender, payload)

    def on_stale(self, sender: int, payload: Any) -> None:
        if isinstance(payload, ProposalAMsg):
            self.store.add(payload.block)

    # -- prepare phase: leader --------------------------------------------------------------

    def _handle_new_view(self, sender: int, msg: NewViewAMsg) -> None:
        if not self.is_leader(msg.view):
            return
        quorum = self._new_views.add(msg.view, msg, msg.sender_sig.signer)
        if quorum is not None and msg.view not in self._proposed:
            self._propose(msg.view, quorum)

    def _propose(self, view: int, reports: list[NewViewAMsg]) -> None:
        # The accumulator verifies each report's sender signature plus the
        # selected (highest) report's full prepare QC inside the TEE.
        best_qc_sigs = max(len(m.justify.sigs) for m in reports)
        self.charge(
            self.costs.tee_op_ms(signs=1, verifies=0)
            + self.costs.verify_many_ms(len(reports) + best_qc_sigs)
        )
        try:
            acc = self.acc_service.accumulate(reports)
        except TEERefusal:
            return
        self._proposed.add(view)
        block = create_leaf(
            acc.prep_hash,
            view,
            self.mempool.take_block(self.now),
            created_at=self.now,
        )
        self.store.add(block)
        self.charge_sign()
        leader_sig = self.scheme.sign(self.pid, proposal_a_payload(view, block.hash))
        self.broadcast_charged(
            ProposalAMsg(view, block, acc, leader_sig), include_self=True
        )

    # -- prepare phase: all replicas (the leader votes on its own copy) -------------------------

    def _handle_proposal(self, sender: int, msg: ProposalAMsg) -> None:
        if sender != self.leader_of(msg.view):
            return
        if (msg.view, Phase.PREPARE) in self._voted:
            return
        acc = msg.acc
        if not acc.finalized or len(acc) != self.quorum or acc.made_in_view != msg.view:
            return
        self.charge_verify(2)  # accumulator signature + leader signature
        if self.directory.kind_of(acc.signature.signer) != "tee":
            return
        # Both checks ride one batch call: different payloads, one joint
        # verification (the cross-message verify_many shape).
        if not all(
            self.scheme.verify_many_cached(
                [
                    (acc.signed_payload(), acc.signature),
                    (proposal_a_payload(msg.view, msg.block.hash), msg.leader_sig),
                ]
            )
        ):
            return
        if not msg.block.extends(acc.prep_hash):
            return
        self.store.add(msg.block)
        self._vote(msg.view, Phase.PREPARE, msg.block.hash)

    def _vote(self, view: int, phase: Phase, block_hash: bytes) -> None:
        self._voted.add((view, phase))
        self.charge_sign()
        sig = self.scheme.sign(self.pid, vote_payload(view, phase, block_hash))
        self.send_charged(self.leader_of(view), VoteMsg(view, phase, block_hash, sig))

    # -- vote aggregation ---------------------------------------------------------------------------

    def _handle_vote(self, sender: int, msg: VoteMsg) -> None:
        if not self.is_leader(msg.view):
            return
        self.charge_verify(1)
        if not self.scheme.verify_cached(
            vote_payload(msg.view, msg.phase, msg.block_hash), msg.sig
        ):
            return
        key = (msg.view, msg.phase, msg.block_hash)
        sigs = self._votes.add(key, msg.sig, msg.sig.signer)
        if sigs is None:
            return
        qc = QuorumCert(msg.view, msg.block_hash, msg.phase, tuple(sigs))
        self.broadcast_charged(QCMsg(msg.view, msg.phase, qc), include_self=True)

    # -- QC handling: prepare -> pre-commit -> decide ---------------------------------------------------

    def _handle_qc(self, sender: int, msg: QCMsg) -> None:
        if sender != self.leader_of(msg.view):
            return
        qc = msg.qc
        if qc.view != msg.view or qc.phase != msg.phase:
            return
        self.charge_verify(len(qc.sigs))
        if not qc.verify(self.scheme, self.quorum):
            return
        if qc.phase == Phase.PREPARE:
            if qc.view > self.prepare_qc.view:
                self.prepare_qc = qc  # latest prepared, relayed in new-views
            if (msg.view, Phase.PRECOMMIT) not in self._voted:
                self._vote(msg.view, Phase.PRECOMMIT, qc.block_hash)
        elif qc.phase == Phase.PRECOMMIT:
            self._decide(msg.view, qc)

    def _decide(self, view: int, qc: QuorumCert) -> None:
        if view in self._decided:
            return
        self._decided.add(view)
        block = self.store.get(qc.block_hash)
        if block is not None:
            self.execute_block(block, view)
        self.pacemaker.view_succeeded()
        self.advance_view(view + 1)  # on_view_entered sends the new-view
