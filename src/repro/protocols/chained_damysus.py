"""Chained-Damysus (paper Section 7, Fig 5): pipelined Damysus.

2f+1 replicas, Checker + Accumulator per node, one block proposed per
view.  Executing a block needs only a chain of 3 consecutive blocks (one
less than chained HotStuff) because Damysus has one phase less.

Per view each replica sends one proposal-or-vote message: the leader
broadcasts ``<b, sigma'>`` where sigma' is its TEE prepare-commitment
signature (doubling as its own vote, which the next leader extracts from
the proposal), and every replica sends a combined vote + new-view message
to the next view's leader (the paper notes the two "can be combined in
practice", footnote 6).  A block therefore costs 6 steps over 3 views -
Table 1's 12f + 6 messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import TEERefusal
from repro.core.block import Block, create_chain
from repro.core.certificate import Accumulator, QuorumCert, genesis_qc
from repro.core.commitment import Commitment, c_combine
from repro.core.messages import MSG_HEADER_BYTES, ChainedProposal
from repro.core.phases import Phase, Step
from repro.protocols.replica import BaseReplica, QuorumCollector
from repro.tee.accumulator import AccumulatorService
from repro.tee.checker import ChainedChecker


@dataclass(frozen=True)
class ChainedVote:
    """Combined prepare-vote + new-view message to the next leader.

    ``prep`` is ``None`` when the sender's prepare vote already travelled
    inside its proposal (the view's leader), or when the sender timed out
    without voting.
    """

    view: int  # the view the commitments were stamped in
    prep: Commitment | None
    nv: Commitment

    msg_type = "chained-vote"

    def wire_size(self) -> int:
        size = MSG_HEADER_BYTES + 4 + self.nv.wire_size()
        if self.prep is not None:
            size += self.prep.wire_size()
        return size


class ChainedDamysusReplica(BaseReplica):
    """One Chained-Damysus replica (Fig 5a) with its trusted services."""

    protocol_name = "chained-damysus"

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.checker = self._make_checker()
        self.acc_service = AccumulatorService(
            self.pid, self.scheme, self.directory, self.quorum
        )
        self.qc_prep: QuorumCert | Commitment | Accumulator = genesis_qc(
            self.store.genesis.hash
        )
        self.blocks: dict[int, Block] = {0: self.store.genesis}
        self._votes = QuorumCollector(self.quorum)
        # New-view commitments per stamped view, keyed by TEE signer.
        self._nv_commitments: dict[int, dict[int, Commitment]] = {}
        self._proposed: set[int] = set()
        self._voted: set[int] = set()
        self.view = 1  # nodes start at view 1 (Section 7.1)

    def _make_checker(self) -> ChainedChecker:
        return ChainedChecker(
            self.pid,
            self.scheme,
            self.directory,
            self.store.genesis.hash,
            self.quorum,
        )

    def reset_protocol_state(self) -> None:
        # qc_prep and the per-view block index survive on stable storage
        # (certificates and block bodies); vote state is volatile and the
        # sealed checker carries the trusted prepared/step state.
        self._votes = QuorumCollector(self.quorum)
        self._nv_commitments.clear()
        self._proposed.clear()
        self._voted.clear()

    # -- helpers --------------------------------------------------------------------

    def _just_of(self, block: Block) -> QuorumCert | Accumulator:
        if block.justify is not None:
            return block.justify
        return genesis_qc(self.store.genesis.hash)

    def message_view(self, payload: Any) -> int | None:
        if isinstance(payload, ChainedVote):
            return payload.view + 1  # addressed to the next view's leader
        return super().message_view(payload)

    def _verify_tee_commitment(self, phi: Commitment, expected_sigs: int) -> bool:
        if len(phi.sigs) != expected_sigs:
            return False
        if any(self.directory.kind_of(sig.signer) != "tee" for sig in phi.sigs):
            return False
        return phi.verify(self.scheme)

    # -- lifecycle ----------------------------------------------------------------------

    def start(self) -> None:
        self.pacemaker.start_view(self.view)
        # Startup consumes the TEE's (0, nv_p) step so every checker sits
        # at (1, prep_p) when view 1's proposal arrives; the resulting
        # commitment is the (unneeded) new-view message for view 1.
        self.charge_tee(signs=1)
        phi = self.checker.tee_sign()
        self.send_charged(self.leader_of(1), ChainedVote(0, None, phi))
        if self.is_leader(1):
            self._try_propose(1)

    def on_view_timeout(self, view: int) -> None:
        self.advance_view(view + 1)
        phi = self._catch_up_new_view(self.view)
        if phi is not None:
            self.send_charged(self.leader_of(self.view), ChainedVote(self.view - 1, None, phi))

    def _catch_up_new_view(self, new_view: int) -> Commitment | None:
        """Fig 5a lines 46-51: TEEsign until stamped (new_view - 1, nv_p)."""
        target = Step(new_view - 1, Phase.NEW_VIEW)
        rule = self.checker.step_rule
        while self.checker.step.index(rule) <= target.index(rule):
            self.charge_tee(signs=1)
            phi = self.checker.tee_sign()
            if phi.v_prep == target.view and phi.phase == target.phase:
                return phi
        return None

    def on_view_entered(self, view: int) -> None:
        if self.is_leader(view):
            self._try_propose(view)

    def prune_state(self, view: int) -> None:
        horizon = view - 2
        self._votes.discard_before_view(horizon)
        self._prune_view_sets(horizon, self._proposed, self._voted)

    # -- dispatch --------------------------------------------------------------------------

    def dispatch(self, sender: int, payload: Any) -> None:
        if isinstance(payload, ChainedProposal):
            self._handle_proposal(sender, payload)
        elif isinstance(payload, ChainedVote):
            self._handle_vote(sender, payload)

    def on_stale(self, sender: int, payload: Any) -> None:
        if isinstance(payload, ChainedProposal):
            self.store.add(payload.block)
            self.blocks.setdefault(payload.block.view, payload.block)

    # -- leader: proposing (Fig 5a lines 7-19) ------------------------------------------------

    def _try_propose(self, view: int) -> None:
        if view in self._proposed or not self.is_leader(view):
            return
        if self.qc_prep.cview != view - 1:
            # Stale certificate: wait for f+1 new-view commitments stamped
            # (view-1, nv_p) and certify the selection with the accumulator.
            phis = self._new_view_commitments(view)
            if phis is None:
                return
            self.charge((self.quorum + 1) * self.costs.tee_op_ms(signs=1, verifies=1))
            try:
                self.qc_prep = self.acc_service.accumulate(phis)
            except TEERefusal:
                return
        self._propose(view)

    def _new_view_commitments(self, view: int) -> list[Commitment] | None:
        items = self._nv_commitments.get(view - 1, {})
        if len(items) < self.quorum:
            return None
        return list(items.values())[: self.quorum]

    def _propose(self, view: int) -> None:
        qc = self.qc_prep
        b0 = self.blocks.get(qc.view)
        if b0 is None or qc.hash != b0.hash:
            return
        self._proposed.add(view)
        block = create_chain(
            qc,
            view,
            self.mempool.take_block(self.now),
            created_at=self.now,
        )
        self.blocks[view] = block
        self.store.add(block)
        self.charge_tee(signs=1, verifies=len(getattr(qc, "sigs", ()) or ()) or 1)
        try:
            phi_prep = self.checker.tee_prepare_chained(block, b0)
        except TEERefusal:
            self._proposed.discard(view)
            return
        self.broadcast_charged(
            ChainedProposal(view, block, phi_prep.sigs[0]), include_self=True
        )
        # The leader's prepare vote rides inside the proposal; only its
        # new-view commitment goes to the next leader explicitly.
        self.charge_tee(signs=1)
        phi_nv = self.checker.tee_sign()
        self.send_charged(self.leader_of(view + 1), ChainedVote(view, None, phi_nv))

    # -- all replicas: proposal processing (Fig 5a lines 21-38) ---------------------------------

    def _handle_proposal(self, sender: int, msg: ChainedProposal) -> None:
        if sender != self.leader_of(msg.view):
            return
        block = msg.block
        qc = self._just_of(block)
        if msg.view != qc.cview + 1:
            return
        b0 = self.blocks.get(qc.view)
        if b0 is None or qc.hash != b0.hash:
            return
        just0 = self._just_of(b0)
        b1 = self.blocks.get(just0.view)
        if b1 is None or just0.hash != b1.hash:
            return
        if sender == self.pid:
            # Own proposal: chain bookkeeping only, the vote already went out.
            phi_leader = None
        else:
            phi_leader = Commitment(
                h_prep=block.hash,
                v_prep=msg.view,
                h_just=None,
                v_just=None,
                phase=Phase.PREPARE,
                sigs=(msg.leader_sig,),
            )
            self.charge_verify(1)
            if not self._verify_tee_commitment(phi_leader, expected_sigs=1):
                return
            if not block.extends(qc.hash):
                return
            self.blocks[msg.view] = block
            self.store.add(block)
        next_leader = self.leader_of(msg.view + 1)
        if sender != self.pid and msg.view not in self._voted:
            self._voted.add(msg.view)
            self.charge_tee(signs=2, verifies=self.quorum)  # TEEprepare + TEEsign
            try:
                phi = self.checker.tee_prepare_chained(block, b0)
            except TEERefusal:
                phi = None
            if phi is not None:
                phi_nv = self.checker.tee_sign()
                self.send_charged(next_leader, ChainedVote(msg.view, phi, phi_nv))
        if self.is_leader(msg.view + 1) and phi_leader is not None:
            # Extract the proposing leader's vote from the proposal.
            self._collect_vote(msg.view, phi_leader)
        # Execute rule (Fig 5a lines 35-37): a 3-chain of direct parents.
        if block.extends(b0.hash) and b0.extends(b1.hash) and not b1.is_genesis:
            self.execute_block(b1, msg.view)
        self.pacemaker.view_succeeded()
        self.advance_view(msg.view + 1)

    # -- next leader: vote aggregation (Fig 5a lines 40-43) ----------------------------------------

    def _handle_vote(self, sender: int, msg: ChainedVote) -> None:
        if not self.is_leader(msg.view + 1):
            self._store_new_view(msg)
            return
        self._store_new_view(msg)
        if msg.prep is not None:
            phi = msg.prep
            if phi.phase == Phase.PREPARE and phi.v_prep == msg.view and len(phi.sigs) == 1:
                self.charge_verify(1)
                if self._verify_tee_commitment(phi, expected_sigs=1):
                    self._collect_vote(msg.view, phi)
        # A stale leader may be able to propose now that new-views arrived.
        if self.view == msg.view + 1:
            self._try_propose(self.view)

    def _collect_vote(self, view: int, phi: Commitment) -> None:
        quorum = self._votes.add((view, phi.h_prep), phi, phi.sigs[0].signer)
        if quorum is None:
            return
        self.qc_prep = c_combine(quorum)
        if self.view == view + 1:
            self._try_propose(self.view)

    # -- new-view commitment storage (for the stale-certificate path) --------------------------------

    def _store_new_view(self, msg: ChainedVote) -> None:
        phi = msg.nv
        if phi.phase != Phase.NEW_VIEW or phi.h_prep is not None or len(phi.sigs) != 1:
            return
        if phi.v_prep != msg.view:
            return
        self.charge_verify(1)
        if not self._verify_tee_commitment(phi, expected_sigs=1):
            return
        per_view = self._nv_commitments.setdefault(phi.v_prep, {})
        per_view.setdefault(phi.sigs[0].signer, phi)
        # Garbage-collect old views.
        for old in [v for v in self._nv_commitments if v < self.view - 2]:
            del self._nv_commitments[old]
