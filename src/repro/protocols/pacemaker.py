"""View synchronization: timers, backoff, rotating leader election.

HotStuff's liveness mechanism (Section 3): nodes start a timer per view,
double the timeout when a view fails, and shrink it again when views
succeed, so that after GST all correct nodes eventually share a view with
a correct leader for long enough to decide.  Leader election is the
deterministic round-robin the paper assumes ("each view has a unique
leader, chosen deterministically and known to all nodes", Section 5).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Protocol

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.rng import RngStream


class TimerHandle(Protocol):
    """A cancellable one-shot timer, however the host implements it."""

    def cancel(self) -> None: ...


class TimerHost(Protocol):
    """What the pacemaker needs from its host machine or process."""

    def set_timer(self, delay_ms: float, fn: Callable[[], None]) -> Any: ...


def round_robin_leader(view: int, num_replicas: int) -> int:
    """The unique, deterministic leader of ``view``."""
    return view % num_replicas


class Pacemaker:
    """Per-replica view timer with exponential backoff."""

    def __init__(
        self,
        process: TimerHost,
        base_timeout_ms: float,
        backoff: float = 2.0,
        on_timeout: Callable[[int], None] | None = None,
        linear_decrease_ms: float | None = None,
        max_timeout_ms: float | None = None,
        jitter_fraction: float = 0.0,
        rng: "RngStream | None" = None,
    ) -> None:
        self.process = process
        self.base_timeout_ms = base_timeout_ms
        self.backoff = backoff
        self.on_timeout = on_timeout
        # Optional seeded timeout jitter (default off): each armed timer
        # is perturbed by up to +/- jitter_fraction of itself, so
        # simulated replicas do not fire view-changes in lock-step - the
        # desynchronization real clocks provide for free.
        self.jitter_fraction = jitter_fraction
        self.rng = rng
        # When views succeed, the timeout shrinks linearly back toward the
        # base (the exponential-backoff-with-linear-decrease scheme of
        # Section 3).  The cap keeps a permanently faulty leader in a
        # rotating schedule from inflating the timeout unboundedly.
        self.linear_decrease_ms = (
            linear_decrease_ms if linear_decrease_ms is not None else base_timeout_ms / 2
        )
        self.max_timeout_ms = (
            max_timeout_ms if max_timeout_ms is not None else base_timeout_ms * 4
        )
        self.current_timeout_ms = base_timeout_ms
        self.timeouts_fired = 0
        self._timer: TimerHandle | None = None
        self._view = -1

    @property
    def view(self) -> int:
        """The view the pacemaker is currently timing."""
        return self._view

    def start_view(self, view: int) -> None:
        """Arm the timer for ``view``, cancelling any previous timer."""
        self.cancel()
        self._view = view
        timeout = self.current_timeout_ms
        if self.rng is not None and self.jitter_fraction > 0.0:
            timeout = self.rng.jitter(timeout, self.jitter_fraction)
        self._timer = self.process.set_timer(timeout, self._fire)

    def view_succeeded(self) -> None:
        """Cancel the timer and linearly decrease the timeout."""
        self.cancel()
        self.current_timeout_ms = max(
            self.base_timeout_ms, self.current_timeout_ms - self.linear_decrease_ms
        )

    def cancel(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _fire(self) -> None:
        self._timer = None
        self.timeouts_fired += 1
        self.current_timeout_ms = min(
            self.current_timeout_ms * self.backoff, self.max_timeout_ms
        )
        if self.on_timeout is not None:
            self.on_timeout(self._view)
