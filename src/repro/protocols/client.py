"""Clients for the closed-loop (Fig 9) experiments and ``repro load``.

A client submits transactions at a configurable interval, broadcasting
each request to all replicas (the paper's client interaction model:
"clients send requests to replicas, and replicas send replies to
clients").  End-to-end latency is measured from submission to the first
execution reply, and throughput from the completion timestamps.

The admission pipeline talks back: replicas NACK rejected submissions
with an explicit :class:`~repro.core.mempool.AdmissionVerdict`, and the
client records them - a transaction NACKed by *every* replica is
dropped (or resubmitted, up to ``retry_limit``) instead of silently
inflating the in-flight set forever.  ``dropped``/``retried`` and the
per-verdict reply histogram feed the ``repro load`` report.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.clock import Clock
from repro.core.mempool import AdmissionVerdict, Transaction
from repro.core.messages import ClientReply, ClientRequest
from repro.core.rng import RngStream
from repro.runtime.machine import Machine


@dataclass
class CompletedRequest:
    """One transaction's client-side record."""

    tx_id: int
    submitted_at: float
    first_reply_at: float

    @property
    def latency_ms(self) -> float:
        return self.first_reply_at - self.submitted_at


class Client(Machine):
    """An open- or closed-loop load generator."""

    def __init__(
        self,
        pid: int,
        clock: Clock,
        client_id: int,
        replica_pids: list[int],
        payload_bytes: int,
        interval_ms: float,
        total_txs: int = 0,
        rng: "RngStream | None" = None,
        poisson: bool | None = None,
        payload_mix: "Sequence[int] | None" = None,
        max_fee: int = 0,
        retry_limit: int = 0,
    ) -> None:
        super().__init__(pid, clock)
        self.client_id = client_id
        self.replica_pids = list(replica_pids)
        self.payload_bytes = payload_bytes
        self.interval_ms = interval_ms
        self.total_txs = total_txs  # 0 = unlimited
        # With an RNG, inter-arrival times are exponential (a Poisson
        # process at rate 1/interval_ms); without, arrivals are periodic.
        # ``poisson`` overrides that historical inference, so a client
        # can draw payload sizes and fees without changing its arrivals.
        self.rng = rng
        self.poisson = (rng is not None) if poisson is None else poisson
        self.payload_mix = list(payload_mix) if payload_mix else None
        self.max_fee = max_fee
        self.retry_limit = retry_limit
        self._tx_ids = itertools.count()
        self.submitted: dict[int, float] = {}
        self.completed: list[CompletedRequest] = []
        # -- admission accounting -----------------------------------------
        self.submitted_total = 0  # first submissions (retries excluded)
        self.dropped = 0  # transactions NACKed by every replica, abandoned
        self.retried = 0  # resubmissions after a full NACK
        #: Replies received, by verdict (every reply counts, so the
        #: ``accepted`` bucket sees up to one entry per replica per tx).
        self.verdicts: dict[str, int] = {v.value: 0 for v in AdmissionVerdict}
        self._inflight: dict[int, Transaction] = {}
        self._nacks: dict[int, set[int]] = {}
        self._retries_used: dict[int, int] = {}

    def start(self) -> None:
        self._submit_next()

    def _make_transaction(self, tx_id: int) -> Transaction:
        payload = self.payload_bytes
        if self.payload_mix and self.rng is not None:
            payload = self.rng.choice(self.payload_mix)
        fee = 0
        if self.max_fee and self.rng is not None:
            fee = self.rng.randint(0, self.max_fee)
        return Transaction(
            client_id=self.client_id,
            tx_id=tx_id,
            payload_bytes=payload,
            submitted_at=self.now,
            fee=fee,
        )

    def _submit_next(self) -> None:
        if self.crashed:
            return
        if self.total_txs and self.submitted_total >= self.total_txs:
            return
        tx_id = next(self._tx_ids)
        tx = self._make_transaction(tx_id)
        self.submitted[tx_id] = self.now
        self.submitted_total += 1
        self._inflight[tx_id] = tx
        self._broadcast_request(tx)
        if self.poisson and self.rng is not None:
            delay = self.rng.expovariate(1.0 / max(self.interval_ms, 0.001))
        else:
            delay = self.interval_ms
        self.set_timer(max(delay, 0.001), self._submit_next)

    def _broadcast_request(self, tx: Transaction) -> None:
        request = ClientRequest(self.client_id, tx)
        for pid in self.replica_pids:
            self.send(pid, request)

    def on_message(self, sender: int, payload: Any) -> None:
        if self.crashed:
            return
        if not isinstance(payload, ClientReply):
            return
        if payload.client_id != self.client_id:
            return
        self.verdicts[payload.verdict.value] += 1
        if payload.verdict is not AdmissionVerdict.ACCEPTED:
            self._on_nack(sender, payload.tx_id)
            return
        submitted = self.submitted.pop(payload.tx_id, None)
        if submitted is None:
            return  # already completed (first reply wins)
        self._forget(payload.tx_id)
        self.completed.append(
            CompletedRequest(
                tx_id=payload.tx_id,
                submitted_at=submitted,
                first_reply_at=self.now,
            )
        )

    def _on_nack(self, sender: int, tx_id: int) -> None:
        """Record a rejection; drop or retry once every replica refused."""
        if tx_id not in self.submitted:
            return  # completed (some replica admitted it) or already dropped
        nacks = self._nacks.setdefault(tx_id, set())
        nacks.add(sender)
        if len(nacks) < len(self.replica_pids):
            return
        self._nacks.pop(tx_id, None)
        used = self._retries_used.get(tx_id, 0)
        tx = self._inflight.get(tx_id)
        if tx is not None and used < self.retry_limit:
            self._retries_used[tx_id] = used + 1
            self.retried += 1
            self._broadcast_request(tx)
            return
        del self.submitted[tx_id]
        self._forget(tx_id)
        self.dropped += 1

    def _forget(self, tx_id: int) -> None:
        self._inflight.pop(tx_id, None)
        self._nacks.pop(tx_id, None)
        self._retries_used.pop(tx_id, None)

    # -- client-side metrics ---------------------------------------------------

    def mean_latency_ms(self) -> float:
        if not self.completed:
            return 0.0
        return sum(c.latency_ms for c in self.completed) / len(self.completed)

    def throughput_kops(self, duration_ms: float) -> float:
        if duration_ms <= 0:
            return 0.0
        return (len(self.completed) / (duration_ms / 1000.0)) / 1000.0

    def admission_summary(self) -> dict[str, int]:
        """Drop/retry counts plus the per-verdict reply histogram."""
        return {
            "submitted": self.submitted_total,
            "completed": len(self.completed),
            "dropped": self.dropped,
            "retried": self.retried,
            **{f"replies_{name}": count for name, count in self.verdicts.items()},
        }
