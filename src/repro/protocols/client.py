"""Clients for the closed-loop (Fig 9) experiments.

A client submits transactions at a configurable interval, broadcasting
each request to all replicas (the paper's client interaction model:
"clients send requests to replicas, and replicas send replies to
clients").  End-to-end latency is measured from submission to the first
reply, and throughput from the completion timestamps.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any

from repro.core.clock import Clock
from repro.core.mempool import Transaction
from repro.core.messages import ClientReply, ClientRequest
from repro.core.rng import RngStream
from repro.runtime.machine import Machine


@dataclass
class CompletedRequest:
    """One transaction's client-side record."""

    tx_id: int
    submitted_at: float
    first_reply_at: float

    @property
    def latency_ms(self) -> float:
        return self.first_reply_at - self.submitted_at


class Client(Machine):
    """An open- or closed-loop load generator."""

    def __init__(
        self,
        pid: int,
        clock: Clock,
        client_id: int,
        replica_pids: list[int],
        payload_bytes: int,
        interval_ms: float,
        total_txs: int = 0,
        rng: "RngStream | None" = None,
    ) -> None:
        super().__init__(pid, clock)
        self.client_id = client_id
        self.replica_pids = list(replica_pids)
        self.payload_bytes = payload_bytes
        self.interval_ms = interval_ms
        self.total_txs = total_txs  # 0 = unlimited
        # With an RNG, inter-arrival times are exponential (a Poisson
        # process at rate 1/interval_ms); without, arrivals are periodic.
        self.rng = rng
        self._tx_ids = itertools.count()
        self.submitted: dict[int, float] = {}
        self.completed: list[CompletedRequest] = []

    def start(self) -> None:
        self._submit_next()

    def _submit_next(self) -> None:
        if self.crashed:
            return
        if self.total_txs and len(self.submitted) >= self.total_txs:
            return
        tx_id = next(self._tx_ids)
        tx = Transaction(
            client_id=self.client_id,
            tx_id=tx_id,
            payload_bytes=self.payload_bytes,
            submitted_at=self.now,
        )
        self.submitted[tx_id] = self.now
        request = ClientRequest(self.client_id, tx)
        for pid in self.replica_pids:
            self.send(pid, request)
        if self.rng is not None:
            delay = self.rng.expovariate(1.0 / max(self.interval_ms, 0.001))
        else:
            delay = self.interval_ms
        self.set_timer(max(delay, 0.001), self._submit_next)

    def on_message(self, sender: int, payload: Any) -> None:
        if self.crashed:
            return
        if not isinstance(payload, ClientReply):
            return
        if payload.client_id != self.client_id:
            return
        submitted = self.submitted.pop(payload.tx_id, None)
        if submitted is None:
            return  # already completed (first reply wins)
        self.completed.append(
            CompletedRequest(
                tx_id=payload.tx_id,
                submitted_at=submitted,
                first_reply_at=self.now,
            )
        )

    # -- client-side metrics ---------------------------------------------------

    def mean_latency_ms(self) -> float:
        if not self.completed:
            return 0.0
        return sum(c.latency_ms for c in self.completed) / len(self.completed)

    def throughput_kops(self, duration_ms: float) -> float:
        if duration_ms <= 0:
            return 0.0
        return (len(self.completed) / (duration_ms / 1000.0)) / 1000.0
