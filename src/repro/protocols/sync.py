"""State-transfer catch-up: sans-I/O messages and the requester machine.

A replica that was dead or partitioned for thousands of views cannot
rejoin by replaying history - peers garbage-collect their executed log
below the checkpoint horizon.  Instead it runs the catch-up protocol:

1. :class:`SyncRequest` - "I am at height h, view v; bring me forward."
2. :class:`SyncCheckpoint` - the peer's latest Checker-certified
   checkpoint, sent when it is ahead of the requester's height.
3. :class:`SyncBlocks` - a bounded chunk of executed blocks above the
   requester's (post-checkpoint) height; ``done`` marks the last chunk
   and carries the decide-phase quorum commitment for the suffix tip,
   otherwise the requester immediately asks the same peer for more.

The requester trusts nothing it is handed: checkpoints are verified
against the certifying Checker signature, and a block suffix is buffered
until the final chunk, then executed only once the tip commitment
verifies - the hash chain from a verified starting point plus a quorum
certificate on the tip transitively covers every block in between.
Replies are only accepted from the peer currently being synced from.

The requester side lives in :class:`CatchUpClient`: seeded exponential
backoff with jitter (the sans-I/O sibling of the reconnect backoff in
:mod:`repro.runtime.asyncio_net`), a retry cap, and deterministic peer
rotation.  Server-side rate limiting and chunking live in
:class:`~repro.protocols.replica.BaseReplica`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.block import Block
from repro.core.commitment import Commitment
from repro.core.messages import MSG_HEADER_BYTES
from repro.core.rng import RngStream
from repro.tee.checkpoint import Checkpoint

if TYPE_CHECKING:
    from repro.protocols.replica import BaseReplica
    from repro.runtime.machine import MachineTimer


@dataclass(frozen=True, slots=True)
class SyncRequest:
    """Ask a peer for a checkpoint and/or block suffix beyond our height."""

    have_height: int
    have_view: int

    msg_type = "sync-request"

    @property
    def view(self) -> None:
        return None

    def wire_size(self) -> int:
        return MSG_HEADER_BYTES + 4 + 4


@dataclass(frozen=True, slots=True)
class SyncCheckpoint:
    """A peer's latest certified checkpoint (verify before installing)."""

    checkpoint: Checkpoint

    msg_type = "sync-checkpoint"

    @property
    def view(self) -> None:
        return None

    def wire_size(self) -> int:
        return MSG_HEADER_BYTES + self.checkpoint.wire_size()


@dataclass(frozen=True, slots=True)
class SyncBlocks:
    """One chunk of executed blocks starting just above ``start_height``.

    The final chunk (``done``) carries ``tip_qc``, the decide-phase
    quorum commitment for the last block of the whole suffix; without a
    verifiable tip certificate the receiver executes nothing.
    """

    start_height: int
    blocks: tuple[Block, ...]
    done: bool
    tip_qc: Commitment | None = None

    msg_type = "sync-blocks"

    @property
    def view(self) -> None:
        return None

    def wire_size(self) -> int:
        size = MSG_HEADER_BYTES + 4 + 1 + sum(b.wire_size() for b in self.blocks)
        if self.tip_qc is not None:
            size += self.tip_qc.wire_size()
        return size


class CatchUpClient:
    """Requester-side catch-up state machine (one per replica).

    Emits :class:`SyncRequest` effects through its machine and re-arms a
    retry timer with seeded exponential backoff + jitter; every expiry
    rotates to the next peer.  ``retries`` is cumulative (surfaced in
    health snapshots); the per-round attempt count is capped by
    ``catchup_max_retries``, after which the client gives up until the
    next behind-detection trigger.
    """

    def __init__(self, machine: "BaseReplica") -> None:
        self.machine = machine
        self._rng = RngStream(machine.config.seed, f"catchup:{machine.pid}")
        self.active = False
        self.gave_up = False
        self.retries = 0
        self.completed = 0
        #: The peer currently being synced from; sync replies from any
        #: other sender are ignored (a Byzantine peer must not be able to
        #: inject state transfer traffic it was never asked for).
        self.peer: int | None = None
        self._attempts = 0
        self._timeout_ms = machine.config.catchup_timeout_ms
        self._timer: "MachineTimer | None" = None
        self._peer_cursor = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Begin (or re-begin) a catch-up round; no-op while one runs."""
        if self.active or self.machine.crashed:
            return
        self.active = True
        self.gave_up = False
        self._attempts = 0
        self._timeout_ms = self.machine.config.catchup_timeout_ms
        peers = self._peers()
        if not peers:
            self.active = False
            return
        self._peer_cursor = self._rng.randint(0, len(peers) - 1)
        self._send_request()

    def finish(self) -> None:
        """Catch-up complete: stop retrying."""
        if self.active:
            self.completed += 1
        self.active = False
        self.peer = None
        self._cancel_timer()

    def reset(self) -> None:
        """Crash path: drop all volatile catch-up state."""
        self.active = False
        self.gave_up = False
        self.peer = None
        self._attempts = 0
        self._timeout_ms = self.machine.config.catchup_timeout_ms
        self._cancel_timer()

    # -- progress signals from the replica's sync handlers ------------------

    def note_progress(self) -> None:
        """Fresh verified data arrived: reset the backoff, keep waiting."""
        if not self.active:
            return
        self._attempts = 0
        self._timeout_ms = self.machine.config.catchup_timeout_ms
        self._arm_timer()

    def request_next(self, peer: int) -> None:
        """Continue a chunked transfer from the peer that just served us.

        The requested height counts the verified-but-unexecuted blocks
        buffered for this transfer, so each continuation asks for the
        chunk after the one just received.
        """
        if not self.active:
            return
        machine = self.machine
        machine.send_charged(
            peer, SyncRequest(machine.sync_have_height(), machine.view)
        )
        self._arm_timer()

    # -- internals ----------------------------------------------------------

    def _peers(self) -> list[int]:
        return [p for p in self.machine.replica_pids if p != self.machine.pid]

    def _send_request(self) -> None:
        machine = self.machine
        machine.drop_sync_session()  # a new peer restarts the transfer
        peers = self._peers()
        peer = peers[self._peer_cursor % len(peers)]
        self._peer_cursor += 1
        self.peer = peer
        machine.send_charged(peer, SyncRequest(machine.ledger.height(), machine.view))
        self._arm_timer()

    def _arm_timer(self) -> None:
        self._cancel_timer()
        delay = self._rng.jitter(self._timeout_ms, self.machine.config.catchup_jitter)
        self._timer = self.machine.set_timer(delay, self._on_timeout)

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _on_timeout(self) -> None:
        if not self.active or self.machine.crashed:
            return
        self.retries += 1
        self._attempts += 1
        if self._attempts >= self.machine.config.catchup_max_retries:
            self.active = False
            self.gave_up = True
            self.peer = None
            self.machine.drop_sync_session()
            return
        self._timeout_ms = min(
            self._timeout_ms * self.machine.config.catchup_backoff,
            self.machine.config.catchup_max_timeout_ms,
        )
        self._send_request()
