"""The six evaluated protocols (paper Section 8) and their machinery.

* :mod:`~repro.protocols.hotstuff` - basic HotStuff (3f+1, 3 phases).
* :mod:`~repro.protocols.damysus_c` - Damysus-C (2f+1, 3 phases, Checker).
* :mod:`~repro.protocols.damysus_a` - Damysus-A (3f+1, 2 phases, Accumulator).
* :mod:`~repro.protocols.damysus` - Damysus (2f+1, 2 phases, both).
* :mod:`~repro.protocols.chained_hotstuff` - chained HotStuff.
* :mod:`~repro.protocols.chained_damysus` - Chained-Damysus.

Use :class:`~repro.protocols.system.ConsensusSystem` to build and run a
whole deployment from a :class:`~repro.config.SystemConfig`.
"""

from typing import Any

from repro.protocols.chained_damysus import ChainedDamysusReplica
from repro.protocols.chained_hotstuff import ChainedHotStuffReplica
from repro.protocols.client import Client
from repro.protocols.damysus import DamysusReplica
from repro.protocols.damysus_a import DamysusAReplica
from repro.protocols.damysus_c import DamysusCReplica
from repro.protocols.hotstuff import HotStuffReplica
from repro.protocols.pacemaker import Pacemaker, round_robin_leader
from repro.protocols.registry import PROTOCOL_ORDER, SPECS, ProtocolSpec, get_spec
from repro.protocols.replica import BaseReplica, QuorumCollector


def __getattr__(name: str) -> Any:
    # Lazy (PEP 562): the system builder lives with the simulator runtime
    # now, and importing a protocol module must not drag the simulator in.
    if name in ("ConsensusSystem", "RunResult"):
        from repro.runtime import sim as _sim

        return getattr(_sim, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BaseReplica",
    "QuorumCollector",
    "Pacemaker",
    "round_robin_leader",
    "HotStuffReplica",
    "DamysusReplica",
    "DamysusCReplica",
    "DamysusAReplica",
    "ChainedHotStuffReplica",
    "ChainedDamysusReplica",
    "Client",
    "ConsensusSystem",
    "RunResult",
    "ProtocolSpec",
    "SPECS",
    "PROTOCOL_ORDER",
    "get_spec",
]
