"""Chained (pipelined) HotStuff (paper Sections 3 and 7): the baseline
for Chained-Damysus.

One block is proposed per view and a single generic vote phase is
pipelined: the proposal of view v simultaneously serves as the prepare of
block b_v, the pre-commit of b_{v-1}, the commit of b_{v-2} and the
decide of b_{v-3}.  A block executes as the oldest of a chain of 4
consecutive blocks (Section 7.1), i.e. three direct-parent certified
links below a newly justified block.

Per view: one proposal broadcast (N messages) and one vote per replica to
the *next* leader (N messages); a block therefore costs 8 steps spread
over 4 views - Table 1's 24f + 8 messages.
"""

from __future__ import annotations

from typing import Any

from repro.core.block import Block, create_chain
from repro.core.certificate import QuorumCert, genesis_qc, vote_payload
from repro.core.messages import ChainedProposal, NewViewMsg, VoteMsg
from repro.core.phases import Phase
from repro.protocols.replica import BaseReplica, QuorumCollector


class ChainedHotStuffReplica(BaseReplica):
    """One replica of chained HotStuff."""

    protocol_name = "chained-hotstuff"

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        bottom = genesis_qc(self.store.genesis.hash)
        self.high_qc = bottom  # highest known certificate (generic QC)
        self.locked_qc = bottom  # 2-chain lock
        self._votes = QuorumCollector(self.quorum)
        self._new_views = QuorumCollector(self.quorum)
        self._proposed: set[int] = set()
        self._voted: set[int] = set()
        self.view = 1  # chained protocols start at view 1

    def reset_protocol_state(self) -> None:
        # high_qc and locked_qc survive on stable storage.
        self._votes = QuorumCollector(self.quorum)
        self._new_views = QuorumCollector(self.quorum)
        self._proposed.clear()
        self._voted.clear()

    # -- helpers ------------------------------------------------------------------

    def _just_of(self, block: Block) -> QuorumCert:
        """A block's justification; genesis justifies itself at view 0."""
        if block.justify is not None:
            return block.justify  # type: ignore[return-value]
        return genesis_qc(self.store.genesis.hash)

    def message_view(self, payload: Any) -> int | None:
        # Votes are addressed to the *next* view's leader, who collects
        # them after advancing; route them to view + 1.
        if isinstance(payload, VoteMsg):
            return payload.view + 1
        return super().message_view(payload)

    # -- lifecycle -------------------------------------------------------------------

    def start(self) -> None:
        self.pacemaker.start_view(self.view)
        if self.is_leader(self.view):
            self._try_propose(self.view)

    def on_view_timeout(self, view: int) -> None:
        self.advance_view(view + 1)
        self.send_charged(
            self.leader_of(self.view), NewViewMsg(self.view, self.high_qc)
        )

    def on_view_entered(self, view: int) -> None:
        if self.is_leader(view):
            self._try_propose(view)

    def prune_state(self, view: int) -> None:
        # Votes stamped view-1 are still being collected by this view's
        # leader, so prune two views back.
        horizon = view - 2
        self._votes.discard_before_view(horizon)
        self._new_views.discard_before_view(horizon)
        self._prune_view_sets(horizon, self._proposed, self._voted)

    # -- dispatch ----------------------------------------------------------------------

    def dispatch(self, sender: int, payload: Any) -> None:
        if isinstance(payload, ChainedProposal):
            self._handle_proposal(sender, payload)
        elif isinstance(payload, VoteMsg):
            self._handle_vote(sender, payload)
        elif isinstance(payload, NewViewMsg):
            self._handle_new_view(sender, payload)

    def on_stale(self, sender: int, payload: Any) -> None:
        if isinstance(payload, ChainedProposal):
            self.store.add(payload.block)

    # -- leader ---------------------------------------------------------------------------

    def _try_propose(self, view: int) -> None:
        """Propose when holding a certificate from the previous view.

        After a timeout the leader instead waits for 2f+1 new-view
        messages and extends the highest reported certificate (handled by
        :meth:`_handle_new_view`).
        """
        if view in self._proposed or not self.is_leader(view):
            return
        if self.high_qc.view == view - 1 or view == 1:
            self._propose(view)

    def _propose(self, view: int) -> None:
        self._proposed.add(view)
        block = create_chain(
            self.high_qc,
            view,
            self.mempool.take_block(self.now),
            created_at=self.now,
        )
        self.store.add(block)
        self.charge_sign()
        leader_sig = self.scheme.sign(
            self.pid, vote_payload(view, Phase.PREPARE, block.hash)
        )
        self.broadcast_charged(ChainedProposal(view, block, leader_sig), include_self=True)

    def _handle_new_view(self, sender: int, msg: NewViewMsg) -> None:
        if not self.is_leader(msg.view):
            return
        self.charge_verify(len(msg.justify.sigs))
        if not msg.justify.verify(self.scheme, self.quorum):
            return
        quorum = self._new_views.add(msg.view, msg, sender)
        if quorum is not None and msg.view not in self._proposed:
            best = max((m.justify for m in quorum), key=lambda qc: qc.view)
            if best.view > self.high_qc.view:
                self.high_qc = best
            self._propose(msg.view)

    # -- all replicas: proposal processing -----------------------------------------------------

    def _handle_proposal(self, sender: int, msg: ChainedProposal) -> None:
        if sender != self.leader_of(msg.view):
            return
        block = msg.block
        justify = self._just_of(block)
        self.charge_verify(len(justify.sigs) + 1)
        # QC verification routes through the scheme's batch path
        # (verify_all -> verify_many): one joint check for 2f+1 sigs.
        if not justify.verify(self.scheme, self.quorum):
            return
        if not self.scheme.verify_cached(
            vote_payload(msg.view, Phase.PREPARE, block.hash), msg.leader_sig
        ):
            return
        if not block.extends(justify.hash):
            return
        self.store.add(block)
        if justify.view > self.high_qc.view:
            self.high_qc = justify
        self._update_chain_state(block, justify)
        if msg.view not in self._voted and self._safe_node(block, justify):
            self._voted.add(msg.view)
            self.charge_sign()
            sig = self.scheme.sign(
                self.pid, vote_payload(msg.view, Phase.PREPARE, block.hash)
            )
            self.send_charged(
                self.leader_of(msg.view + 1),
                VoteMsg(msg.view, Phase.PREPARE, block.hash, sig),
            )
        self.pacemaker.view_succeeded()
        self.advance_view(msg.view + 1)

    def _safe_node(self, block: Block, justify: QuorumCert) -> bool:
        extends_locked = self.store.is_ancestor(self.locked_qc.block_hash, block.hash)
        return extends_locked or justify.view > self.locked_qc.view

    def _update_chain_state(self, block: Block, justify: QuorumCert) -> None:
        """Walk the certified chain: lock on a 2-chain, execute on a 3-chain.

        With b the new proposal: b2 is the block b.just certifies, b1 the
        block b2.just certifies, b0 the block b1.just certifies.  Direct
        parent links all the way down mean consecutive views (one
        certificate per view), so b0 heads a chain of 4 consecutive blocks
        and executes.
        """
        b2 = self.store.get(justify.hash)
        if b2 is None or not block.extends(b2.hash):
            return
        just2 = self._just_of(b2)
        b1 = self.store.get(just2.hash)
        if b1 is None or not b2.extends(b1.hash):
            return
        if just2.view > self.locked_qc.view:
            self.locked_qc = just2  # lock on the 2-chain
        just1 = self._just_of(b1)
        b0 = self.store.get(just1.hash)
        if b0 is None or not b1.extends(b0.hash):
            return
        if not b0.is_genesis:
            self.execute_block(b0, block.view)

    # -- next leader: vote aggregation ------------------------------------------------------------

    def _handle_vote(self, sender: int, msg: VoteMsg) -> None:
        if not self.is_leader(msg.view + 1):
            return
        self.charge_verify(1)
        if not self.scheme.verify_cached(
            vote_payload(msg.view, msg.phase, msg.block_hash), msg.sig
        ):
            return
        sigs = self._votes.add((msg.view, msg.block_hash), msg.sig, msg.sig.signer)
        if sigs is None:
            return
        qc = QuorumCert(msg.view, msg.block_hash, Phase.PREPARE, tuple(sigs))
        if qc.view > self.high_qc.view:
            self.high_qc = qc
        self._try_propose(msg.view + 1)
