"""Basic HotStuff (paper Section 3): 3f+1 replicas, 3 core phases.

The baseline the paper compares against.  Eight communication steps per
view: new-view, proposal, prepare votes, prepare-QC broadcast, pre-commit
votes, pre-commit-QC broadcast, commit votes, decide broadcast - which is
Table 1's ``24f + 8`` messages (self-messages included).

Safety comes from the locking scheme: replicas lock on a pre-commit QC
and the SafeNode predicate only accepts proposals that extend the locked
block or are justified at a higher view than the lock.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.crypto.scheme import Signature
from repro.crypto.threshold import ThresholdScheme, is_group_signature
from repro.errors import VerificationError
from repro.core.block import Block, create_leaf
from repro.core.certificate import QuorumCert, genesis_qc, vote_payload
from repro.core.messages import NewViewMsg, ProposalMsg, QCMsg, VoteMsg
from repro.core.phases import Phase
from repro.protocols.replica import BaseReplica, QuorumCollector

#: The vote phase that follows each QC phase.
_NEXT_VOTE = {
    Phase.PREPARE: Phase.PRECOMMIT,
    Phase.PRECOMMIT: Phase.COMMIT,
}


class HotStuffReplica(BaseReplica):
    """One replica of basic HotStuff."""

    protocol_name = "hotstuff"

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        bottom = genesis_qc(self.store.genesis.hash)
        self.prepare_qc = bottom  # latest prepared block's certificate
        self.locked_qc = bottom  # the lock (pre-commit QC)
        # Optional original-HotStuff-style compact certificates: leaders
        # combine vote shares into one constant-size threshold signature.
        self.threshold: ThresholdScheme | None = None
        if self.config.compact_qcs:
            self.threshold = ThresholdScheme(
                self.scheme,
                group_name="hotstuff-replicas",
                members=list(self.replica_pids),
                threshold=self.quorum,
            )
        self._new_views = QuorumCollector(self.quorum)
        self._votes = QuorumCollector(self.quorum)
        self._proposed: set[int] = set()
        self._voted: set[tuple[int, Phase]] = set()
        self._decided: set[int] = set()
        # Consensus views start at 1; view 0 belongs to the genesis block,
        # so any genuinely prepared block outranks the genesis certificate.
        self.view = 1

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> None:
        self.pacemaker.start_view(self.view)
        self._send_new_view()

    def _send_new_view(self) -> None:
        """Report the latest prepared block to the current view's leader."""
        self.send_charged(
            self.leader_of(self.view), NewViewMsg(self.view, self.prepare_qc)
        )

    def on_view_entered(self, view: int) -> None:
        self._send_new_view()

    def prune_state(self, view: int) -> None:
        # Keep one view of slack: stale messages cannot resurrect pruned
        # state because the dispatcher drops below-view traffic anyway.
        horizon = view - 1
        self._new_views.discard_before_view(horizon)
        self._votes.discard_before_view(horizon)
        self._prune_view_sets(horizon, self._proposed, self._voted, self._decided)

    def on_view_timeout(self, view: int) -> None:
        # Advancing one view per timeout cannot re-synchronize replicas
        # that drifted apart: at the backoff cap everyone moves at the
        # same rate, so a stable multi-view offset (left behind by a
        # crash or partition) persists and no quorum ever shares a view.
        # Jump to the highest view corroborated by f+1 distinct senders
        # - at least one of them honest - which is exactly the watermark
        # behind-detection already maintains.
        self.advance_view(max(view + 1, self._highest_view_seen))

    def reset_protocol_state(self) -> None:
        # Vote aggregation is volatile; prepare_qc and locked_qc survive
        # the crash because HotStuff's crash-recovery model keeps
        # safety-critical certificates on stable storage.
        self._new_views = QuorumCollector(self.quorum)
        self._votes = QuorumCollector(self.quorum)
        self._proposed.clear()
        self._voted.clear()
        self._decided.clear()

    def on_recovered(self) -> None:
        self._send_new_view()

    # -- certificate verification ---------------------------------------------------

    def _verify_qc(self, qc: QuorumCert) -> bool:
        """Verify a quorum certificate in either representation.

        Compact (threshold) certificates verify in constant time -
        modelled as two signature-verification units, BLS-pairing style -
        while list certificates cost one verification per signer.
        """
        if qc.is_genesis:
            return True
        if len(qc.sigs) == 1 and is_group_signature(qc.sigs[0]):
            if self.threshold is None:
                return False
            self.charge_verify(2)
            return self.threshold.verify_group(qc.signed_payload(), qc.sigs[0])
        self.charge_verify(len(qc.sigs))
        # List certificates verify through the scheme's batch path
        # (verify_all -> verify_many): one joint check for 2f+1 sigs.
        return qc.verify(self.scheme, self.quorum)

    def _make_qc(
        self, view: int, phase: Phase, block_hash: bytes, sigs: Sequence[Signature]
    ) -> QuorumCert:
        if self.threshold is not None:
            payload = vote_payload(view, phase, block_hash)
            # Shares were verified on arrival; the TEE-free combine
            # re-checks them, which we charge as quorum verifications.
            self.charge_verify(len(sigs))
            group = self.threshold.combine(payload, list(sigs))
            return QuorumCert(view, block_hash, phase, (group,))
        return QuorumCert(view, block_hash, phase, tuple(sigs))

    # -- dispatch ----------------------------------------------------------------

    def dispatch(self, sender: int, payload: Any) -> None:
        if isinstance(payload, NewViewMsg):
            self._handle_new_view(sender, payload)
        elif isinstance(payload, ProposalMsg):
            self._handle_proposal(sender, payload)
        elif isinstance(payload, VoteMsg):
            self._handle_vote(sender, payload)
        elif isinstance(payload, QCMsg):
            self._handle_qc(sender, payload)

    def on_stale(self, sender: int, payload: Any) -> None:
        # Keep blocks from proposals that arrive after the view moved on:
        # execution follows certified hashes, so a replica that skipped a
        # decide still needs the block to execute descendants later.
        if isinstance(payload, ProposalMsg):
            self.store.add(payload.block)

    # -- leader: new-view and proposal ----------------------------------------------

    def _handle_new_view(self, sender: int, msg: NewViewMsg) -> None:
        if not self.is_leader(msg.view):
            return
        quorum = self._new_views.add(msg.view, msg, sender)
        if quorum is not None and msg.view not in self._proposed:
            self._propose(msg.view, quorum)

    def _propose(self, view: int, new_views: list[NewViewMsg]) -> None:
        """Extend the highest prepared block among 2f+1 reports (Section 3)."""
        high_qc = max((m.justify for m in new_views), key=lambda qc: qc.view)
        if not self._verify_qc(high_qc):
            return
        self._proposed.add(view)
        block = create_leaf(
            high_qc.block_hash,
            view,
            self.mempool.take_block(self.now),
            created_at=self.now,
        )
        self.store.add(block)
        self.broadcast_charged(ProposalMsg(view, block, high_qc), include_self=True)

    # -- backup: SafeNode and voting ---------------------------------------------------

    def _safe_node(self, block: Block, justify: QuorumCert) -> bool:
        """Paper Section 3: extends the lock, or justified above the lock."""
        extends_locked = self.store.is_ancestor(self.locked_qc.block_hash, block.hash)
        return extends_locked or justify.view > self.locked_qc.view

    def _handle_proposal(self, sender: int, msg: ProposalMsg) -> None:
        if sender != self.leader_of(msg.view):
            return
        if (msg.view, Phase.PREPARE) in self._voted:
            return
        if not self._verify_qc(msg.justify):
            return
        if not msg.block.extends(msg.justify.block_hash):
            return
        self.store.add(msg.block)
        if not self._safe_node(msg.block, msg.justify):
            return
        self._vote(msg.view, Phase.PREPARE, msg.block.hash)

    def _vote(self, view: int, phase: Phase, block_hash: bytes) -> None:
        self._voted.add((view, phase))
        self.charge_sign()
        sig = self.scheme.sign(self.pid, vote_payload(view, phase, block_hash))
        self.send_charged(self.leader_of(view), VoteMsg(view, phase, block_hash, sig))

    # -- leader: vote aggregation ---------------------------------------------------------

    def _handle_vote(self, sender: int, msg: VoteMsg) -> None:
        if not self.is_leader(msg.view):
            return
        self.charge_verify(1)
        if not self.scheme.verify_cached(
            vote_payload(msg.view, msg.phase, msg.block_hash), msg.sig
        ):
            return
        key = (msg.view, msg.phase, msg.block_hash)
        sigs = self._votes.add(key, msg.sig, msg.sig.signer)
        if sigs is None:
            return
        try:
            qc = self._make_qc(msg.view, msg.phase, msg.block_hash, sigs)
        except VerificationError:
            return
        self.broadcast_charged(QCMsg(msg.view, msg.phase, qc), include_self=True)

    # -- all replicas: QC handling ------------------------------------------------------------

    def _handle_qc(self, sender: int, msg: QCMsg) -> None:
        if sender != self.leader_of(msg.view):
            return
        qc = msg.qc
        if qc.view != msg.view or qc.phase != msg.phase:
            return
        if not self._verify_qc(qc):
            return
        if qc.phase == Phase.PREPARE:
            if qc.view > self.prepare_qc.view:
                self.prepare_qc = qc  # the block is now prepared
        elif qc.phase == Phase.PRECOMMIT:
            if qc.view > self.locked_qc.view:
                self.locked_qc = qc  # the block is now locked
        elif qc.phase == Phase.COMMIT:
            self._decide(msg.view, qc)
            return
        next_phase = _NEXT_VOTE.get(qc.phase)
        if next_phase is not None and (msg.view, next_phase) not in self._voted:
            self._vote(msg.view, next_phase, qc.block_hash)

    def _decide(self, view: int, qc: QuorumCert) -> None:
        if view in self._decided:
            return
        self._decided.add(view)
        block = self.store.get(qc.block_hash)
        if block is not None:
            self.execute_block(block, view)
        self.pacemaker.view_succeeded()
        self.advance_view(view + 1)  # on_view_entered sends the new-view
