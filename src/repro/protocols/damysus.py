"""Damysus (paper Section 6, Fig 2): 2f+1 replicas, 2 core phases.

Every replica carries a Checker and an Accumulator trusted component.
Six communication steps per view (Table 1's ``12f + 6`` messages,
self-messages included): new-view commitments, proposal, prepare votes,
prepare-QC broadcast, pre-commit votes, decide broadcast.

No locking phase: the accumulator certifies that the leader extended the
highest prepared block among f+1 TEE-attested reports, so a proposal with
a valid accumulator for the current view is safe by construction.
"""

from __future__ import annotations

from typing import Any

from repro.errors import TEERefusal
from repro.core.block import create_leaf
from repro.core.commitment import Commitment, c_combine, c_match
from repro.core.messages import BlockProposal, CommitmentMsg
from repro.core.phases import Phase, Step, StepRule
from repro.protocols.replica import BaseReplica, QuorumCollector
from repro.tee.accumulator import AccumulatorService
from repro.tee.checker import Checker

#: CommitmentMsg kinds used on the wire.
KIND_NEW_VIEW = "damysus-new-view"
KIND_PREP_VOTE = "damysus-prep-vote"
KIND_PREP_QC = "damysus-prep-qc"
KIND_PCOM_VOTE = "damysus-pcom-vote"
KIND_DECIDE = "damysus-decide"


class DamysusReplica(BaseReplica):
    """One replica of Damysus (Fig 2a), with its trusted services."""

    protocol_name = "damysus"
    step_rule = StepRule.BASIC

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.checker = self._make_checker()
        self.acc_service = AccumulatorService(
            self.pid, self.scheme, self.directory, self.quorum
        )
        self._new_views = QuorumCollector(self.quorum)
        self._prep_votes = QuorumCollector(self.quorum)
        self._pcom_votes = QuorumCollector(self.quorum)
        self._proposed: set[int] = set()
        self._stored: set[int] = set()
        self._decided: set[int] = set()
        # Consensus views start at 1; genesis owns view 0, so the first
        # genuinely prepared block outranks genesis in accumulations.
        self.view = 1

    def _make_checker(self) -> Checker:
        return Checker(
            self.pid,
            self.scheme,
            self.directory,
            self.store.genesis.hash,
            self.quorum,
        )

    # -- lifecycle ----------------------------------------------------------------

    #: CommitmentMsg kind used for this protocol's new-view messages
    #: (Damysus-C overrides it).
    nv_kind = KIND_NEW_VIEW

    def start(self) -> None:
        self.pacemaker.start_view(self.view)
        self._send_new_view_commitment()

    def on_view_entered(self, view: int) -> None:
        # Runs before buffered messages replay, so the checker's (v, nv_p)
        # step is always consumed before a leader can reach TEEprepare -
        # otherwise the prepare commitment would be stamped with the
        # new-view phase and no backup would accept it.
        self._send_new_view_commitment()

    def _send_new_view_commitment(self) -> None:
        """Fig 2a lines 41-47: TEEsign until stamped (view, nv_p), then send.

        A node that left a view mid-way has a checker sitting at an
        intermediate step; repeatedly calling TEEsign skips those steps
        (the intermediate commitments are unusable by construction).
        """
        target = Step(self.view, Phase.NEW_VIEW)
        rule = self.checker.step_rule
        phi: Commitment | None = None
        while self.checker.step.index(rule) <= target.index(rule):
            self.charge_tee(signs=1)
            phi = self.checker.tee_sign()
            if phi.v_prep == target.view and phi.phase == target.phase:
                break
            phi = None
        if phi is not None:
            self.send_charged(
                self.leader_of(self.view), CommitmentMsg(phi, self.nv_kind)
            )

    def on_view_timeout(self, view: int) -> None:
        self.advance_view(view + 1)

    def reset_protocol_state(self) -> None:
        # A crash loses all in-memory vote aggregation; the checker's
        # sealed step/prepared state is what keeps the restart safe.
        self._new_views = QuorumCollector(self.quorum)
        self._prep_votes = QuorumCollector(self.quorum)
        self._pcom_votes = QuorumCollector(self.quorum)
        self._proposed.clear()
        self._stored.clear()
        self._decided.clear()

    def on_recovered(self) -> None:
        # Announce the unsealed checker's latest prepared block so the
        # current leader can count this replica again (Fig 2a lines 41-47).
        self._send_new_view_commitment()

    def prune_state(self, view: int) -> None:
        horizon = view - 1
        self._new_views.discard_before_view(horizon)
        self._prep_votes.discard_before_view(horizon)
        self._pcom_votes.discard_before_view(horizon)
        self._prune_view_sets(
            horizon, self._proposed, self._stored, self._decided
        )

    # -- dispatch -------------------------------------------------------------------

    def dispatch(self, sender: int, payload: Any) -> None:
        if isinstance(payload, CommitmentMsg):
            handler = {
                KIND_NEW_VIEW: self._handle_new_view,
                KIND_PREP_VOTE: self._handle_prep_vote,
                KIND_PREP_QC: self._handle_prep_qc,
                KIND_PCOM_VOTE: self._handle_pcom_vote,
                KIND_DECIDE: self._handle_decide,
            }.get(payload.kind)
            if handler is not None:
                handler(sender, payload.commitment)
        elif isinstance(payload, BlockProposal):
            self._handle_proposal(sender, payload)

    def on_stale(self, sender: int, payload: Any) -> None:
        if isinstance(payload, BlockProposal):
            self.store.add(payload.block)

    # -- untrusted TEE-certificate verification ----------------------------------------

    def _verify_tee_commitment(self, phi: Commitment, expected_sigs: int) -> bool:
        if len(phi.sigs) != expected_sigs:
            return False
        if any(self.directory.kind_of(sig.signer) != "tee" for sig in phi.sigs):
            return False
        return phi.verify(self.scheme)

    # -- prepare phase: leader ------------------------------------------------------------

    def _handle_new_view(self, sender: int, phi: Commitment) -> None:
        if not self.is_leader(phi.v_prep):
            return
        if phi.phase != Phase.NEW_VIEW or phi.h_prep is not None or len(phi.sigs) != 1:
            return
        self.charge_verify(1)
        if not self._verify_tee_commitment(phi, expected_sigs=1):
            return
        quorum = self._new_views.add(phi.v_prep, phi, phi.sigs[0].signer)
        if quorum is not None and phi.v_prep not in self._proposed:
            self._propose(phi.v_prep, quorum)

    def _propose(self, view: int, phis: list[Commitment]) -> None:
        """Fig 2a lines 6-10: accumulate, extend, TEE-prepare, broadcast."""
        if not c_match(phis, self.quorum, None, view, Phase.NEW_VIEW):
            return
        # accumList: one TEEstart + f TEEaccum + one TEEfinalize, each
        # verifying and re-signing inside the enclave.
        self.charge(
            (self.quorum + 1) * self.costs.tee_op_ms(signs=1, verifies=1)
        )
        try:
            acc = self.acc_service.accumulate(phis)
        except TEERefusal:
            return
        self._proposed.add(view)
        block = create_leaf(
            acc.prep_hash,
            view,
            self.mempool.take_block(self.now),
            created_at=self.now,
        )
        self.store.add(block)
        self.charge_tee(signs=1, verifies=1)
        try:
            phi_prep = self.checker.tee_prepare(block.hash, acc)
        except TEERefusal:
            return
        self.broadcast_charged(
            BlockProposal(view, block, acc, phi_prep.sigs[0]), include_self=True
        )
        # The leader's own prepare vote travels as a self-message so that
        # vote aggregation is uniform (and message counts match Table 1).
        self.send_charged(self.pid, CommitmentMsg(phi_prep, KIND_PREP_VOTE))

    # -- prepare phase: backups -------------------------------------------------------------

    def _handle_proposal(self, sender: int, msg: BlockProposal) -> None:
        if sender != self.leader_of(msg.view):
            return
        if sender == self.pid:
            return  # own broadcast copy; the self-vote already went out
        acc = msg.acc
        if acc is None or not acc.finalized or len(acc) != self.quorum:
            return
        if acc.made_in_view != msg.view:
            return
        # Fig 2a lines 14-16: reconstruct and verify the leader's prepare
        # commitment, and check the proposal extends the accumulated block.
        phi_prep = Commitment(
            h_prep=msg.block.hash,
            v_prep=msg.view,
            h_just=acc.prep_hash,
            v_just=acc.prep_view,
            phase=Phase.PREPARE,
            sigs=(msg.leader_sig,),
        )
        self.charge_verify(2)  # leader commitment + accumulator signature
        if not self._verify_tee_commitment(phi_prep, expected_sigs=1):
            return
        if not msg.block.extends(acc.prep_hash):
            return
        self.store.add(msg.block)
        self.charge_tee(signs=1, verifies=1)
        try:
            phi = self.checker.tee_prepare(msg.block.hash, acc)
        except TEERefusal:
            return
        self.send_charged(self.leader_of(msg.view), CommitmentMsg(phi, KIND_PREP_VOTE))

    # -- pre-commit phase ----------------------------------------------------------------------

    def _handle_prep_vote(self, sender: int, phi: Commitment) -> None:
        if not self.is_leader(phi.v_prep):
            return
        if phi.phase != Phase.PREPARE or phi.h_prep is None or len(phi.sigs) != 1:
            return
        self.charge_verify(1)
        if not self._verify_tee_commitment(phi, expected_sigs=1):
            return
        key = (phi.v_prep, phi.h_prep, phi.h_just, phi.v_just)
        quorum = self._prep_votes.add(key, phi, phi.sigs[0].signer)
        if quorum is None:
            return
        if not c_match(quorum, self.quorum, phi.h_prep, phi.v_prep, Phase.PREPARE):
            return
        combined = c_combine(quorum)
        self.broadcast_charged(CommitmentMsg(combined, KIND_PREP_QC), include_self=True)

    def _handle_prep_qc(self, sender: int, phi: Commitment) -> None:
        if sender != self.leader_of(phi.v_prep):
            return
        if phi.v_prep in self._stored:
            return
        self._stored.add(phi.v_prep)
        self.charge_tee(signs=1, verifies=self.quorum)
        try:
            phi_store = self.checker.tee_store(phi)
        except TEERefusal:
            return
        self.send_charged(
            self.leader_of(phi.v_prep), CommitmentMsg(phi_store, KIND_PCOM_VOTE)
        )

    # -- decide phase ----------------------------------------------------------------------------

    def _handle_pcom_vote(self, sender: int, phi: Commitment) -> None:
        if not self.is_leader(phi.v_prep):
            return
        if phi.phase != Phase.PRECOMMIT or phi.h_prep is None or len(phi.sigs) != 1:
            return
        self.charge_verify(1)
        if not self._verify_tee_commitment(phi, expected_sigs=1):
            return
        key = (phi.v_prep, phi.h_prep)
        quorum = self._pcom_votes.add(key, phi, phi.sigs[0].signer)
        if quorum is None:
            return
        if not c_match(quorum, self.quorum, phi.h_prep, phi.v_prep, Phase.PRECOMMIT):
            return
        combined = c_combine(quorum)
        self.broadcast_charged(CommitmentMsg(combined, KIND_DECIDE), include_self=True)

    def _handle_decide(self, sender: int, phi: Commitment) -> None:
        if sender != self.leader_of(phi.v_prep):
            return
        if phi.v_prep in self._decided:
            return
        if phi.phase != Phase.PRECOMMIT or phi.h_prep is None:
            return
        self.charge_verify(self.quorum)
        if not self._verify_tee_commitment(phi, expected_sigs=self.quorum):
            return
        self._decided.add(phi.v_prep)
        self.note_commit_qc(phi)
        block = self.store.get(phi.h_prep)
        if block is not None:
            self.execute_block(block, phi.v_prep)
        self.pacemaker.view_succeeded()
        self.advance_view(phi.v_prep + 1)  # on_view_entered sends the new-view
