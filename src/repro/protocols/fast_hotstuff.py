"""Fast-HotStuff (Jalalzai, Niu, Feng 2020) - the TEE-free 2-phase baseline.

Section 2 of the DAMYSUS paper situates Fast-HotStuff as the alternative
way to drop HotStuff's third phase *without* trusted components: after an
unhappy view change, "leaders send proofs that the blocks they extend are
the highest received blocks.  This requires larger messages (containing
an aggregated vector of 2f+1 quorum certificates) but improves latency".

This implementation follows that description:

* 3f+1 replicas, 2f+1 quorums, no trusted components;
* happy path: the leader holds the prepare QC of view v-1 and proposes
  directly - two core phases (prepare, pre-commit) plus decide;
* unhappy path: the proposal carries an *aggregate proof* - the 2f+1
  signed new-view reports the leader collected - and backups check that
  the extended certificate is the highest among them.

Including it lets the benchmarks quantify the trade-off the paper
alludes to: Damysus gets 2 phases at 2f+1 with constant-size messages,
Fast-HotStuff gets 2 phases at 3f+1 by shipping O(n) certificates after
faults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.block import Block, create_leaf
from repro.core.certificate import QuorumCert, genesis_qc, vote_payload
from repro.core.messages import MSG_HEADER_BYTES, NewViewAMsg, QCMsg, VoteMsg
from repro.core.phases import Phase
from repro.protocols.replica import BaseReplica, QuorumCollector
from repro.tee.accumulator import new_view_a_payload


@dataclass(frozen=True)
class FastProposal:
    """Fast-HotStuff proposal: block + high QC + optional aggregate proof.

    ``proof`` is present exactly when ``justify`` is not from view-1: the
    2f+1 signed new-view reports demonstrating that ``justify`` was the
    highest certificate the leader received.
    """

    view: int
    block: Block
    justify: QuorumCert
    proof: tuple[NewViewAMsg, ...] | None = None

    msg_type = "fast-proposal"

    def wire_size(self) -> int:
        size = MSG_HEADER_BYTES + 4 + self.block.wire_size() + self.justify.wire_size()
        if self.proof is not None:
            size += sum(report.wire_size() for report in self.proof)
        return size


class FastHotStuffReplica(BaseReplica):
    """One Fast-HotStuff replica."""

    protocol_name = "fast-hotstuff"

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.prepare_qc = genesis_qc(self.store.genesis.hash)
        self._new_views = QuorumCollector(self.quorum)
        self._votes = QuorumCollector(self.quorum)
        self._proposed: set[int] = set()
        self._voted: set[tuple[int, Phase]] = set()
        self._decided: set[int] = set()
        self.view = 1

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        self.pacemaker.start_view(self.view)
        self._send_new_view()

    def reset_protocol_state(self) -> None:
        # prepare_qc is kept on stable storage across the crash.
        self._new_views = QuorumCollector(self.quorum)
        self._votes = QuorumCollector(self.quorum)
        self._proposed.clear()
        self._voted.clear()
        self._decided.clear()

    def on_recovered(self) -> None:
        self._send_new_view()

    def _send_new_view(self) -> None:
        self.charge_sign()
        sig = self.scheme.sign(self.pid, new_view_a_payload(self.view, self.prepare_qc))
        self.send_charged(
            self.leader_of(self.view), NewViewAMsg(self.view, self.prepare_qc, sig)
        )

    def on_view_entered(self, view: int) -> None:
        self._send_new_view()
        if self.is_leader(view) and self.prepare_qc.view == view - 1:
            self._propose_happy(view)

    def on_view_timeout(self, view: int) -> None:
        self.advance_view(view + 1)

    def prune_state(self, view: int) -> None:
        horizon = view - 1
        self._new_views.discard_before_view(horizon)
        self._votes.discard_before_view(horizon)
        self._prune_view_sets(horizon, self._proposed, self._voted, self._decided)

    # -- dispatch -------------------------------------------------------------------

    def dispatch(self, sender: int, payload: Any) -> None:
        if isinstance(payload, NewViewAMsg):
            self._handle_new_view(sender, payload)
        elif isinstance(payload, FastProposal):
            self._handle_proposal(sender, payload)
        elif isinstance(payload, VoteMsg):
            self._handle_vote(sender, payload)
        elif isinstance(payload, QCMsg):
            self._handle_qc(sender, payload)

    def on_stale(self, sender: int, payload: Any) -> None:
        if isinstance(payload, FastProposal):
            self.store.add(payload.block)

    # -- leader --------------------------------------------------------------------------

    def _propose_happy(self, view: int) -> None:
        """Happy path: extend the certificate from the previous view."""
        if view in self._proposed:
            return
        self._proposed.add(view)
        block = create_leaf(
            self.prepare_qc.block_hash,
            view,
            self.mempool.take_block(self.now),
            created_at=self.now,
        )
        self.store.add(block)
        self.broadcast_charged(
            FastProposal(view, block, self.prepare_qc, proof=None), include_self=True
        )

    def _handle_new_view(self, sender: int, msg: NewViewAMsg) -> None:
        if not self.is_leader(msg.view):
            return
        self.charge_verify(1)
        if not self.scheme.verify_cached(
            new_view_a_payload(msg.view, msg.justify), msg.sender_sig
        ):
            return
        reports = self._new_views.add(msg.view, msg, msg.sender_sig.signer)
        if reports is None or msg.view in self._proposed:
            return
        best = max(reports, key=lambda report: report.justify.view)
        self.charge_verify(len(best.justify.sigs))
        if not best.justify.verify(self.scheme, self.quorum):
            return
        if best.justify.view > self.prepare_qc.view:
            self.prepare_qc = best.justify
        if self.prepare_qc.view == msg.view - 1:
            self._propose_happy(msg.view)
            return
        # Unhappy path: ship the aggregate proof with the proposal.
        self._proposed.add(msg.view)
        block = create_leaf(
            self.prepare_qc.block_hash,
            msg.view,
            self.mempool.take_block(self.now),
            created_at=self.now,
        )
        self.store.add(block)
        self.broadcast_charged(
            FastProposal(msg.view, block, self.prepare_qc, proof=tuple(reports)),
            include_self=True,
        )

    # -- backups -----------------------------------------------------------------------------

    def _proof_valid(self, msg: FastProposal) -> bool:
        """Check the aggregate proof of an unhappy-path proposal.

        Structural checks run first (they are free and reject most bad
        proofs); the 2f+1 report signatures are then checked jointly via
        the scheme's batch path - each report signs a different payload,
        which is exactly the cross-message shape ``verify_many`` handles.
        """
        proof = msg.proof or ()
        if len(proof) != self.quorum:
            return False
        signers: set[int] = set()
        self.charge_verify(len(proof))
        justify_seen = False
        for report in proof:
            if report.view != msg.view:
                return False
            if report.sender_sig.signer in signers:
                return False
            signers.add(report.sender_sig.signer)
            if report.justify.view > msg.justify.view:
                return False  # the leader did not extend the highest
            if (
                report.justify.view == msg.justify.view
                and report.justify.block_hash == msg.justify.block_hash
            ):
                justify_seen = True
        if not justify_seen:
            return False
        return all(
            self.scheme.verify_many_cached(
                [
                    (new_view_a_payload(report.view, report.justify), report.sender_sig)
                    for report in proof
                ]
            )
        )

    def _handle_proposal(self, sender: int, msg: FastProposal) -> None:
        if sender != self.leader_of(msg.view):
            return
        if (msg.view, Phase.PREPARE) in self._voted:
            return
        self.charge_verify(len(msg.justify.sigs))
        if not msg.justify.verify(self.scheme, self.quorum):
            return
        if not msg.block.extends(msg.justify.block_hash):
            return
        if msg.justify.view != msg.view - 1 and not self._proof_valid(msg):
            return
        self.store.add(msg.block)
        self._vote(msg.view, Phase.PREPARE, msg.block.hash)

    def _vote(self, view: int, phase: Phase, block_hash: bytes) -> None:
        self._voted.add((view, phase))
        self.charge_sign()
        sig = self.scheme.sign(self.pid, vote_payload(view, phase, block_hash))
        self.send_charged(self.leader_of(view), VoteMsg(view, phase, block_hash, sig))

    # -- vote aggregation and decide ----------------------------------------------------------------

    def _handle_vote(self, sender: int, msg: VoteMsg) -> None:
        if not self.is_leader(msg.view):
            return
        self.charge_verify(1)
        if not self.scheme.verify_cached(
            vote_payload(msg.view, msg.phase, msg.block_hash), msg.sig
        ):
            return
        sigs = self._votes.add((msg.view, msg.phase, msg.block_hash), msg.sig, msg.sig.signer)
        if sigs is None:
            return
        qc = QuorumCert(msg.view, msg.block_hash, msg.phase, tuple(sigs))
        self.broadcast_charged(QCMsg(msg.view, msg.phase, qc), include_self=True)

    def _handle_qc(self, sender: int, msg: QCMsg) -> None:
        if sender != self.leader_of(msg.view):
            return
        qc = msg.qc
        if qc.view != msg.view or qc.phase != msg.phase:
            return
        self.charge_verify(len(qc.sigs))
        if not qc.verify(self.scheme, self.quorum):
            return
        if qc.phase == Phase.PREPARE:
            if qc.view > self.prepare_qc.view:
                self.prepare_qc = qc
            if (msg.view, Phase.PRECOMMIT) not in self._voted:
                self._vote(msg.view, Phase.PRECOMMIT, qc.block_hash)
        elif qc.phase == Phase.PRECOMMIT:
            self._decide(msg.view, qc)

    def _decide(self, view: int, qc: QuorumCert) -> None:
        if view in self._decided:
            return
        self._decided.add(view)
        block = self.store.get(qc.block_hash)
        if block is not None:
            self.execute_block(block, view)
        self.pacemaker.view_succeeded()
        self.advance_view(view + 1)
