"""Protocol registry: names, replica factories and analytic properties.

One row per evaluated protocol (the table in Section 8, "Implemented
protocols"), carrying the replica class plus the closed-form quantities
Table 1 reports: replica count, quorum size, core phases, communication
steps and normal-case message count per decided block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Type

from repro.errors import ConfigError
from repro.protocols.chained_damysus import ChainedDamysusReplica
from repro.protocols.chained_hotstuff import ChainedHotStuffReplica
from repro.protocols.damysus import DamysusReplica
from repro.protocols.damysus_a import DamysusAReplica
from repro.protocols.damysus_c import DamysusCReplica
from repro.protocols.fast_hotstuff import FastHotStuffReplica
from repro.protocols.hotstuff import HotStuffReplica
from repro.protocols.replica import BaseReplica


@dataclass(frozen=True)
class ProtocolSpec:
    """Static properties of one protocol."""

    name: str
    replica_class: Type[BaseReplica]
    num_replicas: Callable[[int], int]  # N as a function of f
    quorum: Callable[[int], int]  # quorum size as a function of f
    core_phases: int
    comm_steps: int  # communication steps per decided block
    messages_normal_case: Callable[[int], int]  # per decided block, incl self
    chained: bool
    trusted_components: tuple[str, ...]
    max_faults: Callable[[int], int]  # tolerated faults for N replicas

    def describe(self) -> str:
        return (
            f"{self.name}: N={self.num_replicas.__doc__}, "
            f"{self.core_phases} core phases, {self.comm_steps} steps"
        )


def _n_3f1(f: int) -> int:
    """3f+1"""
    return 3 * f + 1


def _n_2f1(f: int) -> int:
    """2f+1"""
    return 2 * f + 1


SPECS: dict[str, ProtocolSpec] = {
    "hotstuff": ProtocolSpec(
        name="hotstuff",
        replica_class=HotStuffReplica,
        num_replicas=_n_3f1,
        quorum=lambda f: 2 * f + 1,
        core_phases=3,
        comm_steps=8,
        messages_normal_case=lambda f: 24 * f + 8,
        chained=False,
        trusted_components=(),
        max_faults=lambda n: (n - 1) // 3,
    ),
    "damysus-c": ProtocolSpec(
        name="damysus-c",
        replica_class=DamysusCReplica,
        num_replicas=_n_2f1,
        quorum=lambda f: f + 1,
        core_phases=3,
        comm_steps=8,
        messages_normal_case=lambda f: 16 * f + 8,
        chained=False,
        trusted_components=("checker",),
        max_faults=lambda n: (n - 1) // 2,
    ),
    "damysus-a": ProtocolSpec(
        name="damysus-a",
        replica_class=DamysusAReplica,
        num_replicas=_n_3f1,
        quorum=lambda f: 2 * f + 1,
        core_phases=2,
        comm_steps=6,
        messages_normal_case=lambda f: 18 * f + 6,
        chained=False,
        trusted_components=("accumulator",),
        max_faults=lambda n: (n - 1) // 3,
    ),
    "damysus": ProtocolSpec(
        name="damysus",
        replica_class=DamysusReplica,
        num_replicas=_n_2f1,
        quorum=lambda f: f + 1,
        core_phases=2,
        comm_steps=6,
        messages_normal_case=lambda f: 12 * f + 6,
        chained=False,
        trusted_components=("checker", "accumulator"),
        max_faults=lambda n: (n - 1) // 2,
    ),
    "chained-hotstuff": ProtocolSpec(
        name="chained-hotstuff",
        replica_class=ChainedHotStuffReplica,
        num_replicas=_n_3f1,
        quorum=lambda f: 2 * f + 1,
        core_phases=3,
        comm_steps=8,
        messages_normal_case=lambda f: 24 * f + 8,
        chained=True,
        trusted_components=(),
        max_faults=lambda n: (n - 1) // 3,
    ),
    "chained-damysus": ProtocolSpec(
        name="chained-damysus",
        replica_class=ChainedDamysusReplica,
        num_replicas=_n_2f1,
        quorum=lambda f: f + 1,
        core_phases=2,
        comm_steps=6,
        messages_normal_case=lambda f: 12 * f + 6,
        chained=True,
        trusted_components=("checker", "accumulator"),
        max_faults=lambda n: (n - 1) // 2,
    ),
    # Not one of the paper's six evaluated protocols: the TEE-free 2-phase
    # baseline discussed in Section 2, used by the ablation benchmarks.
    "fast-hotstuff": ProtocolSpec(
        name="fast-hotstuff",
        replica_class=FastHotStuffReplica,
        num_replicas=_n_3f1,
        quorum=lambda f: 2 * f + 1,
        core_phases=2,
        comm_steps=6,
        messages_normal_case=lambda f: 18 * f + 6,
        chained=False,
        trusted_components=(),
        max_faults=lambda n: (n - 1) // 3,
    ),
}

#: Evaluation order used in the paper's Section 8 table.
PROTOCOL_ORDER = [
    "hotstuff",
    "damysus-c",
    "damysus-a",
    "damysus",
    "chained-hotstuff",
    "chained-damysus",
]


def get_spec(name: str) -> ProtocolSpec:
    """Look up a protocol by name, raising a helpful error if unknown."""
    try:
        return SPECS[name]
    except KeyError:
        known = ", ".join(sorted(SPECS))
        raise ConfigError(f"unknown protocol {name!r}; known: {known}") from None
