"""Replica base class: plumbing shared by all six protocols.

Responsibilities handled here so protocol modules stay close to the
paper's pseudocode: message dispatch with future-view buffering, view
advancement, leader schedule, CPU cost charging, quorum collection, block
execution with client replies, and pacemaker integration.
"""

from __future__ import annotations

from typing import Any

from repro.config import SystemConfig
from repro.crypto.keys import KeyDirectory
from repro.crypto.scheme import SignatureScheme
from repro.core.chain import BlockStore
from repro.core.block import Block
from repro.core.clock import Clock
from repro.core.codec import wire_size_of
from repro.core.commitment import Commitment
from repro.core.executor import Ledger, SafetyOracle
from repro.core.mempool import AdmissionVerdict
from repro.mempool.pool import PriorityMempool
from repro.core.messages import BlockRequest, BlockResponse, ClientReply, ClientRequest
from repro.core.monitor import ExecutionMonitor
from repro.core.phases import Phase
from repro.core.rng import RngStream
from repro.errors import MissingBlockError, TEERefusal
from repro.protocols.pacemaker import Pacemaker, round_robin_leader
from repro.protocols.sync import CatchUpClient, SyncBlocks, SyncCheckpoint, SyncRequest
from repro.runtime.effects import Commit
from repro.runtime.machine import Machine
from repro.tee.checker import Checker
from repro.tee.checkpoint import Checkpoint, verify_checkpoint, verify_decide_qc
from repro.tee.sealed import SealedState, SealManager

#: Cap on buffered future-view messages per replica (Byzantine flood guard).
MAX_BUFFERED_MESSAGES = 10_000

#: Sentinel: ``recover()`` restores the snapshot taken by ``crash()``.
_OWN_SNAPSHOT = object()


class QuorumCollector:
    """Collects deduplicated items per key until a threshold is reached.

    ``add`` returns the full item list exactly once - on the call that
    reaches the threshold - and ``None`` before and after, which is how
    leaders act exactly once per (view, phase) quorum.
    """

    def __init__(self, threshold: int) -> None:
        self.threshold = threshold
        self._items: dict[Any, list[Any]] = {}
        self._dedup: dict[Any, set[Any]] = {}
        self._done: set[Any] = set()

    def add(self, key: Any, item: Any, dedup_id: Any) -> list[Any] | None:
        if key in self._done:
            return None
        seen = self._dedup.setdefault(key, set())
        if dedup_id in seen:
            return None
        seen.add(dedup_id)
        items = self._items.setdefault(key, [])
        items.append(item)
        if len(items) == self.threshold:
            self._done.add(key)
            return list(items)
        return None

    def count(self, key: Any) -> int:
        return len(self._items.get(key, ()))

    def pending_keys(self) -> int:
        """Number of keys currently holding state (for GC assertions)."""
        return len(self._items) + len(self._done)

    @staticmethod
    def _view_of(key: Any) -> int | None:
        if isinstance(key, int):
            return key
        if isinstance(key, tuple) and key and isinstance(key[0], int):
            return key[0]
        return None

    def discard_before_view(self, view: int) -> None:
        """Garbage-collect state for views below ``view``.

        Keys are either a view number or a tuple whose first element is
        one; anything else is left alone.
        """
        for mapping in (self._items, self._dedup):
            for key in [k for k in mapping if (v := self._view_of(k)) is not None and v < view]:
                del mapping[key]
        self._done = {
            k for k in self._done
            if (v := self._view_of(k)) is None or v >= view
        }


class BaseReplica(Machine):
    """Common replica machinery; protocol subclasses implement handlers.

    Replicas are sans-I/O state machines: handlers emit
    :mod:`repro.runtime.effects` (flushed to the attached runtime when the
    outermost entry point returns) and read time from an injected
    :class:`~repro.core.clock.Clock` - never from a simulator or socket.
    """

    ENTRY_POINTS = Machine.ENTRY_POINTS + ("dispatch", "advance_view", "execute_block")

    #: The replica's Checker trusted component, if the protocol has one.
    #: Protocols that set it must implement ``_make_checker()``.
    checker: Checker | None = None

    def __init__(  # noqa: PLR0913 - wiring point for the whole stack
        self,
        pid: int,
        clock: Clock,
        config: SystemConfig,
        scheme: SignatureScheme,
        directory: KeyDirectory,
        num_replicas: int,
        quorum: int,
        oracle: SafetyOracle | None = None,
        monitor: ExecutionMonitor | None = None,
        client_pids: dict[int, int] | None = None,
    ) -> None:
        super().__init__(pid, clock)
        self.config = config
        self.costs = config.costs
        self.scheme = scheme
        self.directory = directory
        self.num_replicas = num_replicas
        self.quorum = quorum
        self.store = BlockStore()
        self.ledger = Ledger(pid, self.store, oracle, monitor)
        self.mempool = PriorityMempool(
            config.payload_bytes,
            config.block_size,
            open_loop=config.open_loop,
            max_txs=config.mempool_max_txs,
            max_bytes=config.mempool_max_bytes,
            max_block_bytes=config.max_block_bytes,
            high_watermark=config.mempool_high_watermark,
            low_watermark=config.mempool_low_watermark,
            rate_limit_per_ms=config.sender_rate_limit,
            rate_burst=config.sender_rate_burst,
        )
        self.view = 0
        self.client_pids = client_pids or {}
        self.replica_pids: list[int] = list(range(num_replicas))
        self.pacemaker = Pacemaker(
            self,
            config.timeout_ms,
            config.timeout_backoff,
            on_timeout=self._on_pacemaker_timeout,
            max_timeout_ms=config.max_timeout_ms or None,
            jitter_fraction=config.timeout_jitter,
            rng=(
                RngStream(config.seed, f"pacemaker-jitter:{pid}")
                if config.timeout_jitter > 0.0
                else None
            ),
        )
        self._buffered: dict[int, list[tuple[int, Any]]] = {}
        self._buffered_count = 0
        # Block synchronization: executions waiting on missing block
        # bodies, and the hashes already requested from peers.
        self._pending_exec: dict[bytes, int] = {}
        self._requested_blocks: set[bytes] = set()
        # Crash-recovery: the platform's rollback-protected seal service
        # (the role SGX delegates to a trusted monotonic counter) plus the
        # snapshot taken at the last crash.
        self.seal_manager = SealManager()
        self._sealed_snapshot: SealedState | None = None
        self.crash_count = 0
        self.recovery_count = 0
        # Checkpoints & state transfer.  The latest certified checkpoint
        # (own or installed from a peer) is what this replica serves and
        # what the durable layer persists; the catch-up client drives the
        # requester side when behind-detection fires.
        self.latest_checkpoint: Checkpoint | None = None
        self.caught_up_via_checkpoint = False
        self.last_committed_view = 0
        self.catchup = CatchUpClient(self)
        self._last_commit_qc: Commitment | None = None
        # Highest view this replica trusts the cluster to have reached:
        # its own view, or a view at least f+1 distinct peers have sent
        # traffic for (one of them must be honest) - a single Byzantine
        # peer claiming an absurd view must not drive behind-detection.
        self._highest_view_seen = 0
        self._peer_view_claims: dict[int, int] = {}
        self._sync_served_at: dict[int, float] = {}
        # Server side of chunked transfers: next start height expected
        # from each requester mid-transfer (continuations bypass the
        # per-sender rate limit so multi-chunk transfers never stall).
        self._sync_cursor: dict[int, int] = {}
        # Requester side: verified-but-unexecuted suffix blocks, held
        # until the final chunk's tip commitment proves the whole suffix
        # was actually decided by a quorum.
        self._sync_buffer: list[Block] = []

    # -- leader schedule -------------------------------------------------------

    def leader_of(self, view: int) -> int:
        """Pid of the deterministic leader of ``view``."""
        return self.replica_pids[round_robin_leader(view, self.num_replicas)]

    def is_leader(self, view: int) -> bool:
        return self.leader_of(view) == self.pid

    # -- crash / recovery ------------------------------------------------------

    def crash(self) -> None:
        """Crash-stop: seal TEE state, drop volatile state, go silent.

        The sealed snapshot models what the host's disk retains across a
        restart; everything else a replica holds in memory (buffered
        messages, quorum collections, in-flight fetches) is lost.
        """
        if self.crashed:
            return
        self._sealed_snapshot = self.seal_tee_state()
        super().crash()
        self.crash_count += 1
        self.pacemaker.cancel()
        self.reset_volatile_state()

    def recover(self, sealed: "SealedState | None | object" = _OWN_SNAPSHOT) -> None:
        """Restart this replica from sealed TEE state and rejoin.

        ``sealed`` defaults to the snapshot taken by :meth:`crash`; tests
        and adversaries may present a different (e.g. rolled-back) seal,
        which the TEE rejects with :class:`~repro.errors.TEERefusal` -
        the replica then stays crashed.  On success the replica rejoins
        at its pacemaker's view and catches up through the ordinary
        timeout / new-view / block-synchronization paths.
        """
        if not self.crashed:
            return
        snapshot = self._sealed_snapshot if sealed is _OWN_SNAPSHOT else sealed
        self.restore_tee_state(snapshot)  # raises TEERefusal on rollback
        super().recover()
        self.recovery_count += 1
        self.pacemaker.start_view(self.view)
        self.on_recovered()

    def seal_tee_state(self) -> SealedState | None:
        """Seal the checker's protected state (``None`` without a TEE)."""
        if self.checker is None:
            return None
        return self.seal_manager.seal(self.checker)

    def restore_tee_state(self, sealed: SealedState | None) -> None:
        """Rebuild the checker from ``sealed``, refusing rollbacks.

        Protocols without trusted components keep their safety-critical
        certificates (high/locked QCs) on stable storage instead, so for
        them recovery restores nothing here.
        """
        if self.checker is None:
            return
        if sealed is None:
            raise TEERefusal("recover: host provided no sealed checker state")
        fresh = self._make_checker()
        self.seal_manager.unseal_into(fresh, sealed)
        self.checker = fresh
        # The checker's step is the trustworthy record of how far this
        # node got; rejoin no earlier than that view.
        self.view = max(self.view, self.checker.step.view)

    def _make_checker(self) -> Checker:
        """Build a fresh checker instance; TEE-bearing subclasses override."""
        raise NotImplementedError

    def reset_volatile_state(self) -> None:
        """Drop everything a crash loses: buffers, fetches, vote state."""
        self._buffered.clear()
        self._buffered_count = 0
        self._pending_exec.clear()
        self._requested_blocks.clear()
        self._sync_served_at.clear()
        self._sync_cursor.clear()
        self._sync_buffer.clear()
        self._peer_view_claims.clear()
        self._last_commit_qc = None
        self.catchup.reset()
        self.reset_protocol_state()

    def reset_protocol_state(self) -> None:
        """Hook: drop protocol-specific volatile state (vote collections)."""

    def on_recovered(self) -> None:
        """Hook: protocol-specific rejoin action (e.g. resend new-view)."""

    # -- CPU cost charging -------------------------------------------------------

    def charge_sign(self, count: int = 1) -> None:
        self.charge(count * self.costs.sign_ms)

    def charge_verify(self, count: int = 1) -> None:
        self.charge(self.costs.verify_many_ms(count))

    def charge_tee(self, signs: int = 1, verifies: int = 0) -> None:
        self.charge(self.costs.tee_op_ms(signs=signs, verifies=verifies))

    def charge_receive(self, payload: Any) -> None:
        self.charge(self.costs.receive_ms(wire_size_of(payload)))

    def send_charged(self, dest: int, payload: Any) -> None:
        """Charge serialization cost, then send."""
        self.charge(self.costs.send_ms(wire_size_of(payload)))
        self.send(dest, payload)

    def broadcast_charged(self, payload: Any, include_self: bool = True) -> None:
        """Send to every replica; egress cost scales with the copy count."""
        copies = len(self.replica_pids) if include_self else len(self.replica_pids) - 1
        self.charge(copies * self.costs.send_ms(wire_size_of(payload)))
        self.broadcast(self.replica_pids, payload, include_self=include_self)

    # -- dispatch with future-view buffering ---------------------------------------

    def message_view(self, payload: Any) -> int | None:
        """The view a message belongs to; ``None`` for view-less messages.

        Subclasses override when a message's relevant view differs from its
        stamped view (the chained protocols' new-view commitments).
        """
        return getattr(payload, "view", None)

    def on_message(self, sender: int, payload: Any) -> None:
        if self.crashed:
            return
        if isinstance(payload, ClientRequest):
            self._handle_client_request(payload)
            return
        if isinstance(payload, BlockRequest):
            self._handle_block_request(sender, payload)
            return
        if isinstance(payload, BlockResponse):
            self._handle_block_response(sender, payload)
            return
        if isinstance(payload, SyncRequest):
            self._handle_sync_request(sender, payload)
            return
        if isinstance(payload, SyncCheckpoint):
            self._handle_sync_checkpoint(sender, payload)
            return
        if isinstance(payload, SyncBlocks):
            self._handle_sync_blocks(sender, payload)
            return
        view = self.message_view(payload)
        if view is not None:
            if view > self.view:
                self._buffer(view, sender, payload)
                return
            if view < self.view:
                self.on_stale(sender, payload)
                return
        self.charge_receive(payload)
        self.dispatch(sender, payload)

    def _handle_client_request(self, request: ClientRequest) -> None:
        """Run the admission pipeline; NACK the client on rejection.

        Accepted transactions are acknowledged implicitly by the
        execution-time reply; every other verdict is returned at once so
        an open-loop client can account for drops (and retry after a
        rate-limit window) instead of waiting forever.
        """
        verdict = self.mempool.admit(request.tx, self.now)
        if verdict is AdmissionVerdict.ACCEPTED:
            return
        pid = self.client_pids.get(request.tx.client_id)
        if pid is not None:
            self.send_charged(
                pid,
                ClientReply(
                    replica=self.pid,
                    client_id=request.tx.client_id,
                    tx_id=request.tx.tx_id,
                    executed_at=self.now,
                    verdict=verdict,
                ),
            )

    def on_stale(self, sender: int, payload: Any) -> None:
        """Hook for messages from views the replica already left."""

    def dispatch(self, sender: int, payload: Any) -> None:
        """Protocol-specific handling; subclasses implement."""
        raise NotImplementedError

    def _buffer(self, view: int, sender: int, payload: Any) -> None:
        self._note_view_claim(sender, view)
        self._note_possible_lag()
        if self._buffered_count >= MAX_BUFFERED_MESSAGES:
            return
        self._buffered.setdefault(view, []).append((sender, payload))
        self._buffered_count += 1

    def _note_view_claim(self, sender: int, view: int) -> None:
        """Track an *unauthenticated* future-view claim from ``sender``.

        A buffered message's view field costs nothing to fake, so a
        single peer must never move :attr:`_highest_view_seen` (and with
        it behind-detection and the health reports).  The watermark only
        advances to a view that f+1 distinct senders - at least one of
        them honest - have claimed, i.e. the (f+1)-th largest per-sender
        claim.
        """
        if sender == self.pid or sender not in self.replica_pids:
            # Own traffic is not a claim; non-replica senders never are.
            return
        if view <= self._peer_view_claims.get(sender, 0):
            return
        self._peer_view_claims[sender] = view
        corroborators = self.num_replicas - self.quorum + 1  # f + 1
        claims = sorted(self._peer_view_claims.values(), reverse=True)
        if len(claims) < corroborators:
            return
        corroborated = claims[corroborators - 1]
        if corroborated > self._highest_view_seen:
            self._highest_view_seen = corroborated

    def view_lag(self) -> int:
        """Views between this replica and the highest view it has heard of."""
        return max(0, self._highest_view_seen - self.view)

    def _note_possible_lag(self) -> None:
        """Behind-detection: trigger catch-up when the view gap is too wide.

        Only meaningful with checkpointing on - without peers certifying
        checkpoints there is nothing to transfer, and the ordinary
        timeout / new-view path remains the only recovery route.
        """
        if self.config.checkpoint_interval <= 0:
            return
        if self._highest_view_seen - self.view >= self.config.catchup_view_gap:
            self.catchup.start()

    # -- view advancement -----------------------------------------------------------

    def advance_view(self, new_view: int) -> None:
        """Enter ``new_view``: restart the pacemaker, flush buffered traffic."""
        if new_view <= self.view:
            return
        for stale in [v for v in self._buffered if v < new_view]:
            self._buffered_count -= len(self._buffered[stale])
            del self._buffered[stale]
        self.view = new_view
        if new_view > self._highest_view_seen:
            self._highest_view_seen = new_view
        self.pacemaker.start_view(new_view)
        self.prune_state(new_view)
        self.on_view_entered(new_view)
        pending = self._buffered.pop(new_view, [])
        self._buffered_count -= len(pending)
        for sender, payload in pending:
            self.charge_receive(payload)
            self.dispatch(sender, payload)

    def on_view_entered(self, view: int) -> None:
        """Hook run when a view starts, before buffered messages replay."""

    def prune_state(self, view: int) -> None:
        """Garbage-collect per-view state older than ``view``.

        Called on every view change; protocol subclasses drop their stale
        vote/new-view collections here so long runs stay bounded.
        """

    @staticmethod
    def _prune_view_sets(min_view: int, *sets: set[Any]) -> None:
        """Drop integer view entries below ``min_view`` from each set."""
        for entries in sets:
            stale = {
                entry
                for entry in entries
                if isinstance(entry, int) and entry < min_view
                or isinstance(entry, tuple)
                and entry
                and isinstance(entry[0], int)
                and entry[0] < min_view
            }
            entries -= stale

    def _on_pacemaker_timeout(self, view: int) -> None:
        if self.crashed or view != self.view:
            return
        # A timeout while newer-view traffic sits buffered means we are
        # lagging the cluster, not that the cluster is stuck.
        self._note_possible_lag()
        self.on_view_timeout(view)

    def on_view_timeout(self, view: int) -> None:
        """Protocol-specific timeout action; subclasses implement."""
        raise NotImplementedError

    # -- execution ---------------------------------------------------------------

    def execute_block(self, block: Block, view: int) -> list[Block]:
        """Execute ``block`` (and pending ancestors); reply to clients.

        If an ancestor's body is missing (a Byzantine leader can commit a
        block without delivering it everywhere), the execution is parked
        and the missing blocks are fetched from peers.
        """
        try:
            newly = self.ledger.execute(block, self.now, view)
        except MissingBlockError:
            self._pending_exec[block.hash] = view
            self._request_missing_ancestors(block)
            return []
        for executed in newly:
            for tx in executed.transactions:
                pid = self.client_pids.get(tx.client_id)
                if pid is not None:
                    self.send_charged(
                        pid,
                        ClientReply(
                            replica=self.pid,
                            client_id=tx.client_id,
                            tx_id=tx.tx_id,
                            executed_at=self.now,
                        ),
                    )
            self._emit(Commit(executed, view))
        if newly:
            self.last_committed_view = max(self.last_committed_view, view)
            self._maybe_checkpoint()
        return newly

    # -- checkpoints & state transfer -------------------------------------------

    def note_commit_qc(self, qc: Commitment) -> None:
        """Record the decide-phase quorum commitment backing an execution.

        Protocol subclasses call this just before :meth:`execute_block`;
        the checker re-verifies the commitment when certifying a
        checkpoint, so only decide certificates (quorum commitments of
        pre-commit votes) are worth keeping.
        """
        if qc.phase == Phase.PRECOMMIT:
            self._last_commit_qc = qc

    def _maybe_checkpoint(self) -> None:
        """Certify a checkpoint every ``checkpoint_interval`` commits.

        The host hands the Checker the hash-chained headers of every
        block executed since the last certified checkpoint plus the tip's
        decide QC; the Checker derives the height and folds the state
        root *inside* the TEE, signs, and monotonically stamps the
        result.  The executed-block log below the new horizon is then
        garbage-collected - catch-up peers get the certificate instead
        of a replay.
        """
        interval = self.config.checkpoint_interval
        if interval <= 0 or self.checker is None:
            return
        qc = self._last_commit_qc
        if qc is None or qc.h_prep != self.ledger.last_executed_hash:
            return
        certified = self.checker.checkpoint_height
        if self.ledger.height() - certified < interval:
            return
        suffix = self.ledger.executed_since(certified)
        if not suffix:
            return
        headers = tuple((block.hash, block.parent_hash) for block in suffix)
        self.charge_tee(signs=1, verifies=self.quorum)
        try:
            checkpoint = self.checker.tee_checkpoint(headers, qc)
        except TEERefusal:
            return
        self.latest_checkpoint = checkpoint
        self.ledger.compact(checkpoint.height)

    def _handle_sync_request(self, sender: int, msg: SyncRequest) -> None:
        """Serve a lagging peer: checkpoint first, then a bounded chunk.

        New transfer sessions are rate-limited per sender so a Byzantine
        (or merely broken) peer cannot turn state transfer into an
        amplification attack on an honest replica.  Continuations of an
        in-progress chunked transfer (the requester asking for the chunk
        after the one just served) are exempt - otherwise every round
        trip faster than the rate window would stall the transfer into
        timeout-paced retries.
        """
        if self.config.checkpoint_interval <= 0 or sender == self.pid:
            return
        continuation = self._sync_cursor.get(sender) == msg.have_height
        if not continuation:
            last = self._sync_served_at.get(sender)
            if last is not None and self.now - last < self.config.sync_min_interval_ms:
                return
            self._sync_served_at[sender] = self.now
        self._sync_cursor.pop(sender, None)
        start_height = msg.have_height
        checkpoint = self.latest_checkpoint
        if checkpoint is not None and checkpoint.height > start_height:
            self.send_charged(sender, SyncCheckpoint(checkpoint))
            start_height = checkpoint.height
        suffix = self.ledger.executed_since(start_height)
        if suffix is None:
            return  # prefix compacted away and no newer checkpoint to offer
        qc = self._last_commit_qc
        if suffix and (qc is None or qc.h_prep != suffix[-1].hash):
            # Without a decide certificate for the tip the receiver could
            # not verify the suffix; serve the certified horizon only.
            suffix = []
        chunk = suffix[: self.config.sync_chunk_blocks]
        done = len(chunk) == len(suffix)
        self.send_charged(
            sender,
            SyncBlocks(
                start_height,
                tuple(chunk),
                done=done,
                tip_qc=qc if done and chunk else None,
            ),
        )
        if not done:
            self._sync_cursor[sender] = start_height + len(chunk)

    def drop_sync_session(self) -> None:
        """Discard any partially transferred (unexecuted) suffix."""
        self._sync_buffer.clear()

    def sync_have_height(self) -> int:
        """Height this replica holds counting buffered transfer blocks."""
        return self.ledger.height() + len(self._sync_buffer)

    def _handle_sync_checkpoint(self, sender: int, msg: SyncCheckpoint) -> None:
        if not self.catchup.active or sender != self.catchup.peer:
            return  # unsolicited: only the peer being synced from may reply
        checkpoint = msg.checkpoint
        if checkpoint.height <= self.ledger.height():
            return  # stale: we already hold at least this much state
        self.charge_verify(self.quorum + 1)
        try:
            verify_checkpoint(checkpoint, self.scheme, self.directory, self.quorum)
        except TEERefusal:
            return  # forged or malformed: drop it, the retry rotates peers
        self._install_checkpoint(checkpoint)

    def _install_checkpoint(self, checkpoint: Checkpoint) -> None:
        """Adopt a verified checkpoint: fast-forward ledger and view."""
        if self.checker is not None:
            # The trusted component re-verifies and adopts the certified
            # tip, so the monotonic floor also covers installed state (a
            # stale checkpoint can never rewind it).
            self.charge_tee(signs=0, verifies=self.quorum + 1)
            try:
                self.checker.tee_install_checkpoint(checkpoint)
            except TEERefusal:
                return
        self.ledger.install_checkpoint(
            checkpoint.height, checkpoint.block_hash, checkpoint.state_root
        )
        self.latest_checkpoint = checkpoint
        self.caught_up_via_checkpoint = True
        self.last_committed_view = max(self.last_committed_view, checkpoint.view)
        self._pending_exec.clear()
        self._requested_blocks.clear()
        self._sync_buffer.clear()  # any buffered suffix predates the install
        self.catchup.note_progress()
        self.advance_view(max(self.view, checkpoint.view + 1))

    def _handle_sync_blocks(self, sender: int, msg: SyncBlocks) -> None:
        """Buffer a transfer chunk; execute once the tip QC verifies.

        Nothing a peer sends here is taken on faith: the suffix must
        hash-chain from trusted state (the last executed block or an
        installed certified checkpoint), and it is executed only when the
        final chunk carries a verified decide-phase quorum commitment for
        the suffix tip - which transitively certifies every chained block
        below it.  A forged suffix therefore never reaches execution.
        """
        if not self.catchup.active or sender != self.catchup.peer:
            return  # unsolicited: only the peer being synced from may reply
        if msg.start_height != self.sync_have_height():
            return  # out-of-order chunk; the retry timer re-requests
        prev_hash = (
            self._sync_buffer[-1].hash
            if self._sync_buffer
            else self.ledger.last_executed_hash
        )
        for block in msg.blocks:
            if block.parent_hash != prev_hash:
                self.drop_sync_session()
                return  # broken suffix: drop it, retry against another peer
            self._sync_buffer.append(block)
            prev_hash = block.hash
        if not msg.done:
            self.catchup.note_progress()
            self.catchup.request_next(sender)
            return
        if self._sync_buffer:
            self.charge_verify(self.quorum)
            try:
                if msg.tip_qc is None:
                    raise TEERefusal("sync: final chunk carries no tip certificate")
                verify_decide_qc(
                    msg.tip_qc,
                    self._sync_buffer[-1].hash,
                    self.scheme,
                    self.directory,
                    self.quorum,
                )
            except TEERefusal:
                self.drop_sync_session()
                return  # uncertified suffix: drop it, the retry rotates peers
            self.note_commit_qc(msg.tip_qc)
        applied: Block | None = None
        for block in self._sync_buffer:
            self.store.add(block)
            self.ledger.apply_synced(block, self.now)
            self._emit(Commit(block, block.view))
            applied = block
        self._sync_buffer.clear()
        if applied is not None:
            self.last_committed_view = max(self.last_committed_view, applied.view)
        self.catchup.finish()
        if applied is not None:
            self.advance_view(max(self.view, applied.view + 1))

    # -- block synchronization -------------------------------------------------

    def _request_missing_ancestors(self, block: Block) -> None:
        """Fetch the nearest missing ancestor of ``block`` from the peers.

        One hop at a time: each response either completes the path or
        reveals the next missing ancestor, which triggers another fetch.
        """
        cursor = block.parent_hash
        while True:
            existing = self.store.get(cursor)
            if existing is None:
                if cursor not in self._requested_blocks:
                    self._requested_blocks.add(cursor)
                    request = BlockRequest(cursor)
                    for pid in self.replica_pids:
                        if pid != self.pid:
                            self.send_charged(pid, request)
                return
            if existing.is_genesis or cursor == self.ledger.last_executed_hash:
                return
            cursor = existing.parent_hash

    def _handle_block_request(self, sender: int, msg: BlockRequest) -> None:
        block = self.store.get(msg.block_hash)
        if block is not None:
            self.send_charged(sender, BlockResponse(block))

    def _handle_block_response(self, sender: int, msg: BlockResponse) -> None:
        self.store.add(msg.block)
        self._requested_blocks.discard(msg.block.hash)
        self._retry_pending_executions()

    def _retry_pending_executions(self) -> None:
        for block_hash, view in list(self._pending_exec.items()):
            block = self.store.get(block_hash)
            if block is None:
                continue
            del self._pending_exec[block_hash]
            # Re-enters execute_block: on another miss the execution is
            # parked again and the next missing ancestor gets fetched.
            self.execute_block(block, view)
