"""Damysus-C (paper Section 4.2.3 / Section 8): Checker only.

2f+1 replicas, but still 3 core phases: without an accumulator the leader
cannot *prove* it selected the highest prepared block, so HotStuff's
locking phase stays, with the lock held - and SafeNode evaluated - inside
the Checker (see :class:`~repro.tee.checker_lock.LockingChecker`).

Eight communication steps per view with N = 2f+1 and f+1 quorums:
new-view, proposal, prepare votes, prepare-QC, pre-commit votes,
pre-commit-QC, commit votes, decide.
"""

from __future__ import annotations

from typing import Any

from repro.errors import TEERefusal
from repro.core.block import create_leaf
from repro.core.commitment import Commitment, c_combine, c_match
from repro.core.messages import BlockProposal, CommitmentMsg
from repro.core.phases import Phase
from repro.protocols.damysus import DamysusReplica
from repro.protocols.replica import QuorumCollector
from repro.tee.checker_lock import LockingChecker

KIND_NEW_VIEW = "damysus-c-new-view"
KIND_PREP_VOTE = "damysus-c-prep-vote"
KIND_PREP_QC = "damysus-c-prep-qc"
KIND_PCOM_VOTE = "damysus-c-pcom-vote"
KIND_PCOM_QC = "damysus-c-pcom-qc"
KIND_COM_VOTE = "damysus-c-com-vote"
KIND_DECIDE = "damysus-c-decide"


class DamysusCReplica(DamysusReplica):
    """One Damysus-C replica: LockingChecker, no accumulator, 3 phases."""

    protocol_name = "damysus-c"
    nv_kind = KIND_NEW_VIEW

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.acc_service = None  # Damysus-C has no accumulator component
        self._com_votes = QuorumCollector(self.quorum)
        self._locked: set[int] = set()

    def _make_checker(self) -> LockingChecker:
        return LockingChecker(
            self.pid,
            self.scheme,
            self.directory,
            self.store.genesis.hash,
            self.quorum,
        )

    def prune_state(self, view: int) -> None:
        super().prune_state(view)
        horizon = view - 1
        self._com_votes.discard_before_view(horizon)
        self._prune_view_sets(horizon, self._locked)

    def reset_protocol_state(self) -> None:
        super().reset_protocol_state()
        self._com_votes = QuorumCollector(self.quorum)
        self._locked.clear()

    # -- dispatch --------------------------------------------------------------------

    def dispatch(self, sender: int, payload: Any) -> None:
        if isinstance(payload, CommitmentMsg):
            handler = {
                KIND_NEW_VIEW: self._handle_new_view,
                KIND_PREP_VOTE: self._handle_prep_vote,
                KIND_PREP_QC: self._handle_prep_qc,
                KIND_PCOM_VOTE: self._handle_pcom_vote,
                KIND_PCOM_QC: self._handle_pcom_qc,
                KIND_COM_VOTE: self._handle_com_vote,
                KIND_DECIDE: self._handle_decide,
            }.get(payload.kind)
            if handler is not None:
                handler(sender, payload.commitment)
        elif isinstance(payload, BlockProposal):
            self._handle_proposal(sender, payload)

    # -- prepare phase ----------------------------------------------------------------

    def _propose(self, view: int, phis: list[Commitment]) -> None:
        """Extend the highest reported prepared block; justify with that report.

        Without an accumulator the justification is the single highest
        new-view commitment: TEE-signed, so its (prepared block, view)
        claim is honest, but nothing proves maximality - which is exactly
        why the locked-based SafeNode and the commit phase remain.
        """
        if not c_match(phis, self.quorum, None, view, Phase.NEW_VIEW):
            return
        justify = max(phis, key=lambda p: (p.v_just or 0))
        self._proposed.add(view)
        block = create_leaf(
            justify.h_just,
            view,
            self.mempool.take_block(self.now),
            created_at=self.now,
        )
        self.store.add(block)
        self.charge_tee(signs=1, verifies=1)
        try:
            phi_prep = self.checker.tee_prepare_locked(block.hash, justify)
        except TEERefusal:
            return
        self.broadcast_charged(
            BlockProposal(
                view, block, acc=None, leader_sig=phi_prep.sigs[0],
                justify_commitment=justify,
            ),
            include_self=True,
        )
        self.send_charged(self.pid, CommitmentMsg(phi_prep, KIND_PREP_VOTE))

    def _handle_proposal(self, sender: int, msg: BlockProposal) -> None:
        if sender != self.leader_of(msg.view):
            return
        if sender == self.pid:
            return  # own broadcast copy
        justify = msg.justify_commitment
        if justify is None or justify.phase != Phase.NEW_VIEW:
            return
        if justify.v_prep != msg.view:
            return
        phi_prep = Commitment(
            h_prep=msg.block.hash,
            v_prep=msg.view,
            h_just=justify.h_just,
            v_just=justify.v_just,
            phase=Phase.PREPARE,
            sigs=(msg.leader_sig,),
        )
        self.charge_verify(2)  # leader commitment + justification commitment
        if not self._verify_tee_commitment(phi_prep, expected_sigs=1):
            return
        if not self._verify_tee_commitment(justify, expected_sigs=1):
            return
        if justify.h_just is None or not msg.block.extends(justify.h_just):
            return
        self.store.add(msg.block)
        self.charge_tee(signs=1, verifies=1)
        try:
            phi = self.checker.tee_prepare_locked(msg.block.hash, justify)
        except TEERefusal:
            return  # SafeNode (in-TEE) rejected the proposal
        self.send_charged(self.leader_of(msg.view), CommitmentMsg(phi, KIND_PREP_VOTE))

    # -- pre-commit phase ---------------------------------------------------------------

    def _handle_prep_vote(self, sender: int, phi: Commitment) -> None:
        if not self.is_leader(phi.v_prep):
            return
        if phi.phase != Phase.PREPARE or phi.h_prep is None or len(phi.sigs) != 1:
            return
        self.charge_verify(1)
        if not self._verify_tee_commitment(phi, expected_sigs=1):
            return
        key = (phi.v_prep, phi.h_prep, phi.h_just, phi.v_just)
        quorum = self._prep_votes.add(key, phi, phi.sigs[0].signer)
        if quorum is None:
            return
        combined = c_combine(quorum)
        self.broadcast_charged(CommitmentMsg(combined, KIND_PREP_QC), include_self=True)

    def _handle_prep_qc(self, sender: int, phi: Commitment) -> None:
        if sender != self.leader_of(phi.v_prep):
            return
        if phi.v_prep in self._stored:
            return
        self._stored.add(phi.v_prep)
        self.charge_tee(signs=1, verifies=self.quorum)
        try:
            phi_store = self.checker.tee_store(phi)  # stores the prepared block
        except TEERefusal:
            return
        self.send_charged(
            self.leader_of(phi.v_prep), CommitmentMsg(phi_store, KIND_PCOM_VOTE)
        )

    # -- commit phase ------------------------------------------------------------------------

    def _handle_pcom_vote(self, sender: int, phi: Commitment) -> None:
        if not self.is_leader(phi.v_prep):
            return
        if phi.phase != Phase.PRECOMMIT or phi.h_prep is None or len(phi.sigs) != 1:
            return
        self.charge_verify(1)
        if not self._verify_tee_commitment(phi, expected_sigs=1):
            return
        quorum = self._pcom_votes.add((phi.v_prep, phi.h_prep), phi, phi.sigs[0].signer)
        if quorum is None:
            return
        combined = c_combine(quorum)
        self.broadcast_charged(CommitmentMsg(combined, KIND_PCOM_QC), include_self=True)

    def _handle_pcom_qc(self, sender: int, phi: Commitment) -> None:
        if sender != self.leader_of(phi.v_prep):
            return
        if phi.v_prep in self._locked:
            return
        self._locked.add(phi.v_prep)
        self.charge_tee(signs=1, verifies=self.quorum)
        try:
            phi_lock = self.checker.tee_store(phi)  # locks the block in the TEE
        except TEERefusal:
            return
        self.send_charged(
            self.leader_of(phi.v_prep), CommitmentMsg(phi_lock, KIND_COM_VOTE)
        )

    # -- decide phase ---------------------------------------------------------------------------

    def _handle_com_vote(self, sender: int, phi: Commitment) -> None:
        if not self.is_leader(phi.v_prep):
            return
        if phi.phase != Phase.COMMIT or phi.h_prep is None or len(phi.sigs) != 1:
            return
        self.charge_verify(1)
        if not self._verify_tee_commitment(phi, expected_sigs=1):
            return
        quorum = self._com_votes.add((phi.v_prep, phi.h_prep), phi, phi.sigs[0].signer)
        if quorum is None:
            return
        combined = c_combine(quorum)
        self.broadcast_charged(CommitmentMsg(combined, KIND_DECIDE), include_self=True)

    def _handle_decide(self, sender: int, phi: Commitment) -> None:
        if sender != self.leader_of(phi.v_prep):
            return
        if phi.v_prep in self._decided:
            return
        if phi.phase != Phase.COMMIT or phi.h_prep is None:
            return
        self.charge_verify(self.quorum)
        if not self._verify_tee_commitment(phi, expected_sigs=self.quorum):
            return
        self._decided.add(phi.v_prep)
        block = self.store.get(phi.h_prep)
        if block is not None:
            self.execute_block(block, phi.v_prep)
        self.pacemaker.view_succeeded()
        self.advance_view(phi.v_prep + 1)  # on_view_entered sends the new-view
