"""DAMYSUS reproduction: streamlined BFT consensus with trusted components.

A from-scratch Python implementation of the EuroSys 2022 paper
"DAMYSUS: Streamlined BFT Consensus Leveraging Trusted Components"
(Decouchant, Kozhaya, Rahli, Yu), including the Checker and Accumulator
trusted services, the six evaluated protocols (basic/chained HotStuff,
Damysus-C, Damysus-A, Damysus, Chained-Damysus), a deterministic
discrete-event WAN simulator standing in for the paper's AWS deployment,
and a benchmark harness regenerating every table and figure of the
evaluation.

Quickstart::

    from repro import ConsensusSystem, SystemConfig

    system = ConsensusSystem(SystemConfig(protocol="damysus", f=1))
    result = system.run_until_views(10)
    print(result.throughput_kops, result.mean_latency_ms)
"""

from repro.config import SystemConfig
from repro.costs import DEFAULT_COSTS, CostModel
from repro.errors import (
    ConfigError,
    CryptoError,
    ProtocolError,
    ReproError,
    SafetyViolation,
    SimulationError,
    TEEError,
    TEERefusal,
    VerificationError,
)
from repro.protocols import PROTOCOL_ORDER, ConsensusSystem, RunResult, get_spec

__version__ = "1.0.0"

__all__ = [
    "SystemConfig",
    "ConsensusSystem",
    "RunResult",
    "CostModel",
    "DEFAULT_COSTS",
    "PROTOCOL_ORDER",
    "get_spec",
    "ReproError",
    "ConfigError",
    "CryptoError",
    "VerificationError",
    "TEEError",
    "TEERefusal",
    "ProtocolError",
    "SafetyViolation",
    "SimulationError",
    "__version__",
]
