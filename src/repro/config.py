"""System configuration for one simulated deployment.

One :class:`SystemConfig` fully determines a run: protocol, fault
threshold, workload, deployment geography, crypto scheme, cost model and
seed.  Everything downstream (replica count, quorum size, latency model)
is derived from it, so experiments are declarative parameter sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.costs import DEFAULT_COSTS, CostModel
from repro.errors import ConfigError
from repro.sim.regions import EU_REGIONS, RegionMap


@dataclass(frozen=True)
class SystemConfig:
    """Declarative description of one simulated consensus deployment."""

    protocol: str = "damysus"
    f: int = 1
    payload_bytes: int = 256  # per-transaction payload (paper: 0 or 256)
    block_size: int = 400  # transactions per block (paper: 400)
    seed: int = 1
    regions: RegionMap = EU_REGIONS
    bandwidth_bytes_per_ms: float = 125_000.0  # ~1 Gbit/s links
    latency_jitter: float = 0.05
    fifo_links: bool = False  # TCP-like per-link ordering
    # Constant-size quorum certificates via threshold signatures (original
    # HotStuff style) instead of ECDSA signature lists (DAMYSUS-impl
    # style).  Supported by basic HotStuff.
    compact_qcs: bool = False
    timeout_ms: float = 2_000.0  # pacemaker base view timeout
    timeout_backoff: float = 2.0  # exponential factor on timeout
    timeout_jitter: float = 0.0  # +/- fraction of seeded pacemaker jitter (0 = off)
    max_timeout_ms: float = 0.0  # backoff ceiling (0 = 4x the base timeout)
    costs: CostModel = field(default_factory=lambda: DEFAULT_COSTS)
    use_real_crypto: bool = False  # Schnorr (True) vs fast HMAC (False)
    gst_ms: float = 0.0  # 0 disables the pre-GST chaos wrapper
    delta_ms: float = 400.0  # post-GST delay bound
    pre_gst_extra_ms: float = 300.0  # max adversarial delay before GST
    open_loop: bool = True  # synthetic full blocks vs client-driven
    num_clients: int = 0
    client_interval_ms: float = 1.0  # per-client submission interval
    client_total_txs: int = 0  # 0 = unlimited
    client_poisson: bool = False  # exponential inter-arrivals vs periodic
    client_payload_mix: tuple[int, ...] = ()  # () = fixed payload_bytes
    client_max_fee: int = 0  # clients draw fees in [0, max]; 0 = all-zero
    client_retry_limit: int = 0  # resubmissions after a full NACK
    # -- ingest pipeline (repro.mempool) ---------------------------------
    mempool_max_txs: int = 100_000  # resident-transaction cap
    mempool_max_bytes: int = 0  # resident-byte cap (0 = unbounded)
    max_block_bytes: int = 0  # per-proposal byte cap (0 = unbounded)
    mempool_high_watermark: float = 0.9  # fill fraction engaging backpressure
    mempool_low_watermark: float = 0.7  # fill fraction releasing it
    sender_rate_limit: float = 0.0  # admitted txs/ms per sender (0 = off)
    sender_rate_burst: float = 32.0  # token-bucket burst capacity
    # -- checkpoints & state transfer ------------------------------------
    checkpoint_interval: int = 0  # certify a checkpoint every N commits (0 = off)
    catchup_view_gap: int = 8  # views behind the frontier before catching up
    sync_chunk_blocks: int = 64  # max blocks per SyncBlocks response
    sync_min_interval_ms: float = 50.0  # per-peer rate limit when serving sync
    catchup_timeout_ms: float = 500.0  # initial catch-up retry timeout
    catchup_backoff: float = 2.0  # exponential factor on catch-up retry
    catchup_max_timeout_ms: float = 5_000.0  # retry timeout ceiling
    catchup_jitter: float = 0.25  # +/- fraction of seeded retry jitter
    catchup_max_retries: int = 25  # give up (and wait for operator) after this

    def __post_init__(self) -> None:
        if self.f < 1:
            raise ConfigError("f must be at least 1")
        if self.block_size < 1:
            raise ConfigError("block_size must be positive")
        if self.payload_bytes < 0:
            raise ConfigError("payload_bytes must be non-negative")
        if not 0.0 <= self.timeout_jitter < 1.0:
            raise ConfigError("timeout_jitter must be in [0, 1)")
        if self.max_timeout_ms < 0:
            raise ConfigError("max_timeout_ms must be non-negative (0 = default cap)")
        if 0 < self.max_timeout_ms < self.timeout_ms:
            raise ConfigError("max_timeout_ms must be at least timeout_ms")
        if self.checkpoint_interval < 0:
            raise ConfigError("checkpoint_interval must be non-negative")
        if any(p < 0 for p in self.client_payload_mix):
            raise ConfigError("client_payload_mix entries must be non-negative")
        if self.client_max_fee < 0:
            raise ConfigError("client_max_fee must be non-negative")
        if self.client_retry_limit < 0:
            raise ConfigError("client_retry_limit must be non-negative")
        if self.mempool_max_txs < 1:
            raise ConfigError("mempool_max_txs must be positive")
        if self.mempool_max_bytes < 0 or self.max_block_bytes < 0:
            raise ConfigError("byte caps must be non-negative (0 = unbounded)")
        if not 0.0 < self.mempool_low_watermark <= self.mempool_high_watermark <= 1.0:
            raise ConfigError("watermarks must satisfy 0 < low <= high <= 1")
        if self.sender_rate_limit < 0:
            raise ConfigError("sender_rate_limit must be non-negative")
        if self.sender_rate_burst < 1:
            raise ConfigError("sender_rate_burst must be at least 1")
        if self.catchup_view_gap < 1:
            raise ConfigError("catchup_view_gap must be at least 1")
        if self.sync_chunk_blocks < 1:
            raise ConfigError("sync_chunk_blocks must be positive")
        if self.sync_min_interval_ms < 0:
            raise ConfigError("sync_min_interval_ms must be non-negative")
        if self.catchup_timeout_ms <= 0 or self.catchup_max_timeout_ms < self.catchup_timeout_ms:
            raise ConfigError("catch-up timeouts must be positive and ordered")
        if self.catchup_backoff < 1.0:
            raise ConfigError("catchup_backoff must be at least 1")
        if not 0.0 <= self.catchup_jitter < 1.0:
            raise ConfigError("catchup_jitter must be in [0, 1)")
        if self.catchup_max_retries < 1:
            raise ConfigError("catchup_max_retries must be at least 1")


#: Overflow policies for the bounded per-peer outbound frame queues.
#: ``drop-oldest`` sheds the stalest frame to admit the new one (a BFT
#: protocol recovers lost history via view changes, so freshness wins);
#: ``drop-newest`` sheds the incoming frame, preserving FIFO history.
OVERFLOW_POLICIES = ("drop-oldest", "drop-newest")


@dataclass(frozen=True)
class NetConfig:
    """Transport tuning for the asyncio TCP runtime.

    The :class:`SystemConfig` describes the *protocol* deployment; this
    describes one host's socket behaviour: reconnect backoff (with
    seeded jitter so a thundering herd of reconnecting peers decorrelates
    deterministically), outbound queue bounds and overflow policy, and
    the hostile-input frame cap.  Defaults match the historical module
    constants of :mod:`repro.runtime.asyncio_net`.
    """

    reconnect_initial_s: float = 0.05
    reconnect_max_s: float = 1.0
    #: +/- fraction of seeded jitter applied to every backoff sleep
    #: (0 = deterministic exponential backoff, the historical behaviour).
    reconnect_jitter: float = 0.25
    #: Outbound frames queued per peer before the overflow policy runs.
    max_outbound_queue: int = 10_000
    overflow_policy: str = "drop-oldest"
    #: Frames above this size disconnect the peer instead of buffering.
    max_frame_bytes: int = 4 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.reconnect_initial_s <= 0:
            raise ConfigError("reconnect_initial_s must be positive")
        if self.reconnect_max_s < self.reconnect_initial_s:
            raise ConfigError("reconnect_max_s must be >= reconnect_initial_s")
        if not 0.0 <= self.reconnect_jitter < 1.0:
            raise ConfigError("reconnect_jitter must be in [0, 1)")
        if self.max_outbound_queue < 1:
            raise ConfigError("max_outbound_queue must be positive")
        if self.overflow_policy not in OVERFLOW_POLICIES:
            raise ConfigError(
                f"overflow_policy must be one of {OVERFLOW_POLICIES}"
            )
        if self.max_frame_bytes < 1024:
            raise ConfigError("max_frame_bytes must be at least 1 KiB")
