"""Client transactions and the replica mempool.

The paper works "at the block level" and leaves transaction internals
abstract (Section 5); the only transaction properties the evaluation
depends on are counts and byte sizes: each transaction carries a payload
plus 40 B of metadata (client id, transaction id, previous-block hash -
Section 8, "Deployment settings").

The mempool supports two modes:

* *open loop* (Figs 6-8): an inexhaustible supply of synthetic
  transactions, so every block is full (400 transactions in the paper);
* *closed loop* (Fig 9): transactions are queued as client requests
  arrive, so block fullness - and therefore throughput and queueing
  latency - depends on the offered load.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass

from repro import perf
from repro.crypto.hashing import Hash, hash_fields

#: Metadata bytes per transaction (2 x 4 B ids + 32 B previous-block hash).
TX_METADATA_BYTES = 40


@dataclass(frozen=True, slots=True)
class Transaction:
    """A client transaction; payload content is abstracted to its size."""

    client_id: int
    tx_id: int
    payload_bytes: int
    submitted_at: float = 0.0

    def wire_size(self) -> int:
        """Bytes this transaction occupies inside a block."""
        return self.payload_bytes + TX_METADATA_BYTES

    def digest_fields(self) -> tuple[int, int, int]:
        return (self.client_id, self.tx_id, self.payload_bytes)


#: Memoized payload digests keyed by the (immutable) transaction tuple.
#: The same tuple is re-digested whenever a block is reconstructed from
#: the wire or re-hashed; the digest is a pure function of its content.
_PAYLOAD_DIGEST_CACHE: dict[tuple[Transaction, ...], Hash] = {}
perf.register_cache_clearer(_PAYLOAD_DIGEST_CACHE.clear)


def payload_digest(transactions: tuple[Transaction, ...]) -> Hash:
    """Digest binding a block to its transaction list."""
    if not perf.caches_enabled():
        return hash_fields(tuple(tx.digest_fields() for tx in transactions))
    digest = _PAYLOAD_DIGEST_CACHE.get(transactions)
    if digest is None:
        if len(_PAYLOAD_DIGEST_CACHE) >= 4096:  # bound memory, not results
            _PAYLOAD_DIGEST_CACHE.clear()
        digest = hash_fields(tuple(tx.digest_fields() for tx in transactions))
        _PAYLOAD_DIGEST_CACHE[transactions] = digest
    return digest


class Mempool:
    """Per-replica transaction pool."""

    def __init__(
        self,
        payload_bytes: int,
        block_size: int,
        open_loop: bool = True,
        synthetic_client: int = -1,
    ) -> None:
        self.payload_bytes = payload_bytes
        self.block_size = block_size
        self.open_loop = open_loop
        self._queue: deque[Transaction] = deque()
        self._synth = itertools.count()
        self._synthetic_client = synthetic_client

    def add(self, tx: Transaction) -> None:
        """Queue a client transaction (closed-loop mode)."""
        self._queue.append(tx)

    def pending(self) -> int:
        """Number of queued client transactions."""
        return len(self._queue)

    def take_block(self, now: float) -> tuple[Transaction, ...]:
        """Pull up to ``block_size`` transactions for a new proposal.

        In open-loop mode missing transactions are synthesized, so blocks
        are always full; in closed-loop mode the block may be short or
        empty, matching a real system under light load.
        """
        batch: list[Transaction] = []
        while self._queue and len(batch) < self.block_size:
            batch.append(self._queue.popleft())
        if self.open_loop:
            while len(batch) < self.block_size:
                batch.append(
                    Transaction(
                        client_id=self._synthetic_client,
                        tx_id=next(self._synth),
                        payload_bytes=self.payload_bytes,
                        submitted_at=now,
                    )
                )
        return tuple(batch)
