"""Client transactions and admission verdicts.

The paper works "at the block level" and leaves transaction internals
abstract (Section 5); the only transaction properties the evaluation
depends on are counts and byte sizes: each transaction carries a payload
plus 40 B of metadata (client id, transaction id, previous-block hash -
Section 8, "Deployment settings").

The replica-side pool lives in :mod:`repro.mempool` (bounded priority
ordering, per-sender rate limiting, watermark backpressure); this module
keeps the core data model the wire codec and block hashing depend on:
the :class:`Transaction` record and the :class:`AdmissionVerdict` a
replica returns to the submitting client.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass

from repro import perf
from repro.crypto.hashing import Hash, hash_fields

#: Metadata bytes per transaction (2 x 4 B ids + 32 B previous-block hash).
TX_METADATA_BYTES = 40


class AdmissionVerdict(enum.Enum):
    """Outcome of submitting a transaction to a replica's mempool.

    Returned to clients inside :class:`repro.core.messages.ClientReply`:
    an ``ACCEPTED`` transaction will (absent faults) eventually execute
    and produce a second, execution-time reply; the other verdicts are
    immediate NACKs telling the client why admission failed.
    """

    ACCEPTED = "accepted"
    RATE_LIMITED = "rate-limited"
    POOL_FULL = "pool-full"
    DUPLICATE = "duplicate"


@dataclass(frozen=True, slots=True)
class Transaction:
    """A client transaction; payload content is abstracted to its size.

    ``fee`` is the client-declared priority: the pool drains higher fees
    first and evicts lower fees first, and a fee of zero (the default,
    and the only value the paper's workloads use) degenerates to FIFO.
    """

    client_id: int
    tx_id: int
    payload_bytes: int
    submitted_at: float = 0.0
    fee: int = 0

    def wire_size(self) -> int:
        """Bytes this transaction occupies inside a block."""
        return self.payload_bytes + TX_METADATA_BYTES

    def digest_fields(self) -> tuple[int, int, int, int]:
        return (self.client_id, self.tx_id, self.payload_bytes, self.fee)


#: Memoized payload digests keyed by the (immutable) transaction tuple.
#: The same tuple is re-digested whenever a block is reconstructed from
#: the wire or re-hashed; the digest is a pure function of its content.
_PAYLOAD_DIGEST_CACHE: dict[tuple[Transaction, ...], Hash] = {}
_DIGEST_CACHE_MAX = 4096
perf.register_cache_clearer(_PAYLOAD_DIGEST_CACHE.clear)


def payload_digest(transactions: tuple[Transaction, ...]) -> Hash:
    """Digest binding a block to its transaction list."""
    if not perf.caches_enabled():
        return hash_fields(tuple(tx.digest_fields() for tx in transactions))
    digest = _PAYLOAD_DIGEST_CACHE.get(transactions)
    if digest is None:
        if len(_PAYLOAD_DIGEST_CACHE) >= _DIGEST_CACHE_MAX:
            # Evict the oldest half (dicts preserve insertion order)
            # rather than clearing wholesale: recent tuples are the ones
            # a live chain keeps re-hashing, and dropping them too costs
            # a re-digest per block on the hot path.
            for stale in list(
                itertools.islice(_PAYLOAD_DIGEST_CACHE, _DIGEST_CACHE_MAX // 2)
            ):
                del _PAYLOAD_DIGEST_CACHE[stale]
        digest = hash_fields(tuple(tx.digest_fields() for tx in transactions))
        _PAYLOAD_DIGEST_CACHE[transactions] = digest
    return digest


def __getattr__(name: str) -> object:
    # Back-compat: the pool class moved to repro.mempool; resolve the old
    # name lazily so importing this core module never drags the pool
    # package (and its config surface) into the codec's import graph.
    if name == "Mempool":
        from repro.mempool.pool import PriorityMempool

        return PriorityMempool
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
