"""Byte-level wire codec for all protocol messages.

The simulator never *needs* serialized bytes (payloads travel as Python
objects), but a production system does, and the byte accounting the
benchmarks rely on should be honest.  This module provides a complete
encoder/decoder for every message type; the test suite round-trips every
message and checks that the declared ``wire_size()`` tracks the real
encoded length.

Format: little-endian fixed-width integers, length-prefixed variable
fields, one leading type tag per message.  Transaction payloads are
zero-filled to their declared size (their content is abstract, Section 5,
but their bytes must exist on a real wire).

The encoder writes into one preallocated, doubling ``bytearray`` through
precompiled :class:`struct.Struct` instances (``pack_into``), and the
decoder reads with ``unpack_from`` against a single position cursor - no
per-field bytes objects on either side.  Every malformed-input failure
surfaces as :class:`CodecError`; ``struct.error``/``IndexError``/
``UnicodeDecodeError`` never escape this module.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Protocol, runtime_checkable

from repro import perf
from repro.crypto.hashing import HASH_SIZE, Hash
from repro.crypto.scheme import Signature
from repro.errors import ProtocolError
from repro.core.block import Block
from repro.core.certificate import Accumulator, QuorumCert
from repro.core.commitment import Commitment
from repro.core.mempool import AdmissionVerdict, Transaction
from repro.core.messages import (
    BlockProposal,
    BlockRequest,
    BlockResponse,
    ChainedProposal,
    ClientReply,
    ClientRequest,
    CommitmentMsg,
    NewViewAMsg,
    NewViewMsg,
    ProposalAMsg,
    ProposalMsg,
    QCMsg,
    VoteMsg,
)
from repro.core.phases import Phase


#: Wire-format generation.  Version 2 added the transaction ``fee``
#: field and the admission verdict byte in client replies; peers
#: announce their version in the connection hello
#: (:mod:`repro.runtime.framing`) and mismatched generations are
#: refused at connect time rather than misparsed mid-stream.
WIRE_VERSION = 2


class CodecError(ProtocolError):
    """Malformed bytes on the wire."""


@runtime_checkable
class Serializer(Protocol):
    """Anything that turns messages into bytes and back (snippet-3 shape).

    The runtimes depend on this protocol rather than on the module
    functions, so tests and alternative wire formats can substitute their
    own implementation.
    """

    def serialize(self, msg: Any) -> bytes: ...

    def deserialize(self, data: bytes) -> Any: ...


# Precompiled wire-primitive structs: compiling the format string once
# and using pack_into/unpack_from avoids both the format-cache lookup and
# the per-field bytes object of struct.pack/unpack.
_U8 = struct.Struct("<B")
_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")


class Encoder:
    """Append-only byte writer over one preallocated, doubling buffer."""

    __slots__ = ("_buf", "_pos")

    def __init__(self, reserve: int = 256) -> None:
        self._buf = bytearray(reserve if reserve > 16 else 16)
        self._pos = 0

    def _ensure(self, need: int) -> None:
        buf = self._buf
        shortfall = self._pos + need - len(buf)
        if shortfall > 0:
            # Grow at least geometrically; the extension is zero-filled,
            # which pad() below relies on.
            buf.extend(b"\x00" * (shortfall if shortfall > len(buf) else len(buf)))

    def bytes(self) -> bytes:
        return bytes(memoryview(self._buf)[: self._pos])

    def u8(self, value: int) -> "Encoder":
        self._ensure(1)
        try:
            _U8.pack_into(self._buf, self._pos, value)
        except struct.error as exc:
            raise CodecError(f"u8 out of range: {value}") from exc
        self._pos += 1
        return self

    def u32(self, value: int) -> "Encoder":
        self._ensure(4)
        try:
            _U32.pack_into(self._buf, self._pos, value)
        except struct.error as exc:
            raise CodecError(f"u32 out of range: {value}") from exc
        self._pos += 4
        return self

    def i64(self, value: int) -> "Encoder":
        self._ensure(8)
        try:
            _I64.pack_into(self._buf, self._pos, value)
        except struct.error as exc:
            raise CodecError(f"i64 out of range: {value}") from exc
        self._pos += 8
        return self

    def f64(self, value: float) -> "Encoder":
        self._ensure(8)
        _F64.pack_into(self._buf, self._pos, value)
        self._pos += 8
        return self

    def raw(self, data: bytes) -> "Encoder":
        n = len(data)
        self._ensure(n)
        pos = self._pos
        self._buf[pos : pos + n] = data
        self._pos = pos + n
        return self

    def pad(self, n: int) -> "Encoder":
        """Append ``n`` zero bytes without materializing them.

        The buffer region past the cursor is always zero (fresh
        allocations and growth extensions are zero-filled, and the cursor
        never moves backwards), so skipping ahead *is* writing zeros.
        """
        self._ensure(n)
        self._pos += n
        return self

    def var_bytes(self, data: bytes) -> "Encoder":
        n = len(data)
        self._ensure(4 + n)
        pos = self._pos
        buf = self._buf
        _U32.pack_into(buf, pos, n)
        buf[pos + 4 : pos + 4 + n] = data
        self._pos = pos + 4 + n
        return self

    def hash32(self, value: Hash) -> "Encoder":
        if len(value) != HASH_SIZE:
            raise CodecError(f"hash must be {HASH_SIZE} bytes")
        return self.raw(value)

    def opt(self, value: Any, write: Callable[[Any], Any]) -> "Encoder":
        if value is None:
            self.u8(0)
        else:
            self.u8(1)
            write(value)
        return self

    def string(self, value: str) -> "Encoder":
        return self.var_bytes(value.encode())

    def patch_u32(self, offset: int, value: int) -> "Encoder":
        """Overwrite a previously written u32 (frame-header back-patching)."""
        if offset + 4 > self._pos:
            raise CodecError("patch offset past the write cursor")
        _U32.pack_into(self._buf, offset, value)
        return self


class Decoder:
    """Bounds-checked byte reader: one cursor, ``unpack_from``, no slices
    except for variable-length payloads the caller keeps."""

    __slots__ = ("_data", "_len", "_pos")

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0
        self._len = len(data)

    def _take(self, n: int) -> bytes:
        pos = self._pos
        end = pos + n
        if end > self._len:
            raise CodecError("truncated message")
        self._pos = end
        return self._data[pos:end]

    def skip(self, n: int) -> None:
        """Advance past ``n`` bytes without materializing them."""
        end = self._pos + n
        if end > self._len:
            raise CodecError("truncated message")
        self._pos = end

    def done(self) -> bool:
        return self._pos == self._len

    def expect_done(self) -> None:
        if not self.done():
            raise CodecError(f"{self._len - self._pos} trailing bytes")

    def u8(self) -> int:
        pos = self._pos
        if pos >= self._len:
            raise CodecError("truncated message")
        self._pos = pos + 1
        return self._data[pos]

    def u32(self) -> int:
        pos = self._pos
        if pos + 4 > self._len:
            raise CodecError("truncated message")
        self._pos = pos + 4
        return int(_U32.unpack_from(self._data, pos)[0])

    def i64(self) -> int:
        pos = self._pos
        if pos + 8 > self._len:
            raise CodecError("truncated message")
        self._pos = pos + 8
        return int(_I64.unpack_from(self._data, pos)[0])

    def f64(self) -> float:
        pos = self._pos
        if pos + 8 > self._len:
            raise CodecError("truncated message")
        self._pos = pos + 8
        return float(_F64.unpack_from(self._data, pos)[0])

    def var_bytes(self) -> bytes:
        return self._take(self.u32())

    def hash32(self) -> Hash:
        return self._take(HASH_SIZE)

    def opt(self, read: Callable[[], Any]) -> Any:
        return read() if self.u8() else None

    def string(self) -> str:
        raw = self.var_bytes()
        try:
            return raw.decode()
        except UnicodeDecodeError as exc:
            raise CodecError("invalid utf-8 in string field") from exc


# -- component codecs ----------------------------------------------------------

_PHASES = list(Phase)


def _enc_phase(enc: Encoder, phase: Phase) -> None:
    enc.u8(_PHASES.index(phase))


def _dec_phase(dec: Decoder) -> Phase:
    idx = dec.u8()
    if idx >= len(_PHASES):
        raise CodecError("unknown phase tag")
    return _PHASES[idx]


def _enc_signature(enc: Encoder, sig: Signature) -> None:
    enc.i64(sig.signer)
    enc.var_bytes(sig.data)
    enc.string(sig.scheme)


def _dec_signature(dec: Decoder) -> Signature:
    return Signature(signer=dec.i64(), data=dec.var_bytes(), scheme=dec.string())


def _enc_sig_list(enc: Encoder, sigs: tuple[Signature, ...]) -> None:
    enc.u32(len(sigs))
    for sig in sigs:
        _enc_signature(enc, sig)


def _dec_sig_list(dec: Decoder) -> tuple[Signature, ...]:
    return tuple(_dec_signature(dec) for _ in range(dec.u32()))


def _enc_transaction(enc: Encoder, tx: Transaction) -> None:
    enc.i64(tx.client_id)
    enc.i64(tx.tx_id)
    enc.u32(tx.payload_bytes)
    enc.f64(tx.submitted_at)
    enc.i64(tx.fee)
    enc.pad(tx.payload_bytes)  # abstract payload, real (zero) bytes


def _dec_transaction(dec: Decoder) -> Transaction:
    client_id = dec.i64()
    tx_id = dec.i64()
    payload_bytes = dec.u32()
    submitted_at = dec.f64()
    fee = dec.i64()
    dec.skip(payload_bytes)  # discard the abstract payload
    return Transaction(client_id, tx_id, payload_bytes, submitted_at, fee)


_VERDICTS = list(AdmissionVerdict)


def _enc_verdict(enc: Encoder, verdict: AdmissionVerdict) -> None:
    enc.u8(_VERDICTS.index(verdict))


def _dec_verdict(dec: Decoder) -> AdmissionVerdict:
    idx = dec.u8()
    if idx >= len(_VERDICTS):
        raise CodecError(f"unknown admission verdict {idx}")
    return _VERDICTS[idx]


def _enc_qc(enc: Encoder, qc: QuorumCert) -> None:
    enc.i64(qc.view)
    enc.hash32(qc.block_hash)
    _enc_phase(enc, qc.phase)
    enc.u8(1 if qc.is_genesis else 0)
    _enc_sig_list(enc, qc.sigs)


def _dec_qc(dec: Decoder) -> QuorumCert:
    return QuorumCert(
        view=dec.i64(),
        block_hash=dec.hash32(),
        phase=_dec_phase(dec),
        is_genesis=bool(dec.u8()),
        sigs=_dec_sig_list(dec),
    )


def _enc_accumulator(enc: Encoder, acc: Accumulator) -> None:
    enc.i64(acc.made_in_view)
    enc.i64(acc.prep_view)
    enc.hash32(acc.prep_hash)
    _enc_signature(enc, acc.signature)
    if acc.finalized:
        enc.u8(1)
        enc.u32(acc.count or 0)
    else:
        enc.u8(0)
        ids = acc.ids or ()
        enc.u32(len(ids))
        for node_id in ids:
            enc.i64(node_id)


def _dec_accumulator(dec: Decoder) -> Accumulator:
    made_in_view = dec.i64()
    prep_view = dec.i64()
    prep_hash = dec.hash32()
    signature = _dec_signature(dec)
    if dec.u8():
        return Accumulator(made_in_view, prep_view, prep_hash, signature, count=dec.u32())
    ids = tuple(dec.i64() for _ in range(dec.u32()))
    return Accumulator(made_in_view, prep_view, prep_hash, signature, ids=ids)


def _enc_commitment(enc: Encoder, phi: Commitment) -> None:
    enc.opt(phi.h_prep, enc.hash32)
    enc.i64(phi.v_prep)
    enc.opt(phi.h_just, enc.hash32)
    enc.opt(phi.v_just, enc.i64)
    _enc_phase(enc, phi.phase)
    _enc_sig_list(enc, phi.sigs)


def _dec_commitment(dec: Decoder) -> Commitment:
    return Commitment(
        h_prep=dec.opt(dec.hash32),
        v_prep=dec.i64(),
        h_just=dec.opt(dec.hash32),
        v_just=dec.opt(dec.i64),
        phase=_dec_phase(dec),
        sigs=_dec_sig_list(dec),
    )


# Justification kinds inside a block.
_JUST_NONE, _JUST_QC, _JUST_ACC, _JUST_COMMIT = range(4)


def _enc_block(enc: Encoder, block: Block) -> None:
    """Encode a block, memoizing the bytes on the (immutable) block object.

    The same block body is re-encoded for every peer a proposal is sent
    to and for every block-sync response; the encoding is a pure function
    of the block's content, so caching it on the object is invisible on
    the wire.
    """
    if perf.caches_enabled():
        cached = block._codec_bytes
        if not cached:
            sub = Encoder()
            _enc_block_fields(sub, block)
            cached = sub.bytes()
            object.__setattr__(block, "_codec_bytes", cached)
        enc.raw(cached)
        return
    _enc_block_fields(enc, block)


def _enc_block_fields(enc: Encoder, block: Block) -> None:
    enc.hash32(block.parent_hash)
    enc.i64(block.view)
    enc.u8(1 if block.is_genesis else 0)
    enc.u8(1 if block.is_blank else 0)
    enc.f64(block.created_at)
    enc.u32(len(block.transactions))
    for tx in block.transactions:
        _enc_transaction(enc, tx)
    justify = block.justify
    if justify is None:
        enc.u8(_JUST_NONE)
    elif isinstance(justify, QuorumCert):
        enc.u8(_JUST_QC)
        _enc_qc(enc, justify)
    elif isinstance(justify, Accumulator):
        enc.u8(_JUST_ACC)
        _enc_accumulator(enc, justify)
    elif isinstance(justify, Commitment):
        enc.u8(_JUST_COMMIT)
        _enc_commitment(enc, justify)
    else:  # pragma: no cover - exhaustive over certificate kinds
        raise CodecError(f"unknown justification {type(justify).__name__}")


def _dec_block(dec: Decoder) -> Block:
    parent_hash = dec.hash32()
    view = dec.i64()
    is_genesis = bool(dec.u8())
    is_blank = bool(dec.u8())
    created_at = dec.f64()
    transactions = tuple(_dec_transaction(dec) for _ in range(dec.u32()))
    kind = dec.u8()
    justify: QuorumCert | Accumulator | Commitment | None
    if kind == _JUST_NONE:
        justify = None
    elif kind == _JUST_QC:
        justify = _dec_qc(dec)
    elif kind == _JUST_ACC:
        justify = _dec_accumulator(dec)
    elif kind == _JUST_COMMIT:
        justify = _dec_commitment(dec)
    else:
        raise CodecError("unknown justification tag")
    return Block(
        parent_hash=parent_hash,
        view=view,
        transactions=transactions,
        justify=justify,
        is_genesis=is_genesis,
        is_blank=is_blank,
        created_at=created_at,
    )


# -- message codecs (type tag + body) ----------------------------------------------

def _enc_new_view(enc: Encoder, msg: NewViewMsg) -> None:
    enc.i64(msg.view)
    _enc_qc(enc, msg.justify)


def _dec_new_view(dec: Decoder) -> NewViewMsg:
    return NewViewMsg(view=dec.i64(), justify=_dec_qc(dec))


def _enc_new_view_a(enc: Encoder, msg: NewViewAMsg) -> None:
    enc.i64(msg.view)
    _enc_qc(enc, msg.justify)
    _enc_signature(enc, msg.sender_sig)


def _dec_new_view_a(dec: Decoder) -> NewViewAMsg:
    return NewViewAMsg(dec.i64(), _dec_qc(dec), _dec_signature(dec))


def _enc_proposal(enc: Encoder, msg: ProposalMsg) -> None:
    enc.i64(msg.view)
    _enc_block(enc, msg.block)
    _enc_qc(enc, msg.justify)


def _dec_proposal(dec: Decoder) -> ProposalMsg:
    return ProposalMsg(dec.i64(), _dec_block(dec), _dec_qc(dec))


def _enc_proposal_a(enc: Encoder, msg: ProposalAMsg) -> None:
    enc.i64(msg.view)
    _enc_block(enc, msg.block)
    _enc_accumulator(enc, msg.acc)
    _enc_signature(enc, msg.leader_sig)


def _dec_proposal_a(dec: Decoder) -> ProposalAMsg:
    return ProposalAMsg(dec.i64(), _dec_block(dec), _dec_accumulator(dec), _dec_signature(dec))


def _enc_vote(enc: Encoder, msg: VoteMsg) -> None:
    enc.i64(msg.view)
    _enc_phase(enc, msg.phase)
    enc.hash32(msg.block_hash)
    _enc_signature(enc, msg.sig)


def _dec_vote(dec: Decoder) -> VoteMsg:
    return VoteMsg(dec.i64(), _dec_phase(dec), dec.hash32(), _dec_signature(dec))


def _enc_qc_msg(enc: Encoder, msg: QCMsg) -> None:
    enc.i64(msg.view)
    _enc_phase(enc, msg.phase)
    _enc_qc(enc, msg.qc)


def _dec_qc_msg(dec: Decoder) -> QCMsg:
    return QCMsg(dec.i64(), _dec_phase(dec), _dec_qc(dec))


def _enc_commitment_msg(enc: Encoder, msg: CommitmentMsg) -> None:
    enc.string(msg.kind)
    _enc_commitment(enc, msg.commitment)


def _dec_commitment_msg(dec: Decoder) -> CommitmentMsg:
    kind = dec.string()
    return CommitmentMsg(_dec_commitment(dec), kind)


def _enc_block_proposal(enc: Encoder, msg: BlockProposal) -> None:
    enc.i64(msg.view)
    _enc_block(enc, msg.block)
    enc.opt(msg.acc, lambda acc: _enc_accumulator(enc, acc))
    _enc_signature(enc, msg.leader_sig)
    enc.opt(msg.justify_commitment, lambda phi: _enc_commitment(enc, phi))


def _dec_block_proposal(dec: Decoder) -> BlockProposal:
    return BlockProposal(
        view=dec.i64(),
        block=_dec_block(dec),
        acc=dec.opt(lambda: _dec_accumulator(dec)),
        leader_sig=_dec_signature(dec),
        justify_commitment=dec.opt(lambda: _dec_commitment(dec)),
    )


def _enc_chained_proposal(enc: Encoder, msg: ChainedProposal) -> None:
    enc.i64(msg.view)
    _enc_block(enc, msg.block)
    _enc_signature(enc, msg.leader_sig)


def _dec_chained_proposal(dec: Decoder) -> ChainedProposal:
    return ChainedProposal(dec.i64(), _dec_block(dec), _dec_signature(dec))


def _enc_block_request(enc: Encoder, msg: BlockRequest) -> None:
    enc.hash32(msg.block_hash)


def _dec_block_request(dec: Decoder) -> BlockRequest:
    return BlockRequest(dec.hash32())


def _enc_block_response(enc: Encoder, msg: BlockResponse) -> None:
    _enc_block(enc, msg.block)


def _dec_block_response(dec: Decoder) -> BlockResponse:
    return BlockResponse(_dec_block(dec))


def _enc_client_request(enc: Encoder, msg: ClientRequest) -> None:
    enc.i64(msg.client_id)
    _enc_transaction(enc, msg.tx)


def _dec_client_request(dec: Decoder) -> ClientRequest:
    return ClientRequest(dec.i64(), _dec_transaction(dec))


def _enc_client_reply(enc: Encoder, msg: ClientReply) -> None:
    enc.i64(msg.replica)
    enc.i64(msg.client_id)
    enc.i64(msg.tx_id)
    enc.f64(msg.executed_at)
    _enc_verdict(enc, msg.verdict)


def _dec_client_reply(dec: Decoder) -> ClientReply:
    return ClientReply(dec.i64(), dec.i64(), dec.i64(), dec.f64(), _dec_verdict(dec))


def _enc_chained_vote(enc: Encoder, msg: Any) -> None:
    enc.i64(msg.view)
    enc.opt(msg.prep, lambda phi: _enc_commitment(enc, phi))
    _enc_commitment(enc, msg.nv)


def _dec_chained_vote(dec: Decoder) -> Any:
    from repro.protocols.chained_damysus import ChainedVote

    return ChainedVote(
        view=dec.i64(),
        prep=dec.opt(lambda: _dec_commitment(dec)),
        nv=_dec_commitment(dec),
    )


def _enc_fast_proposal(enc: Encoder, msg: Any) -> None:
    enc.i64(msg.view)
    _enc_block(enc, msg.block)
    _enc_qc(enc, msg.justify)
    if msg.proof is None:
        enc.u8(0)
    else:
        enc.u8(1)
        enc.u32(len(msg.proof))
        for report in msg.proof:
            _enc_new_view_a(enc, report)


def _dec_fast_proposal(dec: Decoder) -> Any:
    from repro.protocols.fast_hotstuff import FastProposal

    view = dec.i64()
    block = _dec_block(dec)
    justify = _dec_qc(dec)
    proof = None
    if dec.u8():
        proof = tuple(_dec_new_view_a(dec) for _ in range(dec.u32()))
    return FastProposal(view, block, justify, proof)


def _enc_checkpoint(enc: Encoder, ckpt: Any) -> None:
    enc.i64(ckpt.replica)
    enc.i64(ckpt.counter)
    enc.i64(ckpt.height)
    enc.i64(ckpt.view)
    enc.hash32(ckpt.block_hash)
    enc.hash32(ckpt.state_root)
    _enc_commitment(enc, ckpt.qc)
    _enc_signature(enc, ckpt.signature)


def _dec_checkpoint(dec: Decoder) -> Any:
    from repro.tee.checkpoint import Checkpoint

    return Checkpoint(
        replica=dec.i64(),
        counter=dec.i64(),
        height=dec.i64(),
        view=dec.i64(),
        block_hash=dec.hash32(),
        state_root=dec.hash32(),
        qc=_dec_commitment(dec),
        signature=_dec_signature(dec),
    )


def _enc_sync_request(enc: Encoder, msg: Any) -> None:
    enc.i64(msg.have_height)
    enc.i64(msg.have_view)


def _dec_sync_request(dec: Decoder) -> Any:
    from repro.protocols.sync import SyncRequest

    return SyncRequest(dec.i64(), dec.i64())


def _enc_sync_checkpoint(enc: Encoder, msg: Any) -> None:
    _enc_checkpoint(enc, msg.checkpoint)


def _dec_sync_checkpoint(dec: Decoder) -> Any:
    from repro.protocols.sync import SyncCheckpoint

    return SyncCheckpoint(_dec_checkpoint(dec))


def _enc_sync_blocks(enc: Encoder, msg: Any) -> None:
    enc.i64(msg.start_height)
    enc.u8(1 if msg.done else 0)
    enc.opt(msg.tip_qc, lambda qc: _enc_commitment(enc, qc))
    enc.u32(len(msg.blocks))
    for block in msg.blocks:
        _enc_block(enc, block)


def _dec_sync_blocks(dec: Decoder) -> Any:
    from repro.protocols.sync import SyncBlocks

    start_height = dec.i64()
    done = bool(dec.u8())
    tip_qc = dec.opt(lambda: _dec_commitment(dec))
    blocks = tuple(_dec_block(dec) for _ in range(dec.u32()))
    return SyncBlocks(start_height, blocks, done, tip_qc)


def _registry() -> list[tuple[type[Any], Callable[..., None], Callable[..., Any]]]:
    from repro.protocols.chained_damysus import ChainedVote
    from repro.protocols.fast_hotstuff import FastProposal
    from repro.protocols.sync import SyncBlocks, SyncCheckpoint, SyncRequest

    return [
        (NewViewMsg, _enc_new_view, _dec_new_view),
        (NewViewAMsg, _enc_new_view_a, _dec_new_view_a),
        (ProposalMsg, _enc_proposal, _dec_proposal),
        (ProposalAMsg, _enc_proposal_a, _dec_proposal_a),
        (VoteMsg, _enc_vote, _dec_vote),
        (QCMsg, _enc_qc_msg, _dec_qc_msg),
        (CommitmentMsg, _enc_commitment_msg, _dec_commitment_msg),
        (BlockProposal, _enc_block_proposal, _dec_block_proposal),
        (ChainedProposal, _enc_chained_proposal, _dec_chained_proposal),
        (ChainedVote, _enc_chained_vote, _dec_chained_vote),
        (FastProposal, _enc_fast_proposal, _dec_fast_proposal),
        (BlockRequest, _enc_block_request, _dec_block_request),
        (BlockResponse, _enc_block_response, _dec_block_response),
        (ClientRequest, _enc_client_request, _dec_client_request),
        (ClientReply, _enc_client_reply, _dec_client_reply),
        (SyncRequest, _enc_sync_request, _dec_sync_request),
        (SyncCheckpoint, _enc_sync_checkpoint, _dec_sync_checkpoint),
        (SyncBlocks, _enc_sync_blocks, _dec_sync_blocks),
    ]


_BY_TYPE: dict[type[Any], tuple[int, Callable[..., None]]] = {}
_BY_TAG: dict[int, Callable[..., Any]] = {}


def _ensure_tables() -> None:
    if _BY_TYPE:
        return
    for tag, (cls, enc_fn, dec_fn) in enumerate(_registry()):
        _BY_TYPE[cls] = (tag, enc_fn)
        _BY_TAG[tag] = dec_fn


def _reserve_for(msg: Any) -> int:
    """Initial encoder buffer size: the declared wire size plus slack.

    ``wire_size()`` tracks the real encoding closely (the test suite
    enforces it), so one allocation usually covers the whole message.
    """
    return wire_size_of(msg) + 128


def encode_message(msg: Any) -> bytes:
    """Serialize any protocol message to bytes (leading type tag)."""
    _ensure_tables()
    entry = _BY_TYPE.get(type(msg))
    if entry is None:
        raise CodecError(f"no codec for {type(msg).__name__}")
    tag, enc_fn = entry
    enc = Encoder(reserve=_reserve_for(msg))
    enc.u8(tag)
    enc_fn(enc, msg)
    return enc.bytes()


def encode_message_framed(msg: Any) -> bytes:
    """Length-prefixed frame: u32-le body length, then tag + body.

    Header and bulk share one encoder buffer - the 4-byte header is
    reserved up front and back-patched once the body length is known, so
    framing a message never concatenates two large byte strings.
    """
    _ensure_tables()
    entry = _BY_TYPE.get(type(msg))
    if entry is None:
        raise CodecError(f"no codec for {type(msg).__name__}")
    tag, enc_fn = entry
    enc = Encoder(reserve=_reserve_for(msg) + 4)
    enc.u32(0)  # header placeholder
    enc.u8(tag)
    enc_fn(enc, msg)
    enc.patch_u32(0, enc._pos - 4)
    return enc.bytes()


def decode_message(data: bytes) -> Any:
    """Parse bytes produced by :func:`encode_message`."""
    _ensure_tables()
    dec = Decoder(data)
    tag = dec.u8()
    dec_fn = _BY_TAG.get(tag)
    if dec_fn is None:
        raise CodecError(f"unknown message tag {tag}")
    msg = dec_fn(dec)
    dec.expect_done()
    return msg


def encode_checkpoint(ckpt: Any) -> bytes:
    """Serialize a certified checkpoint standalone (no message tag).

    Used by the durable seal store, which persists the latest certified
    checkpoint next to the sealed checker snapshot.
    """
    enc = Encoder()
    _enc_checkpoint(enc, ckpt)
    return enc.bytes()


def decode_checkpoint(data: bytes) -> Any:
    """Parse bytes produced by :func:`encode_checkpoint`."""
    dec = Decoder(data)
    ckpt = _dec_checkpoint(dec)
    dec.expect_done()
    return ckpt


class MessageSerializer:
    """The default :class:`Serializer`: tag-dispatched binary codec."""

    def serialize(self, msg: Any) -> bytes:
        return encode_message(msg)

    def deserialize(self, data: bytes) -> Any:
        return decode_message(data)


def wire_size_of(payload: Any) -> int:
    """Best-effort wire size of a payload in bytes.

    Protocol messages implement ``wire_size()``; other payloads (test
    strings, tuples...) fall back to a small constant so unit tests do not
    need size plumbing.
    """
    sizer = getattr(payload, "wire_size", None)
    if callable(sizer):
        return int(sizer())
    return 64


def msg_type_of(payload: Any) -> str:
    """Message-type label used for per-type accounting."""
    label = getattr(payload, "msg_type", None)
    if isinstance(label, str):
        return label
    return type(payload).__name__
