"""Core consensus data types shared by all six protocols.

This package contains the paper's vocabulary as code: blocks and the
extension relation (Section 5), phases and steps (Section 6.2),
commitments with ``C-combine``/``C-match`` (Section 6.2), quorum
certificates and accumulators (Sections 6.2/7.1), the wire messages with
byte-accurate size accounting, and the execution ledger with a global
safety oracle used by tests and the Section 4 counter-example.
"""

from repro.core.block import GENESIS_PAYLOAD_DIGEST, Block, create_chain, create_leaf, genesis_block
from repro.core.certificate import Accumulator, QuorumCert, genesis_qc
from repro.core.chain import BlockStore
from repro.core.commitment import Commitment, c_combine, c_match
from repro.core.executor import Ledger, SafetyOracle
from repro.core.mempool import Mempool, Transaction
from repro.core.messages import (
    BlockProposal,
    ChainedProposal,
    ClientReply,
    ClientRequest,
    CommitmentMsg,
    NewViewAMsg,
    NewViewMsg,
    ProposalAMsg,
    ProposalMsg,
    QCMsg,
    VoteMsg,
)
from repro.core.phases import Phase, Step, StepRule

__all__ = [
    "Phase",
    "Step",
    "StepRule",
    "Transaction",
    "Mempool",
    "Block",
    "genesis_block",
    "create_leaf",
    "create_chain",
    "GENESIS_PAYLOAD_DIGEST",
    "BlockStore",
    "Commitment",
    "c_combine",
    "c_match",
    "QuorumCert",
    "Accumulator",
    "genesis_qc",
    "Ledger",
    "SafetyOracle",
    "NewViewMsg",
    "NewViewAMsg",
    "ProposalMsg",
    "VoteMsg",
    "QCMsg",
    "BlockProposal",
    "ProposalAMsg",
    "ChainedProposal",
    "CommitmentMsg",
    "ClientRequest",
    "ClientReply",
]
