"""Seeded, named random streams.

Every source of randomness in a simulation draws from an :class:`RngStream`
derived from the experiment's master seed and a stable name (for example
``"latency:3->7"``).  Deriving streams by name rather than sharing a single
``random.Random`` means that adding a new consumer of randomness does not
perturb the draws seen by existing consumers, so results stay comparable
across library versions.
"""

from __future__ import annotations

import hashlib
import random
from typing import MutableSequence, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a stream name."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RngStream:
    """A named pseudo-random stream (thin wrapper over ``random.Random``)."""

    def __init__(self, master_seed: int, name: str) -> None:
        self.name = name
        self._rng = random.Random(derive_seed(master_seed, name))  # noqa: S311 - deterministic simulation stream, not cryptography

    def uniform(self, lo: float, hi: float) -> float:
        """Uniform float in [lo, hi]."""
        return self._rng.uniform(lo, hi)

    def expovariate(self, rate: float) -> float:
        """Exponential inter-arrival sample with the given rate (1/mean)."""
        return self._rng.expovariate(rate)

    def gauss(self, mu: float, sigma: float) -> float:
        """Normal sample."""
        return self._rng.gauss(mu, sigma)

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi]."""
        return self._rng.randint(lo, hi)

    def choice(self, seq: Sequence[T]) -> T:
        """Uniformly pick one element of a non-empty sequence."""
        return self._rng.choice(seq)

    def shuffle(self, seq: MutableSequence[T]) -> None:
        """In-place Fisher-Yates shuffle."""
        self._rng.shuffle(seq)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._rng.random()

    def jitter(self, base: float, fraction: float) -> float:
        """``base`` perturbed by up to +/- ``fraction`` of itself, floored at 0."""
        if fraction <= 0:
            return base
        return max(0.0, base * (1.0 + self._rng.uniform(-fraction, fraction)))


class RngFactory:
    """Creates named :class:`RngStream` objects from one master seed."""

    def __init__(self, master_seed: int) -> None:
        self.master_seed = master_seed

    def stream(self, name: str) -> RngStream:
        """Return the stream for ``name`` (always freshly seeded by name)."""
        return RngStream(self.master_seed, name)
