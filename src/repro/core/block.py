"""Blocks and the extension relation (paper Section 5).

A block stores the hash value of the block it extends, which is what makes
the relation ``b > h`` ("b is a direct extension of the block with hash
h") checkable.  Chained blocks additionally store their justification
certificate, accessible as ``b.just`` (Section 7.1).

``create_leaf`` is the paper's block constructor for the basic protocols;
``create_chain`` is the chained variant, which conceptually fills view
gaps with blank blocks - here gaps are represented by non-consecutive
views rather than materialized blank blocks, and ``is_blank`` marks
explicitly-created filler blocks when a caller wants them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.crypto.hashing import HASH_SIZE, Hash, hash_block_fields, hash_fields
from repro.core.mempool import Transaction, payload_digest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.certificate import Accumulator, QuorumCert

#: Fixed per-block header bytes: parent hash + view + tx count + framing.
BLOCK_HEADER_BYTES = HASH_SIZE + 4 + 4 + 8

#: Digest of the (empty) genesis payload.
GENESIS_PAYLOAD_DIGEST: Hash = hash_fields(("genesis",))


@dataclass(frozen=True, slots=True)
class Block:
    """A proposal: transactions plus a pointer to the extended block."""

    parent_hash: Hash
    view: int
    transactions: tuple[Transaction, ...]
    justify: "QuorumCert | Accumulator | None" = None
    is_genesis: bool = False
    is_blank: bool = False
    created_at: float = 0.0
    _hash: Hash = field(default=b"", repr=False, compare=False)
    _wire_size: int = field(default=-1, init=False, repr=False, compare=False)
    # Wire encoding memo, filled by repro.core.codec: blocks are immutable,
    # so their byte encoding can be computed once per object.
    _codec_bytes: bytes = field(default=b"", init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        just_digest = self.justify.digest() if self.justify is not None else b""
        digest = hash_block_fields(
            self.parent_hash,
            self.view,
            payload_digest(self.transactions),
            extra=(self.is_genesis, self.is_blank, just_digest),
        )
        object.__setattr__(self, "_hash", digest)

    @property
    def hash(self) -> Hash:
        """SHA-256 identity of the block (paper's ``H(b)``)."""
        return self._hash

    @property
    def just(self) -> "QuorumCert | Accumulator | None":
        """Paper notation ``b.just`` (Section 7.1)."""
        return self.justify

    @property
    def parent(self) -> Hash:
        """Paper notation ``b.parent``: hash of the extended block."""
        return self.parent_hash

    def extends(self, parent_hash: Hash) -> bool:
        """The direct-extension relation ``b > h``."""
        return self.parent_hash == parent_hash

    def num_transactions(self) -> int:
        return len(self.transactions)

    def wire_size(self) -> int:
        """Bytes of this block on the wire (header + txs + justification).

        Computed once and cached: the network asks for a block's size on
        every send of every proposal carrying it, and summing 400
        per-transaction sizes each time dominated the send path.  Blocks
        are immutable, so the size can never change.
        """
        size = self._wire_size
        if size < 0:
            size = BLOCK_HEADER_BYTES + sum(tx.wire_size() for tx in self.transactions)
            if self.justify is not None:
                size += self.justify.wire_size()
            object.__setattr__(self, "_wire_size", size)
        return size


def genesis_block() -> Block:
    """The well-known genesis block ``G``; identical at all replicas."""
    return Block(
        parent_hash=b"\x00" * HASH_SIZE,
        view=0,
        transactions=(),
        justify=None,
        is_genesis=True,
    )


def create_leaf(
    parent_hash: Hash,
    view: int,
    transactions: tuple[Transaction, ...],
    created_at: float = 0.0,
) -> Block:
    """Paper's ``createLeaf``: a new block extending ``parent_hash``."""
    return Block(
        parent_hash=parent_hash,
        view=view,
        transactions=transactions,
        created_at=created_at,
    )


def create_chain(
    justify: "QuorumCert | Accumulator",
    view: int,
    transactions: tuple[Transaction, ...],
    created_at: float = 0.0,
) -> Block:
    """Paper's ``createChain``: a chained block justified by a certificate.

    The new block directly extends the block certified by ``justify``
    (``b.parent == justify.hash``).  When ``view > justify.view + 1`` the
    intermediate views conceptually hold blank blocks (Fig 4); we encode a
    gap as the non-consecutive view numbers rather than materializing the
    blanks, which is behaviourally identical for the execution rule (a
    block only executes from a chain of *consecutive*-view blocks).
    """
    return Block(
        parent_hash=justify.hash,
        view=view,
        transactions=transactions,
        justify=justify,
        created_at=created_at,
    )
