"""Phases and steps (paper Section 6.2 and Section 7.1).

A *step* is a pair of a view and a phase.  Trusted components advance
their monotonic counter through steps; the increment rule differs between
protocol families:

* ``StepRule.BASIC`` (Damysus, Fig 2):
  ``(v, nv_p) -> (v, prep_p) -> (v, pcom_p) -> (v+1, nv_p)``
* ``StepRule.CHAINED`` (Chained-Damysus, Fig 5):
  ``(v, prep_p) -> (v, nv_p) -> (v+1, prep_p)``
* ``StepRule.THREE_PHASE`` (Damysus-C, which keeps HotStuff's commit
  phase): ``(v, nv_p) -> (v, prep_p) -> (v, pcom_p) -> (v, com_p) ->
  (v+1, nv_p)``
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigError


class Phase(enum.Enum):
    """Phase tags carried by TEE-generated messages (Section 6.2)."""

    NEW_VIEW = "nv_p"
    PREPARE = "prep_p"
    PRECOMMIT = "pcom_p"
    COMMIT = "com_p"  # only used by Damysus-C / HotStuff's third core phase
    DECIDE = "dec_p"  # never signed; used for message labelling only

    def __repr__(self) -> str:  # compact in test output
        return self.value


class StepRule(enum.Enum):
    """Which step-increment cycle a trusted component follows."""

    BASIC = "basic"
    CHAINED = "chained"
    THREE_PHASE = "three_phase"


_BASIC_CYCLE = [Phase.NEW_VIEW, Phase.PREPARE, Phase.PRECOMMIT]
_CHAINED_CYCLE = [Phase.PREPARE, Phase.NEW_VIEW]
_THREE_PHASE_CYCLE = [Phase.NEW_VIEW, Phase.PREPARE, Phase.PRECOMMIT, Phase.COMMIT]

_CYCLES = {
    StepRule.BASIC: _BASIC_CYCLE,
    StepRule.CHAINED: _CHAINED_CYCLE,
    StepRule.THREE_PHASE: _THREE_PHASE_CYCLE,
}


@dataclass(frozen=True, order=False)
class Step:
    """A (view, phase) pair; ordering follows the protocol's cycle."""

    view: int
    phase: Phase

    def increment(self, rule: StepRule) -> "Step":
        """The paper's ``(v, ph)++`` operator for the given rule."""
        cycle = _CYCLES[rule]
        if self.phase not in cycle:
            raise ConfigError(f"phase {self.phase} not in cycle of {rule}")
        idx = cycle.index(self.phase)
        if idx + 1 < len(cycle):
            return Step(self.view, cycle[idx + 1])
        return Step(self.view + 1, cycle[0])

    def index(self, rule: StepRule) -> int:
        """Total order of steps under a rule (for monotonicity checks)."""
        cycle = _CYCLES[rule]
        if self.phase not in cycle:
            raise ConfigError(f"phase {self.phase} not in cycle of {rule}")
        return self.view * len(cycle) + cycle.index(self.phase)


def initial_step(rule: StepRule) -> Step:
    """Where a fresh trusted component starts.

    Both the basic (Fig 2b) and chained (Fig 5b) TEEs start at
    ``(0, nv_p)``; note that in the chained cycle ``nv_p`` is the *second*
    phase of view 0, so the first increment lands on ``(1, prep_p)``,
    matching "nodes now start at view 1" (Section 7.1).
    """
    return Step(0, Phase.NEW_VIEW)
