"""Wire messages exchanged by replicas, with byte-size accounting.

Each message type computes its on-wire size from its components (32 B
hashes, 64 B signatures, 4 B views...).  The network charges transfer time
from these sizes, so the 2f+1-vs-3f+1 quorum-certificate size difference
between protocol families shows up in latency exactly as it does on a real
link.  ``msg_type`` labels feed the monitor's per-type counters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import HASH_SIZE, Hash
from repro.crypto.scheme import SIGNATURE_WIRE_SIZE, Signature
from repro.core.block import Block
from repro.core.certificate import Accumulator, QuorumCert
from repro.core.commitment import Commitment
from repro.core.mempool import AdmissionVerdict, Transaction
from repro.core.phases import Phase

#: Fixed framing bytes per message (type tag, length, sender).
MSG_HEADER_BYTES = 12


@dataclass(frozen=True, slots=True)
class NewViewMsg:
    """HotStuff new-view: a replica's latest prepare QC (Section 3)."""

    view: int
    justify: QuorumCert

    msg_type = "new-view"

    def wire_size(self) -> int:
        return MSG_HEADER_BYTES + 4 + self.justify.wire_size()


@dataclass(frozen=True, slots=True)
class NewViewAMsg:
    """Damysus-A new-view: latest prepare QC, signed by the sender.

    The sender signature is what the leader's Accumulator deduplicates
    reporters by; the QC itself proves the claimed prepared block exists.
    """

    view: int
    justify: QuorumCert
    sender_sig: Signature

    msg_type = "new-view-a"

    def wire_size(self) -> int:
        return MSG_HEADER_BYTES + 4 + self.justify.wire_size() + SIGNATURE_WIRE_SIZE


@dataclass(frozen=True, slots=True)
class ProposalMsg:
    """HotStuff prepare proposal: new block plus its justifying high QC."""

    view: int
    block: Block
    justify: QuorumCert

    msg_type = "proposal"

    def wire_size(self) -> int:
        return MSG_HEADER_BYTES + 4 + self.block.wire_size() + self.justify.wire_size()


@dataclass(frozen=True, slots=True)
class VoteMsg:
    """HotStuff-style partial vote for (view, phase, block)."""

    view: int
    phase: Phase
    block_hash: Hash
    sig: Signature

    msg_type = "vote"

    def wire_size(self) -> int:
        return MSG_HEADER_BYTES + 4 + 1 + HASH_SIZE + SIGNATURE_WIRE_SIZE


@dataclass(frozen=True, slots=True)
class QCMsg:
    """Leader broadcast of an assembled quorum certificate."""

    view: int
    phase: Phase
    qc: QuorumCert

    msg_type = "qc"

    def wire_size(self) -> int:
        return MSG_HEADER_BYTES + 4 + 1 + self.qc.wire_size()


@dataclass(frozen=True, slots=True)
class CommitmentMsg:
    """A (new-view / vote / combined) Checker commitment on the wire.

    ``kind`` distinguishes the roles for per-type accounting: Damysus uses
    the same commitment structure for new-view messages, prepare votes,
    pre-commit votes and the combined certificates the leader broadcasts.
    """

    commitment: Commitment
    kind: str

    @property
    def msg_type(self) -> str:
        return self.kind

    @property
    def view(self) -> int:
        return self.commitment.v_prep

    def wire_size(self) -> int:
        return MSG_HEADER_BYTES + self.commitment.wire_size()


@dataclass(frozen=True, slots=True)
class BlockProposal:
    """Damysus prepare message ``<b, acc, sigma>`` (Fig 2a, line 10).

    ``leader_sig`` is the signature of the leader's TEE prepare commitment,
    from which backups reconstruct and verify the commitment (line 15).
    ``acc`` is ``None`` in Damysus-C, where proposals are justified by the
    highest new-view commitment instead (``justify_commitment``).
    """

    view: int
    block: Block
    acc: Accumulator | None
    leader_sig: Signature
    justify_commitment: Commitment | None = None

    msg_type = "block-proposal"

    def wire_size(self) -> int:
        size = MSG_HEADER_BYTES + 4 + self.block.wire_size() + SIGNATURE_WIRE_SIZE
        if self.acc is not None:
            size += self.acc.wire_size()
        if self.justify_commitment is not None:
            size += self.justify_commitment.wire_size()
        return size


@dataclass(frozen=True, slots=True)
class ProposalAMsg:
    """Damysus-A prepare message: block + finalized accumulator + leader sig."""

    view: int
    block: Block
    acc: Accumulator
    leader_sig: Signature

    msg_type = "proposal-a"

    def wire_size(self) -> int:
        return (
            MSG_HEADER_BYTES
            + 4
            + self.block.wire_size()
            + self.acc.wire_size()
            + SIGNATURE_WIRE_SIZE
        )


@dataclass(frozen=True, slots=True)
class ChainedProposal:
    """Chained proposal ``<b, sigma'>`` (Fig 5a, line 18/22).

    The block embeds its justification (``b.just``); the signature is the
    proposing leader's TEE prepare commitment signature, doubling as the
    leader's own vote.
    """

    view: int
    block: Block
    leader_sig: Signature

    msg_type = "chained-proposal"

    def wire_size(self) -> int:
        return MSG_HEADER_BYTES + 4 + self.block.wire_size() + SIGNATURE_WIRE_SIZE


@dataclass(frozen=True, slots=True)
class BlockRequest:
    """Block-synchronization fetch: ask a peer for a block body by hash.

    Needed because a Byzantine leader can commit a block without sending
    its body to every replica; the decide certificate names only the hash.
    """

    block_hash: Hash

    msg_type = "block-request"

    @property
    def view(self) -> None:
        return None

    def wire_size(self) -> int:
        return MSG_HEADER_BYTES + HASH_SIZE


@dataclass(frozen=True, slots=True)
class BlockResponse:
    """Block-synchronization reply carrying the requested block body."""

    block: Block

    msg_type = "block-response"

    @property
    def view(self) -> None:
        return None

    def wire_size(self) -> int:
        return MSG_HEADER_BYTES + self.block.wire_size()


@dataclass(frozen=True, slots=True)
class ClientRequest:
    """A client transaction submission."""

    client_id: int
    tx: Transaction

    msg_type = "client-request"

    @property
    def view(self) -> None:
        return None

    def wire_size(self) -> int:
        return MSG_HEADER_BYTES + self.tx.wire_size()


@dataclass(frozen=True, slots=True)
class ClientReply:
    """A replica's reply to a client transaction.

    Carries the admission verdict: ``ACCEPTED`` replies are sent at
    execution time (``executed_at`` is the commit timestamp); any other
    verdict is an immediate NACK from the admission pipeline, stamped
    with the rejection time.
    """

    replica: int
    client_id: int
    tx_id: int
    executed_at: float
    verdict: AdmissionVerdict = AdmissionVerdict.ACCEPTED

    msg_type = "client-reply"

    @property
    def view(self) -> None:
        return None

    def wire_size(self) -> int:
        return MSG_HEADER_BYTES + 13
