"""Execution observation interface: what the core reports upward.

The protocol core announces block executions; *who listens* is a runtime
concern.  The simulator's :class:`repro.sim.monitor.Monitor` implements
the :class:`ExecutionMonitor` protocol to aggregate paper metrics, and
other runtimes may substitute their own sink (or none).  Keeping the
record type and the narrow interface here keeps ``repro.core`` free of
simulator imports - the core never learns about networks or event loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol


@dataclass
class ExecutionRecord:
    """One block execution observed at one replica."""

    replica: int
    view: int
    block_hash: bytes
    num_transactions: int
    proposed_at: float
    executed_at: float

    @property
    def latency_ms(self) -> float:
        """Proposal-to-execution latency of the block at this replica."""
        return self.executed_at - self.proposed_at


class ExecutionMonitor(Protocol):
    """The one method the execution ledger needs from a metrics sink."""

    def record_execution(self, record: ExecutionRecord) -> None:
        """Called by replicas when they execute (commit) a block."""
        ...
