"""Block store with ancestry queries.

Implements the relations of Section 5: direct extension (``b > h``), the
transitive closure (``>+``) and the reflexive-transitive closure (``>*``),
plus conflict detection.  Every replica keeps its own store of blocks it
has seen; ancestry walks follow parent hashes, so they only ever traverse
blocks the replica actually holds.
"""

from __future__ import annotations

from collections import defaultdict

from repro.crypto.hashing import Hash
from repro.errors import MissingBlockError, ProtocolError
from repro.core.block import Block, genesis_block


class BlockStore:
    """Content-addressed block storage for a single replica."""

    def __init__(self) -> None:
        self._by_hash: dict[Hash, Block] = {}
        self._by_view: dict[int, list[Block]] = defaultdict(list)
        self.genesis = genesis_block()
        self.add(self.genesis)

    def add(self, block: Block) -> None:
        """Insert a block (idempotent by hash)."""
        if block.hash in self._by_hash:
            return
        self._by_hash[block.hash] = block
        self._by_view[block.view].append(block)

    def get(self, block_hash: Hash) -> Block | None:
        return self._by_hash.get(block_hash)

    def require(self, block_hash: Hash) -> Block:
        block = self._by_hash.get(block_hash)
        if block is None:
            raise ProtocolError(f"unknown block {block_hash.hex()[:12]}")
        return block

    def __contains__(self, block_hash: Hash) -> bool:
        return block_hash in self._by_hash

    def __len__(self) -> int:
        return len(self._by_hash)

    def blocks_at_view(self, view: int) -> list[Block]:
        """All known blocks proposed at ``view`` (>1 implies equivocation)."""
        return list(self._by_view.get(view, ()))

    # -- ancestry ------------------------------------------------------------

    def is_ancestor(self, anc_hash: Hash, desc_hash: Hash) -> bool:
        """Reflexive-transitive extension: ``desc >* anc``."""
        cursor: Hash | None = desc_hash
        while cursor is not None:
            if cursor == anc_hash:
                return True
            block = self._by_hash.get(cursor)
            if block is None or block.is_genesis:
                return False
            cursor = block.parent_hash
        return False

    def is_strict_ancestor(self, anc_hash: Hash, desc_hash: Hash) -> bool:
        """Transitive extension: ``desc >+ anc`` (at least one hop)."""
        if anc_hash == desc_hash:
            return False
        return self.is_ancestor(anc_hash, desc_hash)

    def conflicts(self, hash_a: Hash, hash_b: Hash) -> bool:
        """Section 5: blocks conflict when neither extends the other."""
        if hash_a == hash_b:
            return False
        return not (
            self.is_ancestor(hash_a, hash_b) or self.is_ancestor(hash_b, hash_a)
        )

    def path_between(self, anc_hash: Hash, desc_hash: Hash) -> list[Block]:
        """Blocks strictly after ``anc`` up to and including ``desc``.

        Raises :class:`ProtocolError` if ``desc`` does not descend from
        ``anc`` through blocks in this store.
        """
        path: list[Block] = []
        cursor: Hash | None = desc_hash
        while cursor is not None and cursor != anc_hash:
            block = self._by_hash.get(cursor)
            if block is None:
                raise MissingBlockError(
                    f"block {cursor.hex()[:12]} is not in the store"
                )
            path.append(block)
            if block.is_genesis:
                raise ProtocolError(
                    f"{desc_hash.hex()[:12]} does not descend from {anc_hash.hex()[:12]}"
                )
            cursor = block.parent_hash
        if cursor != anc_hash:
            raise ProtocolError("ancestor not reached")
        path.reverse()
        return path
