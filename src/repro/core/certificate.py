"""Quorum certificates and accumulators (paper Sections 6.2 and 7.1).

Both kinds of certificate can justify a chained block (``b.just``), so
they share the ``cview`` / ``view`` / ``hash`` accessor vocabulary defined
in Section 7.1:

* for a quorum certificate ``<v, h, sigs>``: ``cview = view = v``;
* for an accumulator ``<view, v, h, n, sig>``: ``cview`` is the view the
  accumulator was created in, ``view`` the view at which ``hash`` was
  certified.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import perf
from repro.crypto.hashing import HASH_SIZE, Hash, encode_fields, sha256
from repro.crypto.scheme import SIGNATURE_WIRE_SIZE, Signature, SignatureScheme
from repro.core.phases import Phase


@dataclass(frozen=True, slots=True)
class QuorumCert:
    """A set of partial signatures certifying a block at (view, phase)."""

    view: int
    block_hash: Hash
    phase: Phase
    sigs: tuple[Signature, ...]
    is_genesis: bool = False
    _digest: Hash = field(default=b"", init=False, repr=False, compare=False)

    # -- certificate vocabulary (Section 7.1) -------------------------------

    @property
    def cview(self) -> int:
        """View in which the certificate was created."""
        return self.view

    @property
    def hash(self) -> Hash:
        return self.block_hash

    def __len__(self) -> int:
        """Paper's ``|qc|``: the number of contributing signers."""
        return len(self.sigs)

    # -- signing -------------------------------------------------------------

    def signed_payload(self) -> bytes:
        """Bytes each contributing vote signed."""
        return vote_payload(self.view, self.phase, self.block_hash)

    def verify(self, scheme: SignatureScheme, quorum: int) -> bool:
        """Check quorum size, signer distinctness and every signature.

        The genesis certificate (paper's bottom certificate for view 0) is
        valid by fiat: it is a well-known constant, not a signed object.
        """
        if self.is_genesis:
            return True
        if len(self.sigs) != quorum:
            return False
        return scheme.verify_all(self.signed_payload(), list(self.sigs))

    def digest(self) -> Hash:
        """Digest for embedding the certificate in a block hash.

        Computed once per (immutable) certificate object and cached;
        certificates are digested whenever a block embedding them is
        hashed or re-hashed.
        """
        if self._digest:
            return self._digest
        digest = sha256(
            encode_fields(
                (
                    "qc",
                    self.view,
                    self.phase.value,
                    self.block_hash,
                    self.is_genesis,
                    tuple(sig.data for sig in self.sigs),
                )
            )
        )
        object.__setattr__(self, "_digest", digest)
        return digest

    def wire_size(self) -> int:
        return 4 + 1 + HASH_SIZE + 4 + SIGNATURE_WIRE_SIZE * len(self.sigs)


#: Memoized vote payloads.  Every vote, QC assembly and QC verification
#: for the same (view, phase, block) re-encodes the same canonical bytes;
#: the encoding is a pure function of the key, so memoization is
#: invisible to results.
_VOTE_PAYLOAD_CACHE: dict[tuple[int, str, Hash], bytes] = {}
perf.register_cache_clearer(_VOTE_PAYLOAD_CACHE.clear)


def vote_payload(view: int, phase: Phase, block_hash: Hash) -> bytes:
    """Canonical bytes a replica signs when voting in HotStuff-style phases."""
    if not perf.caches_enabled():
        return encode_fields(("vote", view, phase.value, block_hash))
    key = (view, phase.value, block_hash)
    payload = _VOTE_PAYLOAD_CACHE.get(key)
    if payload is None:
        if len(_VOTE_PAYLOAD_CACHE) >= 65536:  # bound memory, not results
            _VOTE_PAYLOAD_CACHE.clear()
        payload = encode_fields(("vote", view, phase.value, block_hash))
        _VOTE_PAYLOAD_CACHE[key] = payload
    return payload


def genesis_qc(genesis_hash: Hash) -> QuorumCert:
    """The special bottom certificate for view 0 (Section 7.1)."""
    return QuorumCert(
        view=0,
        block_hash=genesis_hash,
        phase=Phase.PREPARE,
        sigs=(),
        is_genesis=True,
    )


@dataclass(frozen=True, slots=True)
class Accumulator:
    """Certificate that ``prep_hash`` is the highest prepared block.

    Two forms exist (Section 6.2): the working form carries the list of
    contributing node ids; ``TEEfinalize`` replaces the list by its length
    (the ``count`` field), which is the form that travels in proposals.
    """

    made_in_view: int  # the view the accumulator certifies a selection for
    prep_view: int  # view at which prep_hash was prepared
    prep_hash: Hash
    signature: Signature
    ids: tuple[int, ...] | None = None  # working form
    count: int | None = None  # finalized form
    _digest: Hash = field(default=b"", init=False, repr=False, compare=False)

    # -- certificate vocabulary ----------------------------------------------

    @property
    def cview(self) -> int:
        return self.made_in_view

    @property
    def view(self) -> int:
        return self.prep_view

    @property
    def hash(self) -> Hash:
        return self.prep_hash

    @property
    def finalized(self) -> bool:
        return self.count is not None

    def __len__(self) -> int:
        """Paper's ``|acc|``: number of contributing commitments."""
        if self.count is not None:
            return self.count
        return len(self.ids or ())

    # -- signing -------------------------------------------------------------

    def signed_payload(self) -> bytes:
        """Bytes the accumulator TEE signed (depends on the form)."""
        if self.finalized:
            return encode_fields(
                ("acc-final", self.made_in_view, self.prep_view, self.prep_hash, self.count)
            )
        return encode_fields(
            ("acc", self.made_in_view, self.prep_view, self.prep_hash, tuple(self.ids or ()))
        )

    def verify(self, scheme: SignatureScheme) -> bool:
        """Check the accumulator TEE's signature over the current form."""
        return scheme.verify_cached(self.signed_payload(), self.signature)

    def digest(self) -> Hash:
        if self._digest:
            return self._digest
        digest = sha256(
            encode_fields(
                (
                    "acc-digest",
                    self.made_in_view,
                    self.prep_view,
                    self.prep_hash,
                    self.count if self.finalized else tuple(self.ids or ()),
                    self.signature.data,
                )
            )
        )
        object.__setattr__(self, "_digest", digest)
        return digest

    def wire_size(self) -> int:
        ids_bytes = 4 if self.finalized else 4 * len(self.ids or ())
        return 4 + 4 + HASH_SIZE + ids_bytes + SIGNATURE_WIRE_SIZE
