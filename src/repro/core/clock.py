"""The one thing the protocol core may know about time: how to read it.

Replicas need "now" for block timestamps and latency bookkeeping, but
must not know whether time is virtual (the discrete-event simulator) or
real (an asyncio event loop).  Runtimes inject anything satisfying this
protocol; :class:`repro.sim.events.Simulator` satisfies it structurally.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """A monotonically non-decreasing millisecond clock."""

    @property
    def now(self) -> float:
        """Current time in milliseconds (virtual or wall)."""
        ...
