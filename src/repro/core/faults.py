"""Runtime-agnostic fault model: lossy links, partitions, crash schedules.

The paper's trust model is exercised exactly where things fail - a
restarted checker must resume from its latest sealed step, views must
recover after partitions heal (GST), and quorums must form despite
dropped and duplicated messages.  This module provides the fault model
shared by *both* runtimes: the discrete-event simulator
(:mod:`repro.sim.faults` wires plans into the simulated network) and the
asyncio TCP runtime (:mod:`repro.runtime.resilience.transport` applies
the same rules to real frames):

* :class:`LinkFaultRule` - probabilistic drop / duplication / extra delay
  on matching links, active during a time window;
* :class:`PartitionRule` - a (one-way or symmetric) partition between
  process groups with a scheduled healing time, modelling GST;
* :class:`CrashEvent` - a scheduled crash, optionally followed by a
  recovery (which, for TEE-bearing replicas, unseals checker state);
* :class:`FaultPlan` - a composable, replayable bundle of the above;
* :func:`evaluate_rules` - the one shared implementation of "what does
  this rule set do to this message", so simulator and socket runs agree
  on semantics by construction.

All randomness is drawn from seeded :class:`~repro.core.rng.RngStream`
objects supplied by the caller, so a chaos run is a pure function of
(seed, plan, config): every run is replayable bit-for-bit.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.core.codec import msg_type_of
from repro.core.rng import RngStream
from repro.errors import SimulationError


@dataclass(frozen=True)
class FaultAction:
    """The fault pipeline's decision for one message.

    ``drop`` suppresses delivery entirely; otherwise ``duplicates`` extra
    copies are injected and every copy is delayed by ``extra_delay_ms``
    on top of the modelled link latency (which is how reordering arises).
    """

    drop: bool = False
    duplicates: int = 0
    extra_delay_ms: float = 0.0


#: Convenience constant for filters that only ever drop.
DROP = FaultAction(drop=True)


class FaultRule:
    """One composable fault source; subclasses implement :meth:`decide`."""

    def decide(
        self, src: int, dst: int, payload: Any, now: float, rng: RngStream
    ) -> FaultAction | None:
        """The rule's verdict for one message, or ``None`` to pass."""
        raise NotImplementedError

    def healed_by_ms(self) -> float:
        """Virtual time at which this rule stops injecting faults."""
        return 0.0


def _as_pidset(pids: Iterable[int] | int | None) -> frozenset[int] | None:
    if pids is None:
        return None
    if isinstance(pids, int):
        return frozenset((pids,))
    return frozenset(pids)


@dataclass(frozen=True)
class LinkFaultRule(FaultRule):
    """Probabilistic per-link faults inside an active time window.

    ``src``/``dst``/``msg_types`` of ``None`` match everything;
    self-sends are never faulted (loopback does not cross the wire).
    Each probability is evaluated independently so drop, duplication and
    delay compose on one rule.
    """

    drop_prob: float = 0.0
    duplicate_prob: float = 0.0
    delay_prob: float = 0.0
    max_extra_delay_ms: float = 0.0
    src: frozenset[int] | None = None
    dst: frozenset[int] | None = None
    msg_types: frozenset[str] | None = None
    start_ms: float = 0.0
    end_ms: float = math.inf

    def matches(self, src: int, dst: int, payload: Any, now: float) -> bool:
        if src == dst:
            return False
        if not (self.start_ms <= now < self.end_ms):
            return False
        if self.src is not None and src not in self.src:
            return False
        if self.dst is not None and dst not in self.dst:
            return False
        if self.msg_types is not None and msg_type_of(payload) not in self.msg_types:
            return False
        return True

    def decide(
        self, src: int, dst: int, payload: Any, now: float, rng: RngStream
    ) -> FaultAction | None:
        if not self.matches(src, dst, payload, now):
            return None
        if self.drop_prob > 0.0 and rng.random() < self.drop_prob:
            return DROP
        duplicates = 0
        if self.duplicate_prob > 0.0 and rng.random() < self.duplicate_prob:
            duplicates = 1
        extra = 0.0
        if self.max_extra_delay_ms > 0.0 and (
            self.delay_prob >= 1.0 or rng.random() < self.delay_prob
        ):
            extra = rng.uniform(0.0, self.max_extra_delay_ms)
        if duplicates or extra > 0.0:
            return FaultAction(duplicates=duplicates, extra_delay_ms=extra)
        return None

    def healed_by_ms(self) -> float:
        return self.end_ms


@dataclass(frozen=True)
class PartitionRule(FaultRule):
    """Messages crossing group boundaries are dropped until healing.

    ``groups`` are disjoint pid sets; processes in no group are
    unaffected.  A symmetric partition cuts traffic in both directions;
    a one-way partition (``symmetric=False``) only cuts traffic *leaving*
    the first group, modelling an asymmetric link failure.
    """

    groups: tuple[frozenset[int], ...]
    start_ms: float = 0.0
    heal_ms: float = math.inf
    symmetric: bool = True

    def _group_of(self, pid: int) -> int | None:
        for index, group in enumerate(self.groups):
            if pid in group:
                return index
        return None

    def decide(
        self, src: int, dst: int, payload: Any, now: float, rng: RngStream
    ) -> FaultAction | None:
        if not (self.start_ms <= now < self.heal_ms):
            return None
        gsrc = self._group_of(src)
        gdst = self._group_of(dst)
        if gsrc is None or gdst is None or gsrc == gdst:
            return None
        if not self.symmetric and gsrc != 0:
            return None
        return DROP

    def healed_by_ms(self) -> float:
        return self.heal_ms


@dataclass(frozen=True)
class CrashEvent:
    """A scheduled crash of one replica, optionally followed by recovery."""

    pid: int
    at_ms: float
    recover_at_ms: float | None = None

    def __post_init__(self) -> None:
        if self.recover_at_ms is not None and self.recover_at_ms <= self.at_ms:
            raise SimulationError(
                f"crash of pid {self.pid}: recovery at {self.recover_at_ms} ms "
                f"does not follow the crash at {self.at_ms} ms"
            )


def evaluate_rules(
    rules: Sequence[FaultRule],
    src: int,
    dst: int,
    payload: Any,
    now: float,
    rng: RngStream,
) -> FaultAction | None:
    """Combine every rule's verdict for one message.

    This is the one shared semantics of a rule set: rules are consulted
    in order, a drop wins immediately (consuming no further randomness),
    and duplications / extra delays accumulate across rules.  Both the
    simulated network and the socket-level fault transport call this, so
    a plan means the same thing on both runtimes.  The order of ``rng``
    draws is part of the contract - changing it would silently re-seed
    every recorded chaos baseline.
    """
    duplicates = 0
    extra = 0.0
    acted = False
    for rule in rules:
        decision = rule.decide(src, dst, payload, now, rng)
        if decision is None:
            continue
        if decision.drop:
            return decision
        acted = True
        duplicates += decision.duplicates
        extra += decision.extra_delay_ms
    if not acted:
        return None
    return FaultAction(duplicates=duplicates, extra_delay_ms=extra)


@dataclass
class FaultPlan:
    """A replayable chaos schedule: link-fault rules plus crash events.

    Builder methods return ``self`` so plans read as one expression::

        plan = (
            FaultPlan()
            .lossy_links(0.2, end_ms=4_000.0)
            .partition({0}, {1, 2}, at_ms=1_000.0, heal_ms=2_500.0)
            .crash(2, at_ms=500.0, recover_at_ms=3_000.0)
        )

    Installing the same plan on systems built from the same config and
    seed yields identical runs.  Simulator installation lives in
    :meth:`install` (duck-typed against the simulated network so this
    module never imports :mod:`repro.sim`); the socket runtime consumes
    plans through :class:`repro.runtime.resilience.transport.FaultDecider`.
    """

    rules: list[FaultRule] = field(default_factory=list)
    crashes: list[CrashEvent] = field(default_factory=list)

    # -- builders -----------------------------------------------------------

    def add_rule(self, rule: FaultRule) -> "FaultPlan":
        self.rules.append(rule)
        return self

    def lossy_links(
        self,
        drop_prob: float,
        *,
        start_ms: float = 0.0,
        end_ms: float = math.inf,
        src: Iterable[int] | int | None = None,
        dst: Iterable[int] | int | None = None,
        msg_types: Iterable[str] | None = None,
    ) -> "FaultPlan":
        """Drop each matching message independently with ``drop_prob``."""
        return self.add_rule(
            LinkFaultRule(
                drop_prob=drop_prob,
                src=_as_pidset(src),
                dst=_as_pidset(dst),
                msg_types=None if msg_types is None else frozenset(msg_types),
                start_ms=start_ms,
                end_ms=end_ms,
            )
        )

    def duplicating_links(
        self,
        duplicate_prob: float,
        *,
        start_ms: float = 0.0,
        end_ms: float = math.inf,
        src: Iterable[int] | int | None = None,
        dst: Iterable[int] | int | None = None,
    ) -> "FaultPlan":
        """Deliver an extra copy of matching messages with ``duplicate_prob``."""
        return self.add_rule(
            LinkFaultRule(
                duplicate_prob=duplicate_prob,
                src=_as_pidset(src),
                dst=_as_pidset(dst),
                start_ms=start_ms,
                end_ms=end_ms,
            )
        )

    def delaying_links(
        self,
        max_extra_delay_ms: float,
        *,
        delay_prob: float = 1.0,
        start_ms: float = 0.0,
        end_ms: float = math.inf,
        src: Iterable[int] | int | None = None,
        dst: Iterable[int] | int | None = None,
    ) -> "FaultPlan":
        """Add up to ``max_extra_delay_ms`` of extra delay (causes reordering)."""
        return self.add_rule(
            LinkFaultRule(
                delay_prob=delay_prob,
                max_extra_delay_ms=max_extra_delay_ms,
                src=_as_pidset(src),
                dst=_as_pidset(dst),
                start_ms=start_ms,
                end_ms=end_ms,
            )
        )

    def partition(
        self,
        *groups: Iterable[int],
        at_ms: float = 0.0,
        heal_ms: float = math.inf,
        symmetric: bool = True,
    ) -> "FaultPlan":
        """Partition the given pid groups from ``at_ms`` until ``heal_ms``."""
        if len(groups) < 2:
            raise SimulationError("a partition needs at least two groups")
        return self.add_rule(
            PartitionRule(
                groups=tuple(frozenset(g) for g in groups),
                start_ms=at_ms,
                heal_ms=heal_ms,
                symmetric=symmetric,
            )
        )

    def crash(
        self, pid: int, at_ms: float, recover_at_ms: float | None = None
    ) -> "FaultPlan":
        """Crash ``pid`` at ``at_ms``; recover it later unless ``None``."""
        self.crashes.append(CrashEvent(pid, at_ms, recover_at_ms))
        return self

    # -- introspection ------------------------------------------------------

    def healed_by_ms(self) -> float:
        """Virtual time by which every *healing* fault has ceased.

        Permanent crashes (no recovery time) do not count: they are
        ordinary crash faults the protocol must tolerate within ``f``.
        Returns ``inf`` when some link rule never ends.
        """
        healed = 0.0
        for rule in self.rules:
            healed = max(healed, rule.healed_by_ms())
        for event in self.crashes:
            if event.recover_at_ms is not None:
                healed = max(healed, event.recover_at_ms)
        return healed

    # -- installation -------------------------------------------------------

    def install(
        self,
        network: Any,
        rng: RngStream,
        replicas: Any = None,
    ) -> None:
        """Wire this plan into a simulated network: filters now, crashes
        on schedule.

        ``network`` is a :class:`repro.sim.network.Network` (duck-typed
        here so the fault model itself stays simulator-free) and
        ``replicas`` maps pid to process; the mapping is required when
        the plan schedules crash events.
        """
        sim = network.sim
        rules = tuple(self.rules)
        if rules:

            def chaos_filter(src: int, dst: int, payload: Any) -> FaultAction | None:
                return evaluate_rules(rules, src, dst, payload, sim.now, rng)

            network.add_fault_filter(chaos_filter)
        if self.crashes:
            if replicas is None:
                raise SimulationError(
                    "fault plan schedules crashes but no replicas were given"
                )
            for event in self.crashes:
                target = replicas[event.pid]
                sim.schedule_at(event.at_ms, target.crash)
                if event.recover_at_ms is not None:
                    sim.schedule_at(event.recover_at_ms, target.recover)

    # -- (de)serialization ---------------------------------------------------

    def rules_spec(self) -> str:
        """JSON spec of the link/partition rules (crash events excluded).

        Crash schedules are orchestration, not wire behaviour: on real
        deployments the supervisor kills processes, so only rules travel
        to replica processes (``repro serve --fault-spec``).
        """
        encoded: list[dict[str, Any]] = []
        for rule in self.rules:
            if isinstance(rule, LinkFaultRule):
                encoded.append(
                    {
                        "kind": "link",
                        "drop_prob": rule.drop_prob,
                        "duplicate_prob": rule.duplicate_prob,
                        "delay_prob": rule.delay_prob,
                        "max_extra_delay_ms": rule.max_extra_delay_ms,
                        "src": None if rule.src is None else sorted(rule.src),
                        "dst": None if rule.dst is None else sorted(rule.dst),
                        "msg_types": (
                            None if rule.msg_types is None else sorted(rule.msg_types)
                        ),
                        "start_ms": _json_num(rule.start_ms),
                        "end_ms": _json_num(rule.end_ms),
                    }
                )
            elif isinstance(rule, PartitionRule):
                encoded.append(
                    {
                        "kind": "partition",
                        "groups": [sorted(group) for group in rule.groups],
                        "start_ms": _json_num(rule.start_ms),
                        "heal_ms": _json_num(rule.heal_ms),
                        "symmetric": rule.symmetric,
                    }
                )
            else:
                raise SimulationError(
                    f"rule {type(rule).__name__} has no JSON spec encoding"
                )
        return json.dumps({"version": 1, "rules": encoded}, indent=2, sort_keys=True)

    @classmethod
    def from_rules_spec(cls, spec: str) -> "FaultPlan":
        """Rebuild a (rules-only) plan from :meth:`rules_spec` output."""
        data = json.loads(spec)
        plan = cls()
        for entry in data.get("rules", []):
            kind = entry.get("kind")
            if kind == "link":
                plan.add_rule(
                    LinkFaultRule(
                        drop_prob=float(entry.get("drop_prob", 0.0)),
                        duplicate_prob=float(entry.get("duplicate_prob", 0.0)),
                        delay_prob=float(entry.get("delay_prob", 0.0)),
                        max_extra_delay_ms=float(entry.get("max_extra_delay_ms", 0.0)),
                        src=_as_pidset(entry.get("src")),
                        dst=_as_pidset(entry.get("dst")),
                        msg_types=(
                            None
                            if entry.get("msg_types") is None
                            else frozenset(entry["msg_types"])
                        ),
                        start_ms=_parse_num(entry.get("start_ms", 0.0)),
                        end_ms=_parse_num(entry.get("end_ms", "inf")),
                    )
                )
            elif kind == "partition":
                plan.add_rule(
                    PartitionRule(
                        groups=tuple(frozenset(g) for g in entry["groups"]),
                        start_ms=_parse_num(entry.get("start_ms", 0.0)),
                        heal_ms=_parse_num(entry.get("heal_ms", "inf")),
                        symmetric=bool(entry.get("symmetric", True)),
                    )
                )
            else:
                raise SimulationError(f"unknown fault rule kind {kind!r} in spec")
        return plan


def _json_num(value: float) -> float | str:
    # ``math.inf`` is not valid JSON; encode it portably.
    return "inf" if math.isinf(value) else value


def _parse_num(value: float | int | str) -> float:
    if isinstance(value, str):
        return math.inf if value == "inf" else float(value)
    return float(value)
