"""Execution ledger and global safety oracle.

Each replica owns a :class:`Ledger` that executes decided blocks in chain
order (executing a block first executes any not-yet-executed ancestors,
which is how chained protocols "execute b1 and previous blocks", Fig 5a).

The :class:`SafetyOracle` is shared by all replicas of one simulated
system.  It observes every execution and checks the consensus safety
property - all correct replicas execute the same blocks in the same order.
In *recording* mode it collects violations (used by the Section 4
counter-example, which deliberately breaks a weakened protocol); in
*strict* mode it raises :class:`~repro.errors.SafetyViolation` immediately,
which is how the test suite guards every Damysus/HotStuff run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import Hash
from repro.errors import ProtocolError, SafetyViolation
from repro.core.block import Block
from repro.core.chain import BlockStore
from repro.core.monitor import ExecutionMonitor, ExecutionRecord


@dataclass
class Violation:
    """One observed disagreement between replicas' executed sequences."""

    index: int
    replica: int
    block_hash: Hash
    canonical_hash: Hash

    def describe(self) -> str:
        return (
            f"replica {self.replica} executed {self.block_hash.hex()[:12]} at "
            f"index {self.index}, but {self.canonical_hash.hex()[:12]} was "
            "already executed there"
        )


class SafetyOracle:
    """Cross-replica agreement checker."""

    def __init__(self, strict: bool = True) -> None:
        self.strict = strict
        self._canonical: list[Hash] = []
        self.sequences: dict[int, list[Hash]] = {}
        self.violations: list[Violation] = []

    def record(self, replica: int, block_hash: Hash) -> None:
        """Append ``block_hash`` to ``replica``'s executed sequence."""
        seq = self.sequences.setdefault(replica, [])
        index = len(seq)
        seq.append(block_hash)
        if index < len(self._canonical):
            if self._canonical[index] != block_hash:
                violation = Violation(index, replica, block_hash, self._canonical[index])
                self.violations.append(violation)
                if self.strict:
                    raise SafetyViolation(violation.describe())
        else:
            self._canonical.append(block_hash)

    @property
    def safe(self) -> bool:
        return not self.violations

    def canonical_chain(self) -> list[Hash]:
        """The longest executed prefix observed so far."""
        return list(self._canonical)


class Ledger:
    """Per-replica executed-block sequence."""

    def __init__(
        self,
        replica: int,
        store: BlockStore,
        oracle: SafetyOracle | None = None,
        monitor: ExecutionMonitor | None = None,
    ) -> None:
        self.replica = replica
        self.store = store
        self.oracle = oracle
        self.monitor = monitor
        self.executed: list[Block] = []
        self._executed_hashes: set[Hash] = set()
        self.last_executed_hash: Hash = store.genesis.hash

    def is_executed(self, block_hash: Hash) -> bool:
        return block_hash in self._executed_hashes

    def execute(self, block: Block, now: float, view: int | None = None) -> list[Block]:
        """Execute ``block`` and any not-yet-executed ancestors, in order.

        Returns the blocks newly executed.  Raises
        :class:`~repro.errors.ProtocolError` if ``block`` does not descend
        from the last executed block - a replica-local fork, which correct
        protocol code never produces.
        """
        if self.is_executed(block.hash):
            return []
        path = self.store.path_between(self.last_executed_hash, block.hash)
        newly: list[Block] = []
        for ancestor in path:
            self._execute_one(ancestor, now, view)
            newly.append(ancestor)
        return newly

    def _execute_one(self, block: Block, now: float, view: int | None) -> None:
        if block.parent_hash != self.last_executed_hash:
            raise ProtocolError("execution out of chain order")
        self.executed.append(block)
        self._executed_hashes.add(block.hash)
        self.last_executed_hash = block.hash
        if self.oracle is not None:
            self.oracle.record(self.replica, block.hash)
        if self.monitor is not None:
            # Ancestors executed during catch-up are recorded under their
            # own proposal view, not the view of the descendant that
            # triggered the execution.
            self.monitor.record_execution(
                ExecutionRecord(
                    replica=self.replica,
                    view=block.view,
                    block_hash=block.hash,
                    num_transactions=block.num_transactions(),
                    proposed_at=block.created_at,
                    executed_at=now,
                )
            )

    def height(self) -> int:
        return len(self.executed)
