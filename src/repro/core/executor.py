"""Execution ledger and global safety oracle.

Each replica owns a :class:`Ledger` that executes decided blocks in chain
order (executing a block first executes any not-yet-executed ancestors,
which is how chained protocols "execute b1 and previous blocks", Fig 5a).

The :class:`SafetyOracle` is shared by all replicas of one simulated
system.  It observes every execution and checks the consensus safety
property - all correct replicas execute the same blocks in the same order.
In *recording* mode it collects violations (used by the Section 4
counter-example, which deliberately breaks a weakened protocol); in
*strict* mode it raises :class:`~repro.errors.SafetyViolation` immediately,
which is how the test suite guards every Damysus/HotStuff run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import Hash, hash_fields
from repro.errors import ProtocolError, SafetyViolation
from repro.core.block import Block
from repro.core.chain import BlockStore
from repro.core.monitor import ExecutionMonitor, ExecutionRecord


def fold_state_root(prev_root: Hash, block_hash: Hash) -> Hash:
    """Advance the rolling executed-state root by one block.

    The root is a running fold over the executed block hashes, so two
    replicas hold the same root at height ``h`` iff they executed the
    same blocks in the same order - across runtimes too, since block
    hashes are runtime-independent.  Checkpoints certify this root.
    """
    return hash_fields(("exec-root", prev_root, block_hash))


@dataclass
class Violation:
    """One observed disagreement between replicas' executed sequences."""

    index: int
    replica: int
    block_hash: Hash
    canonical_hash: Hash

    def describe(self) -> str:
        return (
            f"replica {self.replica} executed {self.block_hash.hex()[:12]} at "
            f"index {self.index}, but {self.canonical_hash.hex()[:12]} was "
            "already executed there"
        )


class SafetyOracle:
    """Cross-replica agreement checker."""

    def __init__(self, strict: bool = True) -> None:
        self.strict = strict
        self._canonical: list[Hash] = []
        self.sequences: dict[int, list[Hash]] = {}
        self._offsets: dict[int, int] = {}
        #: Executions observed beyond the canonical frontier (a replica
        #: that fast-forwarded via checkpoint runs ahead of everything
        #: recorded so far).  They are cross-checked against each other
        #: immediately and spliced into the canonical chain as the
        #: frontier catches up, so strict-mode detection stays live for
        #: checkpointed replicas instead of waiting for a post-run sweep.
        self._ahead: dict[int, Hash] = {}
        self.violations: list[Violation] = []

    def record(self, replica: int, block_hash: Hash) -> None:
        """Append ``block_hash`` to ``replica``'s executed sequence."""
        seq = self.sequences.setdefault(replica, [])
        index = self._offsets.get(replica, 0) + len(seq)
        seq.append(block_hash)
        self._observe(replica, index, block_hash)

    def _observe(self, replica: int, index: int, block_hash: Hash) -> None:
        """Cross-check one executed position against everything seen."""
        if index < len(self._canonical):
            if self._canonical[index] != block_hash:
                self._flag(index, replica, block_hash, self._canonical[index])
            return
        if index > len(self._canonical):
            held = self._ahead.get(index)
            if held is None:
                self._ahead[index] = block_hash
            elif held != block_hash:
                self._flag(index, replica, block_hash, held)
            return
        # index is exactly the frontier: a buffered ahead-record for this
        # position was observed first, so it is the canonical claim.
        held = self._ahead.pop(index, None)
        if held is not None and held != block_hash:
            self._canonical.append(held)
            self._flag(index, replica, block_hash, held)
        else:
            self._canonical.append(block_hash)
        while (buffered := self._ahead.pop(len(self._canonical), None)) is not None:
            self._canonical.append(buffered)

    def _flag(self, index: int, replica: int, block_hash: Hash, canonical: Hash) -> None:
        violation = Violation(index, replica, block_hash, canonical)
        self.violations.append(violation)
        if self.strict:
            raise SafetyViolation(violation.describe())

    def install_checkpoint(self, replica: int, height: int, block_hash: Hash) -> None:
        """``replica`` fast-forwarded to ``height`` via a certified checkpoint.

        The replica's subsequent executions are indexed from ``height``;
        the checkpointed block itself is cross-checked against the
        canonical chain (or buffered for the position, when the chain has
        not reached it yet).
        """
        self._offsets[replica] = height
        self.sequences[replica] = []
        index = height - 1
        if index < 0:
            return
        if index < len(self._canonical):
            if self._canonical[index] != block_hash:
                self._flag(index, replica, block_hash, self._canonical[index])
            return
        held = self._ahead.get(index)
        if held is None:
            self._ahead[index] = block_hash
        elif held != block_hash:
            self._flag(index, replica, block_hash, held)

    def offset_of(self, replica: int) -> int:
        """Canonical index of ``replica``'s first recorded execution."""
        return self._offsets.get(replica, 0)

    @property
    def safe(self) -> bool:
        return not self.violations

    def canonical_chain(self) -> list[Hash]:
        """The longest executed prefix observed so far."""
        return list(self._canonical)


class Ledger:
    """Per-replica executed-block sequence."""

    def __init__(
        self,
        replica: int,
        store: BlockStore,
        oracle: SafetyOracle | None = None,
        monitor: ExecutionMonitor | None = None,
    ) -> None:
        self.replica = replica
        self.store = store
        self.oracle = oracle
        self.monitor = monitor
        self.executed: list[Block] = []
        self._executed_hashes: set[Hash] = set()
        self.last_executed_hash: Hash = store.genesis.hash
        # Checkpoint support: executions below ``base_height`` were either
        # garbage-collected (compaction) or never replayed locally (state
        # transfer); ``state_root`` is the rolling fold over every block
        # this chain has executed, including the pruned prefix.
        self.base_height = 0
        self.state_root: Hash = store.genesis.hash
        #: State root at ``base_height`` - the fold over the pruned (or
        #: transferred) prefix.  Lets :meth:`state_root_at` recompute
        #: intermediate roots for any still-retained height.
        self.base_state_root: Hash = store.genesis.hash

    def is_executed(self, block_hash: Hash) -> bool:
        return block_hash in self._executed_hashes

    def execute(self, block: Block, now: float, view: int | None = None) -> list[Block]:
        """Execute ``block`` and any not-yet-executed ancestors, in order.

        Returns the blocks newly executed.  Raises
        :class:`~repro.errors.ProtocolError` if ``block`` does not descend
        from the last executed block - a replica-local fork, which correct
        protocol code never produces.
        """
        if self.is_executed(block.hash):
            return []
        path = self.store.path_between(self.last_executed_hash, block.hash)
        newly: list[Block] = []
        for ancestor in path:
            self._execute_one(ancestor, now, view)
            newly.append(ancestor)
        return newly

    def _execute_one(self, block: Block, now: float, view: int | None) -> None:
        if block.parent_hash != self.last_executed_hash:
            raise ProtocolError("execution out of chain order")
        self.executed.append(block)
        self._executed_hashes.add(block.hash)
        self.last_executed_hash = block.hash
        self.state_root = fold_state_root(self.state_root, block.hash)
        if self.oracle is not None:
            self.oracle.record(self.replica, block.hash)
        if self.monitor is not None:
            # Ancestors executed during catch-up are recorded under their
            # own proposal view, not the view of the descendant that
            # triggered the execution.
            self.monitor.record_execution(
                ExecutionRecord(
                    replica=self.replica,
                    view=block.view,
                    block_hash=block.hash,
                    num_transactions=block.num_transactions(),
                    proposed_at=block.created_at,
                    executed_at=now,
                )
            )

    def height(self) -> int:
        return self.base_height + len(self.executed)

    def apply_synced(self, block: Block, now: float) -> None:
        """Execute one state-transfer block delivered by a peer.

        Unlike :meth:`execute`, no stored path to the block is required -
        catch-up suffixes chain directly from the installed checkpoint
        block, which the local store may have never seen.
        """
        if self.is_executed(block.hash):
            return
        self._execute_one(block, now, block.view)

    def install_checkpoint(self, height: int, block_hash: Hash, state_root: Hash) -> None:
        """Fast-forward this ledger to a certified checkpoint.

        Only moves forward: installing at or below the current height is
        a protocol error (stale checkpoints are refused upstream by the
        TEE-signature check; this guards replica-local misuse).
        """
        if height <= self.height():
            raise ProtocolError(
                f"install_checkpoint: height {height} not beyond local {self.height()}"
            )
        self.executed.clear()
        self._executed_hashes.add(block_hash)
        self.base_height = height
        self.last_executed_hash = block_hash
        self.state_root = state_root
        self.base_state_root = state_root
        if self.oracle is not None:
            self.oracle.install_checkpoint(self.replica, height, block_hash)

    def executed_since(self, height: int) -> list[Block] | None:
        """Blocks executed after chain ``height``, oldest first.

        Returns ``None`` when the prefix below ``height`` was compacted
        away - the caller must hand out a checkpoint instead.
        """
        start = height - self.base_height
        if start < 0:
            return None
        return self.executed[start:]

    def compact(self, below_height: int) -> int:
        """Garbage-collect executed blocks at or below ``below_height``.

        Returns how many blocks were dropped.  The rolling state root and
        the executed-hash set survive compaction, so execution dedup and
        checkpoint certification are unaffected.
        """
        drop = min(below_height - self.base_height, len(self.executed))
        if drop <= 0:
            return 0
        for block in self.executed[:drop]:
            self.base_state_root = fold_state_root(self.base_state_root, block.hash)
        del self.executed[:drop]
        self.base_height += drop
        return drop

    def state_root_at(self, height: int) -> Hash | None:
        """The rolling state root as of chain ``height``.

        ``None`` when the prefix below ``height`` is no longer retained
        (compacted away below the base).  Used to cross-check a
        checkpointed peer's certified root against a full-log replica.
        """
        if height < self.base_height or height > self.height():
            return None
        root = self.base_state_root
        for block in self.executed[: height - self.base_height]:
            root = fold_state_root(root, block.hash)
        return root
