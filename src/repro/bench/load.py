"""Open-loop load generation: drive a cluster at a configured arrival rate.

The paper's open-loop figures (6-8) bypass clients entirely - replicas
synthesize full blocks - so they measure the consensus core, not the
ingest path.  ``repro load`` closes that gap: Poisson clients submit at
a configurable aggregate rate (with a payload-size mix and optional fee
draws) against replicas running the full admission pipeline, on either
runtime:

* :func:`run_load_sim` - the discrete-event simulator (deterministic:
  the same seed produces a bit-identical :class:`LoadReport`);
* :func:`run_load_net` - real asyncio TCP sockets on localhost, the
  same machines re-seated on :class:`~repro.runtime.asyncio_net.AsyncioRuntime`.

Both report saturation throughput, p50/p99 end-to-end latency, and the
admission-drop and eviction rates the bounded mempool produces.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import asdict, dataclass, field

from repro.config import NetConfig, SystemConfig
from repro.core.rng import RngStream
from repro.protocols.client import Client
from repro.protocols.registry import get_spec
from repro.runtime.asyncio_net import AsyncioRuntime, WallClock, build_machine
from repro.runtime.sim import ConsensusSystem


def percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending list (0.0 on empty input)."""
    if not sorted_values:
        return 0.0
    rank = max(1, -(-len(sorted_values) * fraction // 1))  # ceil without math
    return sorted_values[min(int(rank), len(sorted_values)) - 1]


@dataclass(frozen=True)
class LoadReport:
    """Outcome of one open-loop load run (either runtime)."""

    runtime: str
    protocol: str
    num_replicas: int
    senders: int
    offered_rate_per_s: float
    duration_ms: float
    submitted: int
    completed: int
    committed_blocks: int
    throughput_per_s: float  # completed transactions per second
    p50_ms: float
    p99_ms: float
    dropped: int
    retried: int
    drop_rate: float  # dropped / submitted
    evicted: int
    eviction_rate: float  # evictions / pool admissions
    backpressure_engagements: int
    #: Replies by admission verdict, aggregated over all clients.
    admission: dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        return asdict(self)

    def summary_rows(self) -> list[list[object]]:
        return [
            ["runtime", self.runtime],
            ["protocol", self.protocol],
            ["replicas", self.num_replicas],
            ["senders", self.senders],
            ["offered rate (tx/s)", f"{self.offered_rate_per_s:.0f}"],
            ["duration (ms)", f"{self.duration_ms:.0f}"],
            ["submitted", self.submitted],
            ["completed", self.completed],
            ["committed blocks", self.committed_blocks],
            ["throughput (tx/s)", f"{self.throughput_per_s:.1f}"],
            ["p50 latency (ms)", f"{self.p50_ms:.2f}"],
            ["p99 latency (ms)", f"{self.p99_ms:.2f}"],
            ["dropped", self.dropped],
            ["retried", self.retried],
            ["drop rate", f"{self.drop_rate:.4f}"],
            ["evicted", self.evicted],
            ["eviction rate", f"{self.eviction_rate:.4f}"],
            ["backpressure engagements", self.backpressure_engagements],
        ]


def load_config(
    protocol: str = "damysus",
    *,
    rate_per_s: float,
    senders: int,
    f: int = 1,
    seed: int = 1,
    payload_bytes: int = 256,
    payload_mix: tuple[int, ...] = (),
    max_fee: int = 0,
    retry_limit: int = 0,
    block_size: int = 400,
    max_block_bytes: int = 0,
    mempool_max_txs: int = 100_000,
    mempool_max_bytes: int = 0,
    sender_rate_limit: float = 0.0,
    sender_rate_burst: float = 32.0,
    timeout_ms: float = 2_000.0,
) -> SystemConfig:
    """A closed-loop :class:`SystemConfig` offering ``rate_per_s`` overall.

    ``senders`` Poisson clients each submit at ``rate / senders``, so the
    aggregate arrival process is Poisson at the requested rate.
    """
    if rate_per_s <= 0:
        raise ValueError("rate_per_s must be positive")
    if senders < 1:
        raise ValueError("senders must be at least 1")
    interval_ms = senders * 1000.0 / rate_per_s
    return SystemConfig(
        protocol=protocol,
        f=f,
        seed=seed,
        payload_bytes=payload_bytes,
        block_size=block_size,
        timeout_ms=timeout_ms,
        open_loop=False,
        num_clients=senders,
        client_interval_ms=interval_ms,
        client_poisson=True,
        client_payload_mix=tuple(payload_mix),
        client_max_fee=max_fee,
        client_retry_limit=retry_limit,
        mempool_max_txs=mempool_max_txs,
        mempool_max_bytes=mempool_max_bytes,
        max_block_bytes=max_block_bytes,
        sender_rate_limit=sender_rate_limit,
        sender_rate_burst=sender_rate_burst,
    )


def _aggregate(
    runtime: str,
    protocol: str,
    num_replicas: int,
    clients: list[Client],
    pools: list,
    committed_blocks: int,
    duration_ms: float,
    offered_rate_per_s: float,
) -> LoadReport:
    latencies = sorted(
        record.latency_ms for client in clients for record in client.completed
    )
    submitted = sum(client.submitted_total for client in clients)
    completed = len(latencies)
    dropped = sum(client.dropped for client in clients)
    retried = sum(client.retried for client in clients)
    admission: dict[str, int] = {}
    for client in clients:
        for name, count in client.verdicts.items():
            admission[name] = admission.get(name, 0) + count
    stats = [pool.stats() for pool in pools]
    evicted = sum(int(s["evicted"]) for s in stats)
    admitted = sum(int(s["admitted"]) for s in stats)
    seconds = duration_ms / 1000.0 if duration_ms > 0 else 0.0
    return LoadReport(
        runtime=runtime,
        protocol=protocol,
        num_replicas=num_replicas,
        senders=len(clients),
        offered_rate_per_s=offered_rate_per_s,
        duration_ms=duration_ms,
        submitted=submitted,
        completed=completed,
        committed_blocks=committed_blocks,
        throughput_per_s=completed / seconds if seconds else 0.0,
        p50_ms=percentile(latencies, 0.50),
        p99_ms=percentile(latencies, 0.99),
        dropped=dropped,
        retried=retried,
        drop_rate=dropped / submitted if submitted else 0.0,
        evicted=evicted,
        eviction_rate=evicted / admitted if admitted else 0.0,
        backpressure_engagements=sum(
            int(s["backpressure_engagements"]) for s in stats
        ),
        admission=admission,
    )


def run_load_sim(
    config: SystemConfig, duration_ms: float, rate_per_s: float
) -> LoadReport:
    """Drive a simulated cluster open-loop; deterministic per seed."""
    system = ConsensusSystem(config)
    result = system.run(duration_ms)
    return _aggregate(
        runtime="sim",
        protocol=config.protocol,
        num_replicas=system.num_replicas,
        clients=system.clients,
        pools=[replica.mempool for replica in system.replicas],
        committed_blocks=result.committed_blocks,
        duration_ms=result.duration_ms,
        offered_rate_per_s=rate_per_s,
    )


async def run_load_net(
    config: SystemConfig,
    duration_s: float,
    rate_per_s: float,
    *,
    n: int | None = None,
    host: str = "127.0.0.1",
    net: NetConfig | None = None,
) -> LoadReport:
    """Drive a localhost TCP cluster open-loop with real client machines.

    The same sans-I/O replica and client machines as the simulator,
    re-seated on :class:`AsyncioRuntime`: clients occupy transport pids
    after the replicas, the replicas' ``client_pids`` address book routes
    execution replies and admission NACKs back over TCP.
    """
    spec = get_spec(config.protocol)
    num_replicas = n if n is not None else spec.num_replicas(config.f)
    senders = config.num_clients
    clock = WallClock()
    client_pids = {cid: num_replicas + cid for cid in range(senders)}
    overrides = dict(
        open_loop=False,
        num_clients=senders,
        client_interval_ms=config.client_interval_ms,
        client_poisson=True,
        client_payload_mix=config.client_payload_mix,
        client_max_fee=config.client_max_fee,
        client_retry_limit=config.client_retry_limit,
        mempool_max_txs=config.mempool_max_txs,
        mempool_max_bytes=config.mempool_max_bytes,
        max_block_bytes=config.max_block_bytes,
        sender_rate_limit=config.sender_rate_limit,
        sender_rate_burst=config.sender_rate_burst,
    )
    replicas = [
        build_machine(
            config.protocol,
            pid,
            num_replicas,
            clock,
            seed=config.seed,
            payload_bytes=config.payload_bytes,
            block_size=config.block_size,
            timeout_ms=config.timeout_ms,
            client_pids=client_pids,
            config_overrides=overrides,
        )
        for pid in range(num_replicas)
    ]
    clients = [
        Client(
            pid=client_pids[cid],
            clock=clock,
            client_id=cid,
            replica_pids=list(range(num_replicas)),
            payload_bytes=config.payload_bytes,
            interval_ms=config.client_interval_ms,
            rng=RngStream(config.seed, f"client:{cid}"),
            poisson=True,
            payload_mix=config.client_payload_mix or None,
            max_fee=config.client_max_fee,
            retry_limit=config.client_retry_limit,
        )
        for cid in range(senders)
    ]
    runtimes = [
        AsyncioRuntime(machine, host=host, net=net)
        for machine in [*replicas, *clients]
    ]
    addresses = {}
    for runtime in runtimes:
        addresses[runtime.machine.pid] = await runtime.start_server()
    for runtime in runtimes:
        runtime.set_peers(addresses)
    t0 = time.monotonic()
    try:
        for runtime in runtimes:
            runtime.start_machine()
        await asyncio.sleep(duration_s)
    finally:
        elapsed = time.monotonic() - t0
        for runtime in runtimes:
            await runtime.close()
    committed = min(rt.committed_blocks for rt in runtimes[:num_replicas])
    return _aggregate(
        runtime="net",
        protocol=config.protocol,
        num_replicas=num_replicas,
        clients=clients,
        pools=[replica.mempool for replica in replicas],
        committed_blocks=committed,
        duration_ms=elapsed * 1000.0,
        offered_rate_per_s=rate_per_s,
    )
