"""Plain-text table rendering for benchmark output."""

from __future__ import annotations


def format_table(headers: list[str], rows: list[list], title: str | None = None) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.2f}"
    return str(cell)
