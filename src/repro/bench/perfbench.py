"""Perf measurement and the ``repro perf`` baseline/check gate.

Two measurements feed ``BENCH_baseline.json``:

* **hotpath** - one simulation cell run twice, with the result-invisible
  caches (:mod:`repro.perf`) enabled and disabled, reporting the
  simulator's events/sec counters.  The cached/uncached ratio isolates
  the hot-path optimization win on a single core.
* **grid** - a small Fig 6-style grid timed sequentially with caches off
  (approximating the unoptimized code), sequentially with caches on, and
  in parallel (``repro.bench.parallel``).  ``total_speedup`` is the
  end-to-end win; on a multi-core runner it multiplies the cache and
  parallel factors.

``check_bench`` reuses :mod:`repro.analysis.regression`'s drift
machinery (:class:`Drift` / :class:`RegressionReport`) to diff a fresh
measurement against the committed baseline.  Wall-clock numbers on
shared CI are noisy, so the gate only fails on *pathological* slowdowns
(default 3x) or on losing the speedups outright.  The parallel
expectation scales with the cores actually available: a single-core
machine can only demonstrate the cache win, and the gate says so rather
than flaking.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import Any

from repro import perf
from repro.analysis.regression import Drift, RegressionReport
from repro.bench.experiments import ALL_PROTOCOLS
from repro.bench.parallel import resolve_jobs, run_cells
from repro.bench.runner import ExperimentRunner
from repro.config import SystemConfig
from repro.runtime.sim import ConsensusSystem

#: Default baseline location (repo root, next to full_results.json's dir).
BASELINE_DEFAULT = "BENCH_baseline.json"

#: Default measurement parameters, recorded in the baseline's ``meta`` so
#: a later ``--check`` re-measures the *same* workload.
DEFAULT_HOTPATH = {"protocol": "hotstuff", "f": 20, "views": 6, "payload": 256, "seed": 1}
#: Grid thresholds lean toward the paper's larger f values: quorum
#: verification cost grows quadratically with f, which is exactly what
#: the caches optimize, so small-f-only grids under-report the win.
DEFAULT_GRID = {"thresholds": [2, 10, 20], "views": 6, "repetitions": 2, "payload": 256}

#: Catch-up cell: one crash/miss/rejoin cycle on the simulator (see
#: ``measure_catchup``), sized to finish in a couple of seconds.
DEFAULT_CATCHUP = {"missed": 150, "interval": 25, "seed": 11}

#: Slowdown factor treated as a regression (generous: CI machines vary).
DEFAULT_THRESHOLD = 3.0

#: Required end-to-end grid speedup per effective worker count.  With 2+
#: cores the parallel executor must combine with the caches for >= 2x;
#: a single core can only show the cache win.
MULTI_CORE_REQUIRED_SPEEDUP = 2.0
SINGLE_CORE_REQUIRED_SPEEDUP = 1.1

#: The hot-path caches must keep buying a measurable single-cell win.
MIN_CACHE_SPEEDUP = 1.05


def _time_cell(
    protocol: str, f: int, views: int, payload: int, seed: int
) -> tuple[float, int, float, float]:
    """Run one cell; return (wall s, events fired, throughput, latency)."""
    config = SystemConfig(protocol=protocol, f=f, payload_bytes=payload, seed=seed)
    system = ConsensusSystem(config)
    system.sim.attach_wall_clock(time.perf_counter)
    result = system.run_until_views(views)
    return (
        system.sim.wall_seconds,
        system.sim.events_processed,
        result.throughput_kops,
        result.mean_latency_ms,
    )


def measure_hotpath(params: dict[str, Any] | None = None) -> dict[str, Any]:
    """One cell, caches on vs off; asserts the results are identical."""
    p = dict(DEFAULT_HOTPATH)
    p.update(params or {})
    out: dict[str, Any] = {"params": p}
    results = {}
    try:
        for label, enabled in (("cached", True), ("uncached", False)):
            perf.set_caches_enabled(enabled)
            wall, events, tput, lat = _time_cell(
                p["protocol"], p["f"], p["views"], p["payload"], p["seed"]
            )
            out[label] = {
                "wall_seconds": round(wall, 4),
                "events": events,
                "events_per_sec": round(events / wall, 1) if wall > 0 else 0.0,
            }
            results[label] = (tput, lat)
    finally:
        perf.set_caches_enabled(True)
    if results["cached"] != results["uncached"]:
        raise AssertionError(
            f"caches changed results: {results['cached']} != {results['uncached']}"
        )
    cached_s = out["cached"]["wall_seconds"]
    uncached_s = out["uncached"]["wall_seconds"]
    out["cache_speedup"] = round(uncached_s / cached_s, 3) if cached_s > 0 else 0.0
    return out


def measure_grid(
    params: dict[str, Any] | None = None, jobs: int = 0
) -> dict[str, Any]:
    """Time a small Fig 6-style grid: sequential uncached/cached + parallel."""
    p = dict(DEFAULT_GRID)
    p.update(params or {})
    runner = ExperimentRunner(
        payload_bytes=p["payload"],
        views_per_run=p["views"],
        repetitions=p["repetitions"],
    )
    cells = [(protocol, f) for protocol in ALL_PROTOCOLS for f in p["thresholds"]]
    timings: dict[str, float] = {}
    grids: dict[str, Any] = {}
    try:
        perf.set_caches_enabled(False)
        start = time.perf_counter()
        grids["sequential_uncached"] = run_cells(runner, cells, jobs=1)
        timings["sequential_uncached_s"] = time.perf_counter() - start

        perf.set_caches_enabled(True)
        perf.clear_caches()
        start = time.perf_counter()
        grids["sequential_cached"] = run_cells(runner, cells, jobs=1)
        timings["sequential_cached_s"] = time.perf_counter() - start
    finally:
        perf.set_caches_enabled(True)

    effective_jobs = min(resolve_jobs(jobs), 4)
    if effective_jobs > 1:
        start = time.perf_counter()
        grids["parallel_cached"] = run_cells(runner, cells, jobs=effective_jobs)
        timings["parallel_cached_s"] = time.perf_counter() - start
        if grids["parallel_cached"] != grids["sequential_cached"]:
            raise AssertionError("parallel grid diverged from sequential grid")
    else:
        timings["parallel_cached_s"] = timings["sequential_cached_s"]
    if grids["sequential_uncached"] != grids["sequential_cached"]:
        raise AssertionError("caches changed grid results")

    out: dict[str, Any] = {"params": p, "cells": len(cells), "jobs": effective_jobs}
    out.update({k: round(v, 3) for k, v in timings.items()})
    seq_un = timings["sequential_uncached_s"]
    seq_ca = timings["sequential_cached_s"]
    par_ca = timings["parallel_cached_s"]
    out["cache_speedup"] = round(seq_un / seq_ca, 3) if seq_ca > 0 else 0.0
    out["parallel_speedup"] = round(seq_ca / par_ca, 3) if par_ca > 0 else 0.0
    out["total_speedup"] = round(seq_un / par_ca, 3) if par_ca > 0 else 0.0
    return out


def measure_catchup(params: dict[str, Any] | None = None) -> dict[str, Any]:
    """Time a crash/miss/rejoin-by-checkpoint cycle on the simulator.

    The robustness counterpart to the throughput cells: a replica sits
    out ``missed`` views, the survivors certify checkpoints and compact,
    and the rejoiner must come back inside ``catchup_view_gap`` of the
    frontier via state transfer.  Records the wall time of the whole
    cycle plus the simulated rejoin latency.
    """
    from repro.costs import CostModel

    p = dict(DEFAULT_CATCHUP)
    p.update(params or {})
    config = SystemConfig(
        protocol="damysus",
        f=1,
        payload_bytes=0,
        block_size=1,
        seed=p["seed"],
        timeout_ms=500.0,
        costs=CostModel.zero(),
        checkpoint_interval=p["interval"],
    )
    t0 = time.perf_counter()
    system = ConsensusSystem(config)
    system.start()
    system.run_until_views(5, max_time_ms=600_000)
    victim = system.replicas[-1].pid
    system.crash_replicas([victim])
    base_views = len(system.monitor.committed_views())
    system.run_until_views(base_views + p["missed"], max_time_ms=p["missed"] * 10_000.0)
    system.recover_replicas([victim])
    recovered = system.replicas[victim]
    rejoin_t0 = system.sim.now
    deadline = rejoin_t0 + p["missed"] * 200.0
    while system.sim.now < deadline:
        system.sim.run(until=system.sim.now + 500.0)
        if recovered.view_lag() <= config.catchup_view_gap:
            break
    wall = time.perf_counter() - t0
    if recovered.view_lag() > config.catchup_view_gap or not system.oracle.safe:
        raise AssertionError("catchup bench scenario failed to rejoin safely")
    return {
        "params": p,
        "wall_seconds": round(wall, 4),
        "rejoin_sim_ms": round(system.sim.now - rejoin_t0, 1),
        "replayed_blocks": len(recovered.ledger.executed),
        "via_checkpoint": recovered.caught_up_via_checkpoint,
    }


def collect_bench(jobs: int = 0, quick: bool = False) -> dict[str, Any]:
    """Full measurement blob for the baseline file."""
    hot_params = dict(DEFAULT_HOTPATH)
    grid_params = dict(DEFAULT_GRID)
    catch_params = dict(DEFAULT_CATCHUP)
    if quick:
        # Keep f=10 in the quick grid: the caches' win scales with f, and
        # an all-small-f grid would under-report it into gate noise.
        hot_params.update(f=10, views=4)
        grid_params.update(thresholds=[2, 10], views=4, repetitions=1)
        catch_params.update(missed=60)
    return {
        "meta": {
            "cpus": os.cpu_count() or 1,
            "quick": quick,
            "schema": 1,
        },
        "hotpath": measure_hotpath(hot_params),
        "grid": measure_grid(grid_params, jobs=jobs),
        "catchup": measure_catchup(catch_params),
    }


def write_baseline(path: str | pathlib.Path, bench: dict[str, Any]) -> None:
    pathlib.Path(path).write_text(json.dumps(bench, indent=2) + "\n")


def load_baseline(path: str | pathlib.Path) -> dict[str, Any]:
    return json.loads(pathlib.Path(path).read_text())


def required_grid_speedup(effective_jobs: int) -> float:
    """What total grid speedup the gate demands on this machine."""
    if effective_jobs >= 2:
        return MULTI_CORE_REQUIRED_SPEEDUP
    return SINGLE_CORE_REQUIRED_SPEEDUP


def check_bench(
    baseline: dict[str, Any],
    current: dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
) -> tuple[bool, RegressionReport, list[str]]:
    """Diff a fresh measurement against the baseline.

    Returns ``(ok, report, messages)``.  Failure conditions:

    * hot-path events/sec dropped by more than ``threshold``x;
    * grid wall-clock grew by more than ``threshold``x;
    * the cache win vanished (cache_speedup below ``MIN_CACHE_SPEEDUP``);
    * total grid speedup below what this machine's cores require.
    """
    report = RegressionReport()
    messages: list[str] = []
    ok = True

    base_eps = baseline["hotpath"]["cached"]["events_per_sec"]
    cur_eps = current["hotpath"]["cached"]["events_per_sec"]
    report.drifts.append(Drift("hotpath", "cached", "events_per_sec", base_eps, cur_eps))
    if base_eps > 0 and cur_eps < base_eps / threshold:
        ok = False
        messages.append(
            f"FAIL hotpath: {cur_eps:.0f} events/s vs baseline {base_eps:.0f} "
            f"(more than {threshold:g}x slower)"
        )

    for metric in ("sequential_cached_s", "parallel_cached_s"):
        base_s = baseline["grid"][metric]
        cur_s = current["grid"][metric]
        report.drifts.append(Drift("grid", "fig6-small", metric, base_s, cur_s))
        if base_s > 0 and cur_s > base_s * threshold:
            ok = False
            messages.append(
                f"FAIL grid {metric}: {cur_s:.2f}s vs baseline {base_s:.2f}s "
                f"(more than {threshold:g}x slower)"
            )

    # Catch-up cell: only compared when both sides recorded it, so a
    # baseline written before the cell existed still checks clean.
    base_catch = baseline.get("catchup")
    cur_catch = current.get("catchup")
    if base_catch is not None and cur_catch is not None:
        base_s = base_catch["wall_seconds"]
        cur_s = cur_catch["wall_seconds"]
        report.drifts.append(Drift("catchup", "rejoin", "wall_seconds", base_s, cur_s))
        if base_s > 0 and cur_s > base_s * threshold:
            ok = False
            messages.append(
                f"FAIL catchup: {cur_s:.2f}s vs baseline {base_s:.2f}s "
                f"(more than {threshold:g}x slower)"
            )
        if not cur_catch.get("via_checkpoint", False):
            ok = False
            messages.append(
                "FAIL catchup: rejoin happened by full replay, not by "
                "certified checkpoint transfer"
            )

    cache_speedup = current["hotpath"]["cache_speedup"]
    if cache_speedup < MIN_CACHE_SPEEDUP:
        ok = False
        messages.append(
            f"FAIL hotpath cache_speedup {cache_speedup:.2f}x < "
            f"{MIN_CACHE_SPEEDUP:g}x: the result-invisible caches stopped paying"
        )

    jobs = current["grid"]["jobs"]
    required = required_grid_speedup(jobs)
    total = current["grid"]["total_speedup"]
    if total < required:
        ok = False
        messages.append(
            f"FAIL grid total_speedup {total:.2f}x < required {required:g}x "
            f"(jobs={jobs})"
        )
    else:
        messages.append(
            f"ok: grid total_speedup {total:.2f}x (required {required:g}x at "
            f"jobs={jobs}), hotpath cache_speedup {cache_speedup:.2f}x"
        )
    return ok, report, messages
