"""Perf measurement and the ``repro perf`` baseline/check gate.

Two measurements feed ``BENCH_baseline.json``:

* **hotpath** - one simulation cell run twice, with the result-invisible
  caches (:mod:`repro.perf`) enabled and disabled, reporting the
  simulator's events/sec counters.  The cached/uncached ratio isolates
  the hot-path optimization win on a single core.
* **grid** - a small Fig 6-style grid timed sequentially with caches off
  (approximating the unoptimized code), sequentially with caches on, and
  in parallel (``repro.bench.parallel``).  ``total_speedup`` is the
  end-to-end win; on a multi-core runner it multiplies the cache and
  parallel factors.

Three crypto-pipeline cells ride along: **batch_verify** (per-signature
vs joint Schnorr verification of a quorum certificate, gated at
``MIN_BATCH_SPEEDUP``), **codec** (encode/decode round-trips of a
realistic proposal, drift-gated), and **parallel_verify** (the sharded
``VerifyPool`` vs in-process verification; skipped - not failed - on
single-core machines).

``check_bench`` reuses :mod:`repro.analysis.regression`'s drift
machinery (:class:`Drift` / :class:`RegressionReport`) to diff a fresh
measurement against the committed baseline.  Wall-clock numbers on
shared CI are noisy, so the gate only fails on *pathological* slowdowns
(default 3x) or on losing the speedups outright.  The parallel
expectation scales with the cores actually available: a single-core
machine can only demonstrate the cache win, and the gate says so rather
than flaking.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Any

from repro import perf
from repro.analysis.regression import Drift, RegressionReport
from repro.bench.experiments import ALL_PROTOCOLS
from repro.bench.parallel import resolve_jobs, run_cells
from repro.bench.runner import ExperimentRunner
from repro.config import SystemConfig
from repro.runtime.sim import ConsensusSystem

#: Default baseline location (repo root, next to full_results.json's dir).
BASELINE_DEFAULT = "BENCH_baseline.json"

#: Default measurement parameters, recorded in the baseline's ``meta`` so
#: a later ``--check`` re-measures the *same* workload.
DEFAULT_HOTPATH = {"protocol": "hotstuff", "f": 20, "views": 6, "payload": 256, "seed": 1}
#: Grid thresholds lean toward the paper's larger f values: quorum
#: verification cost grows quadratically with f, which is exactly what
#: the caches optimize, so small-f-only grids under-report the win.
DEFAULT_GRID = {"thresholds": [2, 10, 20], "views": 6, "repetitions": 2, "payload": 256}

#: Catch-up cell: one crash/miss/rejoin cycle on the simulator (see
#: ``measure_catchup``), sized to finish in a couple of seconds.
DEFAULT_CATCHUP = {"missed": 150, "interval": 25, "seed": 11}

#: Batch-verification cell: per-signature vs joint Schnorr verification
#: of a 2f+1-signature quorum certificate at the paper's f values.
DEFAULT_BATCH_VERIFY = {"thresholds": [2, 10, 20], "seed": 5}

#: Codec cell: encode/decode round-trips of a realistic proposal
#: (block of transactions plus a full quorum certificate).
DEFAULT_CODEC = {"rounds": 400, "block_size": 32, "payload": 128, "f": 2}

DEFAULT_MEMPOOL = {"txs": 20_000, "block_size": 400, "payload": 256, "senders": 64}

#: Parallel-verification cell: the sharded :class:`VerifyPool` against
#: in-process verification of the same pairs (skipped below 2 cores).
DEFAULT_PARALLEL_VERIFY = {"pairs": 24, "seed": 9}

#: The algebraic batch equation must keep paying at quorum size: joint
#: verification of a 2f+1-signature certificate at the largest measured
#: f has to be at least this much faster than per-signature checking.
MIN_BATCH_SPEEDUP = 2.0

#: Slowdown factor treated as a regression (generous: CI machines vary).
DEFAULT_THRESHOLD = 3.0

#: Required end-to-end grid speedup per effective worker count.  With 2+
#: cores the parallel executor must combine with the caches for >= 2x;
#: a single core can only show the cache win.
MULTI_CORE_REQUIRED_SPEEDUP = 2.0
SINGLE_CORE_REQUIRED_SPEEDUP = 1.1

#: The hot-path caches must keep buying a measurable single-cell win.
MIN_CACHE_SPEEDUP = 1.05


def _time_cell(
    protocol: str, f: int, views: int, payload: int, seed: int
) -> tuple[float, int, float, float]:
    """Run one cell; return (wall s, events fired, throughput, latency)."""
    config = SystemConfig(protocol=protocol, f=f, payload_bytes=payload, seed=seed)
    system = ConsensusSystem(config)
    system.sim.attach_wall_clock(time.perf_counter)
    result = system.run_until_views(views)
    return (
        system.sim.wall_seconds,
        system.sim.events_processed,
        result.throughput_kops,
        result.mean_latency_ms,
    )


def measure_hotpath(params: dict[str, Any] | None = None) -> dict[str, Any]:
    """One cell, caches on vs off; asserts the results are identical."""
    p = dict(DEFAULT_HOTPATH)
    p.update(params or {})
    out: dict[str, Any] = {"params": p}
    results = {}
    try:
        for label, enabled in (("cached", True), ("uncached", False)):
            perf.set_caches_enabled(enabled)
            wall, events, tput, lat = _time_cell(
                p["protocol"], p["f"], p["views"], p["payload"], p["seed"]
            )
            out[label] = {
                "wall_seconds": round(wall, 4),
                "events": events,
                "events_per_sec": round(events / wall, 1) if wall > 0 else 0.0,
            }
            results[label] = (tput, lat)
    finally:
        perf.set_caches_enabled(True)
    if results["cached"] != results["uncached"]:
        raise AssertionError(
            f"caches changed results: {results['cached']} != {results['uncached']}"
        )
    cached_s = out["cached"]["wall_seconds"]
    uncached_s = out["uncached"]["wall_seconds"]
    out["cache_speedup"] = round(uncached_s / cached_s, 3) if cached_s > 0 else 0.0
    return out


def measure_grid(
    params: dict[str, Any] | None = None, jobs: int = 0
) -> dict[str, Any]:
    """Time a small Fig 6-style grid: sequential uncached/cached + parallel."""
    p = dict(DEFAULT_GRID)
    p.update(params or {})
    runner = ExperimentRunner(
        payload_bytes=p["payload"],
        views_per_run=p["views"],
        repetitions=p["repetitions"],
    )
    cells = [(protocol, f) for protocol in ALL_PROTOCOLS for f in p["thresholds"]]
    timings: dict[str, float] = {}
    grids: dict[str, Any] = {}
    try:
        perf.set_caches_enabled(False)
        start = time.perf_counter()
        grids["sequential_uncached"] = run_cells(runner, cells, jobs=1)
        timings["sequential_uncached_s"] = time.perf_counter() - start

        perf.set_caches_enabled(True)
        perf.clear_caches()
        start = time.perf_counter()
        grids["sequential_cached"] = run_cells(runner, cells, jobs=1)
        timings["sequential_cached_s"] = time.perf_counter() - start
    finally:
        perf.set_caches_enabled(True)

    effective_jobs = min(resolve_jobs(jobs), 4)
    if effective_jobs > 1:
        start = time.perf_counter()
        grids["parallel_cached"] = run_cells(runner, cells, jobs=effective_jobs)
        timings["parallel_cached_s"] = time.perf_counter() - start
        if grids["parallel_cached"] != grids["sequential_cached"]:
            raise AssertionError("parallel grid diverged from sequential grid")
    else:
        timings["parallel_cached_s"] = timings["sequential_cached_s"]
    if grids["sequential_uncached"] != grids["sequential_cached"]:
        raise AssertionError("caches changed grid results")

    out: dict[str, Any] = {"params": p, "cells": len(cells), "jobs": effective_jobs}
    out.update({k: round(v, 3) for k, v in timings.items()})
    seq_un = timings["sequential_uncached_s"]
    seq_ca = timings["sequential_cached_s"]
    par_ca = timings["parallel_cached_s"]
    out["cache_speedup"] = round(seq_un / seq_ca, 3) if seq_ca > 0 else 0.0
    out["parallel_speedup"] = round(seq_ca / par_ca, 3) if par_ca > 0 else 0.0
    out["total_speedup"] = round(seq_un / par_ca, 3) if par_ca > 0 else 0.0
    return out


def measure_catchup(params: dict[str, Any] | None = None) -> dict[str, Any]:
    """Time a crash/miss/rejoin-by-checkpoint cycle on the simulator.

    The robustness counterpart to the throughput cells: a replica sits
    out ``missed`` views, the survivors certify checkpoints and compact,
    and the rejoiner must come back inside ``catchup_view_gap`` of the
    frontier via state transfer.  Records the wall time of the whole
    cycle plus the simulated rejoin latency.
    """
    from repro.costs import CostModel

    p = dict(DEFAULT_CATCHUP)
    p.update(params or {})
    config = SystemConfig(
        protocol="damysus",
        f=1,
        payload_bytes=0,
        block_size=1,
        seed=p["seed"],
        timeout_ms=500.0,
        costs=CostModel.zero(),
        checkpoint_interval=p["interval"],
    )
    t0 = time.perf_counter()
    system = ConsensusSystem(config)
    system.start()
    system.run_until_views(5, max_time_ms=600_000)
    victim = system.replicas[-1].pid
    system.crash_replicas([victim])
    base_views = len(system.monitor.committed_views())
    system.run_until_views(base_views + p["missed"], max_time_ms=p["missed"] * 10_000.0)
    system.recover_replicas([victim])
    recovered = system.replicas[victim]
    rejoin_t0 = system.sim.now
    deadline = rejoin_t0 + p["missed"] * 200.0
    while system.sim.now < deadline:
        system.sim.run(until=system.sim.now + 500.0)
        if recovered.view_lag() <= config.catchup_view_gap:
            break
    wall = time.perf_counter() - t0
    if recovered.view_lag() > config.catchup_view_gap or not system.oracle.safe:
        raise AssertionError("catchup bench scenario failed to rejoin safely")
    return {
        "params": p,
        "wall_seconds": round(wall, 4),
        "rejoin_sim_ms": round(system.sim.now - rejoin_t0, 1),
        "replayed_blocks": len(recovered.ledger.executed),
        "via_checkpoint": recovered.caught_up_via_checkpoint,
    }


def measure_batch_verify(params: dict[str, Any] | None = None) -> dict[str, Any]:
    """Per-signature vs batch Schnorr verification of quorum certificates.

    The quorum-certificate shape: 2f+1 distinct signers over one
    message.  ``verify_many`` checks the whole set with one random-
    linear-combination equation (one shared multi-exponentiation)
    instead of 2f+1 independent verifications; this cell records the
    measured speedup per f and asserts the outcomes are identical.
    """
    from repro.crypto.schnorr import GROUP_2048, SchnorrScheme

    p = dict(DEFAULT_BATCH_VERIFY)
    p.update(params or {})
    message = f"batch-verify-cell-{p['seed']}".encode()
    cells: list[dict[str, Any]] = []
    max_speedup = 0.0
    for f in p["thresholds"]:
        k = 2 * f + 1
        scheme = SchnorrScheme(GROUP_2048)
        for signer in range(k):
            scheme.keygen(signer)
        pairs = [(message, scheme.sign(signer, message)) for signer in range(k)]
        start = time.perf_counter()
        per_sig = [scheme.verify(m, sig) for m, sig in pairs]
        per_sig_s = time.perf_counter() - start
        start = time.perf_counter()
        batched = scheme.verify_many(pairs)
        batch_s = time.perf_counter() - start
        if per_sig != batched or not all(batched):
            raise AssertionError(f"batch verification diverged at f={f}")
        speedup = round(per_sig_s / batch_s, 3) if batch_s > 0 else 0.0
        max_speedup = max(max_speedup, speedup)
        cells.append(
            {
                "f": f,
                "sigs": k,
                "per_sig_s": round(per_sig_s, 4),
                "batch_s": round(batch_s, 4),
                "speedup": speedup,
            }
        )
    return {"params": p, "cells": cells, "max_speedup": round(max_speedup, 3)}


def measure_codec(params: dict[str, Any] | None = None) -> dict[str, Any]:
    """Encode/decode throughput for a realistic proposal message."""
    from repro.core.block import create_leaf, genesis_block
    from repro.core.certificate import QuorumCert, vote_payload
    from repro.core.codec import decode_message, encode_message
    from repro.core.mempool import Transaction
    from repro.core.messages import ProposalMsg
    from repro.core.phases import Phase
    from repro.crypto.hmac_scheme import HmacScheme

    p = dict(DEFAULT_CODEC)
    p.update(params or {})
    quorum = 2 * p["f"] + 1
    scheme = HmacScheme(secret=b"codec-cell")
    for signer in range(quorum):
        scheme.keygen(signer)
    txs = tuple(
        Transaction(client_id=0, tx_id=i, payload_bytes=p["payload"])
        for i in range(p["block_size"])
    )
    block = create_leaf(genesis_block().hash, 1, txs)
    payload = vote_payload(1, Phase.PREPARE, block.hash)
    qc = QuorumCert(
        1,
        block.hash,
        Phase.PREPARE,
        tuple(scheme.sign(signer, payload) for signer in range(quorum)),
    )
    msg = ProposalMsg(1, block, qc)
    rounds = p["rounds"]
    start = time.perf_counter()
    for _ in range(rounds):
        wire = encode_message(msg)
    encode_s = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(rounds):
        decoded = decode_message(wire)
    decode_s = time.perf_counter() - start
    if decoded != msg:
        raise AssertionError("codec round-trip diverged")
    return {
        "params": p,
        "wire_bytes": len(wire),
        "encode_per_sec": round(rounds / encode_s, 1) if encode_s > 0 else 0.0,
        "decode_per_sec": round(rounds / decode_s, 1) if decode_s > 0 else 0.0,
        "wall_seconds": round(encode_s + decode_s, 4),
    }


def measure_mempool(params: dict[str, Any] | None = None) -> dict[str, Any]:
    """Admission + drain throughput of the bounded priority mempool.

    Enqueues ``txs`` distinct transactions through the full admission
    pipeline (replay check, token bucket, watermark, caps) across
    ``senders`` sender ids with varied fees, then drains everything in
    ``block_size`` proposals - the two halves of the leader's ingest
    hot path.
    """
    from repro.core.mempool import AdmissionVerdict, Transaction
    from repro.mempool.pool import PriorityMempool

    p = dict(DEFAULT_MEMPOOL)
    p.update(params or {})
    txs = p["txs"]
    pool = PriorityMempool(
        p["payload"],
        p["block_size"],
        open_loop=False,
        # Sized to hold the full batch with the watermark never engaging:
        # the cell measures admission/drain churn, not rejection paths.
        max_txs=txs,
        high_watermark=1.0,
        low_watermark=1.0,
    )
    batch = [
        Transaction(
            client_id=i % p["senders"],
            tx_id=i,
            payload_bytes=p["payload"],
            fee=i % 7,
        )
        for i in range(txs)
    ]
    start = time.perf_counter()
    for tx in batch:
        if pool.admit(tx, 0.0) is not AdmissionVerdict.ACCEPTED:
            raise AssertionError("admission rejected a distinct transaction")
    enqueue_s = time.perf_counter() - start
    drained = 0
    start = time.perf_counter()
    while pool.pending():
        drained += len(pool.take_block(0.0))
    drain_s = time.perf_counter() - start
    if drained != txs:
        raise AssertionError(f"drained {drained} of {txs} transactions")
    return {
        "params": p,
        "enqueue_per_sec": round(txs / enqueue_s, 1) if enqueue_s > 0 else 0.0,
        "drain_per_sec": round(txs / drain_s, 1) if drain_s > 0 else 0.0,
        "wall_seconds": round(enqueue_s + drain_s, 4),
    }


def measure_parallel_verify(
    params: dict[str, Any] | None = None, jobs: int = 0
) -> dict[str, Any]:
    """Sharded :class:`VerifyPool` vs in-process verification.

    Returns ``{"skipped": reason}`` on machines with fewer than two
    cores - a single worker can only add IPC overhead, so the gate
    treats the cell as not-applicable rather than failed there.
    Outcomes must be bit-identical to sequential verification.
    """
    from repro.crypto.pool import VerifyPool, available_cpus, resolve_verify_jobs
    from repro.crypto.schnorr import GROUP_2048, SchnorrScheme

    p = dict(DEFAULT_PARALLEL_VERIFY)
    p.update(params or {})
    cpus = available_cpus()
    if cpus < 2:
        return {"params": p, "skipped": f"only {cpus} cpu(s) available"}
    effective = min(resolve_verify_jobs(jobs), 4)
    scheme = SchnorrScheme(GROUP_2048)
    signers = max(4, min(p["pairs"], 8))
    for signer in range(signers):
        scheme.keygen(signer)
    pairs = []
    for i in range(p["pairs"]):
        message = f"parallel-cell-{p['seed']}-{i}".encode()
        pairs.append((message, scheme.sign(i % signers, message)))
    start = time.perf_counter()
    sequential = scheme.verify_many(pairs)
    sequential_s = time.perf_counter() - start
    with VerifyPool(scheme, jobs=effective, chunk=4) as pool:
        pool.verify_many(pairs[:2])  # absorb worker start-up cost
        start = time.perf_counter()
        sharded = pool.verify_many(pairs)
        sharded_s = time.perf_counter() - start
    if sharded != sequential:
        raise AssertionError("sharded verification diverged from sequential")
    return {
        "params": p,
        "jobs": effective,
        "sequential_s": round(sequential_s, 4),
        "sharded_s": round(sharded_s, 4),
        "speedup": round(sequential_s / sharded_s, 3) if sharded_s > 0 else 0.0,
    }


def collect_bench(jobs: int = 0, quick: bool = False) -> dict[str, Any]:
    """Full measurement blob for the baseline file."""
    from repro.crypto.pool import available_cpus

    hot_params = dict(DEFAULT_HOTPATH)
    grid_params = dict(DEFAULT_GRID)
    catch_params = dict(DEFAULT_CATCHUP)
    batch_params = dict(DEFAULT_BATCH_VERIFY)
    codec_params = dict(DEFAULT_CODEC)
    mempool_params = dict(DEFAULT_MEMPOOL)
    if quick:
        # Keep f=10 in the quick grid: the caches' win scales with f, and
        # an all-small-f grid would under-report it into gate noise.
        # Same for batch verification - its win grows with quorum size.
        hot_params.update(f=10, views=4)
        grid_params.update(thresholds=[2, 10], views=4, repetitions=1)
        catch_params.update(missed=60)
        batch_params.update(thresholds=[2, 10])
        codec_params.update(rounds=150)
        mempool_params.update(txs=5_000)
    return {
        "meta": {
            # Honest core count: sched_getaffinity when available (a CI
            # container may be pinned to fewer cores than the host has).
            "cpus": available_cpus(),
            "quick": quick,
            "schema": 1,
        },
        "hotpath": measure_hotpath(hot_params),
        "grid": measure_grid(grid_params, jobs=jobs),
        "catchup": measure_catchup(catch_params),
        "batch_verify": measure_batch_verify(batch_params),
        "codec": measure_codec(codec_params),
        "mempool": measure_mempool(mempool_params),
        "parallel_verify": measure_parallel_verify(jobs=jobs),
    }


def write_baseline(path: str | pathlib.Path, bench: dict[str, Any]) -> None:
    pathlib.Path(path).write_text(json.dumps(bench, indent=2) + "\n")


def load_baseline(path: str | pathlib.Path) -> dict[str, Any]:
    return json.loads(pathlib.Path(path).read_text())


def required_grid_speedup(effective_jobs: int) -> float:
    """What total grid speedup the gate demands on this machine."""
    if effective_jobs >= 2:
        return MULTI_CORE_REQUIRED_SPEEDUP
    return SINGLE_CORE_REQUIRED_SPEEDUP


def check_bench(
    baseline: dict[str, Any],
    current: dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
) -> tuple[bool, RegressionReport, list[str]]:
    """Diff a fresh measurement against the baseline.

    Returns ``(ok, report, messages)``.  Failure conditions:

    * hot-path events/sec dropped by more than ``threshold``x;
    * grid wall-clock grew by more than ``threshold``x;
    * the cache win vanished (cache_speedup below ``MIN_CACHE_SPEEDUP``);
    * total grid speedup below what this machine's cores require;
    * batch verification below ``MIN_BATCH_SPEEDUP`` at quorum size;
    * codec throughput or sharded verification ``threshold``x slower
      (the parallel cell is skipped, not failed, below 2 cores).
    """
    report = RegressionReport()
    messages: list[str] = []
    ok = True

    base_eps = baseline["hotpath"]["cached"]["events_per_sec"]
    cur_eps = current["hotpath"]["cached"]["events_per_sec"]
    report.drifts.append(Drift("hotpath", "cached", "events_per_sec", base_eps, cur_eps))
    if base_eps > 0 and cur_eps < base_eps / threshold:
        ok = False
        messages.append(
            f"FAIL hotpath: {cur_eps:.0f} events/s vs baseline {base_eps:.0f} "
            f"(more than {threshold:g}x slower)"
        )

    for metric in ("sequential_cached_s", "parallel_cached_s"):
        base_s = baseline["grid"][metric]
        cur_s = current["grid"][metric]
        report.drifts.append(Drift("grid", "fig6-small", metric, base_s, cur_s))
        if base_s > 0 and cur_s > base_s * threshold:
            ok = False
            messages.append(
                f"FAIL grid {metric}: {cur_s:.2f}s vs baseline {base_s:.2f}s "
                f"(more than {threshold:g}x slower)"
            )

    # Catch-up cell: only compared when both sides recorded it, so a
    # baseline written before the cell existed still checks clean.
    base_catch = baseline.get("catchup")
    cur_catch = current.get("catchup")
    if base_catch is not None and cur_catch is not None:
        base_s = base_catch["wall_seconds"]
        cur_s = cur_catch["wall_seconds"]
        report.drifts.append(Drift("catchup", "rejoin", "wall_seconds", base_s, cur_s))
        if base_s > 0 and cur_s > base_s * threshold:
            ok = False
            messages.append(
                f"FAIL catchup: {cur_s:.2f}s vs baseline {base_s:.2f}s "
                f"(more than {threshold:g}x slower)"
            )
        if not cur_catch.get("via_checkpoint", False):
            ok = False
            messages.append(
                "FAIL catchup: rejoin happened by full replay, not by "
                "certified checkpoint transfer"
            )

    # Crypto-pipeline cells: like catchup, compared only when both sides
    # recorded them, so a pre-pipeline baseline still checks clean.
    base_batch = baseline.get("batch_verify")
    cur_batch = current.get("batch_verify")
    if cur_batch is not None:
        max_speedup = cur_batch["max_speedup"]
        if base_batch is not None:
            report.drifts.append(
                Drift(
                    "batch_verify",
                    "schnorr-qc",
                    "max_speedup",
                    base_batch["max_speedup"],
                    max_speedup,
                )
            )
        if max_speedup < MIN_BATCH_SPEEDUP:
            ok = False
            messages.append(
                f"FAIL batch_verify: speedup {max_speedup:.2f}x < "
                f"{MIN_BATCH_SPEEDUP:g}x at quorum size - the joint "
                "verification equation stopped paying"
            )

    base_codec = baseline.get("codec")
    cur_codec = current.get("codec")
    if base_codec is not None and cur_codec is not None:
        for metric in ("encode_per_sec", "decode_per_sec"):
            base_rate = base_codec[metric]
            cur_rate = cur_codec[metric]
            report.drifts.append(Drift("codec", "proposal", metric, base_rate, cur_rate))
            if base_rate > 0 and cur_rate < base_rate / threshold:
                ok = False
                messages.append(
                    f"FAIL codec {metric}: {cur_rate:.0f}/s vs baseline "
                    f"{base_rate:.0f}/s (more than {threshold:g}x slower)"
                )

    # Guarded like the codec cell: baselines written before the mempool
    # cell existed still check clean.
    base_pool = baseline.get("mempool")
    cur_pool = current.get("mempool")
    if base_pool is not None and cur_pool is not None:
        for metric in ("enqueue_per_sec", "drain_per_sec"):
            base_rate = base_pool[metric]
            cur_rate = cur_pool[metric]
            report.drifts.append(Drift("mempool", "ingest", metric, base_rate, cur_rate))
            if base_rate > 0 and cur_rate < base_rate / threshold:
                ok = False
                messages.append(
                    f"FAIL mempool {metric}: {cur_rate:.0f}/s vs baseline "
                    f"{base_rate:.0f}/s (more than {threshold:g}x slower)"
                )

    # Parallel verification needs a second core to demonstrate anything;
    # a skipped cell is not-applicable, never a failure.
    cur_par = current.get("parallel_verify")
    if cur_par is not None:
        if "skipped" in cur_par:
            messages.append(f"skip parallel_verify: {cur_par['skipped']}")
        else:
            base_par = baseline.get("parallel_verify")
            if base_par is not None and "skipped" not in base_par:
                report.drifts.append(
                    Drift(
                        "parallel_verify",
                        "pool",
                        "sharded_s",
                        base_par["sharded_s"],
                        cur_par["sharded_s"],
                    )
                )
                if (
                    base_par["sharded_s"] > 0
                    and cur_par["sharded_s"] > base_par["sharded_s"] * threshold
                ):
                    ok = False
                    messages.append(
                        f"FAIL parallel_verify: {cur_par['sharded_s']:.2f}s vs "
                        f"baseline {base_par['sharded_s']:.2f}s "
                        f"(more than {threshold:g}x slower)"
                    )

    cache_speedup = current["hotpath"]["cache_speedup"]
    if cache_speedup < MIN_CACHE_SPEEDUP:
        ok = False
        messages.append(
            f"FAIL hotpath cache_speedup {cache_speedup:.2f}x < "
            f"{MIN_CACHE_SPEEDUP:g}x: the result-invisible caches stopped paying"
        )

    jobs = current["grid"]["jobs"]
    required = required_grid_speedup(jobs)
    total = current["grid"]["total_speedup"]
    if total < required:
        ok = False
        messages.append(
            f"FAIL grid total_speedup {total:.2f}x < required {required:g}x "
            f"(jobs={jobs})"
        )
    else:
        messages.append(
            f"ok: grid total_speedup {total:.2f}x (required {required:g}x at "
            f"jobs={jobs}), hotpath cache_speedup {cache_speedup:.2f}x"
        )
    return ok, report, messages
