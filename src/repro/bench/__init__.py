"""Benchmark harness: regenerates every table and figure of Section 8.

* :mod:`~repro.bench.workload` - workload descriptions (payloads, blocks).
* :mod:`~repro.bench.runner` - runs (protocol x f x deployment) cells with
  repetitions and aggregates them.
* :mod:`~repro.bench.experiments` - one function per paper artefact:
  Table 1, Fig 6a/6b, Fig 7a/7b, Fig 8, Fig 9.
* :mod:`~repro.bench.reporting` - plain-text table rendering.

The ``benchmarks/`` directory at the repository root contains the
pytest-benchmark entry points that drive these functions at a reduced
scale; run an experiment at full scale by calling it directly, e.g.::

    from repro.bench.experiments import fig6
    print(fig6(payload_bytes=256).render())
"""

from repro.bench.experiments import (
    ExperimentReport,
    fig6,
    fig7,
    fig8,
    fig9,
    table1_experiment,
)
from repro.bench.runner import ExperimentRunner
from repro.bench.reporting import format_table
from repro.bench.workload import Workload

__all__ = [
    "Workload",
    "ExperimentRunner",
    "ExperimentReport",
    "format_table",
    "table1_experiment",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
]
