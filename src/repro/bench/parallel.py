"""Parallel scenario executor: shard the experiment grid across processes.

The evaluation grids (Figs 6-8) are collections of fully independent
cells - each (protocol, f, payload, seed) combination is its own sealed
simulation - so they parallelize embarrassingly.  Work is sharded at the
*repetition* level: every task is one seeded run, the finest grain that
still amortizes process overhead.

Determinism contract: results are merged back in task submission order
(``ProcessPoolExecutor.map`` preserves input order), and every run is a
pure function of its ``(protocol, f, seed)`` plus the runner parameters,
so ``run_cells(..., jobs=N)`` returns *byte-identical* summaries to the
sequential path for any ``N``.  ``jobs <= 1`` never spawns processes.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Sequence

from repro.analysis.metrics import Summary, summarize_runs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.bench.runner import ExperimentRunner
    from repro.runtime.sim import RunResult

def resolve_jobs(jobs: int) -> int:
    """Normalize a ``--jobs`` value: 0 means "all cores", negatives reject."""
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def _run_task(task: "tuple[ExperimentRunner, str, int, int]") -> "RunResult":
    """Execute one repetition; module-level so it pickles to workers."""
    runner, protocol, f, seed = task
    return runner.run_once(protocol, f, seed=seed)


def run_cells(
    runner: "ExperimentRunner",
    cells: Sequence[tuple[str, int]],
    jobs: int = 1,
) -> dict[tuple[str, int], Summary]:
    """Run every (protocol, f) cell of ``runner``'s grid, possibly in parallel.

    Returns ``{(protocol, f): Summary}`` with each cell averaging
    ``runner.repetitions`` seeded runs, exactly as the sequential
    ``ExperimentRunner.run_cell`` would produce.
    """
    jobs = resolve_jobs(jobs)
    tasks = [
        (runner, protocol, f, runner.base_seed + rep)
        for protocol, f in cells
        for rep in range(runner.repetitions)
    ]
    if jobs <= 1 or len(tasks) <= 1:
        results = [_run_task(task) for task in tasks]
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
            results = list(pool.map(_run_task, tasks, chunksize=1))
    merged: dict[tuple[str, int], Summary] = {}
    runs_iter = iter(results)
    for cell in cells:
        runs = [next(runs_iter) for _ in range(runner.repetitions)]
        merged[cell] = summarize_runs(runs)
    return merged
