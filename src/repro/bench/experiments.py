"""Experiment definitions: one function per table/figure of Section 8.

Every function returns an :class:`ExperimentReport` carrying the raw data
points plus a ``render()`` for human-readable output.  Scale parameters
(fault thresholds, repetitions, views) default to values that keep the
whole benchmark suite tractable on a laptop; pass the paper's values
(``thresholds=[1,2,4,10,20,30,40]``, ``repetitions=100``,
``views_per_run=30``) for a full-scale reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.complexity import expected_messages, table1
from repro.analysis.metrics import (
    Summary,
    latency_decrease_percent,
    mean,
    throughput_increase_percent,
)
from repro.bench.reporting import format_table
from repro.bench.runner import ExperimentRunner
from repro.config import SystemConfig
from repro.runtime.sim import ConsensusSystem
from repro.sim.regions import EU_REGIONS, WORLD_REGIONS, RegionMap

#: Protocols in each figure, paper order.
BASIC_PROTOCOLS = ["hotstuff", "damysus-c", "damysus-a", "damysus"]
CHAINED_PROTOCOLS = ["chained-hotstuff", "chained-damysus"]
ALL_PROTOCOLS = BASIC_PROTOCOLS + CHAINED_PROTOCOLS

#: The paper's fault thresholds (Fig 6/7) and our reduced default.
PAPER_THRESHOLDS = [1, 2, 4, 10, 20, 30, 40]
DEFAULT_THRESHOLDS = [1, 2, 4, 10]


@dataclass
class ExperimentReport:
    """Structured result of one experiment."""

    name: str
    description: str
    headers: list[str]
    rows: list[list]
    notes: list[str] = field(default_factory=list)
    data: dict = field(default_factory=dict)

    def render(self) -> str:
        parts = [format_table(self.headers, self.rows, title=f"== {self.name} ==")]
        parts.append(self.description)
        parts.extend(f"note: {n}" for n in self.notes)
        return "\n".join(parts)


# ---------------------------------------------------------------------------
# Table 1: message complexity, analytic and measured
# ---------------------------------------------------------------------------

def table1_experiment(
    f: int = 2, views_per_run: int = 8, measure: bool = True
) -> ExperimentReport:
    """Table 1 instantiated at ``f``, with simulator cross-checks.

    The analytic column is the paper's closed form; the measured column
    counts steady-state protocol messages per view in an actual
    simulation of the protocols this library implements.  For the chained
    protocols Table 1 counts a block's full multi-view lifecycle, whereas
    the measured marginal cost per view is amortized by pipelining; the
    lifecycle span (3 views for Chained-Damysus, 4 for chained HotStuff)
    converts between the two.
    """
    rows = []
    measured: dict[str, float] = {}
    if measure:
        runner = ExperimentRunner(
            payload_bytes=0, block_size=50, views_per_run=views_per_run, repetitions=1
        )
        for protocol in ALL_PROTOCOLS:
            system = ConsensusSystem(runner.config_for(protocol, f, seed=7))
            system.run_until_views(views_per_run)
            counts = system.monitor.view_message_counts
            steady = [counts[v] for v in sorted(counts) if 2 <= v <= views_per_run - 2]
            per_view = mean([float(c) for c in steady]) if steady else 0.0
            span = {"chained-hotstuff": 4, "chained-damysus": 3}.get(protocol, 1)
            measured[protocol] = per_view * span
    for entry in table1(f):
        name = entry["protocol"]
        rows.append(
            [
                name,
                entry["replicas"],
                entry["comm_steps"],
                f"{entry['msgs_normal']} ({entry['msgs_normal_expr']})",
                entry["msgs_view_change"] if entry["msgs_view_change"] else "-",
                "Yes" if entry["optimistic"] else "No",
                f"{measured[name]:.1f}" if name in measured else "-",
                entry["trusted_component"],
            ]
        )
    # Add the two ablation protocols the paper evaluates but Table 1 omits.
    for name, replicas, steps in [("damysus-c", "2f+1", "8"), ("damysus-a", "3f+1", "6")]:
        rows.append(
            [
                name,
                replicas,
                steps,
                str(expected_messages(name, f)),
                "-",
                "No",
                f"{measured[name]:.1f}" if name in measured else "-",
                "Checker - Constant" if name == "damysus-c" else "Accumulator - Constant",
            ]
        )
    return ExperimentReport(
        name=f"Table 1 (f={f})",
        description=(
            "Comparative analysis: replicas, communication steps, normal-case "
            "messages (incl. self-messages), view-change messages, optimistic "
            "execution, simulator-measured messages per decided block, and "
            "trusted component."
        ),
        headers=[
            "protocol",
            "replicas",
            "steps",
            "msgs normal (analytic)",
            "msgs view-change",
            "optimistic",
            "msgs measured",
            "trusted component",
        ],
        rows=rows,
        data={"measured": measured, "f": f},
    )


# ---------------------------------------------------------------------------
# Figures 6 and 7: throughput/latency vs fault threshold
# ---------------------------------------------------------------------------

def _throughput_latency_figure(
    name: str,
    regions: RegionMap,
    payload_bytes: int,
    thresholds: list[int],
    views_per_run: int,
    repetitions: int,
    jobs: int = 1,
) -> ExperimentReport:
    runner = ExperimentRunner(
        regions=regions,
        payload_bytes=payload_bytes,
        views_per_run=views_per_run,
        repetitions=repetitions,
    )
    grid = runner.sweep(ALL_PROTOCOLS, thresholds, jobs=jobs)
    rows = []
    for protocol in ALL_PROTOCOLS:
        for f in thresholds:
            cell = grid[(protocol, f)]
            rows.append(
                [protocol, f, cell.num_replicas, cell.throughput_kops, cell.latency_ms]
            )
    notes = _improvement_notes(grid, thresholds)
    return ExperimentReport(
        name=name,
        description=(
            f"Throughput (Kops/s) and latency (ms) on {regions.name} with "
            f"{payload_bytes}B payloads, 400-tx blocks, f in {thresholds} "
            f"({repetitions} reps x {views_per_run} views)."
        ),
        headers=["protocol", "f", "N", "throughput Kops/s", "latency ms"],
        rows=rows,
        notes=notes,
        data={"grid": grid, "thresholds": thresholds},
    )


def _improvement_notes(
    grid: dict[tuple[str, int], Summary], thresholds: list[int]
) -> list[str]:
    """Average improvements over the HotStuff baselines (paper-style)."""
    notes = []
    for protocol, baseline in [
        ("damysus-c", "hotstuff"),
        ("damysus-a", "hotstuff"),
        ("damysus", "hotstuff"),
        ("chained-damysus", "chained-hotstuff"),
    ]:
        tputs, lats = [], []
        for f in thresholds:
            cell, base = grid[(protocol, f)], grid[(baseline, f)]
            tputs.append(
                throughput_increase_percent(cell.throughput_kops, base.throughput_kops)
            )
            lats.append(latency_decrease_percent(cell.latency_ms, base.latency_ms))
        notes.append(
            f"{protocol} vs {baseline}: avg throughput +{mean(tputs):.1f}%, "
            f"avg latency -{mean(lats):.1f}%"
        )
    return notes


def fig6(
    payload_bytes: int = 256,
    thresholds: list[int] | None = None,
    views_per_run: int = 6,
    repetitions: int = 2,
    jobs: int = 1,
) -> ExperimentReport:
    """Fig 6a (256 B) / Fig 6b (0 B): 4 EU regions."""
    label = "a" if payload_bytes else "b"
    return _throughput_latency_figure(
        name=f"Fig 6{label} (EU regions, {payload_bytes}B payload)",
        regions=EU_REGIONS,
        payload_bytes=payload_bytes,
        thresholds=thresholds or DEFAULT_THRESHOLDS,
        views_per_run=views_per_run,
        repetitions=repetitions,
        jobs=jobs,
    )


def fig7(
    payload_bytes: int = 256,
    thresholds: list[int] | None = None,
    views_per_run: int = 6,
    repetitions: int = 2,
    jobs: int = 1,
) -> ExperimentReport:
    """Fig 7a (256 B) / Fig 7b (0 B): 11 world regions."""
    label = "a" if payload_bytes else "b"
    return _throughput_latency_figure(
        name=f"Fig 7{label} (world regions, {payload_bytes}B payload)",
        regions=WORLD_REGIONS,
        payload_bytes=payload_bytes,
        thresholds=thresholds or DEFAULT_THRESHOLDS,
        views_per_run=views_per_run,
        repetitions=repetitions,
        jobs=jobs,
    )


# ---------------------------------------------------------------------------
# Figure 8: comparison at fixed N = 61
# ---------------------------------------------------------------------------

#: Fig 8's (protocol, f) cells: every system has N = 61 replicas.
FIG8_CELLS = [
    ("hotstuff", 20),
    ("chained-hotstuff", 20),
    ("damysus-c", 30),
    ("damysus-a", 20),
    ("damysus", 30),
    ("chained-damysus", 30),
]


def fig8(views_per_run: int = 6, repetitions: int = 1, jobs: int = 1) -> ExperimentReport:
    """Fig 8: improvements over (chained) HotStuff at N = 61.

    3 x 20 + 1 = 61 = 2 x 30 + 1: the non-hybrid protocols run with
    f = 20 and the hybrid ones with f = 30, so all systems have 61
    replicas while the hybrid ones additionally tolerate 10 more faults.
    """
    from repro.bench.parallel import run_cells

    rows = []
    data = {}
    for fig_name, regions, payload in [
        ("Fig 6a", EU_REGIONS, 256),
        ("Fig 6b", EU_REGIONS, 0),
        ("Fig 7a", WORLD_REGIONS, 256),
        ("Fig 7b", WORLD_REGIONS, 0),
    ]:
        runner = ExperimentRunner(
            regions=regions,
            payload_bytes=payload,
            views_per_run=views_per_run,
            repetitions=repetitions,
        )
        grid = run_cells(runner, FIG8_CELLS, jobs=jobs)
        cells = {protocol: grid[(protocol, f)] for protocol, f in FIG8_CELLS}
        data[fig_name] = cells
        row = [fig_name]
        for protocol, baseline in [
            ("damysus-c", "hotstuff"),
            ("damysus-a", "hotstuff"),
            ("damysus", "hotstuff"),
            ("chained-damysus", "chained-hotstuff"),
        ]:
            tput = throughput_increase_percent(
                cells[protocol].throughput_kops, cells[baseline].throughput_kops
            )
            lat = latency_decrease_percent(
                cells[protocol].latency_ms, cells[baseline].latency_ms
            )
            row.append(f"{tput:+.1f}%/{lat:+.1f}%")
        rows.append(row)
    return ExperimentReport(
        name="Fig 8 (N = 61: throughput/latency improvement over HotStuff)",
        description=(
            "Each cell is 'throughput improvement / latency improvement' of the "
            "protocol over its HotStuff baseline at 61 replicas (f=20 for "
            "3f+1 protocols, f=30 for 2f+1 protocols; Damysus-A is 3f+1)."
        ),
        headers=["deployment", "Damysus-C", "Damysus-A", "Damysus", "Chained-Damysus"],
        rows=rows,
        notes=[
            "hybrid 2f+1 protocols tolerate 30 faults at N=61 vs 20 for 3f+1",
        ],
        data=data,
    )


# ---------------------------------------------------------------------------
# Figure 9: throughput vs latency to saturation (client-driven)
# ---------------------------------------------------------------------------

def fig9(
    intervals_ms: list[float] | None = None,
    num_clients: int = 6,
    duration_ms: float = 1_500.0,
    protocols: list[str] | None = None,
) -> ExperimentReport:
    """Fig 9: client-measured throughput vs latency while raising load.

    f = 1, 0 B payloads, 400-tx blocks, EU regions; clients submit at
    decreasing inter-arrival intervals until the system saturates.  The
    paper uses 6 clients for the basic protocols and 10 for the chained
    ones with submission intervals from 900 us down to 0; we sweep a
    scaled interval list (defaults chosen to cross each protocol's
    saturation knee).
    """
    intervals = intervals_ms or [2.0, 1.0, 0.5, 0.25, 0.1]
    protos = protocols or ALL_PROTOCOLS
    rows = []
    data: dict[tuple[str, float], dict] = {}
    for protocol in protos:
        for interval in intervals:
            config = SystemConfig(
                protocol=protocol,
                f=1,
                payload_bytes=0,
                block_size=400,
                seed=11,
                regions=EU_REGIONS,
                open_loop=False,
                num_clients=num_clients,
                client_interval_ms=interval,
            )
            system = ConsensusSystem(config)
            system.run(duration_ms)
            completed = sum(len(c.completed) for c in system.clients)
            achieved = (completed / (duration_ms / 1000.0)) / 1000.0
            latency = mean([c.mean_latency_ms() for c in system.clients if c.completed])
            offered = (num_clients / interval) if interval > 0 else float("inf")
            rows.append([protocol, interval, offered, achieved, latency])
            data[(protocol, interval)] = {
                "achieved_kops": achieved,
                "latency_ms": latency,
                "completed": completed,
            }
    return ExperimentReport(
        name="Fig 9 (throughput vs latency to saturation, f=1, 0B, EU)",
        description=(
            f"{num_clients} clients sweep submission intervals {intervals} ms; "
            "throughput and latency are measured client-side (first reply)."
        ),
        headers=[
            "protocol",
            "interval ms",
            "offered Kops/s",
            "achieved Kops/s",
            "client latency ms",
        ],
        rows=rows,
        data=data,
    )
