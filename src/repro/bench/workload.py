"""Workload descriptions (paper Section 8, "Deployment settings").

The paper fixes blocks at 400 transactions and evaluates two payload
sizes: 0 B (protocol overhead) and 256 B (trend for larger blocks).  Each
transaction additionally carries 40 B of metadata, so blocks weigh
400 x 40 B = 15.6 KB and 400 x 296 B = 115.6 KB more.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mempool import TX_METADATA_BYTES


@dataclass(frozen=True)
class Workload:
    """A block-level workload: payload size and block size."""

    payload_bytes: int
    block_size: int = 400

    @property
    def tx_bytes(self) -> int:
        """Per-transaction bytes including metadata."""
        return self.payload_bytes + TX_METADATA_BYTES

    @property
    def block_bytes(self) -> int:
        """Transaction bytes per block (excluding the block header)."""
        return self.block_size * self.tx_bytes

    def label(self) -> str:
        return f"{self.payload_bytes}B x {self.block_size}tx"


#: The paper's two workloads.
PAYLOAD_0B = Workload(payload_bytes=0)
PAYLOAD_256B = Workload(payload_bytes=256)
