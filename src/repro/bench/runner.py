"""Experiment runner: sweeps (protocol x f) cells with repetitions.

The paper runs 100 repetitions of 30 views per data point on EC2; a
deterministic simulator needs far fewer repetitions for stable averages,
so the defaults here are intentionally smaller (and every benchmark
documents its scale).  Pass larger ``repetitions`` / ``views_per_run``
for paper-scale runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.metrics import Summary, summarize_runs
from repro.config import SystemConfig
from repro.costs import DEFAULT_COSTS, CostModel
from repro.runtime.sim import ConsensusSystem, RunResult
from repro.sim.regions import EU_REGIONS, RegionMap


@dataclass
class ExperimentRunner:
    """Runs one deployment configuration across protocols and thresholds."""

    regions: RegionMap = EU_REGIONS
    payload_bytes: int = 256
    block_size: int = 400
    views_per_run: int = 8
    repetitions: int = 2
    base_seed: int = 1
    costs: CostModel = field(default_factory=lambda: DEFAULT_COSTS)
    max_time_ms: float = 600_000.0

    def config_for(self, protocol: str, f: int, seed: int, **overrides) -> SystemConfig:
        params = dict(
            protocol=protocol,
            f=f,
            payload_bytes=self.payload_bytes,
            block_size=self.block_size,
            seed=seed,
            regions=self.regions,
            costs=self.costs,
        )
        params.update(overrides)
        return SystemConfig(**params)

    def run_once(self, protocol: str, f: int, seed: int, **overrides) -> RunResult:
        system = ConsensusSystem(self.config_for(protocol, f, seed, **overrides))
        return system.run_until_views(self.views_per_run, max_time_ms=self.max_time_ms)

    def run_cell(self, protocol: str, f: int, **overrides) -> Summary:
        """Average ``repetitions`` seeded runs of one (protocol, f) cell."""
        runs = [
            self.run_once(protocol, f, seed=self.base_seed + rep, **overrides)
            for rep in range(self.repetitions)
        ]
        return summarize_runs(runs)

    def sweep(
        self, protocols: list[str], thresholds: list[int], jobs: int = 1
    ) -> dict[tuple[str, int], Summary]:
        """The full grid a throughput/latency figure needs.

        ``jobs > 1`` shards repetitions across worker processes (0 means
        one per core); the merged summaries are identical to ``jobs=1``.
        """
        from repro.bench.parallel import run_cells

        cells = [(protocol, f) for protocol in protocols for f in thresholds]
        return run_cells(self, cells, jobs=jobs)
