#!/usr/bin/env python3
"""Run the full experiment grid and dump results for EXPERIMENTS.md.

Runs Figs 6a/6b/7a/7b at the paper's fault thresholds, Fig 8 at N = 61,
Fig 9's saturation sweep and the Table 1 cross-check, then writes a JSON
blob to ``results/full_results.json``.

``--jobs N`` shards the Fig 6/7/8 grids across N worker processes
(``--jobs 0`` uses every core).  Cell values are byte-identical to a
sequential ``--jobs 1`` run: every cell is a deterministic function of
its seed and results are merged in the sequential order.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

from repro.analysis.metrics import latency_decrease_percent, throughput_increase_percent
from repro.bench.experiments import fig6, fig7, fig8, fig9, table1_experiment

THRESHOLDS = [1, 2, 4, 10, 20, 30, 40]


def grid_to_json(report):
    out = {}
    for (protocol, f), cell in report.data["grid"].items():
        out[f"{protocol}|{f}"] = {
            "N": cell.num_replicas,
            "tput_kops": round(cell.throughput_kops, 3),
            "lat_ms": round(cell.latency_ms, 2),
        }
    return {"cells": out, "notes": report.notes}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the grids (0 = one per core, default 1)",
    )
    parser.add_argument(
        "--out", default=None,
        help="output path (default: results/full_results.json)",
    )
    args = parser.parse_args()
    t0 = time.time()
    results = {}

    print("Table 1...", flush=True)
    t1 = table1_experiment(f=2, views_per_run=8)
    results["table1"] = {k: round(v, 1) for k, v in t1.data["measured"].items()}

    for name, fn, payload in [
        ("fig6a", fig6, 256),
        ("fig6b", fig6, 0),
        ("fig7a", fig7, 256),
        ("fig7b", fig7, 0),
    ]:
        print(f"{name} (payload {payload}B)...", flush=True)
        report = fn(
            payload_bytes=payload,
            thresholds=THRESHOLDS,
            views_per_run=8,
            repetitions=2,
            jobs=args.jobs,
        )
        results[name] = grid_to_json(report)

    print("fig8 (N=61)...", flush=True)
    f8 = fig8(views_per_run=6, repetitions=1, jobs=args.jobs)
    fig8_out = {}
    for fig_name, cells in f8.data.items():
        row = {}
        for protocol, baseline in [
            ("damysus-c", "hotstuff"),
            ("damysus-a", "hotstuff"),
            ("damysus", "hotstuff"),
            ("chained-damysus", "chained-hotstuff"),
        ]:
            tput = throughput_increase_percent(
                cells[protocol].throughput_kops, cells[baseline].throughput_kops
            )
            lat = latency_decrease_percent(
                cells[protocol].latency_ms, cells[baseline].latency_ms
            )
            row[protocol] = f"{tput:+.1f}%/{lat:+.1f}%"
        fig8_out[fig_name] = row
    results["fig8"] = fig8_out

    print("fig9 (saturation)...", flush=True)
    f9 = fig9(
        intervals_ms=[4.0, 1.0, 0.4, 0.2, 0.1],
        num_clients=6,
        duration_ms=1_200.0,
    )
    fig9_out = {}
    for (protocol, interval), cell in f9.data.items():
        fig9_out[f"{protocol}|{interval}"] = {
            "achieved_kops": round(cell["achieved_kops"], 2),
            "latency_ms": round(cell["latency_ms"], 1),
        }
    results["fig9"] = fig9_out

    # Wall time is the one non-deterministic number; keep it out of the
    # results file so regeneration is byte-identical under a fixed seed.
    wall_seconds = round(time.time() - t0, 1)
    if args.out:
        out_path = pathlib.Path(args.out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
    else:
        out_dir = pathlib.Path(__file__).resolve().parent.parent / "results"
        out_dir.mkdir(exist_ok=True)
        out_path = out_dir / "full_results.json"
    out_path.write_text(json.dumps(results, indent=2))
    print(f"wrote {out_path} after {wall_seconds}s")


if __name__ == "__main__":
    main()
