#!/usr/bin/env python3
"""Client-driven saturation sweep (a miniature of Fig 9).

Clients submit transactions to all replicas at increasing rates;
throughput and latency are measured client-side (first reply).  The
output shows each protocol's saturation knee - the offered load beyond
which throughput stops growing and latency explodes.
"""

from repro.bench.experiments import fig9


def main() -> None:
    report = fig9(
        intervals_ms=[4.0, 1.0, 0.4, 0.2],
        num_clients=4,
        duration_ms=1_000.0,
        protocols=["hotstuff", "damysus", "chained-hotstuff", "chained-damysus"],
    )
    print(report.render())
    print()
    best = {}
    for (protocol, _), cell in report.data.items():
        best[protocol] = max(best.get(protocol, 0.0), cell["achieved_kops"])
    print("saturation throughput (Kops/s):")
    for protocol, kops in sorted(best.items(), key=lambda kv: kv[1]):
        print(f"  {protocol:18s} {kops:6.2f}")


if __name__ == "__main__":
    main()
