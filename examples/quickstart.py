#!/usr/bin/env python3
"""Quickstart: run Damysus on a simulated 4-region EU deployment.

Builds a 2f+1 = 3 replica Damysus system (f = 1), each replica equipped
with Checker and Accumulator trusted components, commits ten blocks of
400 transactions and prints throughput, latency and message statistics.
"""

from repro import ConsensusSystem, SystemConfig


def main() -> None:
    config = SystemConfig(
        protocol="damysus",
        f=1,
        payload_bytes=256,  # paper's larger workload
        block_size=400,
        seed=7,
    )
    system = ConsensusSystem(config)
    result = system.run_until_views(10)

    print("DAMYSUS quickstart")
    print("=" * 48)
    print(f"replicas            : {result.num_replicas} (tolerating f={result.f})")
    print(f"committed blocks    : {result.committed_blocks}")
    print(f"virtual duration    : {result.duration_ms:.0f} ms")
    print(f"throughput          : {result.throughput_kops:.2f} Kops/s")
    print(f"mean commit latency : {result.mean_latency_ms:.1f} ms")
    print(f"messages sent       : {result.messages_sent}")
    print(f"bytes on the wire   : {result.bytes_sent / 1e6:.2f} MB")
    print(f"safety              : {'OK' if result.safe else 'VIOLATED'}")

    print()
    print("executed chain (replica 0):")
    for block in system.replicas[0].ledger.executed:
        print(
            f"  view {block.view:>2}  {block.hash.hex()[:16]}  "
            f"{block.num_transactions()} txs"
        )

    # Every replica's checker now stores the latest prepared block.
    checker = system.replicas[0].checker
    print()
    print(
        f"replica 0 checker: prepared view {checker.prepared_view}, "
        f"hash {checker.prepared_hash.hex()[:16]}"
    )


if __name__ == "__main__":
    main()
