#!/usr/bin/env python3
"""Byzantine behaviour showcase: why the trusted components matter.

Part 1 replays the paper's Section 4 counter-example: a 2f+1 streamlined
protocol equipped only with TrInc-style trusted counters loses safety -
node k executes a block conflicting with what node j already executed,
even though every certificate k verified was genuine.

Part 2 replays the same attack against Damysus's Checker + Accumulator
and shows each avenue is refused by the trusted components.

Part 3 runs live Damysus deployments with equivocating and stale-leader
adversaries and shows consensus stays safe and live.
"""

from repro.adversary import (
    EquivocatingDamysusLeader,
    EquivocatingHotStuffLeader,
    StaleDamysusLeader,
)
from repro.analysis import run_checker_scenario, run_counter_scenario
from repro.config import SystemConfig
from repro.costs import CostModel
from repro.runtime.sim import ConsensusSystem


def banner(title: str) -> None:
    print()
    print("=" * 64)
    print(title)
    print("=" * 64)


def main() -> None:
    banner("Part 1: plain trusted counters are NOT enough (Section 4.1)")
    result = run_counter_scenario()
    print(result.describe())

    banner("Part 2: the same attack against Checker + Accumulator")
    result = run_checker_scenario()
    print(result.describe())
    print(f"(trusted components refused {result.refusals} attack attempts)")

    banner("Part 3: live adversaries against full protocol runs")
    scenarios = [
        ("hotstuff", EquivocatingHotStuffLeader, "equivocating leader"),
        ("damysus", EquivocatingDamysusLeader, "equivocating leader"),
        ("damysus", StaleDamysusLeader, "stale (understating) leader"),
    ]
    for protocol, adversary, label in scenarios:
        config = SystemConfig(
            protocol=protocol,
            f=1,
            payload_bytes=0,
            block_size=10,
            timeout_ms=300,
            costs=CostModel.zero(),
        )
        system = ConsensusSystem(config, replica_overrides={1: adversary})
        outcome = system.run_until_views(5, max_time_ms=120_000)
        print(
            f"{protocol:10s} + {label:28s} -> "
            f"{outcome.committed_blocks} blocks committed, "
            f"safety {'OK' if outcome.safe else 'VIOLATED'}"
        )


if __name__ == "__main__":
    main()
