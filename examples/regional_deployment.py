#!/usr/bin/env python3
"""Compare all six protocols on the paper's two deployments.

A miniature of Figures 6 and 7: runs basic/chained HotStuff, Damysus-C,
Damysus-A, Damysus and Chained-Damysus across EU (4 regions) and
world-wide (11 regions) simulated deployments, and prints the
throughput/latency table with the improvement summary the paper reports.
"""

from repro.bench.experiments import fig6, fig7


def main() -> None:
    print("Running the EU deployment (Fig 6a, 256 B payloads)...")
    eu = fig6(payload_bytes=256, thresholds=[1, 4, 10], views_per_run=6, repetitions=1)
    print()
    print(eu.render())

    print()
    print("Running the world-wide deployment (Fig 7a, 256 B payloads)...")
    world = fig7(
        payload_bytes=256, thresholds=[1, 4, 10], views_per_run=6, repetitions=1
    )
    print()
    print(world.render())

    print()
    print("Paper reference (averages): EU 256B -> Damysus +87.5% tput / -45% lat;")
    print("world 256B -> Damysus +61.6% tput / -36.6% lat vs basic HotStuff.")


if __name__ == "__main__":
    main()
