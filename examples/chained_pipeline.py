#!/usr/bin/env python3
"""Chained-Damysus pipelining in action.

Runs Chained-Damysus and chained HotStuff side by side and prints a
per-view timeline showing how blocks are proposed every view while
earlier blocks are still being certified - and why Chained-Damysus
executes a block after a chain of 3 (one view earlier than chained
HotStuff's 4).
"""

from repro.config import SystemConfig
from repro.runtime.sim import ConsensusSystem


def run(protocol: str):
    config = SystemConfig(
        protocol=protocol,
        f=1,
        payload_bytes=0,
        block_size=100,
        seed=3,
    )
    system = ConsensusSystem(config)
    result = system.run_until_views(8)
    return system, result


def timeline(system) -> dict[int, tuple[float, float]]:
    """view -> (proposed_at, first_executed_at)."""
    out: dict[int, list[float]] = {}
    for rec in system.monitor.executions:
        out.setdefault(rec.view, []).append(rec.executed_at)
    replica = system.replicas[0]
    table = {}
    for view, times in sorted(out.items()):
        blocks = [b for b in replica.ledger.executed if b.view == view]
        if blocks:
            table[view] = (blocks[0].created_at, min(times))
    return table


def main() -> None:
    for protocol in ("chained-hotstuff", "chained-damysus"):
        system, result = run(protocol)
        print()
        print(f"== {protocol} ==")
        print(
            f"{result.committed_blocks} blocks in {result.duration_ms:.0f} ms "
            f"-> {result.throughput_kops:.2f} Kops/s, "
            f"latency {result.mean_latency_ms:.1f} ms"
        )
        print("view  proposed(ms)  executed(ms)  in-flight views")
        for view, (proposed, executed) in timeline(system).items():
            span = executed - proposed
            print(f"{view:>4}  {proposed:>10.1f}  {executed:>11.1f}  (~{span:.0f} ms pipeline)")
    print()
    print(
        "Chained-Damysus executes each block roughly one view earlier: "
        "its pipeline needs 3 consecutive blocks instead of 4 (Section 7.1)."
    )


if __name__ == "__main__":
    main()
