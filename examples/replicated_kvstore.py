#!/usr/bin/env python3
"""State machine replication: a fault-tolerant key-value store on Damysus.

Submits a mixed PUT/INCREMENT/DELETE workload through consensus while a
Byzantine leader equivocates, then replays every replica's log and shows
all state machines converged to the same digest - the application-level
payoff of consensus safety.
"""

from repro.adversary import EquivocatingDamysusLeader
from repro.app import KVCommand, attach_state_machines
from repro.app.kvstore import OP_DELETE, OP_INCREMENT, OP_PUT
from repro.config import SystemConfig
from repro.costs import CostModel
from repro.runtime.sim import ConsensusSystem


def main() -> None:
    config = SystemConfig(
        protocol="damysus",
        f=1,
        payload_bytes=0,
        block_size=8,
        seed=21,
        timeout_ms=300,
        costs=CostModel.zero(),
    )
    system = ConsensusSystem(config, replica_overrides={1: EquivocatingDamysusLeader})
    app = attach_state_machines(system)

    workload = [
        KVCommand(OP_PUT, "user:1", "ada", seq=0),
        KVCommand(OP_PUT, "user:2", "grace", seq=1),
        KVCommand(OP_INCREMENT, "logins", seq=2),
        KVCommand(OP_INCREMENT, "logins", seq=3),
        KVCommand(OP_PUT, "user:1", "ada lovelace", seq=4),
        KVCommand(OP_INCREMENT, "logins", seq=5),
        KVCommand(OP_DELETE, "user:2", seq=6),
    ]
    for command in workload:
        app.submit_everywhere(command)

    result = system.run_until_views(6, max_time_ms=300_000)
    print(f"{result.committed_blocks} blocks committed "
          f"(Byzantine leader at replica 1, safety {'OK' if result.safe else 'BROKEN'})")

    digest = app.verify_convergence()
    print(f"all replicas converged; state digest {digest.hex()[:16]}")

    machine, results = app.replay(system.replicas[0])
    print()
    print("command log as executed:")
    for entry in results:
        outcome = entry.value if entry.value is not None else ("ok" if entry.ok else "miss")
        print(f"  {entry.command.op:5s} {entry.command.key:10s} -> {outcome}")
    print()
    print(f"final state: user:1={machine.get('user:1')!r}, "
          f"user:2={machine.get('user:2')!r}, logins={machine.get('logins')}")


if __name__ == "__main__":
    main()
