#!/usr/bin/env python3
"""Chaos run: Damysus under loss, a partition, and crash/recovery.

The standard chaos plan drops 20% of all messages, cuts the first f
replicas off behind a symmetric partition mid-run, and crash/recovers
the trailing f replicas - sealing their Checker state through the
trusted sealing service and unsealing it on recovery.  The harness
asserts safety throughout and liveness after every fault heals.

Everything is driven by seeded RNG streams, so the run below is fully
replayable: the second invocation with the same seed must produce a
bit-identical report.
"""

from repro.analysis import run_standard_chaos


def main() -> None:
    print("Damysus under the standard chaos plan (seed 7)")
    print("=" * 64)
    report = run_standard_chaos("damysus", f=1, seed=7)
    print(report.describe())
    assert report.ok, "chaos run must stay safe and regain liveness"

    print()
    print("Replaying with the same seed ...")
    replay = run_standard_chaos("damysus", f=1, seed=7)
    assert replay == report, "same seed must reproduce the identical report"
    print("replay is bit-identical: chaos runs are deterministic per seed")


if __name__ == "__main__":
    main()
