"""Socket-runtime catch-up: late starters rejoin via checkpoint transfer.

Real loopback TCP clusters (same machinery as ``test_asyncio_net``), with
one replica held back at start so the rest of the cluster commits and
compacts far past it - replaying from genesis is then impossible and the
late starter can only rejoin through a peer's certified checkpoint.  The
rolling state roots reported by the runtime are cross-checked pairwise
and against the simulator, closing the cross-runtime digest loop.
"""

import asyncio

from repro.config import SystemConfig
from repro.core.executor import fold_state_root
from repro.runtime.asyncio_net import run_local_cluster
from repro.runtime.sim import ConsensusSystem


def root_at(report, pid, height):
    """Recompute ``pid``'s rolling root at a retained height, else None."""
    base = report.base_heights[pid]
    if height < base or height > report.heights[pid]:
        return None
    root = bytes.fromhex(report.base_roots[pid])
    for block_hash in report.chains[pid][: height - base]:
        root = fold_state_root(root, bytes.fromhex(block_hash))
    return root.hex()


def test_late_starter_rejoins_via_checkpoint_on_sockets():
    report = asyncio.run(
        run_local_cluster(
            "damysus",
            4,
            seed=9,
            block_size=4,
            checkpoint_interval=5,
            start_delay_s={3: 2.0},
            duration_s=90.0,
            target_blocks=40,
        )
    )
    # The cluster only stops once *every* replica - the late starter
    # included - reaches the target height.
    assert min(report.heights.values()) >= 40
    # It got there by installing a certified checkpoint, not by replay:
    # the survivors compacted the genesis prefix long before it started.
    assert 3 in report.caught_up_pids
    assert report.base_heights[3] > 0
    assert len(report.chains[3]) < report.heights[3]
    # Digest equivalence at every mutually retained height: any two
    # replicas that can both recompute a root at some height agree on it
    # bit-for-bit - including the late starter, whose root derives from
    # the transferred checkpoint rather than local execution.
    checked = []
    pids = sorted(report.heights)
    for i, pid in enumerate(pids):
        for other in pids[i + 1 :]:
            height = min(report.heights[pid], report.heights[other])
            a, b = root_at(report, pid, height), root_at(report, other, height)
            if a is not None and b is not None:
                assert a == b, f"state roots diverge at height {height}"
                checked.append((pid, other))
    assert any(3 in pair for pair in checked)


def test_cross_runtime_checkpoint_digest_equivalence():
    """Simulator and socket runtime certify identical rolling roots.

    Same seed and sizing on both runtimes commits the same block chain
    (pinned by ``test_cross_runtime_equivalence_same_block_hashes``);
    with checkpointing on, the rolling roots are folds of that chain, so
    any height both runtimes still retain must carry the same root.
    """
    # The sim side keeps the full log (no compaction) and runs well past
    # the net frontier, so it can recompute the root at *any* height the
    # net side reports - including the certified compaction horizon.
    config = SystemConfig(
        protocol="damysus", f=1, payload_bytes=64, block_size=8, seed=7
    )
    system = ConsensusSystem(config)
    system.run_until_views(20, max_time_ms=240_000)
    sim_ledger = system.replicas[0].ledger

    report = asyncio.run(
        run_local_cluster(
            "damysus",
            system.num_replicas,
            seed=7,
            payload_bytes=64,
            block_size=8,
            checkpoint_interval=4,
            duration_s=30.0,
            target_blocks=6,
        )
    )
    assert report.base_heights[0] > 0  # the net side really checkpointed
    assert sim_ledger.height() >= report.heights[0]
    # The certified horizon root and the tip root both match the sim's
    # full-log fold bit-for-bit.
    for h in (report.base_heights[0], report.heights[0]):
        sim_root = sim_ledger.state_root_at(h)
        net_root = root_at(report, 0, h)
        assert sim_root is not None and net_root is not None
        assert sim_root.hex() == net_root
