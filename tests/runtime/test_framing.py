"""Tests for the length-prefixed framing layer (pure, no sockets)."""

import pytest

from repro.runtime.framing import (
    FrameDecoder,
    FramingError,
    decode_hello,
    encode_frame,
    encode_hello,
)


def test_round_trip_single_frame():
    decoder = FrameDecoder()
    assert decoder.feed(encode_frame(b"hello")) == [b"hello"]
    assert decoder.pending_bytes == 0


def test_round_trip_many_frames_in_one_read():
    payloads = [b"", b"a", b"bb" * 100, bytes(range(256))]
    blob = b"".join(encode_frame(p) for p in payloads)
    assert FrameDecoder().feed(blob) == payloads


def test_byte_at_a_time_reassembly():
    decoder = FrameDecoder()
    frames = []
    for byte in encode_frame(b"dripfeed"):
        frames.extend(decoder.feed(bytes([byte])))
    assert frames == [b"dripfeed"]
    assert decoder.pending_bytes == 0


def test_split_across_arbitrary_boundaries():
    blob = encode_frame(b"first") + encode_frame(b"second")
    for cut in range(1, len(blob)):
        decoder = FrameDecoder()
        frames = decoder.feed(blob[:cut]) + decoder.feed(blob[cut:])
        assert frames == [b"first", b"second"], f"failed at cut {cut}"


def test_oversized_announcement_rejected():
    decoder = FrameDecoder(max_frame_bytes=16)
    with pytest.raises(FramingError):
        decoder.feed(encode_frame(b"x" * 17))


def test_oversized_encode_rejected():
    from repro.runtime.framing import MAX_FRAME_BYTES

    with pytest.raises(FramingError):
        encode_frame(b"x" * (MAX_FRAME_BYTES + 1))


def test_hello_round_trip():
    decoder = FrameDecoder()
    (frame,) = decoder.feed(encode_hello(42))
    assert decode_hello(frame) == 42


def test_bad_hello_rejected():
    with pytest.raises(FramingError):
        decode_hello(b"not a hello at all")
    with pytest.raises(FramingError):
        decode_hello(b"")


def test_pending_bytes_tracks_partial_frame():
    decoder = FrameDecoder()
    partial = encode_frame(b"abcdef")[:-2]
    assert decoder.feed(partial) == []
    assert decoder.pending_bytes == len(partial)


# -- hostile input: malformed hellos ----------------------------------------


def test_hello_wrong_magic_names_the_reason():
    with pytest.raises(FramingError, match="wrong magic"):
        decode_hello(b"xepro-hello\x00" + b"\x01\x00\x00\x00")


def test_hello_truncated_before_pid():
    from repro.runtime.framing import HELLO_MAGIC

    with pytest.raises(FramingError, match="truncated"):
        decode_hello(HELLO_MAGIC + b"\x01\x02")


def test_hello_trailing_bytes_rejected():
    with pytest.raises(FramingError, match="trailing"):
        decode_hello(encode_hello(3)[4:] + b"junk")


def test_hello_oversized_pid_rejected():
    from repro.core.codec import WIRE_VERSION
    from repro.runtime.framing import HELLO_MAGIC, MAX_HELLO_PID
    import struct

    version = struct.pack("<I", WIRE_VERSION)
    payload = HELLO_MAGIC + struct.pack("<I", MAX_HELLO_PID + 1) + version
    with pytest.raises(FramingError, match="exceeds"):
        decode_hello(payload)
    # The bound itself is admitted.
    bounded = HELLO_MAGIC + struct.pack("<I", MAX_HELLO_PID) + version
    assert decode_hello(bounded) == MAX_HELLO_PID


def test_hello_version_1_peer_rejected():
    """The pre-version hello layout (magic + pid) is refused by name."""
    from repro.runtime.framing import HELLO_MAGIC
    import struct

    with pytest.raises(FramingError, match="wire version 1"):
        decode_hello(HELLO_MAGIC + struct.pack("<I", 3))


def test_hello_mismatched_version_rejected():
    from repro.core.codec import WIRE_VERSION
    from repro.runtime.framing import HELLO_MAGIC
    import struct

    payload = HELLO_MAGIC + struct.pack("<I", 3) + struct.pack("<I", WIRE_VERSION + 1)
    with pytest.raises(FramingError, match="wire version"):
        decode_hello(payload)


def test_poisoned_decoder_stays_rejected():
    decoder = FrameDecoder(max_frame_bytes=8)
    with pytest.raises(FramingError):
        decoder.feed(encode_frame(b"x" * 9))
    # Even innocent bytes are refused: the stream's boundaries are gone.
    with pytest.raises(FramingError, match="already rejected"):
        decoder.feed(encode_frame(b"ok"))


# -- decoder fuzz: seeded random chunking and garbage -----------------------


def test_fuzz_random_chunk_boundaries_never_corrupt_frames():
    """Any chunking of a valid stream yields exactly the original frames."""
    from repro.core.rng import RngStream

    rng = RngStream(1234, "framing-fuzz:chunks")
    payloads = [bytes([rng.randint(0, 255)] * rng.randint(0, 300)) for _ in range(40)]
    blob = b"".join(encode_frame(p) for p in payloads)
    for _ in range(25):
        decoder = FrameDecoder()
        out = []
        index = 0
        while index < len(blob):
            step = rng.randint(1, 97)
            out.extend(decoder.feed(blob[index : index + step]))
            index += step
        assert out == payloads
        assert decoder.pending_bytes == 0


def test_fuzz_garbage_streams_never_yield_oversized_buffers():
    """Random garbage either parses as small frames or poisons the decoder.

    Whatever bytes a hostile peer sends, the decoder must never buffer
    more than one length prefix + cap worth of data - the memory-bound
    guarantee behind the max-frame-size disconnect.
    """
    from repro.core.rng import RngStream

    rng = RngStream(99, "framing-fuzz:garbage")
    cap = 1024
    for round_no in range(50):
        decoder = FrameDecoder(max_frame_bytes=cap)
        try:
            for _ in range(20):
                chunk = bytes(rng.randint(0, 255) for _ in range(rng.randint(1, 200)))
                for frame in decoder.feed(chunk):
                    assert len(frame) <= cap
                assert decoder.pending_bytes <= cap + 4
        except FramingError:
            # Poisoned: every further feed must keep refusing.
            with pytest.raises(FramingError):
                decoder.feed(b"\x00")
