"""Tests for the length-prefixed framing layer (pure, no sockets)."""

import pytest

from repro.runtime.framing import (
    FrameDecoder,
    FramingError,
    decode_hello,
    encode_frame,
    encode_hello,
)


def test_round_trip_single_frame():
    decoder = FrameDecoder()
    assert decoder.feed(encode_frame(b"hello")) == [b"hello"]
    assert decoder.pending_bytes == 0


def test_round_trip_many_frames_in_one_read():
    payloads = [b"", b"a", b"bb" * 100, bytes(range(256))]
    blob = b"".join(encode_frame(p) for p in payloads)
    assert FrameDecoder().feed(blob) == payloads


def test_byte_at_a_time_reassembly():
    decoder = FrameDecoder()
    frames = []
    for byte in encode_frame(b"dripfeed"):
        frames.extend(decoder.feed(bytes([byte])))
    assert frames == [b"dripfeed"]
    assert decoder.pending_bytes == 0


def test_split_across_arbitrary_boundaries():
    blob = encode_frame(b"first") + encode_frame(b"second")
    for cut in range(1, len(blob)):
        decoder = FrameDecoder()
        frames = decoder.feed(blob[:cut]) + decoder.feed(blob[cut:])
        assert frames == [b"first", b"second"], f"failed at cut {cut}"


def test_oversized_announcement_rejected():
    decoder = FrameDecoder(max_frame_bytes=16)
    with pytest.raises(FramingError):
        decoder.feed(encode_frame(b"x" * 17))


def test_oversized_encode_rejected():
    from repro.runtime.framing import MAX_FRAME_BYTES

    with pytest.raises(FramingError):
        encode_frame(b"x" * (MAX_FRAME_BYTES + 1))


def test_hello_round_trip():
    decoder = FrameDecoder()
    (frame,) = decoder.feed(encode_hello(42))
    assert decode_hello(frame) == 42


def test_bad_hello_rejected():
    with pytest.raises(FramingError):
        decode_hello(b"not a hello at all")
    with pytest.raises(FramingError):
        decode_hello(b"")


def test_pending_bytes_tracks_partial_frame():
    decoder = FrameDecoder()
    partial = encode_frame(b"abcdef")[:-2]
    assert decoder.feed(partial) == []
    assert decoder.pending_bytes == len(partial)
