"""Tests for the asyncio TCP runtime: loopback clusters on real sockets.

These run actual ``asyncio.start_server`` listeners on ephemeral
localhost ports, so they double as the CI smoke test for the network
stack.  Durations are generous upper bounds - a healthy cluster commits
its first block within milliseconds and every run stops early via
``target_blocks``.
"""

import asyncio

import pytest

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.runtime.asyncio_net import (
    AsyncioRuntime,
    _sized_quorum,
    build_machine,
    run_local_cluster,
)
from repro.runtime.sim import ConsensusSystem
from repro.protocols.registry import get_spec


def test_smoke_damysus_n4_commits_a_block():
    """The CI acceptance gate: n=4 Damysus commits >= 1 block in 30 s."""
    report = asyncio.run(
        run_local_cluster("damysus", 4, duration_s=30.0, target_blocks=1)
    )
    assert report.committed_blocks >= 1
    assert report.committed_txs > 0
    assert report.tx_per_s > 0


def test_replicas_agree_on_the_committed_chain():
    report = asyncio.run(
        run_local_cluster("damysus", 4, duration_s=30.0, target_blocks=3)
    )
    chains = list(report.chains.values())
    prefix = min(len(chain) for chain in chains)
    assert prefix >= 3
    for chain in chains[1:]:
        assert chain[:prefix] == chains[0][:prefix]


def test_cross_runtime_equivalence_same_block_hashes():
    """The same Damysus scenario commits the same blocks on both runtimes.

    Block identity covers parent linkage, view numbers and every
    transaction payload, so chain-prefix equality means the simulator
    and the socket runtime drove the protocol through identical
    decisions - the sans-I/O core is genuinely host-independent.
    """
    config = SystemConfig(
        protocol="damysus", f=1, payload_bytes=64, block_size=8, seed=7
    )
    system = ConsensusSystem(config)
    system.run_until_views(5, max_time_ms=120_000)
    sim_chain = [block.hash.hex() for block in system.replicas[0].ledger.executed]
    assert len(sim_chain) >= 4

    report = asyncio.run(
        run_local_cluster(
            "damysus",
            system.num_replicas,
            seed=7,
            payload_bytes=64,
            block_size=8,
            duration_s=30.0,
            target_blocks=5,
        )
    )
    net_chain = report.chains[0]
    prefix = min(len(sim_chain), len(net_chain), 4)
    assert prefix >= 4
    assert sim_chain[:prefix] == net_chain[:prefix]


@pytest.mark.parametrize("protocol", ["hotstuff", "chained-damysus"])
def test_other_protocols_commit_on_sockets(protocol):
    report = asyncio.run(
        run_local_cluster(protocol, 4, duration_s=30.0, target_blocks=1)
    )
    assert report.committed_blocks >= 1


def test_sized_quorum_tracks_extra_replicas():
    spec = get_spec("damysus")  # N = 2f+1, quorum = f+1
    assert _sized_quorum(spec, 3) == (1, 2)
    assert _sized_quorum(spec, 4) == (1, 3)  # one extra replica -> +1 quorum
    assert _sized_quorum(spec, 5) == (2, 3)


def test_sized_quorum_rejects_tiny_clusters():
    with pytest.raises(ConfigError):
        _sized_quorum(get_spec("hotstuff"), 3)  # 3f+1 needs n >= 4


def test_concurrent_close_is_safe():
    """Regression: ``close()`` used to read task/server registries, await
    the gather, then clear them - so a concurrent ``close()`` (or a reader
    registered during the gather) raced the stale teardown.  Both callers
    must now complete and leave no server or tracked tasks behind.
    """

    async def scenario():
        runtime = AsyncioRuntime(build_machine("damysus", 0, 4, _FixedClock()))
        host, port = await runtime.start_server()
        reader, writer = await asyncio.open_connection(host, port)
        await asyncio.sleep(0.05)  # let the server register its reader task
        await asyncio.gather(runtime.close(), runtime.close())
        assert runtime._server is None
        assert runtime._sender_tasks == {}
        assert runtime._reader_tasks == set()
        writer.close()
        return True

    assert asyncio.run(scenario())


def test_close_is_reentrant_after_completion():
    async def scenario():
        runtime = AsyncioRuntime(build_machine("damysus", 0, 4, _FixedClock()))
        await runtime.start_server()
        await runtime.close()
        await runtime.close()  # second teardown finds nothing left
        return runtime._server is None

    assert asyncio.run(scenario())


def test_build_machine_registers_all_peer_identities():
    machine = build_machine("damysus", 0, 4, _FixedClock())
    for peer in range(4):
        assert machine.directory.kind_of(peer) == "replica"
        assert machine.directory.kind_of(1_000_000 + peer) == "tee"


class _FixedClock:
    now = 0.0
