"""Adversaries on real sockets: the zoo is runtime-independent.

The Byzantine replicas are sans-I/O Machines, so the exact class that
attacks the simulator also attacks the asyncio TCP runtime.  These tests
run actual loopback clusters (like ``test_asyncio_net``) and double as
the CI demonstration that attacks work over real TCP.
"""

import asyncio

import pytest

from repro.adversary import get_adversary
from repro.adversary.equivocation import EquivocatingDamysusLeader
from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.runtime.asyncio_net import build_machine, run_local_cluster
from repro.runtime.resilience.supervisor import ReplicaProcessSpec
from repro.runtime.sim import ConsensusSystem


def test_cross_runtime_equivalence_under_equivocation():
    """Same attack, same honest outcome on the simulator and on sockets.

    An equivocating Damysus leader at pid 1 is hard-refused by its own
    Checker on both runtimes, so the honest replicas commit the same
    chain either way.  Block hashes cover parentage, views and payloads,
    so prefix equality means the two hosts drove identical decisions.
    """
    config = SystemConfig(
        protocol="damysus", f=1, payload_bytes=64, block_size=8, seed=7
    )
    system = ConsensusSystem(
        config, replica_overrides={1: EquivocatingDamysusLeader}
    )
    result = system.run_until_views(5, max_time_ms=120_000)
    assert result.safe
    sim_chain = [block.hash.hex() for block in system.replicas[0].ledger.executed]
    assert len(sim_chain) >= 4

    report = asyncio.run(
        run_local_cluster(
            "damysus",
            system.num_replicas,
            seed=7,
            payload_bytes=64,
            block_size=8,
            duration_s=30.0,
            target_blocks=5,
            replica_overrides={1: EquivocatingDamysusLeader},
        )
    )
    honest = {pid: chain for pid, chain in report.chains.items() if pid != 1}
    for pid, net_chain in honest.items():
        prefix = min(len(sim_chain), len(net_chain), 4)
        assert prefix >= 4, pid
        assert sim_chain[:prefix] == net_chain[:prefix], pid


def test_named_adversary_on_sockets_commits():
    """``adversary=`` seats the registry attack; honest liveness holds."""
    report = asyncio.run(
        run_local_cluster(
            "damysus",
            4,
            duration_s=30.0,
            target_blocks=2,
            timeout_ms=1_000.0,
            adversary="silent",
        )
    )
    assert report.committed_blocks >= 2
    honest = [chain for pid, chain in report.chains.items() if pid != 1]
    prefix = min(len(chain) for chain in honest)
    assert prefix >= 2
    for chain in honest[1:]:
        assert chain[:prefix] == honest[0][:prefix]


def test_unknown_adversary_fails_fast():
    with pytest.raises(ConfigError, match="unknown adversary"):
        asyncio.run(run_local_cluster("damysus", 4, adversary="nope"))


def test_build_machine_accepts_a_replica_class_override():
    class _FixedClock:
        now = 0.0

    machine = build_machine(
        "damysus", 1, 4, _FixedClock(), replica_class=EquivocatingDamysusLeader
    )
    assert isinstance(machine, EquivocatingDamysusLeader)
    honest = build_machine("damysus", 0, 4, _FixedClock())
    assert not isinstance(honest, EquivocatingDamysusLeader)


def test_adversary_seats_resolve_like_the_simulator():
    """The socket runtime seats a named attack at the registry's pids."""
    spec = get_adversary("withhold")
    assert spec.seats(4, 1) == (1,)  # what run_local_cluster installs


def test_process_spec_argv_carries_adversary_flags():
    spec = ReplicaProcessSpec(
        pid=1,
        protocol="damysus",
        n=4,
        base_port=7000,
        max_timeout_ms=4_000.0,
        timeout_jitter=0.1,
        adversary="equivocate",
    )
    argv = spec.argv()
    assert argv[argv.index("--max-timeout-ms") + 1] == "4000.0"
    assert argv[argv.index("--timeout-jitter") + 1] == "0.1"
    assert argv[argv.index("--adversary") + 1] == "equivocate"


def test_process_spec_argv_omits_defaults():
    argv = ReplicaProcessSpec(pid=0, protocol="damysus", n=4, base_port=7000).argv()
    assert "--adversary" not in argv
    assert "--max-timeout-ms" not in argv
    assert "--timeout-jitter" not in argv
