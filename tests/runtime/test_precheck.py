"""Off-event-loop signature pre-checking.

Two properties keep it sound:

1. ``signature_checks`` must attribute the payload the protocol will
   later verify to each signature - pairs built from validly-signed
   components must all verify, and genesis / threshold-group signatures
   must be excluded.
2. A cluster running with a verify pool must commit the *same chain* as
   one without: priming the memo from worker outcomes cannot change any
   protocol decision.
"""

import asyncio

import pytest

from repro.crypto.hmac_scheme import HmacScheme
from repro.crypto.scheme import Signature
from repro.crypto.threshold import GROUP_SIGNER_ID, THRESHOLD_TAG
from repro.core.block import create_chain, create_leaf, genesis_block
from repro.core.certificate import Accumulator, QuorumCert, genesis_qc, vote_payload
from repro.core.commitment import Commitment
from repro.core.mempool import Transaction
from repro.core.messages import (
    BlockProposal,
    BlockRequest,
    ClientRequest,
    CommitmentMsg,
    NewViewAMsg,
    NewViewMsg,
    ProposalMsg,
    QCMsg,
    VoteMsg,
)
from repro.core.phases import Phase
from repro.runtime.asyncio_net import run_local_cluster
from repro.runtime.precheck import signature_checks
from repro.tee.accumulator import new_view_a_payload


@pytest.fixture
def scheme():
    s = HmacScheme(secret=b"precheck-test")
    for signer in range(4):
        s.keygen(signer)
    return s


def make_qc(scheme, view=4, block_hash=b"\x01" * 32, phase=Phase.PREPARE):
    payload = vote_payload(view, phase, block_hash)
    sigs = tuple(scheme.sign(signer, payload) for signer in range(3))
    return QuorumCert(view, block_hash, phase, sigs)


def make_commitment(scheme, view=6):
    phi = Commitment(b"\x03" * 32, view, b"\x04" * 32, view - 1, Phase.PREPARE, ())
    sig = scheme.sign(2, phi.signed_payload())
    return Commitment(phi.h_prep, phi.v_prep, phi.h_just, phi.v_just, phi.phase, (sig,))


def tx(i=1):
    return Transaction(client_id=2, tx_id=i, payload_bytes=16, submitted_at=1.5)


def assert_all_verify(scheme, pairs):
    assert pairs, "expected at least one extractable pair"
    assert scheme.verify_many(pairs) == [True] * len(pairs)


# -- extraction correctness ---------------------------------------------------


def test_vote_pair_verifies(scheme):
    block_hash = b"\x05" * 32
    sig = scheme.sign(1, vote_payload(3, Phase.PRECOMMIT, block_hash))
    pairs = signature_checks(VoteMsg(3, Phase.PRECOMMIT, block_hash, sig))
    assert pairs == [(vote_payload(3, Phase.PRECOMMIT, block_hash), sig)]
    assert_all_verify(scheme, pairs)


def test_new_view_qc_pairs_verify(scheme):
    qc = make_qc(scheme)
    pairs = signature_checks(NewViewMsg(qc.view, qc))
    assert len(pairs) == 3
    assert_all_verify(scheme, pairs)


def test_genesis_qc_yields_no_pairs():
    qc = genesis_qc(genesis_block().hash)
    assert signature_checks(NewViewMsg(0, qc)) == []


def test_group_signatures_are_skipped(scheme):
    qc = make_qc(scheme)
    group = Signature(GROUP_SIGNER_ID, b"\x00" * 32, THRESHOLD_TAG)
    mixed = QuorumCert(qc.view, qc.block_hash, qc.phase, (*qc.sigs, group))
    pairs = signature_checks(QCMsg(qc.view, qc.phase, mixed))
    assert len(pairs) == 3
    assert all(sig is not group for _, sig in pairs)
    assert_all_verify(scheme, pairs)


def test_proposal_covers_justify_and_block(scheme):
    qc = make_qc(scheme)
    block = create_chain(qc, 2, (tx(),), created_at=3.25)
    pairs = signature_checks(ProposalMsg(qc.view + 1, block, qc))
    # justify appears once via the message field and once via the block.
    assert len(pairs) == 6
    assert_all_verify(scheme, pairs)


def test_new_view_a_report_pairs_verify(scheme):
    qc = make_qc(scheme)
    sender = scheme.sign(1, new_view_a_payload(5, qc))
    pairs = signature_checks(NewViewAMsg(5, qc, sender))
    assert len(pairs) == 4
    assert_all_verify(scheme, pairs)


def test_commitment_msg_pairs_verify(scheme):
    phi = make_commitment(scheme)
    pairs = signature_checks(CommitmentMsg(phi, "damysus-prep-vote"))
    assert len(pairs) == 1
    assert_all_verify(scheme, pairs)


def test_block_proposal_skips_leader_sig(scheme):
    unsigned = Accumulator(5, 3, b"\x02" * 32, Signature(3, b"", "hmac"), count=3)
    acc = Accumulator(5, 3, b"\x02" * 32, scheme.sign(3, unsigned.signed_payload()), count=3)
    g = genesis_block()
    block = create_leaf(g.hash, 2, (tx(),), created_at=3.25)
    leader_sig = Signature(0, b"\xab" * 32, "hmac")  # junk: must not be extracted
    pairs = signature_checks(BlockProposal(5, block, acc, leader_sig))
    assert all(sig is not leader_sig for _, sig in pairs)
    assert_all_verify(scheme, pairs)


def test_uncovered_types_yield_no_pairs():
    assert signature_checks(ClientRequest(2, tx())) == []
    assert signature_checks(BlockRequest(b"\x08" * 32)) == []
    assert signature_checks("not-a-message") == []


def test_wrong_attribution_would_be_caught(scheme):
    """Sanity: the verify-everything assertion above has teeth."""
    block_hash = b"\x05" * 32
    sig = scheme.sign(1, vote_payload(3, Phase.PRECOMMIT, block_hash))
    # Same signature claimed for a different view: must NOT verify.
    pairs = signature_checks(VoteMsg(4, Phase.PRECOMMIT, block_hash, sig))
    assert scheme.verify_many(pairs) == [False]


# -- end-to-end identity ------------------------------------------------------


def test_cluster_with_pool_commits_identical_chain():
    """verify_jobs=2 must change throughput only, never the chain."""
    baseline = asyncio.run(
        run_local_cluster("damysus", 4, seed=11, duration_s=30.0, target_blocks=2)
    )
    pooled = asyncio.run(
        run_local_cluster(
            "damysus", 4, seed=11, duration_s=30.0, target_blocks=2, verify_jobs=2
        )
    )
    assert pooled.prechecked_sigs > 0
    assert baseline.prechecked_sigs == 0
    prefix = min(
        min(len(c) for c in baseline.chains.values()),
        min(len(c) for c in pooled.chains.values()),
    )
    assert prefix >= 2
    for chain in list(baseline.chains.values()) + list(pooled.chains.values()):
        assert chain[:prefix] == baseline.chains[0][:prefix]
