"""Crash-recovery equivalence on durable sealed state (satellite of the
socket-resilience PR): a killed-and-restarted replica process must refuse
to re-sign a lower (view, phase) than its durable seal records, exactly
as the simulator's in-memory rollback tests establish.

These tests build real Damysus machines (via the socket runtime's
``build_machine``) but never open sockets: process death is modelled by
*discarding* the machine object - nothing volatile survives, only the
:class:`FileSealStore` files - and restart by building a fresh machine
from the same arguments and restoring through a fresh
:class:`DurableSealer`, just as ``repro serve --seal-dir`` does.
"""

import pytest

from repro.errors import TEERefusal
from repro.runtime.asyncio_net import WallClock, build_machine
from repro.runtime.resilience.durable import DurableSealer
from repro.tee.sealed import FileSealStore


def fresh_machine(pid=0, n=4, seed=11):
    return build_machine("damysus", pid, n, WallClock(), seed=seed)


def advance_checker(machine, signs):
    """Advance the trusted step by ``signs`` TEE signatures."""
    for _ in range(signs):
        machine.checker.tee_sign()


def test_roundtrip_restart_restores_the_step(tmp_path):
    store = FileSealStore(tmp_path)
    first = fresh_machine()
    advance_checker(first, 5)
    step_before = first.checker.step
    sealer = DurableSealer(first, store)
    assert sealer.maybe_seal()
    del first  # SIGKILL: volatile state gone, only the files remain

    reborn = fresh_machine()
    restored = DurableSealer(reborn, store).restore()
    assert restored
    assert reborn.checker.step == step_before
    assert reborn.view >= step_before.view


def test_maybe_seal_is_idempotent_per_step(tmp_path):
    store = FileSealStore(tmp_path)
    machine = fresh_machine()
    sealer = DurableSealer(machine, store)
    advance_checker(machine, 1)
    assert sealer.maybe_seal()
    assert not sealer.maybe_seal()  # same step: no new write
    advance_checker(machine, 1)
    assert sealer.maybe_seal()
    assert sealer.seal_writes == 2


def test_restart_refuses_rolled_back_snapshot(tmp_path):
    """The durable counter outlives a snapshot rollback.

    The host seals at step A, then at a higher step B, then 'restores'
    the old step-A snapshot file (a rollback attack on the file system).
    The durable counter record still names B's seal, so the fresh
    process must refuse to unseal A.
    """
    store = FileSealStore(tmp_path)
    machine = fresh_machine()
    sealer = DurableSealer(machine, store)
    advance_checker(machine, 2)
    assert sealer.maybe_seal()
    stale_snapshot = store.seal_path(machine.checker.component_id).read_bytes()
    advance_checker(machine, 3)
    assert sealer.maybe_seal()
    # Rollback: put the old snapshot back (counter file untouched).
    store.seal_path(machine.checker.component_id).write_bytes(stale_snapshot)
    del machine

    reborn = fresh_machine()
    with pytest.raises(TEERefusal, match="rollback"):
        DurableSealer(reborn, store).restore()


def test_restored_replica_cannot_resign_a_lower_step(tmp_path):
    """The socket-runtime mirror of the simulator's rollback tests: after
    restart, the trusted step equals the sealed step, so every further
    signature is for a strictly higher (view, phase)."""
    store = FileSealStore(tmp_path)
    machine = fresh_machine()
    advance_checker(machine, 4)
    DurableSealer(machine, store).maybe_seal()
    sealed_step = machine.checker.step
    del machine

    reborn = fresh_machine()
    DurableSealer(reborn, store).restore()
    assert reborn.checker.step == sealed_step  # resumes exactly at the seal
    cert = reborn.checker.tee_sign()  # the first post-restart signature
    assert cert is not None
    assert reborn.checker.step != sealed_step  # strictly advances from it


def test_restore_without_any_files_is_a_clean_cold_start(tmp_path):
    store = FileSealStore(tmp_path)
    machine = fresh_machine()
    sealer = DurableSealer(machine, store)
    assert not sealer.restore()
    assert not sealer.restored


def test_corrupt_seal_file_is_refused_not_parsed(tmp_path):
    store = FileSealStore(tmp_path)
    machine = fresh_machine()
    advance_checker(machine, 1)
    DurableSealer(machine, store).maybe_seal()
    store.seal_path(machine.checker.component_id).write_text('{"component_id": []}')
    del machine

    reborn = fresh_machine()
    with pytest.raises(TEERefusal, match="corrupt"):
        DurableSealer(reborn, store).restore()


def test_tampered_snapshot_fails_authentication(tmp_path):
    import json

    store = FileSealStore(tmp_path)
    machine = fresh_machine()
    advance_checker(machine, 2)
    DurableSealer(machine, store).maybe_seal()
    path = store.seal_path(machine.checker.component_id)
    data = json.loads(path.read_text())
    payload = bytearray.fromhex(data["payload"])
    payload[-1] ^= 0xFF  # flip a bit of the sealed fields
    data["payload"] = bytes(payload).hex()
    path.write_text(json.dumps(data))
    del machine

    reborn = fresh_machine()
    with pytest.raises(TEERefusal, match="authentication"):
        DurableSealer(reborn, store).restore()


def test_counter_file_lags_snapshot_after_partial_crash(tmp_path):
    """Seal-then-counter write order: a crash between the two writes
    leaves the counter one behind the snapshot, which must still unseal
    (the opposite order would brick the replica)."""
    store = FileSealStore(tmp_path)
    machine = fresh_machine()
    sealer = DurableSealer(machine, store)
    advance_checker(machine, 1)
    sealer.maybe_seal()
    component = machine.checker.component_id
    # Simulate the partial crash: seal a higher step but keep the OLD
    # counter record.
    counter_before = store.counter_path(component).read_bytes()
    advance_checker(machine, 2)
    sealer.maybe_seal()
    store.counter_path(component).write_bytes(counter_before)
    del machine

    reborn = fresh_machine()
    assert DurableSealer(reborn, store).restore()
