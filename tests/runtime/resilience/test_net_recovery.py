"""Socket-runtime resilience: crash-restart, fault hooks, clean shutdown.

In-process counterparts of the ``repro net-chaos`` scenario: real
asyncio TCP sockets on ephemeral localhost ports, with process death
modelled by closing a runtime and discarding its machine (volatile
state gone - only the :class:`FileSealStore` files survive, as under
SIGKILL).
"""

import asyncio

import pytest

from repro.config import NetConfig
from repro.core.faults import FaultPlan
from repro.runtime.asyncio_net import AsyncioRuntime, WallClock, build_machine
from repro.runtime.framing import encode_frame
from repro.runtime.resilience.durable import DurableSealer
from repro.runtime.resilience.transport import FaultDecider
from repro.tee.sealed import FileSealStore


async def start_cluster(n=4, seed=21, stores=None, deciders=None, timeout_ms=500.0):
    """Boot an n-replica cluster on ephemeral ports; returns the runtimes."""
    clock = WallClock()
    runtimes = []
    for pid in range(n):
        machine = build_machine(
            "damysus", pid, n, clock, seed=seed, timeout_ms=timeout_ms,
            payload_bytes=16, block_size=4,
        )
        sealer = None
        if stores is not None:
            sealer = DurableSealer(machine, stores[pid])
            sealer.restore()
        runtimes.append(
            AsyncioRuntime(
                machine,
                fault_decider=None if deciders is None else deciders[pid],
                sealer=sealer,
            )
        )
    addresses = {}
    for pid, runtime in enumerate(runtimes):
        addresses[pid] = await runtime.start_server()
    for runtime in runtimes:
        runtime.set_peers(addresses)
    for runtime in runtimes:
        runtime.start_machine()
    return runtimes, addresses


async def wait_commits(runtimes, minimum, timeout_s=30.0, pids=None):
    pids = list(pids if pids is not None else range(len(runtimes)))
    deadline = asyncio.get_running_loop().time() + timeout_s
    while asyncio.get_running_loop().time() < deadline:
        if all(runtimes[p].committed_blocks >= minimum for p in pids):
            return True
        await asyncio.sleep(0.02)
    return False


def test_crash_restart_resumes_from_durable_seal(tmp_path):
    """A replica killed mid-run restarts from its sealed files on the same
    port, rejoins, and resumes committing at a step no lower than the one
    it sealed - the in-process mirror of net-chaos kill/restart."""

    async def scenario():
        stores = [FileSealStore(tmp_path / f"seal-{pid}") for pid in range(4)]
        runtimes, addresses = await start_cluster(stores=stores)
        assert await wait_commits(runtimes, 2)

        victim = runtimes[3]
        sealed_view = victim.machine.checker.step.view
        port = victim.port
        await victim.close()  # death: volatile state discarded below
        del victim

        # Survivors keep committing without the fourth replica.
        target = max(rt.committed_blocks for rt in runtimes[:3]) + 2
        assert await wait_commits(runtimes[:3], target)

        # Restart from the durable seal, same port, fresh everything else.
        clock = WallClock()
        machine = build_machine(
            "damysus", 3, 4, clock, seed=21, timeout_ms=500.0,
            payload_bytes=16, block_size=4,
        )
        sealer = DurableSealer(machine, stores[3])
        assert sealer.restore()
        assert machine.checker.step.view >= sealed_view  # no rollback
        reborn = AsyncioRuntime(machine, port=port, sealer=sealer)
        await reborn.start_server()
        reborn.set_peers(addresses)
        reborn.start_machine()
        runtimes[3] = reborn

        try:
            assert await wait_commits([reborn], 1)
        finally:
            for runtime in runtimes:
                await runtime.close()

    asyncio.run(scenario())


def test_partition_stalls_and_heals_in_process():
    """A 2/2 partition installed in every sender's decider stalls commits;
    clearing the rules (the live-reload path) lets them resume."""

    async def scenario():
        deciders = [
            FaultDecider(FaultPlan().partition({0, 1}, {2, 3}).rules, seed=5)
            for _ in range(4)
        ]
        # Start already partitioned: nothing must commit.
        runtimes, _ = await start_cluster(deciders=deciders)
        try:
            assert not await wait_commits(runtimes, 1, timeout_s=2.0)
            assert all(d.counts()["dropped"] > 0 for d in deciders)
            for decider in deciders:
                decider.set_rules(())  # heal
            assert await wait_commits(runtimes, 1)
        finally:
            for runtime in runtimes:
                await runtime.close()

    asyncio.run(scenario())


def test_close_leaves_no_pending_tasks_or_sockets():
    """Graceful shutdown: after close(), the loop holds no stray tasks."""

    async def scenario():
        runtimes, _ = await start_cluster()
        assert await wait_commits(runtimes, 1)
        for runtime in runtimes:
            await runtime.close()
        # Give cancelled callbacks one tick to unwind, then audit.
        await asyncio.sleep(0.05)
        stray = [
            task
            for task in asyncio.all_tasks()
            if task is not asyncio.current_task() and not task.done()
        ]
        assert stray == []
        for runtime in runtimes:
            assert runtime._server is None
            assert not runtime._sender_tasks and not runtime._reader_tasks

    asyncio.run(scenario())


def test_malformed_hello_is_rejected_and_server_survives():
    async def scenario():
        runtimes, addresses = await start_cluster(n=4)
        try:
            host, port = addresses[0]
            # A stranger sends a garbage hello: wrong magic.
            _reader, writer = await asyncio.open_connection(host, port)
            writer.write(encode_frame(b"i am not a hello"))
            await writer.drain()
            await asyncio.sleep(0.2)
            assert runtimes[0].rejected_connections >= 1
            writer.close()
            # The cluster is unharmed: commits still happen.
            assert await wait_commits(runtimes, 1)
        finally:
            for runtime in runtimes:
                await runtime.close()

    asyncio.run(scenario())


def test_oversized_frame_disconnects_instead_of_buffering():
    async def scenario():
        runtimes, addresses = await start_cluster(n=4)
        try:
            host, port = addresses[0]
            _reader, writer = await asyncio.open_connection(host, port)
            # Announce a frame far above the cap; the payload never needs
            # to arrive - the announcement alone must poison the stream.
            announce = (runtimes[0].net.max_frame_bytes + 1).to_bytes(4, "little")
            writer.write(announce)
            await writer.drain()
            await asyncio.sleep(0.2)
            assert runtimes[0].rejected_connections >= 1
            writer.close()
            assert await wait_commits(runtimes, 1)
        finally:
            for runtime in runtimes:
                await runtime.close()

    asyncio.run(scenario())


@pytest.mark.parametrize("policy", ["drop-oldest", "drop-newest"])
def test_outbound_overflow_policy(policy):
    async def scenario():
        clock = WallClock()
        machine = build_machine("damysus", 0, 4, clock, seed=1)
        runtime = AsyncioRuntime(
            machine, net=NetConfig(max_outbound_queue=4, overflow_policy=policy)
        )
        # Pre-seed the queue so no sender task spawns: pure policy test.
        queue = asyncio.Queue(maxsize=4)
        runtime._queues[9] = queue
        frames = [b"frame-%d" % i for i in range(10)]
        for frame in frames:
            runtime._enqueue(9, frame)
        assert runtime.dropped_messages == 6
        kept = [queue.get_nowait() for _ in range(queue.qsize())]
        if policy == "drop-oldest":
            assert kept == frames[-4:]  # freshest survive
        else:
            assert kept == frames[:4]  # earliest survive
        await runtime.close()

    asyncio.run(scenario())
