"""Tests for the socket-level fault decider: seeded determinism."""

from repro.core.faults import FaultPlan
from repro.runtime.resilience.transport import (
    DIGEST_HORIZON,
    FaultDecider,
    decision_digest,
    decision_table,
)


def lossy_rules(prob=0.3):
    return FaultPlan().lossy_links(prob).rules


def drain(decider, frames=200, pids=(0, 1, 2, 3), src=0):
    """Feed ``frames`` round-robin frames; return the decision kinds."""
    out = []
    for seq in range(frames):
        dst = pids[seq % len(pids)]
        if dst == src:
            continue
        action = decider.decide(src, dst, None, now_ms=0.0)
        out.append((dst, None if action is None else (action.drop, action.duplicates)))
    return out


def test_same_seed_same_decisions():
    a = FaultDecider(lossy_rules(), seed=7)
    b = FaultDecider(lossy_rules(), seed=7)
    assert drain(a) == drain(b)
    assert a.counts() == b.counts()
    assert [r for r in a.records] == [r for r in b.records]


def test_different_seed_different_decisions():
    a = FaultDecider(lossy_rules(0.5), seed=7)
    b = FaultDecider(lossy_rules(0.5), seed=8)
    assert drain(a, frames=400) != drain(b, frames=400)


def test_decisions_are_per_link_sequence_coordinates():
    """The k-th frame on a link gets the same fate regardless of traffic
    interleaving on other links - decisions are a pure function of
    (seed, src, dst, k)."""
    a = FaultDecider(lossy_rules(), seed=3)
    b = FaultDecider(lossy_rules(), seed=3)
    # a: strictly alternate links; b: all of link 1 first, then link 2.
    fates_a = {(1, k): a.decide(0, 1, None, 0.0) for k in range(50)}
    fates_a.update({(2, k): a.decide(0, 2, None, 0.0) for k in range(50)})
    fates_b = {}
    for k in range(50):
        fates_b[(1, k)] = b.decide(0, 1, None, 0.0)
        fates_b[(2, k)] = b.decide(0, 2, None, 0.0)
    assert fates_a == fates_b


def test_live_rule_reload_keeps_sequence_counters():
    decider = FaultDecider(lossy_rules(1.0), seed=1)
    assert decider.decide(0, 1, None, 0.0).drop
    decider.set_rules(())  # heal
    assert decider.decide(0, 1, None, 0.0) is None
    decider.set_rules(lossy_rules(1.0))  # re-inject
    action = decider.decide(0, 1, None, 0.0)
    assert action is not None and action.drop
    # Three frames consumed three sequence numbers on the link.
    assert decider._next_seq[(0, 1)] == 3


def test_partition_rule_cuts_cross_group_frames():
    rules = FaultPlan().partition({0, 1}, {2, 3}).rules
    decider = FaultDecider(rules, seed=1)
    assert decider.decide(0, 2, None, now_ms=10.0).drop  # crosses the cut
    assert decider.decide(0, 1, None, now_ms=10.0) is None  # same group
    assert decider.counts()["dropped"] == 1


def test_duplicate_and_delay_counters():
    rules = (
        FaultPlan()
        .duplicating_links(1.0)
        .delaying_links(50.0, delay_prob=1.0)
        .rules
    )
    decider = FaultDecider(rules, seed=5)
    action = decider.decide(0, 1, None, 0.0)
    assert action is not None and not action.drop
    assert action.duplicates >= 1
    assert action.extra_delay_ms > 0.0
    counts = decider.counts()
    assert counts["duplicated"] >= 1 and counts["delayed"] == 1


def test_record_cap_truncates_but_keeps_counting():
    decider = FaultDecider(lossy_rules(1.0), seed=1, max_records=5)
    for _ in range(10):
        decider.decide(0, 1, None, 0.0)
    assert len(decider.records) == 5
    assert decider.records_truncated == 5
    assert decider.dropped == 10


def test_decision_digest_stable_and_seed_sensitive():
    rules = FaultPlan().lossy_links(0.1).partition({0, 1}, {2, 3}).rules
    pids = [0, 1, 2, 3]
    assert decision_digest(rules, 1, pids) == decision_digest(rules, 1, pids)
    assert decision_digest(rules, 1, pids) != decision_digest(rules, 2, pids)
    assert decision_digest(rules, 1, pids) != decision_digest(rules, 1, [0, 1, 2])


def test_decision_table_matches_live_decider_for_unwindowed_rules():
    """For always-on rules the pure table IS what the live path injects."""
    rules = lossy_rules(0.4)
    pids = [0, 1]
    table = {
        (e.src, e.dst, e.seq): e.kind for e in decision_table(rules, 1, pids)
    }
    decider = FaultDecider(rules, seed=1)
    for seq in range(DIGEST_HORIZON):
        action = decider.decide(0, 1, None, now_ms=123.0)
        expected = table[(0, 1, seq)]
        if action is None:
            assert expected == "pass"
        elif action.drop:
            assert expected == "drop"
