"""Crash-during-checkpoint durability: the seal store never exposes a
torn or rolled-back checkpoint (satellite of the checkpoint/catch-up PR).

Same modelling as ``test_durable.py``: real Damysus machines built via
the socket runtime's ``build_machine``, process death as *discarding*
the machine object, SIGKILL mid-write as cutting the write short before
the atomic rename (or between the seal write and the checkpoint write).
Certified checkpoints are produced by driving two machines' Checkers to
a real decide certificate, so every record the tests plant is authentic
- the attacks here are on the *file system*, not on the signatures.
"""

import json
from dataclasses import replace

import pytest

from repro.core.phases import Phase
from repro.crypto.hashing import hash_fields
from repro.errors import TEERefusal
from repro.runtime.asyncio_net import WallClock, build_machine
from repro.runtime.resilience.durable import DurableSealer
from repro.tee.accumulator import AccumulatorService
from repro.tee.sealed import FileSealStore

BLOCK_HASH = b"\x0b" * 32


def chain_headers(start_hash, count, tip_hash=BLOCK_HASH, salt=b"a"):
    """A synthetic ``(block_hash, parent_hash)`` chain ending at ``tip_hash``."""
    headers = []
    prev = start_hash
    for i in range(count):
        block_hash = tip_hash if i == count - 1 else hash_fields(("tb", salt, i))
        headers.append((block_hash, prev))
        prev = block_hash
    return tuple(headers)


def fresh_machine(pid=0, n=3, seed=23, interval=10):
    return build_machine(
        "damysus", pid, n, WallClock(), seed=seed, checkpoint_interval=interval
    )


def decide_qc(machine, helper, view=1):
    """Drive a quorum of checkers to a decide certificate for ``view``."""
    from repro.core.commitment import c_combine

    accs = AccumulatorService(0, machine.scheme, machine.directory, machine.quorum)
    checkers = [machine.checker, helper.checker][: machine.quorum]

    def catch_up(checker):
        while True:
            phi = checker.tee_sign()
            if phi.v_prep == view and phi.phase == Phase.NEW_VIEW:
                return phi

    acc = accs.accumulate([catch_up(c) for c in checkers])
    prepared = c_combine([c.tee_prepare(BLOCK_HASH, acc) for c in checkers])
    return c_combine([c.tee_store(prepared) for c in checkers])


def certify(machine, helper, height, qc=None):
    """Certify a checkpoint at ``height`` and hand it to the replica.

    Headers chain from the checker's current certified tip to a suffix
    tip of ``BLOCK_HASH`` (which the decide QC certifies).
    """
    qc = qc if qc is not None else decide_qc(machine, helper)
    checker = machine.checker
    headers = chain_headers(
        checker.checkpoint_hash,
        height - checker.checkpoint_height,
        salt=height.to_bytes(4, "big"),
    )
    ckpt = checker.tee_checkpoint(headers, qc)
    machine.latest_checkpoint = ckpt
    return ckpt, qc


def test_checkpoint_persisted_with_the_seal_and_restored(tmp_path):
    store = FileSealStore(tmp_path)
    machine, helper = fresh_machine(0), fresh_machine(1)
    ckpt, _ = certify(machine, helper, 10)
    sealer = DurableSealer(machine, store)
    assert sealer.maybe_seal()
    assert sealer.checkpoint_writes == 1
    assert store.checkpoint_path(machine.checker.component_id).exists()
    del machine  # SIGKILL: only the files survive

    reborn = fresh_machine(0)
    reborn_sealer = DurableSealer(reborn, store)
    assert reborn_sealer.restore()
    assert reborn_sealer.restored_checkpoint_height == 10
    assert reborn.latest_checkpoint == ckpt
    # The ledger fast-forwarded to the certified horizon, and consensus
    # resumes past the checkpointed view.
    assert reborn.ledger.height() == 10
    assert reborn.ledger.base_height == 10
    assert reborn.ledger.state_root == ckpt.state_root
    assert reborn.view >= ckpt.view + 1
    # The restored monotonic floor still refuses stale certifications.
    assert reborn.checker.checkpoint_height == 10


def test_torn_checkpoint_write_is_invisible(tmp_path, monkeypatch):
    """SIGKILL before the atomic rename: the old record stays intact."""
    import repro.tee.sealed as sealed_mod

    store = FileSealStore(tmp_path)
    machine, helper = fresh_machine(0), fresh_machine(1)
    old, qc = certify(machine, helper, 10)
    component = machine.checker.component_id
    store.save_checkpoint(component, old)

    newer, _ = certify(machine, helper, 20, qc)

    def killed_mid_write(src, dst):
        raise OSError("simulated SIGKILL before rename")

    monkeypatch.setattr(sealed_mod.os, "replace", killed_mid_write)
    with pytest.raises(OSError):
        store.save_checkpoint(component, newer)
    monkeypatch.undo()
    # The visible record is still the complete old checkpoint - never a
    # half-written new one.
    assert store.load_checkpoint(component) == old


def test_truncated_checkpoint_bytes_never_decode(tmp_path):
    """Fuzz the torn-write surface: every proper prefix of the on-disk
    record is refused, never misread as some other checkpoint."""
    store = FileSealStore(tmp_path)
    machine, helper = fresh_machine(0), fresh_machine(1)
    ckpt, _ = certify(machine, helper, 10)
    component = machine.checker.component_id
    store.save_checkpoint(component, ckpt)
    path = store.checkpoint_path(component)
    full = path.read_text()
    assert store.load_checkpoint(component) == ckpt
    for cut in range(0, len(full), max(1, len(full) // 40)):
        path.write_text(full[:cut])
        with pytest.raises(TEERefusal):
            store.load_checkpoint(component)
    path.write_text(full)
    assert store.load_checkpoint(component) == ckpt


def test_corrupt_encoded_checkpoint_is_refused(tmp_path):
    store = FileSealStore(tmp_path)
    machine, helper = fresh_machine(0), fresh_machine(1)
    ckpt, _ = certify(machine, helper, 10)
    component = machine.checker.component_id
    store.save_checkpoint(component, ckpt)
    path = store.checkpoint_path(component)
    data = json.loads(path.read_text())
    # Structurally broken record: the codec cannot finish decoding it.
    path.write_text(json.dumps({**data, "encoded": data["encoded"][:-4]}))
    with pytest.raises(TEERefusal):
        store.load_checkpoint(component)
    # Bit-flipped record: decodes, but the Checker signature no longer
    # covers the payload - a restart refuses it rather than cold-start.
    flipped = data["encoded"][:-8] + "00" * 4
    path.write_text(json.dumps({**data, "encoded": flipped}))
    del machine

    reborn = fresh_machine(0)
    with pytest.raises(TEERefusal):
        DurableSealer(reborn, store).restore()


def test_checkpoint_file_never_regresses(tmp_path):
    store = FileSealStore(tmp_path)
    machine, helper = fresh_machine(0), fresh_machine(1)
    old, qc = certify(machine, helper, 10)
    newer, _ = certify(machine, helper, 20, qc)
    component = machine.checker.component_id
    store.save_checkpoint(component, newer)
    # Writing the older (authentic!) record is a no-op, not a downgrade.
    store.save_checkpoint(component, old)
    assert store.load_checkpoint(component) == newer


def test_restore_refuses_rolled_back_checkpoint_file(tmp_path):
    """The sealed monotonic certified height outlives a file rollback."""
    store = FileSealStore(tmp_path)
    machine, helper = fresh_machine(0), fresh_machine(1)
    sealer = DurableSealer(machine, store)
    _, qc = certify(machine, helper, 10)
    assert sealer.maybe_seal()
    component = machine.checker.component_id
    stale = store.checkpoint_path(component).read_bytes()
    certify(machine, helper, 20, qc)
    assert sealer.maybe_seal()  # re-seals: the snapshot now certifies 20
    assert sealer.checkpoint_writes == 2
    # Rollback attack: put the height-10 record back (it is authentic
    # and self-verifies, so only the sealed floor can catch this).
    store.checkpoint_path(component).write_bytes(stale)
    del machine

    reborn = fresh_machine(0)
    with pytest.raises(TEERefusal, match="rolled back"):
        DurableSealer(reborn, store).restore()


def test_sigkill_between_seal_and_checkpoint_write(tmp_path, monkeypatch):
    """Crash after the seal landed but before the checkpoint write: the
    restart holds the certified floor with no checkpoint file - it must
    come up clean (and catch up over the network) rather than brick or
    re-certify below the floor."""
    store = FileSealStore(tmp_path)
    machine, helper = fresh_machine(0), fresh_machine(1)
    sealer = DurableSealer(machine, store)
    _, qc = certify(machine, helper, 10)
    monkeypatch.setattr(
        FileSealStore,
        "save_checkpoint",
        lambda self, component_id, checkpoint: (_ for _ in ()).throw(
            OSError("simulated SIGKILL before checkpoint write")
        ),
    )
    with pytest.raises(OSError):
        sealer.maybe_seal()
    monkeypatch.undo()
    assert not store.checkpoint_path(machine.checker.component_id).exists()
    del machine

    reborn = fresh_machine(0)
    assert DurableSealer(reborn, store).restore()
    assert reborn.latest_checkpoint is None
    assert reborn.ledger.height() == 0
    assert reborn.checker.checkpoint_height == 10
    with pytest.raises(TEERefusal):
        # Re-certifying below the restored floor: a from-genesis suffix no
        # longer chains from the sealed certified tip.
        reborn.checker.tee_checkpoint(
            chain_headers(reborn.store.genesis.hash, 5), qc
        )


def test_forged_checkpoint_file_is_refused_on_restore(tmp_path):
    """A planted record signed under a different deployment's keys."""
    store = FileSealStore(tmp_path)
    machine, helper = fresh_machine(0), fresh_machine(1)
    ckpt, _ = certify(machine, helper, 10)
    component = machine.checker.component_id
    # Tamper with the certified payload: signature no longer covers it.
    store.save_checkpoint(component, replace(ckpt, height=11))
    del machine

    reborn = fresh_machine(0)
    with pytest.raises(TEERefusal):
        DurableSealer(reborn, store).restore()
