"""End-to-end net-chaos: real subprocesses, SIGKILL, sealed-state restart.

One genuinely multi-process test (the same path ``repro net-chaos``
drives, shortened) plus cheap unit checks of the orchestration pieces.
"""

from pathlib import Path

import pytest

from repro.errors import ConfigError
from repro.runtime.resilience.netchaos import run_net_chaos
from repro.runtime.resilience.supervisor import ReplicaProcessSpec


def test_spec_argv_carries_the_resilience_flags(tmp_path):
    spec = ReplicaProcessSpec(
        pid=2,
        protocol="damysus",
        n=4,
        base_port=5000,
        seal_dir=tmp_path / "seal",
        health_file=tmp_path / "h.json",
        fault_spec=tmp_path / "faults.json",
    )
    argv = spec.argv()
    assert argv[2:4] == ["repro", "serve"]
    for flag in ("--seal-dir", "--health-file", "--health-interval", "--fault-spec"):
        assert flag in argv
    # Respawning must reuse identical arguments.
    assert argv == spec.argv()


def test_spec_argv_omits_unset_options():
    argv = ReplicaProcessSpec(pid=0, protocol="damysus", n=4, base_port=5000).argv()
    assert "--seal-dir" not in argv and "--fault-spec" not in argv


def test_net_chaos_needs_a_partitionable_cluster():
    with pytest.raises(ConfigError):
        run_net_chaos("damysus", 3)


def test_net_chaos_kill_restart_subprocess_roundtrip(tmp_path):
    """The real thing, shortened: 4 OS processes, SIGKILL one, restart it
    from durable sealed state; commits must resume.  Partition phases are
    exercised by the in-process tests and the CI smoke job."""
    report = run_net_chaos(
        "damysus",
        4,
        seed=3,
        loss=0.0,
        partition=False,
        commit_bound_s=60.0,
        run_dir=tmp_path / "run",
        keep_artifacts=True,
    )
    assert report.ok, report.describe()
    names = [phase.name for phase in report.phases]
    assert names == ["boot", "kill", "restart"]
    assert "restored_from_seal=True" in report.phases[-1].detail
    # Artifacts stayed on disk for post-mortems.
    run_dir = Path(report.run_dir)
    assert (run_dir / "faults.json").exists()
    assert any((run_dir / "seal").iterdir())
    assert len(list((run_dir / "logs").glob("replica-*.log"))) == 4
    # The digest is a pure function of (seed, plan, pids): rerunning the
    # computation must reproduce it without touching any process.
    from repro.core.faults import FaultPlan
    from repro.runtime.resilience.transport import decision_digest

    plan = FaultPlan().partition({0, 1}, {2, 3})
    assert report.decision_digest == decision_digest(plan.rules, 3, [0, 1, 2, 3])
