"""Tests for the liveness watchdog (pure, time injected)."""

from repro.runtime.resilience.watchdog import LivenessWatchdog


def test_commits_keep_a_replica_healthy():
    dog = LivenessWatchdog(stall_after_ms=1_000.0)
    dog.record_commit(0, 100.0)
    dog.record_commit(0, 900.0)
    snap = dog.snapshot(1_500.0)
    assert snap.healthy
    assert snap.stalled_pids == ()
    assert snap.replicas[0].committed_blocks == 2


def test_silence_past_the_budget_is_a_stall():
    dog = LivenessWatchdog(stall_after_ms=1_000.0)
    dog.record_commit(0, 100.0)
    dog.record_commit(1, 100.0)
    dog.record_commit(1, 2_000.0)
    snap = dog.snapshot(2_500.0)
    assert not snap.healthy
    assert snap.stalled_pids == (0,)


def test_never_committed_counts_from_first_sighting():
    dog = LivenessWatchdog(stall_after_ms=500.0)
    dog.record_alive(3, 0.0)
    assert dog.snapshot(400.0).healthy
    assert dog.snapshot(600.0).stalled_pids == (3,)


def test_dead_is_reported_separately_not_as_stall():
    dog = LivenessWatchdog(stall_after_ms=500.0)
    dog.record_commit(0, 0.0)
    dog.record_dead(0)
    snap = dog.snapshot(10_000.0)
    assert snap.dead_pids == (0,)
    assert snap.stalled_pids == ()
    # Revival via a new sighting clears the dead flag.
    dog.record_alive(0, 10_000.0)
    assert dog.snapshot(10_100.0).dead_pids == ()


def test_explicit_commit_count_overrides_increment():
    dog = LivenessWatchdog()
    dog.record_commit(0, 1.0, committed_blocks=41)
    dog.record_commit(0, 2.0)
    assert dog.snapshot(3.0).replicas[0].committed_blocks == 42


def test_min_committed_ignores_dead_replicas():
    dog = LivenessWatchdog()
    dog.record_commit(0, 1.0, committed_blocks=9)
    dog.record_commit(1, 1.0, committed_blocks=2)
    dog.record_dead(1)
    assert dog.snapshot(2.0).min_committed == 9


def test_snapshot_serializes_to_plain_json_types():
    dog = LivenessWatchdog(stall_after_ms=100.0)
    dog.record_commit(0, 1.0)
    data = dog.snapshot(50.0).to_dict()
    assert data["healthy"] is True
    assert data["replicas"][0]["pid"] == 0
    import json

    json.dumps(data)  # must be directly serializable
