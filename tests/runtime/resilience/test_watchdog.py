"""Tests for the liveness watchdog (pure, time injected)."""

from repro.adversary.behaviors import SilentLeaderDamysus
from repro.core.faults import FaultPlan
from repro.protocols.system import ConsensusSystem
from repro.runtime.resilience.watchdog import LivenessWatchdog
from tests.conftest import small_config


def test_commits_keep_a_replica_healthy():
    dog = LivenessWatchdog(stall_after_ms=1_000.0)
    dog.record_commit(0, 100.0)
    dog.record_commit(0, 900.0)
    snap = dog.snapshot(1_500.0)
    assert snap.healthy
    assert snap.stalled_pids == ()
    assert snap.replicas[0].committed_blocks == 2


def test_silence_past_the_budget_is_a_stall():
    dog = LivenessWatchdog(stall_after_ms=1_000.0)
    dog.record_commit(0, 100.0)
    dog.record_commit(1, 100.0)
    dog.record_commit(1, 2_000.0)
    snap = dog.snapshot(2_500.0)
    assert not snap.healthy
    assert snap.stalled_pids == (0,)


def test_never_committed_counts_from_first_sighting():
    dog = LivenessWatchdog(stall_after_ms=500.0)
    dog.record_alive(3, 0.0)
    assert dog.snapshot(400.0).healthy
    assert dog.snapshot(600.0).stalled_pids == (3,)


def test_dead_is_reported_separately_not_as_stall():
    dog = LivenessWatchdog(stall_after_ms=500.0)
    dog.record_commit(0, 0.0)
    dog.record_dead(0)
    snap = dog.snapshot(10_000.0)
    assert snap.dead_pids == (0,)
    assert snap.stalled_pids == ()
    # Revival via a new sighting clears the dead flag.
    dog.record_alive(0, 10_000.0)
    assert dog.snapshot(10_100.0).dead_pids == ()


def test_explicit_commit_count_overrides_increment():
    dog = LivenessWatchdog()
    dog.record_commit(0, 1.0, committed_blocks=41)
    dog.record_commit(0, 2.0)
    assert dog.snapshot(3.0).replicas[0].committed_blocks == 42


def test_min_committed_ignores_dead_replicas():
    dog = LivenessWatchdog()
    dog.record_commit(0, 1.0, committed_blocks=9)
    dog.record_commit(1, 1.0, committed_blocks=2)
    dog.record_dead(1)
    assert dog.snapshot(2.0).min_committed == 9


def test_snapshot_serializes_to_plain_json_types():
    dog = LivenessWatchdog(stall_after_ms=100.0)
    dog.record_commit(0, 1.0)
    data = dog.snapshot(50.0).to_dict()
    assert data["healthy"] is True
    assert data["replicas"][0]["pid"] == 0
    import json

    json.dumps(data)  # must be directly serializable


# -- fed from an attacked cluster -------------------------------------------


def _feed_until(dog, system, until_ms):
    """Replay the simulated commit log into the watchdog up to a cutoff."""
    for rec in sorted(system.monitor.executions, key=lambda r: r.executed_at):
        if rec.executed_at <= until_ms:
            dog.record_commit(
                rec.replica, rec.executed_at, committed_view=rec.view
            )


def test_silent_leader_stall_is_flagged_and_clears_on_recovery():
    """The silent leader's view opens a commit gap longer than its own
    timeout; a watchdog with a tighter budget flags the whole cluster
    stalled mid-gap and healthy again once the view change lands."""
    system = ConsensusSystem(
        small_config("damysus", f=1, timeout_ms=500),
        replica_overrides={1: SilentLeaderDamysus},
    )
    system.run_until_views(6, max_time_ms=300_000)
    times = sorted({r.executed_at for r in system.monitor.executions})
    gap_start, gap_end = max(
        zip(times, times[1:]), key=lambda pair: pair[1] - pair[0]
    )
    assert gap_end - gap_start > 500.0  # the silent view really stalled

    dog = LivenessWatchdog(stall_after_ms=400.0)
    mid_gap = gap_start + 450.0
    _feed_until(dog, system, mid_gap)
    snap = dog.snapshot(mid_gap)
    assert not snap.healthy
    assert set(snap.stalled_pids) == {0, 1, 2}  # nobody can commit

    _feed_until(dog, system, system.sim.now)
    recovered = dog.snapshot(gap_end + 100.0)
    assert recovered.healthy
    assert recovered.stalled_pids == ()


def test_view_lag_grows_during_an_outage_and_clears_after_catchup():
    system = ConsensusSystem(
        small_config("damysus", f=1, timeout_ms=250, checkpoint_interval=5, seed=1)
    )
    system.apply_fault_plan(FaultPlan().crash(2, at_ms=500.0, recover_at_ms=3_000.0))
    system.start()
    system.sim.run(until=10_000.0)
    assert system.result().safe

    dog = LivenessWatchdog(stall_after_ms=1_000.0)
    _feed_until(dog, system, 2_900.0)  # replica 2 is still down
    mid = dog.snapshot(2_900.0)
    # Snapshots reference the live health entries, so read the lag now.
    mid_lag = mid.view_lag_of(2)
    assert mid_lag >= 5  # falling further behind every view
    assert mid.view_lag_of(0) == 0 or mid.view_lag_of(1) == 0

    _feed_until(dog, system, system.sim.now)  # recovery + catch-up replayed
    final = dog.snapshot(system.sim.now)
    assert final.view_lag_of(2) <= 1
    assert final.view_lag_of(2) < mid_lag
