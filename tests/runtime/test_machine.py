"""Tests for the sans-I/O machine base class and its effect flushing."""

from repro.runtime.effects import Broadcast, CancelTimer, ChargeCpu, Send, SetTimer
from repro.runtime.machine import Machine


class FixedClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now


class RecordingRuntime:
    def __init__(self) -> None:
        self.batches: list[list] = []
        self.recovered = 0

    def execute(self, effects) -> None:
        self.batches.append(effects)

    def machine_recovered(self) -> None:
        self.recovered += 1


class Toy(Machine):
    ENTRY_POINTS = Machine.ENTRY_POINTS + ("poke",)

    def on_message(self, sender, payload):
        self.charge(1.0)
        self.send(1, "reply")
        self.broadcast([0, 1, 2], "news")

    def poke(self):
        self.send(2, "poked")
        return "value"


def build():
    machine = Toy(0, FixedClock())
    runtime = RecordingRuntime()
    machine.runtime = runtime
    return machine, runtime


def test_entry_point_returns_ordered_effects():
    machine, runtime = build()
    effects = machine.on_message(1, "ping")
    assert effects == [
        ChargeCpu(1.0),
        Send(1, "reply"),
        Broadcast((0, 1, 2), "news"),
    ]
    # The runtime saw exactly the same batch, exactly once.
    assert runtime.batches == [effects]


def test_non_handler_entry_points_keep_their_return_value():
    machine, runtime = build()
    assert machine.poke() == "value"
    assert runtime.batches == [[Send(2, "poked")]]


def test_effects_without_runtime_are_still_returned():
    machine = Toy(0, FixedClock())
    assert machine.on_message(1, "ping")[0] == ChargeCpu(1.0)


def test_crashed_machine_swallows_sends():
    machine, runtime = build()
    machine.crash()
    machine.send(1, "dead letter")
    machine.broadcast([1, 2], "dead news")
    assert runtime.batches == []


def test_timer_lifecycle_set_fire():
    machine, runtime = build()
    fired = []
    timer = machine.set_timer(250.0, lambda: fired.append(True))
    assert timer.active
    (batch,) = runtime.batches
    assert batch == [SetTimer(timer.timer_id, 250.0)]
    machine.on_timer(timer.timer_id)
    assert fired == [True]
    assert not timer.active


def test_timer_cancel_emits_once_and_disarms():
    machine, runtime = build()
    timer = machine.set_timer(250.0, lambda: None)
    timer.cancel()
    timer.cancel()  # idempotent: no second CancelTimer effect
    cancels = [e for batch in runtime.batches for e in batch
               if isinstance(e, CancelTimer)]
    assert cancels == [CancelTimer(timer.timer_id)]
    machine.on_timer(timer.timer_id)  # stale fire: callback must not run
    assert not timer.active


def test_charge_accumulates_and_skips_zero():
    machine, runtime = build()
    machine.charge(2.0)
    machine.charge(0.0)
    machine.charge(3.0)
    assert machine.cpu_time_charged == 5.0
    charges = [e for batch in runtime.batches for e in batch]
    assert charges == [ChargeCpu(2.0), ChargeCpu(3.0)]


def test_recover_notifies_runtime():
    machine, runtime = build()
    machine.crash()
    machine.recover()
    assert not machine.crashed
    assert runtime.recovered == 1
