"""Table 1's storage column: trusted state stays constant over history."""


from tests.conftest import run_protocol


def test_checker_storage_constant_across_views():
    """The checker's protected state must not grow with chain length."""
    system_short, _ = run_protocol("damysus", views=3, seed=4)
    system_long, _ = run_protocol("damysus", views=25, seed=4)
    short_bytes = system_short.replicas[0].checker.storage_bytes()
    long_bytes = system_long.replicas[0].checker.storage_bytes()
    assert short_bytes == long_bytes


def test_locking_checker_stores_more_than_plain_checker():
    """Section 4.2.3: with the accumulator, locked blocks need not be stored."""
    dam, _ = run_protocol("damysus", views=3)
    dam_c, _ = run_protocol("damysus-c", views=3)
    assert (
        dam_c.replicas[0].checker.storage_bytes()
        > dam.replicas[0].checker.storage_bytes()
    )


def test_storage_is_tens_of_bytes():
    """'Minimal storage' means a counter and a couple of hashes."""
    system, _ = run_protocol("damysus", views=3)
    assert system.replicas[0].checker.storage_bytes() < 200


def test_chained_checker_storage_matches_basic():
    basic, _ = run_protocol("damysus", views=3)
    chained, _ = run_protocol("chained-damysus", views=3)
    assert (
        basic.replicas[0].checker.storage_bytes()
        == chained.replicas[0].checker.storage_bytes()
    )
