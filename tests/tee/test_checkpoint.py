"""Tests for Checker-certified checkpoints (TEEcheckpoint + verification)."""

from dataclasses import replace

import pytest

from repro.core.block import genesis_block
from repro.core.commitment import c_combine
from repro.core.executor import fold_state_root
from repro.crypto.hashing import hash_fields
from repro.crypto.hmac_scheme import HmacScheme
from repro.crypto.keys import KeyDirectory
from repro.errors import TEERefusal
from repro.tee.checker import Checker
from repro.tee.checkpoint import verify_checkpoint
from repro.tee.sealed import SealManager

QUORUM = 2  # f = 1 over 2f+1 = 3 replicas

BLOCK_HASH = b"\x0b" * 32


def chain_headers(start_hash, count, tip_hash=BLOCK_HASH, salt=b"a"):
    """A synthetic ``(block_hash, parent_hash)`` chain ending at ``tip_hash``."""
    headers = []
    prev = start_hash
    for i in range(count):
        block_hash = tip_hash if i == count - 1 else hash_fields(("tb", salt, i))
        headers.append((block_hash, prev))
        prev = block_hash
    return tuple(headers)


def folded_root(start_root, headers):
    root = start_root
    for block_hash, _ in headers:
        root = fold_state_root(root, block_hash)
    return root


@pytest.fixture
def env():
    scheme = HmacScheme(secret=b"checkpoint-tests")
    directory = KeyDirectory(scheme)
    genesis = genesis_block()
    checkers = [
        Checker(pid, scheme, directory, genesis.hash, QUORUM) for pid in range(3)
    ]
    return scheme, directory, checkers


def decide_qc(env, view=1, block_hash=BLOCK_HASH):
    """Drive two checkers to a decide certificate (quorum PRECOMMIT)."""
    from repro.core.phases import Phase
    from repro.tee.accumulator import AccumulatorService

    scheme, directory, checkers = env
    accs = AccumulatorService(0, scheme, directory, QUORUM)

    def catch_up(checker):
        while True:
            phi = checker.tee_sign()
            if phi.v_prep == view and phi.phase == Phase.NEW_VIEW:
                return phi

    nv0 = catch_up(checkers[0])
    nv1 = catch_up(checkers[1])
    acc = accs.accumulate([nv0, nv1])
    phi0 = checkers[0].tee_prepare(block_hash, acc)
    phi1 = checkers[1].tee_prepare(block_hash, acc)
    combined = c_combine([phi0, phi1])
    pcom0 = checkers[0].tee_store(combined)
    pcom1 = checkers[1].tee_store(combined)
    return c_combine([pcom0, pcom1])


def test_tee_checkpoint_certifies_and_verifies(env):
    scheme, directory, checkers = env
    qc = decide_qc(env)
    genesis = genesis_block()
    headers = chain_headers(genesis.hash, 10)
    ckpt = checkers[0].tee_checkpoint(headers, qc)
    assert ckpt.replica == 0
    assert ckpt.counter == 1
    assert ckpt.height == 10
    assert ckpt.view == qc.v_prep
    assert ckpt.block_hash == BLOCK_HASH
    # The state root is folded inside the TEE from the header chain - the
    # host never supplies it.
    assert ckpt.state_root == folded_root(genesis.hash, headers)
    assert checkers[0].checkpoint_height == 10
    assert checkers[0].checkpoint_counter == 1
    assert checkers[0].checkpoint_hash == BLOCK_HASH
    # Any replica can verify it against the public directory.
    verify_checkpoint(ckpt, scheme, directory, QUORUM)


def test_tee_checkpoint_counter_is_monotonic(env):
    _, _, checkers = env
    qc = decide_qc(env)
    genesis = genesis_block()
    headers = chain_headers(genesis.hash, 10)
    checkers[0].tee_checkpoint(headers, qc)
    # Replaying the same suffix cannot re-certify: it no longer chains
    # from the certified tip, so the monotonic state never rewinds.
    with pytest.raises(TEERefusal):
        checkers[0].tee_checkpoint(headers, qc)
    with pytest.raises(TEERefusal):
        checkers[0].tee_checkpoint((), qc)
    more = chain_headers(BLOCK_HASH, 10, salt=b"b")
    ckpt = checkers[0].tee_checkpoint(more, qc)
    assert ckpt.counter == 2
    assert ckpt.height == 20
    assert checkers[0].checkpoint_height == 20


def test_tee_checkpoint_refuses_unchained_headers(env):
    """Headers must hash-chain from the certified tip: a host cannot have
    the TEE attest a height or root for blocks it never linked."""
    _, _, checkers = env
    qc = decide_qc(env)
    genesis = genesis_block()
    headers = chain_headers(genesis.hash, 10)
    broken = headers[:5] + headers[6:]  # gap in the parent links
    with pytest.raises(TEERefusal):
        checkers[0].tee_checkpoint(broken, qc)
    # Starting from a non-certified hash is refused too.
    with pytest.raises(TEERefusal):
        checkers[0].tee_checkpoint(chain_headers(b"\x0f" * 32, 10), qc)


def test_tee_checkpoint_refuses_foreign_qc(env):
    _, _, checkers = env
    qc = decide_qc(env)
    genesis = genesis_block()
    # QC decides a different block than the suffix tip being checkpointed.
    with pytest.raises(TEERefusal):
        checkers[0].tee_checkpoint(
            chain_headers(genesis.hash, 10, tip_hash=b"\x0d" * 32), qc
        )
    # Sub-quorum certificate: a single pre-commit vote is not a decide.
    single = replace(qc, sigs=qc.sigs[:1])
    with pytest.raises(TEERefusal):
        checkers[0].tee_checkpoint(chain_headers(genesis.hash, 10), single)


def test_verify_checkpoint_rejects_tampering(env):
    scheme, directory, checkers = env
    qc = decide_qc(env)
    genesis = genesis_block()
    ckpt = checkers[0].tee_checkpoint(chain_headers(genesis.hash, 10), qc)
    # Height inflated: the Checker signature no longer covers the payload.
    with pytest.raises(TEERefusal):
        verify_checkpoint(replace(ckpt, height=50), scheme, directory, QUORUM)
    # State root swapped: same.
    with pytest.raises(TEERefusal):
        verify_checkpoint(
            replace(ckpt, state_root=b"\x0e" * 32), scheme, directory, QUORUM
        )
    # Signature transplanted from another (authentic) checkpoint.
    other = checkers[0].tee_checkpoint(chain_headers(BLOCK_HASH, 10, salt=b"b"), qc)
    with pytest.raises(TEERefusal):
        verify_checkpoint(
            replace(ckpt, signature=other.signature), scheme, directory, QUORUM
        )


def test_verify_checkpoint_rejects_stripped_quorum(env):
    scheme, directory, checkers = env
    qc = decide_qc(env)
    ckpt = checkers[0].tee_checkpoint(chain_headers(genesis_block().hash, 10), qc)
    thinned = replace(ckpt, qc=replace(qc, sigs=qc.sigs[:1]))
    with pytest.raises(TEERefusal):
        verify_checkpoint(thinned, scheme, directory, QUORUM)


def test_tee_install_checkpoint_adopts_certified_tip(env):
    """A recovering replica's checker verifies and adopts a peer
    checkpoint; its own certifications then chain from the installed tip."""
    scheme, directory, checkers = env
    qc = decide_qc(env)
    genesis = genesis_block()
    ckpt = checkers[0].tee_checkpoint(chain_headers(genesis.hash, 10), qc)
    checkers[2].tee_install_checkpoint(ckpt)
    assert checkers[2].checkpoint_height == 10
    assert checkers[2].checkpoint_hash == BLOCK_HASH
    assert checkers[2].checkpoint_root == ckpt.state_root
    # Certifying past the installed horizon chains from the peer's tip.
    more = chain_headers(BLOCK_HASH, 5, salt=b"c")
    newer = checkers[2].tee_checkpoint(more, qc)
    assert newer.height == 15
    assert newer.state_root == folded_root(ckpt.state_root, more)


def test_tee_install_checkpoint_refuses_forged_or_stale(env):
    _, _, checkers = env
    qc = decide_qc(env)
    genesis = genesis_block()
    ckpt = checkers[0].tee_checkpoint(chain_headers(genesis.hash, 10), qc)
    # Forged: the fabricated height voids the Checker signature.
    with pytest.raises(TEERefusal):
        checkers[2].tee_install_checkpoint(replace(ckpt, height=1_000))
    # Stale: an authentic checkpoint at or below the certified height.
    checkers[2].tee_install_checkpoint(ckpt)
    with pytest.raises(TEERefusal):
        checkers[2].tee_install_checkpoint(ckpt)


def test_checkpoint_state_survives_seal_roundtrip(env):
    scheme, directory, checkers = env
    qc = decide_qc(env)
    genesis = genesis_block()
    ckpt = checkers[0].tee_checkpoint(chain_headers(genesis.hash, 10), qc)
    manager = SealManager()
    sealed = manager.seal(checkers[0])
    fresh = Checker(0, scheme, directory, genesis.hash, QUORUM)
    manager.unseal_into(fresh, sealed)
    assert fresh.checkpoint_counter == 1
    assert fresh.checkpoint_height == 10
    assert fresh.checkpoint_hash == BLOCK_HASH
    assert fresh.checkpoint_root == ckpt.state_root
    # The restored monotonic floor still refuses stale certifications: a
    # replayed from-genesis suffix no longer chains from the tip.
    with pytest.raises(TEERefusal):
        fresh.tee_checkpoint(chain_headers(genesis.hash, 5), qc)
